//! POI360 reproduction — umbrella crate.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can `use poi360::...`. See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! * [`sim`] — deterministic discrete-event kernel.
//! * [`lte`] — LTE uplink simulator (PF scheduler, firmware buffer, channel).
//! * [`net`] — end-to-end path (eNodeB buffer, core delay, wireline).
//! * [`video`] — 360° frame model, compression modes, R-D model, encoder.
//! * [`viewport`] — head-motion and ROI trace models.
//! * [`transport`] — RTP/RTCP, pacer, Google Congestion Control.
//! * [`metrics`] — PSNR/MOS/freeze/CDF statistics and report rendering.
//! * [`core`] — the paper's contribution: adaptive spatial compression,
//!   firmware-buffer-aware congestion control (FBCC), the telephony session,
//!   and the Conduit/Pyramid baselines.

pub use poi360_core as core;
pub use poi360_lte as lte;
pub use poi360_metrics as metrics;
pub use poi360_net as net;
pub use poi360_sim as sim;
pub use poi360_transport as transport;
pub use poi360_video as video;
pub use poi360_viewport as viewport;
