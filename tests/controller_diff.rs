//! Differential stall-handling test (ISSUE 9 satellite): under the
//! `diag_freeze` preset the two diag-driven controllers must react in
//! their own documented ways —
//!
//! * **FBCC**'s stall detection is pinned byte-for-byte: the `fbcc.*`
//!   probe stream of the full-scale run is compared against the
//!   checked-in golden `bench_results/fbcc_diag_freeze.txt`, so any
//!   behavioural drift in the detector shows up as a byte diff, not a
//!   tolerance miss. Regenerate deliberately with
//!   `POI360_BLESS_DIFF=1 cargo test --release --test controller_diff`.
//! * **OCC** must *hold* its capacity estimate while the diag pair is
//!   frozen — the rate may not grow during the stall window, because a
//!   stalled modem must never read as fresh capacity.

use poi360_bench::faults as fi;
use poi360_core::config::{CompressionScheme, RateControlKind};
use poi360_lte::scenario::{FaultScenario, FAULT_AT, FAULT_RUN_SECS};
use poi360_sim::time::SimDuration;
use poi360_sim::trace::{JsonlSink, SinkHandle, TraceSink};
use poi360_sim::Recorder;
use std::sync::{Arc, Mutex};

/// Run one controller under the full-scale `diag_freeze` preset, tracing
/// into an *unstamped* in-memory sink (a `RunMeta` stamp carries the test
/// binary's argv, which would never match a blessed golden).
fn run_diag_freeze(rc: RateControlKind) -> (fi::FaultOutcome, Vec<u8>) {
    let fs = FaultScenario::by_name("diag_freeze").expect("preset exists");
    let sink = Arc::new(Mutex::new(JsonlSink::to_writer(Vec::new())));
    let handle: SinkHandle = sink.clone();
    let recorder = Recorder::to_sink(Arc::clone(&handle), "diff");
    let out =
        fi::run_case_with_scheme(&fs, CompressionScheme::Poi360, rc, FAULT_RUN_SECS, 1, recorder);
    drop(handle);
    sink.lock().unwrap().flush();
    let Ok(sink) = Arc::try_unwrap(sink) else { panic!("trace handles dropped") };
    (out, sink.into_inner().unwrap().into_inner())
}

/// The `fbcc.*` probe lines of a JSONL stream, order preserved.
fn fbcc_lines(jsonl: &[u8]) -> String {
    let text = std::str::from_utf8(jsonl).expect("probe stream is UTF-8");
    let mut out = String::new();
    for line in text.lines().filter(|l| l.contains("fbcc.")) {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[test]
fn fbcc_stall_detection_matches_the_checked_in_golden() {
    let (out, jsonl) = run_diag_freeze(RateControlKind::Fbcc);
    assert!(out.verdict.pass(), "diag_freeze must pass under FBCC: {:?}", out.verdict.failures());
    let lines = fbcc_lines(&jsonl);
    assert!(!lines.is_empty(), "FBCC runs must emit fbcc.* probes");

    let path = format!("{}/bench_results/fbcc_diag_freeze.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("POI360_BLESS_DIFF").is_ok() {
        std::fs::write(&path, &lines).expect("bless golden");
        return;
    }
    let golden =
        std::fs::read_to_string(&path).expect("golden missing — bless with POI360_BLESS_DIFF=1");
    assert!(
        lines == golden,
        "fbcc.* probe stream drifted from bench_results/fbcc_diag_freeze.txt \
         ({} bytes vs {} golden); if the change is intended, regenerate with \
         POI360_BLESS_DIFF=1",
        lines.len(),
        golden.len()
    );
}

#[test]
fn occ_holds_its_estimate_while_the_diag_pair_is_frozen() {
    let (out, jsonl) = run_diag_freeze(RateControlKind::Occ);
    assert!(out.verdict.pass(), "diag_freeze must pass under OCC: {:?}", out.verdict.failures());
    assert!(fbcc_lines(&jsonl).is_empty(), "OCC runs must not emit FBCC probes");

    // The preset freezes the diag pair for 2.5 s starting at FAULT_AT.
    // The stall signature needs two consecutive constant 40 ms batches,
    // so judge from 200 ms into the window: past that point the rate may
    // fall (pre-stall relief scaling keeps draining) but never grow.
    let settle = FAULT_AT + SimDuration::from_millis(200);
    let clear = FAULT_AT + SimDuration::from_millis(2_500);
    let series = &out.report.video_rate;
    let at_settle = series
        .iter()
        .take_while(|&(t, _)| t <= settle)
        .last()
        .map(|(_, v)| v)
        .expect("samples before the stall");
    let grew = series
        .iter()
        .filter(|&(t, _)| t > settle && t < clear)
        .find(|&(_, v)| v > at_settle * 1.001);
    assert!(
        grew.is_none(),
        "OCC rate grew during the frozen-diag window: {grew:?} from {at_settle}"
    );
}
