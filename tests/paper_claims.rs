//! Integration tests asserting the paper's qualitative claims — the
//! *shape* of the evaluation results: who wins, and in which direction
//! each condition moves the metrics. Absolute values live in
//! EXPERIMENTS.md; these tests only pin orderings that must survive any
//! reasonable recalibration.

use poi360::core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360::core::report::Aggregate;
use poi360::core::session::Session;
use poi360::lte::scenario::Scenario;
use poi360::sim::time::SimDuration;
use poi360::viewport::motion::UserArchetype;

const SECS: u64 = 45;

/// Pool a few users × seeds for one configuration.
fn pooled(scheme: CompressionScheme, rc: RateControlKind, network: NetworkKind) -> Aggregate {
    let mut agg = Aggregate::new("pool");
    for (k, user) in
        [UserArchetype::Anchored, UserArchetype::SmoothPanner, UserArchetype::EventDriven]
            .iter()
            .enumerate()
    {
        for seed in 0..2u64 {
            let cfg = SessionConfig {
                scheme,
                rate_control: rc,
                network,
                user: *user,
                duration: SimDuration::from_secs(SECS),
                seed: 1000 + k as u64 * 10 + seed,
                ..Default::default()
            };
            agg.add(&Session::new(cfg).run());
        }
    }
    agg
}

fn cellular() -> NetworkKind {
    NetworkKind::Cellular(Scenario::baseline())
}

#[test]
fn poi360_beats_baselines_on_cellular_quality() {
    // Paper Fig. 11b: POI360's ROI PSNR clearly above Conduit and Pyramid
    // over cellular.
    let poi = pooled(CompressionScheme::Poi360, RateControlKind::Gcc, cellular());
    let conduit = pooled(CompressionScheme::Conduit, RateControlKind::Gcc, cellular());
    let pyramid = pooled(CompressionScheme::Pyramid, RateControlKind::Gcc, cellular());
    assert!(
        poi.mean_psnr_db() > conduit.mean_psnr_db() + 2.0,
        "poi {} conduit {}",
        poi.mean_psnr_db(),
        conduit.mean_psnr_db()
    );
    assert!(
        poi.mean_psnr_db() > pyramid.mean_psnr_db(),
        "poi {} pyramid {}",
        poi.mean_psnr_db(),
        pyramid.mean_psnr_db()
    );
}

#[test]
fn poi360_is_most_stable_on_cellular() {
    // Paper Fig. 12b: the baselines' displayed ROI compression level
    // fluctuates several times more than POI360's.
    let poi = pooled(CompressionScheme::Poi360, RateControlKind::Gcc, cellular());
    let conduit = pooled(CompressionScheme::Conduit, RateControlKind::Gcc, cellular());
    assert!(
        conduit.mean_level_std() > poi.mean_level_std() * 2.0,
        "conduit {} poi {}",
        conduit.mean_level_std(),
        poi.mean_level_std()
    );
}

#[test]
fn conduit_quality_is_bimodal() {
    // Conduit's two-level design: when it misses, the fovea sees the floor.
    // Its PSNR std must dwarf POI360's.
    let poi = pooled(CompressionScheme::Poi360, RateControlKind::Gcc, cellular());
    let conduit = pooled(CompressionScheme::Conduit, RateControlKind::Gcc, cellular());
    assert!(
        conduit.psnr_std_db() > poi.psnr_std_db() * 1.5,
        "conduit std {} poi std {}",
        conduit.psnr_std_db(),
        poi.psnr_std_db()
    );
}

#[test]
fn wireline_is_gentler_than_cellular_for_everyone() {
    // Paper Figs. 11–14 (a) vs (b): every scheme does better on wireline.
    for scheme in CompressionScheme::all() {
        let wl = pooled(scheme, RateControlKind::Gcc, NetworkKind::Wireline);
        let cell = pooled(scheme, RateControlKind::Gcc, cellular());
        assert!(
            wl.mean_psnr_db() >= cell.mean_psnr_db() - 0.5,
            "{scheme:?}: wl {} cell {}",
            wl.mean_psnr_db(),
            cell.mean_psnr_db()
        );
        assert!(
            wl.freeze_ratio() <= cell.freeze_ratio() + 0.005,
            "{scheme:?}: wl {} cell {}",
            wl.freeze_ratio(),
            cell.freeze_ratio()
        );
    }
}

#[test]
fn fbcc_beats_gcc_on_freezes() {
    // Paper Fig. 16a: FBCC's freeze ratio well below stock GCC's. Short
    // pooled sessions carry sampling noise, so allow a small absolute
    // tolerance; the full-scale comparison lives in `reproduce fig16`.
    let fbcc = pooled(CompressionScheme::Poi360, RateControlKind::Fbcc, cellular());
    let gcc = pooled(CompressionScheme::Poi360, RateControlKind::Gcc, cellular());
    assert!(
        fbcc.freeze_ratio() < gcc.freeze_ratio() + 0.02,
        "fbcc {} gcc {}",
        fbcc.freeze_ratio(),
        gcc.freeze_ratio()
    );
}

#[test]
fn weak_signal_costs_quality_not_stability() {
    // Paper Fig. 17c/d: weak RSS lowers quality but POI360 keeps streaming.
    let strong = pooled(
        CompressionScheme::Poi360,
        RateControlKind::Fbcc,
        NetworkKind::Cellular(Scenario::signal_sweep()[2]),
    );
    let weak = pooled(
        CompressionScheme::Poi360,
        RateControlKind::Fbcc,
        NetworkKind::Cellular(Scenario::signal_sweep()[0]),
    );
    assert!(
        weak.mean_psnr_db() < strong.mean_psnr_db(),
        "weak {} strong {}",
        weak.mean_psnr_db(),
        strong.mean_psnr_db()
    );
    // The weak link still delivers a usable stream.
    assert!(weak.freeze.delivered() > 0);
    assert!(weak.mean_psnr_db() > 15.0, "weak signal unusable: {}", weak.mean_psnr_db());
}

#[test]
fn busy_cell_degrades_gracefully() {
    // Paper Fig. 17a/b: heavy competing load costs a couple of dB and some
    // freezes, not collapse.
    let idle = pooled(
        CompressionScheme::Poi360,
        RateControlKind::Fbcc,
        NetworkKind::Cellular(Scenario::load_sweep()[0]),
    );
    let busy = pooled(
        CompressionScheme::Poi360,
        RateControlKind::Fbcc,
        NetworkKind::Cellular(Scenario::load_sweep()[1]),
    );
    assert!(busy.mean_psnr_db() <= idle.mean_psnr_db());
    assert!(busy.mean_psnr_db() > idle.mean_psnr_db() - 8.0, "collapse under load");
}
