//! Scenario-driven fault robustness suite.
//!
//! Each named [`FaultScenario`] preset runs under FBCC, GCC, and OCC and
//! must satisfy the recovery invariants defined once in
//! `poi360_bench::faults`: the video rate climbs back after the fault
//! clears, the firmware buffer drains, playback freeze time stays
//! bounded, and the probe plane never sees an out-of-order gauge sample.
//! On top of that, a rerun of the whole suite under the same seed must
//! produce a byte-identical JSONL trace stream.
//!
//! The hex-grid mobility presets ride the same judge machinery
//! (`poi360_bench::mobility`): packet conservation across every
//! handover, explicit RLF losses, and in-order video delivery.
//!
//! The seed comes from `POI360_FAULT_SEED` (default 1); ci.sh runs a
//! small seed matrix so the invariants are not tuned to one trajectory.

use poi360_bench::faults as fi;
use poi360_core::config::RateControlKind;
use poi360_lte::scenario::{FaultScenario, FAULT_RUN_SECS};
use poi360_sim::fault::FaultKind;
use poi360_sim::Recorder;

fn seed() -> u64 {
    std::env::var("POI360_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// Run one preset under every rate control and assert every invariant.
fn check(name: &str) {
    let fs = FaultScenario::by_name(name).expect("preset exists");
    for rc in [RateControlKind::Fbcc, RateControlKind::Gcc, RateControlKind::Occ] {
        let out = fi::run_case(&fs, rc, FAULT_RUN_SECS, seed(), Recorder::null());
        assert!(
            out.verdict.pass(),
            "{name}/{} seed {} violated {:?}\n{:#?}",
            rc.label(),
            seed(),
            out.verdict.failures(),
            out.verdict
        );
    }
}

macro_rules! fault_scenario_test {
    ($fn_name:ident, $name:expr) => {
        #[test]
        fn $fn_name() {
            check($name);
        }
    };
}

/// The related-work tile policies ride the same invariants: an RLF under
/// Pano or Ghosh tiling (with the default FBCC control) must recover just
/// like the plain POI360 scheme — the tile modulation only reshapes
/// quality across the panorama, never the congestion response.
#[test]
fn tile_policies_recover_from_rlf() {
    use poi360_core::config::CompressionScheme;
    let fs = FaultScenario::by_name("rlf").expect("preset exists");
    for scheme in [CompressionScheme::Pano, CompressionScheme::Ghosh] {
        let out = fi::run_case_with_scheme(
            &fs,
            scheme,
            RateControlKind::Fbcc,
            FAULT_RUN_SECS,
            seed(),
            Recorder::null(),
        );
        assert!(
            out.verdict.pass(),
            "rlf/{} seed {} violated {:?}\n{:#?}",
            scheme.label(),
            seed(),
            out.verdict.failures(),
            out.verdict
        );
    }
}

fault_scenario_test!(radio_link_failure_recovers, "rlf");
fault_scenario_test!(diag_stall_recovers, "diag_freeze");
fault_scenario_test!(grant_starvation_recovers, "grant_starve");
fault_scenario_test!(feedback_blackout_recovers, "roi_blackout");
fault_scenario_test!(wireline_spike_recovers, "wireline_spike");
fault_scenario_test!(flash_crowd_recovers, "flash_crowd");
fault_scenario_test!(stacked_faults_recover, "stacked");

/// The named presets cover every fault kind the plane can inject, so the
/// per-scenario tests above exercise all six seams.
#[test]
fn presets_cover_every_fault_kind() {
    let all = FaultScenario::all();
    assert!(all.len() >= 6, "at least six named scenarios");
    let covered: std::collections::BTreeSet<&str> =
        all.iter().flat_map(|fs| fs.plan.events().iter().map(|e| e.kind.probe_name())).collect();
    for kind in [
        FaultKind::RadioLinkFailure,
        FaultKind::DiagStall,
        FaultKind::GrantStarvation { factor: 0.5 },
        FaultKind::FeedbackLoss { loss: 0.5 },
        FaultKind::WirelineSpike {
            extra_delay: poi360_sim::time::SimDuration::from_millis(1),
            extra_loss: 0.0,
        },
        FaultKind::FlashCrowd { extra_load: 0.5 },
    ] {
        assert!(covered.contains(kind.probe_name()), "no preset injects {}", kind.probe_name());
    }
}

/// The whole suite is a pure function of its seed: running it twice must
/// produce byte-identical JSONL trace streams (the `reproduce faults`
/// acceptance criterion, pinned here at a shorter horizon).
#[test]
fn fault_suite_rerun_is_byte_identical() {
    let scenarios = [
        FaultScenario::by_name("rlf").expect("preset"),
        FaultScenario::by_name("stacked").expect("preset"),
    ];
    let (_, a) = fi::run_suite(&scenarios, 8, seed());
    let (_, b) = fi::run_suite(&scenarios, 8, seed());
    assert!(!a.is_empty(), "trace stream captured");
    assert_eq!(a, b, "fault suite reruns diverged under seed {}", seed());
}

/// A different seed must still satisfy the invariants but produce a
/// different trajectory — the plan is deterministic, not degenerate.
#[test]
fn different_seeds_diverge() {
    let fs = FaultScenario::by_name("grant_starve").expect("preset");
    let (_, a) = fi::run_suite(std::slice::from_ref(&fs), 8, 11);
    let (_, b) = fi::run_suite(std::slice::from_ref(&fs), 8, 12);
    assert_ne!(a, b, "distinct seeds should give distinct traces");
}

// ---------------------------------------------------------------------
// Packet conservation across handover (mobility presets, judged by the
// same machinery `reproduce mobility` uses)
// ---------------------------------------------------------------------

use poi360_bench::mobility as mo;
use poi360_lte::scenario::MobilityScenario;

/// Every RTP packet accepted by a firmware buffer before a handover is
/// accounted for afterwards: delivered by some serving cell, explicitly
/// dropped by an RLF flush, or still queued at run end — exactly once.
/// (Stale retransmissions are culled *before* the buffer by the session's
/// RTX age rule, so they never enter this ledger.) The judge also checks
/// first-transmission video never reorders or duplicates across the
/// migration, i.e. no silent loss and no double delivery.
#[test]
fn handover_conserves_every_packet() {
    let ms = MobilityScenario::by_name("convoy").expect("preset exists");
    let (out, _) = mo::run_case(&ms, &mo::MobilityScale::smoke(), seed());
    assert!(
        out.verdict.pass(),
        "convoy seed {} violated {:?}\n{:#?}",
        seed(),
        out.verdict.failures(),
        out.verdict
    );
    for fs in &out.report.flow_stats {
        assert!(fs.handovers + fs.rlfs >= 1, "{} never handed over", fs.label);
        assert_eq!(
            fs.enqueued,
            fs.delivered + fs.flushed + fs.queued_at_end,
            "{} leaked packets",
            fs.label
        );
        assert_eq!(fs.seq_violations, 0, "{} reordered or duplicated video", fs.label);
    }
    assert_eq!(out.report.load_conservation_violations, 0, "a load UE leaked packets");
}

/// Under the over-conservative `late_ho` preset, handovers degrade into
/// RLFs whose losses must be *explicit*: the flush counter owns every
/// packet the re-establishment discarded, and the conservation identity
/// still balances to the packet.
#[test]
fn rlf_flush_losses_are_explicit_not_silent() {
    let late = MobilityScenario::by_name("late_ho").expect("preset exists");
    let (out, _) = mo::run_case(&late, &mo::MobilityScale::smoke(), seed());
    let rlfs: u64 = out.report.flow_stats.iter().map(|f| f.rlfs).sum();
    let flushed: u64 = out.report.flow_stats.iter().map(|f| f.flushed).sum();
    assert!(rlfs >= 1, "late_ho preset must cause at least one RLF");
    assert!(flushed >= 1, "an RLF on a loaded uplink must flush queued packets");
    for fs in &out.report.flow_stats {
        assert!(fs.conserved(), "{}: RLF broke conservation", fs.label);
        assert_eq!(fs.seq_violations, 0, "{}: RLF reordered video", fs.label);
    }
}
