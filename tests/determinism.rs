//! Determinism guarantees: the whole system is a pure function of its
//! master seed, and independent components draw from decorrelated named
//! streams.

use poi360::core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360::core::multicell::{FlowSpec, MultiCell, MultiCellConfig};
use poi360::core::session::Session;
use poi360::lte::buffer::PacketLike;
use poi360::lte::cell::{Cell, CellConfig};
use poi360::lte::channel::ChannelConfig;
use poi360::lte::scenario::Scenario;
use poi360::sim::json::ToJson;
use poi360::sim::rng::SimRng;
use poi360::sim::time::{SimDuration, SimTime};
use poi360::sim::SUBFRAME;
use poi360::viewport::motion::UserArchetype;

fn cfg(seed: u64, network: NetworkKind) -> SessionConfig {
    SessionConfig {
        scheme: CompressionScheme::Poi360,
        rate_control: RateControlKind::Fbcc,
        network,
        user: UserArchetype::SmoothPanner,
        duration: SimDuration::from_secs(20),
        seed,
        ..Default::default()
    }
}

/// Two runs of the same master seed must produce byte-identical session
/// reports — the JSON serialization captures every field, so any hidden
/// nondeterminism (iteration order, ambient entropy, time) shows up here.
#[test]
fn same_seed_gives_byte_identical_report() {
    for network in [NetworkKind::Wireline, NetworkKind::Cellular(Scenario::baseline())] {
        let a = Session::new(cfg(42, network)).run().to_json();
        let b = Session::new(cfg(42, network)).run().to_json();
        assert_eq!(a, b, "session report must be a pure function of the seed");
        assert!(a.contains("\"frames_sent\":"), "report JSON lost its fields");
    }
}

/// Different master seeds must actually change the outcome (the report
/// is not a constant).
#[test]
fn different_seeds_differ() {
    let net = NetworkKind::Cellular(Scenario::baseline());
    let a = Session::new(cfg(1, net)).run().to_json();
    let b = Session::new(cfg(2, net)).run().to_json();
    assert_ne!(a, b, "distinct seeds should perturb the session");
}

/// A whole shared-cell ensemble — N sessions, background UEs, and the PF
/// scheduler in lockstep — is a pure function of one master seed.
#[test]
fn multicell_same_seed_gives_byte_identical_report() {
    let mk = || MultiCellConfig {
        flows: vec![FlowSpec::default(); 2],
        background_ues: 4,
        duration: SimDuration::from_secs(6),
        seed: 77,
        ..Default::default()
    };
    let a = MultiCell::new(mk()).run().to_json();
    let b = MultiCell::new(mk()).run().to_json();
    assert_eq!(a, b, "multi-cell report must be a pure function of the seed");
    assert!(a.contains("\"jain_throughput\":"), "report JSON lost its fields");
}

#[derive(Debug)]
struct Pkt;
impl PacketLike for Pkt {
    fn wire_bytes(&self) -> u32 {
        1_200
    }
}

/// Because every UE's RNG streams are keyed by the cell seed and the UE's
/// *name* (not attach index), the background population is invisible to a
/// foreground UE's private randomness: permuting attach order changes
/// nothing at all, and adding competitors changes scheduling but never
/// the foreground UE's channel draws.
#[test]
fn per_ue_streams_decouple_foreground_from_background() {
    let run = |bg_names: &[&str]| {
        let mut cell = Cell::new(CellConfig::default(), 9);
        let ue = cell.attach_foreground("fg.0", ChannelConfig::default());
        for name in bg_names {
            cell.attach_background(name);
        }
        let mut now = SimTime::ZERO;
        let mut tbs = Vec::new();
        let mut cqi = Vec::new();
        for _ in 0..2_000 {
            while cell.buffer_level(ue) < 20_000 {
                cell.enqueue(ue, Pkt, now);
            }
            let out = cell.subframe(now);
            tbs.push(out.per_ue[0].tbs_bits);
            cqi.push(out.per_ue[0].cqi);
            now += SUBFRAME;
        }
        (tbs, cqi)
    };
    let forward = run(&["bg.a", "bg.b", "bg.c"]);
    let shuffled = run(&["bg.b", "bg.c", "bg.a"]);
    assert_eq!(forward, shuffled, "background attach order leaked into foreground results");

    let (tbs_alone, cqi_alone) = run(&[]);
    let (tbs_crowded, cqi_crowded) = run(&["bg.a", "bg.b", "bg.c"]);
    assert_eq!(cqi_alone, cqi_crowded, "competitors must not perturb a UE's channel stream");
    assert_ne!(tbs_alone, tbs_crowded, "competition should actually change scheduling");
}

// ---------------------------------------------------------------------
// Hex-grid mobility determinism
// ---------------------------------------------------------------------

use poi360_bench::mobility as mo;
use poi360_lte::scenario::MobilityScenario;

/// A 7-cell convoy — mobility, shadowing, inter-cell interference, A3
/// handovers, firmware buffers migrating between cells — emits a
/// byte-identical JSONL probe stream across reruns *and* across worker
/// pool widths (the in-process equivalent of different `POI360_THREADS`
/// values): the grid driver is lockstep single-threaded and interference
/// couples cells only through the previous subframe's published
/// activity, so no thread schedule can reorder anything.
#[test]
fn grid_convoy_byte_identical_across_thread_counts_and_reruns() {
    let ms = MobilityScenario::by_name("convoy").expect("preset exists");
    let scale = mo::MobilityScale::smoke();
    poi360_bench::runner::set_worker_threads(1);
    let (out, a) = mo::run_case(&ms, &scale, 21);
    let (_, b) = mo::run_case(&ms, &scale, 21);
    poi360_bench::runner::set_worker_threads(4);
    let (_, c) = mo::run_case(&ms, &scale, 21);
    poi360_bench::runner::set_worker_threads(0);
    assert_eq!(out.report.cells, 7, "rings=1 lattice");
    assert!(!a.is_empty(), "trace stream captured");
    assert_eq!(a, b, "grid rerun diverged at the same worker width");
    assert_eq!(a, c, "grid stream moved with the worker-pool width");
}

/// A different master seed perturbs the whole grid trajectory — the
/// stream is deterministic, not constant.
#[test]
fn grid_different_seeds_diverge() {
    let ms = MobilityScenario::by_name("convoy").expect("preset exists");
    let scale = mo::MobilityScale::smoke();
    let (_, a) = mo::run_case(&ms, &scale, 31);
    let (_, b) = mo::run_case(&ms, &scale, 32);
    assert_ne!(a, b, "distinct seeds should give distinct grid traces");
}

/// The grid report itself (JSON serialization, every counter and stat)
/// is a pure function of the seed — mirrors the MultiCell guarantee.
#[test]
fn multigrid_same_seed_gives_byte_identical_report() {
    use poi360::core::multicell::{MultiGrid, MultiGridConfig};
    let mk = || MultiGridConfig {
        flows: vec![FlowSpec::default(); 2],
        load_ues: 8,
        static_bg_per_cell: 2,
        isd_m: 160.0,
        speed_mps: 30.0,
        duration: SimDuration::from_secs(6),
        seed: 77,
        ..Default::default()
    };
    let a = MultiGrid::new(mk()).run().to_json();
    let b = MultiGrid::new(mk()).run().to_json();
    assert_eq!(a, b, "multi-grid report must be a pure function of the seed");
    assert!(a.contains("\"flow_stats\":"), "report JSON lost its fields");
}

/// The sharded epoch-lockstep executor is schedule-independent: the
/// same grid scenario at shard widths 1, 2, and 8 produces a
/// byte-identical probe JSONL stream *and* a byte-identical report.
/// Cross-cell effects — handover migrations carrying the firmware
/// buffer, neighbor-PRB interference — are exchanged only at the
/// subframe barrier in fixed cell-id order, and per-shard trace buffers
/// merge in canonical (cell, flow, grid) order, so no worker
/// interleaving can reach the output.
#[test]
fn multigrid_sharded_widths_are_byte_identical() {
    use poi360::core::multicell::{MultiGrid, MultiGridConfig};
    use poi360::sim::trace::{JsonlSink, SinkHandle, TraceSink};
    use std::sync::{Arc, Mutex};
    let run = |shards: usize| {
        let cfg = MultiGridConfig {
            flows: vec![FlowSpec::default(); 2],
            load_ues: 8,
            static_bg_per_cell: 2,
            isd_m: 160.0,
            speed_mps: 30.0,
            duration: SimDuration::from_secs(4),
            seed: 5,
            shards,
            ..Default::default()
        };
        let sink = Arc::new(Mutex::new(JsonlSink::to_writer(Vec::new())));
        let handle: SinkHandle = sink.clone();
        let report = MultiGrid::traced(cfg, handle).run().to_json();
        sink.lock().unwrap().flush();
        let sink = Arc::try_unwrap(sink).unwrap_or_else(|_| panic!("sole owner"));
        (report, sink.into_inner().unwrap().into_inner())
    };
    let (r1, t1) = run(1);
    let (r2, t2) = run(2);
    let (r8, t8) = run(8);
    assert!(!t1.is_empty(), "probe stream captured");
    assert_eq!(r1, r2, "report diverged at shard width 2");
    assert_eq!(r1, r8, "report diverged at shard width 8");
    assert_eq!(t1, t2, "probe JSONL diverged at shard width 2");
    assert_eq!(t1, t8, "probe JSONL diverged at shard width 8");
}

/// Long-run recycling soak: 2.5 simulated seconds of a sharded grid is
/// thousands of epochs of pooled trace-buffer reuse — every per-entity
/// `BufferSink` drains into the merge and refills in place, and the
/// JSONL sink re-renders each record into one recycled line scratch.
/// Recycled capacity must never leak stale bytes: the sharded stream
/// stays byte-identical to the serial one, and a sink reused across
/// back-to-back runs (its scratch still warm from a *different* seed's
/// longer stream) appends exactly the bytes a fresh sink produces.
#[test]
fn multigrid_long_run_recycled_buffers_stay_byte_identical() {
    use poi360::core::multicell::{MultiGrid, MultiGridConfig};
    use poi360::sim::trace::{JsonlSink, SinkHandle, TraceSink};
    use std::sync::{Arc, Mutex};
    let cfg = |seed: u64, shards: usize| MultiGridConfig {
        flows: vec![FlowSpec::default(); 2],
        load_ues: 8,
        static_bg_per_cell: 2,
        isd_m: 160.0,
        speed_mps: 30.0,
        duration: SimDuration::from_millis(2_500),
        seed,
        shards,
        ..Default::default()
    };
    // One shared sink, two runs back to back: seed 91 first (warms the
    // line scratch and the pool workers), then seed 5. The seed-5 bytes
    // are the suffix after the seed-91 stream.
    let sink = Arc::new(Mutex::new(JsonlSink::to_writer(Vec::new())));
    let handle: SinkHandle = sink.clone();
    MultiGrid::traced(cfg(91, 4), handle.clone()).run();
    sink.lock().unwrap().flush();
    let warm_len = sink.lock().unwrap().get_ref().len();
    let report_reused = MultiGrid::traced(cfg(5, 4), handle).run().to_json();
    sink.lock().unwrap().flush();
    let sink = Arc::try_unwrap(sink).unwrap_or_else(|_| panic!("sole owner"));
    let bytes = sink.into_inner().unwrap().into_inner();
    assert!(bytes.len() > warm_len, "second run traced nothing");
    let reused_tail = bytes[warm_len..].to_vec();

    // Fresh-sink serial reference for the same seed-5 scenario.
    let fresh = |shards: usize| {
        let sink = Arc::new(Mutex::new(JsonlSink::to_writer(Vec::new())));
        let handle: SinkHandle = sink.clone();
        let report = MultiGrid::traced(cfg(5, shards), handle).run().to_json();
        sink.lock().unwrap().flush();
        let sink = Arc::try_unwrap(sink).unwrap_or_else(|_| panic!("sole owner"));
        (report, sink.into_inner().unwrap().into_inner())
    };
    let (report_serial, trace_serial) = fresh(1);
    assert_eq!(report_reused, report_serial, "sharded long-run report diverged from serial");
    assert_eq!(
        reused_tail, trace_serial,
        "a recycled sink scratch leaked stale bytes into the stream"
    );
}

/// Named component streams derived from one master seed are mutually
/// independent: different names give uncorrelated sequences, the same
/// name reproduces the identical sequence.
#[test]
fn named_streams_are_independent() {
    let master = 360;
    let take = |name: &str| {
        let mut r = SimRng::stream(master, name);
        (0..64).map(|_| r.next_u64()).collect::<Vec<_>>()
    };
    assert_eq!(take("uplink"), take("uplink"), "same name must replay the same stream");
    let (a, b) = (take("uplink"), take("encoder"));
    assert_ne!(a, b);
    let collisions = a.iter().zip(&b).filter(|(x, y)| x == y).count();
    assert!(collisions <= 1, "streams for distinct names look correlated: {collisions} matches");
}

/// The arena protocol (JSONL stream and rendered league report) is
/// byte-identical across reruns and across worker-pool widths: every
/// (cell, leg) job traces into its own sink and the streams concatenate
/// in league order, so no thread schedule can reorder anything.
#[test]
fn arena_byte_identical_across_thread_counts_and_reruns() {
    use poi360_bench::arena as ar;
    let cfg = ar::ArenaConfig {
        controllers: vec![RateControlKind::Fbcc, RateControlKind::Occ],
        policies: vec![CompressionScheme::Poi360, CompressionScheme::Pano],
        seconds: 3,
        seed: 11,
        fault_scenarios: vec![
            poi360_lte::scenario::FaultScenario::by_name("rlf").expect("preset exists")
        ],
    };
    poi360_bench::runner::set_worker_threads(1);
    let a = ar::run_protocol(&cfg);
    let b = ar::run_protocol(&cfg);
    poi360_bench::runner::set_worker_threads(4);
    let c = ar::run_protocol(&cfg);
    poi360_bench::runner::set_worker_threads(0);
    assert!(!a.jsonl.is_empty(), "arena trace stream captured");
    assert_eq!(a.jsonl, b.jsonl, "arena rerun diverged at the same worker width");
    assert_eq!(a.jsonl, c.jsonl, "arena stream moved with the worker-pool width");
    assert_eq!(a.text, b.text, "league report rerun diverged");
    assert_eq!(a.text, c.text, "league report moved with the worker-pool width");
}

/// A different master seed perturbs the whole arena trace — the stream
/// is deterministic, not constant.
#[test]
fn arena_different_seeds_diverge() {
    use poi360_bench::arena as ar;
    let base = ar::ArenaConfig {
        controllers: vec![RateControlKind::Fbcc],
        policies: vec![CompressionScheme::Poi360],
        seconds: 3,
        seed: 41,
        fault_scenarios: vec![
            poi360_lte::scenario::FaultScenario::by_name("rlf").expect("preset exists")
        ],
    };
    let a = ar::run_protocol(&base);
    let b = ar::run_protocol(&ar::ArenaConfig { seed: 42, ..base });
    assert_ne!(a.jsonl, b.jsonl, "distinct seeds should give distinct arena traces");
}
