//! Determinism guarantees: the whole system is a pure function of its
//! master seed, and independent components draw from decorrelated named
//! streams.

use poi360::core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360::core::multicell::{FlowSpec, MultiCell, MultiCellConfig};
use poi360::core::session::Session;
use poi360::lte::buffer::PacketLike;
use poi360::lte::cell::{Cell, CellConfig};
use poi360::lte::channel::ChannelConfig;
use poi360::lte::scenario::Scenario;
use poi360::sim::json::ToJson;
use poi360::sim::rng::SimRng;
use poi360::sim::time::{SimDuration, SimTime};
use poi360::sim::SUBFRAME;
use poi360::viewport::motion::UserArchetype;

fn cfg(seed: u64, network: NetworkKind) -> SessionConfig {
    SessionConfig {
        scheme: CompressionScheme::Poi360,
        rate_control: RateControlKind::Fbcc,
        network,
        user: UserArchetype::SmoothPanner,
        duration: SimDuration::from_secs(20),
        seed,
        ..Default::default()
    }
}

/// Two runs of the same master seed must produce byte-identical session
/// reports — the JSON serialization captures every field, so any hidden
/// nondeterminism (iteration order, ambient entropy, time) shows up here.
#[test]
fn same_seed_gives_byte_identical_report() {
    for network in [NetworkKind::Wireline, NetworkKind::Cellular(Scenario::baseline())] {
        let a = Session::new(cfg(42, network)).run().to_json();
        let b = Session::new(cfg(42, network)).run().to_json();
        assert_eq!(a, b, "session report must be a pure function of the seed");
        assert!(a.contains("\"frames_sent\":"), "report JSON lost its fields");
    }
}

/// Different master seeds must actually change the outcome (the report
/// is not a constant).
#[test]
fn different_seeds_differ() {
    let net = NetworkKind::Cellular(Scenario::baseline());
    let a = Session::new(cfg(1, net)).run().to_json();
    let b = Session::new(cfg(2, net)).run().to_json();
    assert_ne!(a, b, "distinct seeds should perturb the session");
}

/// A whole shared-cell ensemble — N sessions, background UEs, and the PF
/// scheduler in lockstep — is a pure function of one master seed.
#[test]
fn multicell_same_seed_gives_byte_identical_report() {
    let mk = || MultiCellConfig {
        flows: vec![FlowSpec::default(); 2],
        background_ues: 4,
        duration: SimDuration::from_secs(6),
        seed: 77,
        ..Default::default()
    };
    let a = MultiCell::new(mk()).run().to_json();
    let b = MultiCell::new(mk()).run().to_json();
    assert_eq!(a, b, "multi-cell report must be a pure function of the seed");
    assert!(a.contains("\"jain_throughput\":"), "report JSON lost its fields");
}

#[derive(Debug)]
struct Pkt;
impl PacketLike for Pkt {
    fn wire_bytes(&self) -> u32 {
        1_200
    }
}

/// Because every UE's RNG streams are keyed by the cell seed and the UE's
/// *name* (not attach index), the background population is invisible to a
/// foreground UE's private randomness: permuting attach order changes
/// nothing at all, and adding competitors changes scheduling but never
/// the foreground UE's channel draws.
#[test]
fn per_ue_streams_decouple_foreground_from_background() {
    let run = |bg_names: &[&str]| {
        let mut cell = Cell::new(CellConfig::default(), 9);
        let ue = cell.attach_foreground("fg.0", ChannelConfig::default());
        for name in bg_names {
            cell.attach_background(name);
        }
        let mut now = SimTime::ZERO;
        let mut tbs = Vec::new();
        let mut cqi = Vec::new();
        for _ in 0..2_000 {
            while cell.buffer_level(ue) < 20_000 {
                cell.enqueue(ue, Pkt, now);
            }
            let out = cell.subframe(now);
            tbs.push(out.per_ue[0].tbs_bits);
            cqi.push(out.per_ue[0].cqi);
            now += SUBFRAME;
        }
        (tbs, cqi)
    };
    let forward = run(&["bg.a", "bg.b", "bg.c"]);
    let shuffled = run(&["bg.b", "bg.c", "bg.a"]);
    assert_eq!(forward, shuffled, "background attach order leaked into foreground results");

    let (tbs_alone, cqi_alone) = run(&[]);
    let (tbs_crowded, cqi_crowded) = run(&["bg.a", "bg.b", "bg.c"]);
    assert_eq!(cqi_alone, cqi_crowded, "competitors must not perturb a UE's channel stream");
    assert_ne!(tbs_alone, tbs_crowded, "competition should actually change scheduling");
}

/// Named component streams derived from one master seed are mutually
/// independent: different names give uncorrelated sequences, the same
/// name reproduces the identical sequence.
#[test]
fn named_streams_are_independent() {
    let master = 360;
    let take = |name: &str| {
        let mut r = SimRng::stream(master, name);
        (0..64).map(|_| r.next_u64()).collect::<Vec<_>>()
    };
    assert_eq!(take("uplink"), take("uplink"), "same name must replay the same stream");
    let (a, b) = (take("uplink"), take("encoder"));
    assert_ne!(a, b);
    let collisions = a.iter().zip(&b).filter(|(x, y)| x == y).count();
    assert!(collisions <= 1, "streams for distinct names look correlated: {collisions} matches");
}
