//! Determinism guarantees: the whole system is a pure function of its
//! master seed, and independent components draw from decorrelated named
//! streams.

use poi360::core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360::core::session::Session;
use poi360::lte::scenario::Scenario;
use poi360::sim::json::ToJson;
use poi360::sim::rng::SimRng;
use poi360::sim::time::SimDuration;
use poi360::viewport::motion::UserArchetype;

fn cfg(seed: u64, network: NetworkKind) -> SessionConfig {
    SessionConfig {
        scheme: CompressionScheme::Poi360,
        rate_control: RateControlKind::Fbcc,
        network,
        user: UserArchetype::SmoothPanner,
        duration: SimDuration::from_secs(20),
        seed,
        ..Default::default()
    }
}

/// Two runs of the same master seed must produce byte-identical session
/// reports — the JSON serialization captures every field, so any hidden
/// nondeterminism (iteration order, ambient entropy, time) shows up here.
#[test]
fn same_seed_gives_byte_identical_report() {
    for network in [NetworkKind::Wireline, NetworkKind::Cellular(Scenario::baseline())] {
        let a = Session::new(cfg(42, network)).run().to_json();
        let b = Session::new(cfg(42, network)).run().to_json();
        assert_eq!(a, b, "session report must be a pure function of the seed");
        assert!(a.contains("\"frames_sent\":"), "report JSON lost its fields");
    }
}

/// Different master seeds must actually change the outcome (the report
/// is not a constant).
#[test]
fn different_seeds_differ() {
    let net = NetworkKind::Cellular(Scenario::baseline());
    let a = Session::new(cfg(1, net)).run().to_json();
    let b = Session::new(cfg(2, net)).run().to_json();
    assert_ne!(a, b, "distinct seeds should perturb the session");
}

/// Named component streams derived from one master seed are mutually
/// independent: different names give uncorrelated sequences, the same
/// name reproduces the identical sequence.
#[test]
fn named_streams_are_independent() {
    let master = 360;
    let take = |name: &str| {
        let mut r = SimRng::stream(master, name);
        (0..64).map(|_| r.next_u64()).collect::<Vec<_>>()
    };
    assert_eq!(take("uplink"), take("uplink"), "same name must replay the same stream");
    let (a, b) = (take("uplink"), take("encoder"));
    assert_ne!(a, b);
    let collisions = a.iter().zip(&b).filter(|(x, y)| x == y).count();
    assert!(collisions <= 1, "streams for distinct names look correlated: {collisions} matches");
}
