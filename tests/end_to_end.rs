//! Cross-crate integration tests: whole-session invariants that must hold
//! regardless of calibration.

use poi360::core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360::core::session::Session;
use poi360::lte::scenario::Scenario;
use poi360::sim::time::SimDuration;
use poi360::viewport::motion::UserArchetype;

fn cfg(
    scheme: CompressionScheme,
    rc: RateControlKind,
    network: NetworkKind,
    user: UserArchetype,
    seed: u64,
    secs: u64,
) -> SessionConfig {
    SessionConfig {
        scheme,
        rate_control: rc,
        network,
        user,
        duration: SimDuration::from_secs(secs),
        seed,
        ..Default::default()
    }
}

#[test]
fn session_accounting_is_conserved() {
    let report = Session::new(cfg(
        CompressionScheme::Poi360,
        RateControlKind::Fbcc,
        NetworkKind::Cellular(Scenario::baseline()),
        UserArchetype::Saccadic,
        1,
        20,
    ))
    .run();
    // Every frame is sent exactly once; delivered + lost never exceeds sent
    // (the remainder is in flight at session end).
    assert!(report.frames_delivered + report.frames_lost <= report.frames_sent);
    assert!(report.frames_delivered > report.frames_sent * 8 / 10);
    // One PSNR sample per delivered or lost frame.
    assert_eq!(report.roi_psnr_db.len() as u64, report.frames_delivered + report.frames_lost);
}

#[test]
fn delays_respect_physical_floor() {
    let report = Session::new(cfg(
        CompressionScheme::Poi360,
        RateControlKind::Fbcc,
        NetworkKind::Cellular(Scenario::baseline()),
        UserArchetype::Anchored,
        2,
        20,
    ))
    .run();
    let pipeline_ms = SessionConfig::default().pipeline_delay.as_millis() as f64;
    for &d in report.freeze.delays_ms() {
        assert!(d >= pipeline_ms, "delay {d} below the processing floor");
        assert!(d < 30_000.0, "delay {d} absurd");
    }
}

#[test]
fn psnr_samples_are_physical() {
    for scheme in CompressionScheme::all() {
        let report = Session::new(cfg(
            scheme,
            RateControlKind::Gcc,
            NetworkKind::Cellular(Scenario::baseline()),
            UserArchetype::SmoothPanner,
            3,
            15,
        ))
        .run();
        for &p in &report.roi_psnr_db {
            assert!((5.0..=55.0).contains(&p), "{scheme:?}: PSNR {p}");
        }
    }
}

#[test]
fn full_stack_is_deterministic() {
    let make = || {
        Session::new(cfg(
            CompressionScheme::Poi360,
            RateControlKind::Fbcc,
            NetworkKind::Cellular(Scenario::baseline()),
            UserArchetype::EventDriven,
            99,
            15,
        ))
        .run()
    };
    let a = make();
    let b = make();
    assert_eq!(a.roi_psnr_db, b.roi_psnr_db);
    assert_eq!(a.frames_delivered, b.frames_delivered);
    assert_eq!(a.uplink_detections, b.uplink_detections);
    assert_eq!(a.freeze.delays_ms(), b.freeze.delays_ms());
}

#[test]
fn wireline_beats_cellular_on_delay() {
    let wl = Session::new(cfg(
        CompressionScheme::Poi360,
        RateControlKind::Gcc,
        NetworkKind::Wireline,
        UserArchetype::EventDriven,
        5,
        20,
    ))
    .run();
    let cell = Session::new(cfg(
        CompressionScheme::Poi360,
        RateControlKind::Gcc,
        NetworkKind::Cellular(Scenario::baseline()),
        UserArchetype::EventDriven,
        5,
        20,
    ))
    .run();
    assert!(
        wl.median_delay_ms() < cell.median_delay_ms(),
        "wireline {} vs cellular {}",
        wl.median_delay_ms(),
        cell.median_delay_ms()
    );
    assert!(wl.freeze_ratio() <= cell.freeze_ratio());
}

#[test]
fn diag_plane_only_exists_on_cellular() {
    let wl = Session::new(cfg(
        CompressionScheme::Poi360,
        RateControlKind::Fbcc,
        NetworkKind::Wireline,
        UserArchetype::Anchored,
        6,
        10,
    ))
    .run();
    assert!(wl.fw_buffer.is_empty());
    assert_eq!(wl.uplink_detections, 0);

    let cell = Session::new(cfg(
        CompressionScheme::Poi360,
        RateControlKind::Fbcc,
        NetworkKind::Cellular(Scenario::baseline()),
        UserArchetype::Anchored,
        6,
        10,
    ))
    .run();
    // 25 diag epochs per second.
    assert!(cell.fw_buffer.len() as u64 >= 10 * 20);
}

#[test]
fn displayed_roi_levels_are_valid_compression_levels() {
    let report = Session::new(cfg(
        CompressionScheme::Conduit,
        RateControlKind::Gcc,
        NetworkKind::Cellular(Scenario::baseline()),
        UserArchetype::Saccadic,
        7,
        15,
    ))
    .run();
    for (_, level) in report.roi_level.iter() {
        assert!(level >= 1.0, "compression level {level} below identity");
        assert!(level <= 48.0 + 1e-9, "level {level} beyond Conduit's floor");
    }
}

#[test]
fn mismatch_time_never_below_frame_delay_floor() {
    let report = Session::new(cfg(
        CompressionScheme::Poi360,
        RateControlKind::Fbcc,
        NetworkKind::Cellular(Scenario::baseline()),
        UserArchetype::EventDriven,
        8,
        15,
    ))
    .run();
    // Eq. 2: M >= d_v >= the processing pipeline floor.
    let floor = SessionConfig::default().pipeline_delay.as_millis() as f64;
    for (_, m) in report.mismatch_ms.iter() {
        assert!(m >= floor, "M {m} below delay floor {floor}");
    }
}

#[test]
fn all_users_complete_sessions() {
    for (k, user) in UserArchetype::all().iter().enumerate() {
        let report = Session::new(cfg(
            CompressionScheme::Poi360,
            RateControlKind::Fbcc,
            NetworkKind::Cellular(Scenario::baseline()),
            *user,
            100 + k as u64,
            10,
        ))
        .run();
        assert!(report.frames_delivered > 300, "{user:?}: {}", report.frames_delivered);
    }
}
