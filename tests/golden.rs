//! Golden-output tests: re-run the Table 1 and Fig. 5/6 generators at
//! the default fixed-seed configuration and assert the headline numbers
//! match the checked-in `bench_results/{table1,fig5,fig6}.txt` within
//! tolerance. Regenerate the files with
//! `cargo run --release -p poi360-bench --bin reproduce -- <name>` after
//! an intentional calibration change.

use poi360_bench::experiments as exp;
use poi360_bench::runner::ExpConfig;

/// Absolute + relative tolerance for one golden number.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 0.05 + 0.02 * a.abs().max(b.abs())
}

/// Every parseable number per line, in order (tables plus headline
/// summary lines; prose tokens are skipped).
fn numeric_rows(text: &str) -> Vec<Vec<f64>> {
    text.lines()
        .filter_map(|l| {
            let nums: Vec<f64> =
                l.split_whitespace().filter_map(|t| t.trim_end_matches('%').parse().ok()).collect();
            (!nums.is_empty()).then_some(nums)
        })
        .collect()
}

fn golden(name: &str) -> String {
    let path = format!("{}/bench_results/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {path}: {e}"))
}

fn assert_rows_match(name: &str, fresh: &str, golden: &str) {
    let (f, g) = (numeric_rows(fresh), numeric_rows(golden));
    assert_eq!(
        f.len(),
        g.len(),
        "{name}: row count changed\n--- fresh ---\n{fresh}\n--- golden ---\n{golden}"
    );
    for (row, (fr, gr)) in f.iter().zip(&g).enumerate() {
        assert_eq!(fr.len(), gr.len(), "{name} row {row}: shape changed ({fr:?} vs {gr:?})");
        for (a, b) in fr.iter().zip(gr) {
            assert!(close(*a, *b), "{name} row {row}: {a} vs golden {b}\n--- fresh ---\n{fresh}");
        }
    }
}

/// Table 1 is pure arithmetic (the PSNR→MOS mapping); it must reproduce
/// byte for byte.
#[test]
fn table1_matches_golden_exactly() {
    assert_eq!(exp::table1(), golden("table1"), "table1 output drifted");
}

/// Fig. 5's buffer→TBS sweep at the default seed must match the
/// checked-in curve.
#[test]
fn fig5_matches_golden() {
    let fresh = exp::fig5(&ExpConfig::default());
    assert_rows_match("fig5", &fresh, &golden("fig5"));
}

/// Fig. 6's firmware-buffer CDF under GCC at the default seed must match
/// the checked-in distribution.
#[test]
fn fig6_matches_golden() {
    let fresh = exp::fig6(&ExpConfig::default());
    assert_rows_match("fig6", &fresh, &golden("fig6"));
}

/// The `reproduce study cc_matrix --smoke` report (2 controllers × 3
/// scenarios × 3 seeds at CI scale) must match the checked-in per-probe
/// distribution tables, rollups, and controller deltas. Regenerate with
/// `cargo run --release -p poi360-bench --bin reproduce -- study cc_matrix --smoke`.
#[test]
fn study_cc_matrix_smoke_matches_golden() {
    let cfg = poi360_analyse::study::by_name("cc_matrix").expect("preset exists");
    let protocol = poi360_bench::study::run_protocol(&cfg, true, None).expect("study runs");
    assert_eq!(protocol.failures, 0, "smoke study must pass without a baseline");
    assert_rows_match("study_cc_matrix_smoke", &protocol.text, &golden("study_cc_matrix_smoke"));
}

/// The `reproduce arena --smoke` league table at the default seed must
/// match the checked-in quality scores, and every fault verdict must
/// hold (the gate is part of the protocol, so a verdict regression fails
/// here before it fails in CI). Regenerate with
/// `cargo run --release -p poi360-bench --bin reproduce -- arena --smoke`.
#[test]
fn arena_smoke_matches_golden() {
    let cfg = poi360_bench::arena::ArenaConfig::smoke();
    let protocol = poi360_bench::arena::run_protocol(&cfg);
    assert_eq!(protocol.failures, 0, "smoke arena must hold every fault invariant");
    assert_rows_match("arena_smoke", &protocol.text, &golden("arena_smoke"));
}

/// The `reproduce mobility --smoke` convoy table at the default seed
/// must match the checked-in handover counts, conservation ledger, and
/// PSNR-across-handover numbers. Regenerate with
/// `cargo run --release -p poi360-bench --bin reproduce -- mobility --smoke`.
#[test]
fn mobility_smoke_matches_golden() {
    use poi360_bench::mobility as mo;
    use poi360_lte::scenario::MobilityScenario;
    let ms = MobilityScenario::by_name("convoy").expect("preset exists");
    let protocol = mo::run_protocol(&ms, &mo::MobilityScale::smoke(), 1);
    assert_eq!(protocol.failures, 0, "smoke protocol must pass its own invariants");
    assert_rows_match("mobility_smoke", &protocol.text, &golden("mobility_smoke"));
}
