//! Property-based tests over the workspace's core data structures and
//! invariants, spanning crates.

use poi360::lte::tbs;
use poi360::metrics::dist::Cdf;
use poi360::sim::event::EventQueue;
use poi360::sim::rng::SimRng;
use poi360::sim::time::{SimDuration, SimTime};
use poi360::transport::rtp::{Packetizer, Reassembler};
use poi360::video::compression::{CompressionMode, L_MIN};
use poi360::video::frame::{TileGrid, TilePos};
use poi360::video::timestamp;
use proptest::prelude::*;

proptest! {
    /// Compression levels are >= 1 everywhere and exactly 1 at the ROI
    /// center, for every mode family and ROI position.
    #[test]
    fn compression_levels_valid(
        c in 1.01f64..2.5,
        i in 0u8..12,
        j in 0u8..8,
        protect in 0u8..3,
    ) {
        let grid = TileGrid::POI360;
        let center = TilePos::new(i, j);
        for mode in [
            CompressionMode::geometric(c),
            CompressionMode::protected_geometric(c, protect, protect),
            CompressionMode::two_level(protect, protect, 48.0),
        ] {
            let m = mode.matrix(&grid, center);
            prop_assert!((m.level(center) - L_MIN).abs() < 1e-12);
            for pos in grid.iter() {
                prop_assert!(m.level(pos) >= L_MIN - 1e-12);
            }
        }
    }

    /// Recentering a distance-based matrix equals rebuilding it, for any
    /// pair of centers on the same row (no pole clamping involved).
    #[test]
    fn recenter_matches_rebuild(
        c in 1.05f64..2.0,
        from in 0u8..12,
        to in 0u8..12,
        row in 0u8..8,
    ) {
        let grid = TileGrid::POI360;
        let mode = CompressionMode::geometric(c);
        let built = mode.matrix(&grid, TilePos::new(to, row));
        let shifted = mode.matrix(&grid, TilePos::new(from, row)).recenter(TilePos::new(to, row));
        for pos in grid.iter() {
            prop_assert!((built.level(pos) - shifted.level(pos)).abs() < 1e-9);
        }
    }

    /// Cyclic tile distance is a metric: symmetric, zero iff equal, and
    /// respects the triangle inequality.
    #[test]
    fn tile_distance_is_a_metric(
        a in (0u8..12, 0u8..8),
        b in (0u8..12, 0u8..8),
        c in (0u8..12, 0u8..8),
    ) {
        let g = TileGrid::POI360;
        let (pa, pb, pc) = (
            TilePos::new(a.0, a.1),
            TilePos::new(b.0, b.1),
            TilePos::new(c.0, c.1),
        );
        prop_assert_eq!(g.distance(pa, pb), g.distance(pb, pa));
        prop_assert_eq!(g.distance(pa, pa), 0);
        if pa != pb {
            prop_assert!(g.distance(pa, pb) > 0);
        }
        prop_assert!(g.distance(pa, pc) <= g.distance(pa, pb) + g.distance(pb, pc));
    }

    /// Packetize → deliver (in any loss-free order) → reassemble recovers
    /// exactly one frame with the right byte count.
    #[test]
    fn rtp_roundtrip(payload in 1u32..200_000) {
        let mut pz = Packetizer::new();
        let mut rs = Reassembler::new(SimDuration::from_secs(10));
        let pkts = pz.packetize(0, payload, SimTime::ZERO);
        let mut completed = None;
        for (k, p) in pkts.iter().enumerate() {
            prop_assert!(completed.is_none());
            completed = rs.on_packet(p, SimTime::from_millis(k as u64));
        }
        let frame = completed.expect("frame completes on final packet");
        let headers = pkts.len() as u32 * poi360::transport::rtp::HEADER_BYTES;
        prop_assert_eq!(frame.bytes, payload + headers);
        prop_assert!(!frame.suffered_loss);
    }

    /// Dropping any single packet triggers exactly one NACK for it, and a
    /// retransmission completes the frame.
    #[test]
    fn rtp_single_loss_recovers(payload in 2_500u32..50_000, drop_pick in any::<prop::sample::Index>()) {
        let mut pz = Packetizer::new();
        let mut rs = Reassembler::new(SimDuration::from_secs(10));
        // Two frames so a trailing drop is still detected by later seqs.
        let pkts_a = pz.packetize(0, payload, SimTime::ZERO);
        let pkts_b = pz.packetize(1, 2_000, SimTime::from_millis(28));
        let all: Vec<_> = pkts_a.iter().chain(pkts_b.iter()).cloned().collect();
        let drop_idx = drop_pick.index(pkts_a.len()); // drop within frame 0
        // A loss of the very first packet of a stream is undetectable by
        // sequence-gap analysis (nothing earlier was seen) — real WebRTC
        // relies on frame timeouts there too.
        prop_assume!(drop_idx > 0);
        for (k, p) in all.iter().enumerate() {
            if k != drop_idx {
                rs.on_packet(p, SimTime::from_millis(k as u64 + 1));
            }
        }
        let nacks = rs.poll_nacks(SimTime::from_millis(100), SimDuration::from_millis(100), 4);
        prop_assert_eq!(nacks.len(), 1);
        prop_assert_eq!(nacks[0].seq, all[drop_idx].seq);
        let mut retx = all[drop_idx].clone();
        retx.retransmit = true;
        let frame = rs.on_packet(&retx, SimTime::from_millis(200)).expect("completes");
        prop_assert!(frame.suffered_loss);
        prop_assert_eq!(frame.frame_no, 0);
    }

    /// The event queue dequeues in non-decreasing time order regardless of
    /// insertion order.
    #[test]
    fn event_queue_orders(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (k, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), k);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// TBS is monotone in both CQI and PRB count.
    #[test]
    fn tbs_monotone(cqi in 1u8..15, prbs in 1u32..50) {
        prop_assert!(tbs::tbs_bits(cqi + 1, prbs) >= tbs::tbs_bits(cqi, prbs));
        prop_assert!(tbs::tbs_bits(cqi, prbs + 1) >= tbs::tbs_bits(cqi, prbs));
    }

    /// An empirical CDF is monotone, bounded to [0,1], and its quantiles
    /// stay within the sample range.
    #[test]
    fn cdf_properties(samples in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let cdf = Cdf::new(samples);
        let mut prev = 0.0;
        for k in 0..=20 {
            let x = lo + (hi - lo) * k as f64 / 20.0;
            let v = cdf.at(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let quantile = cdf.quantile(q).expect("non-empty");
            prop_assert!(quantile >= lo - 1e-9 && quantile <= hi + 1e-9);
        }
    }

    /// The color-block timestamp codec round-trips any in-range timestamp,
    /// even under averaged compression noise.
    #[test]
    fn timestamp_codec_roundtrip(ms in 0u64..9_999_999_999, noise_seed in any::<u64>()) {
        let ts = SimTime::from_millis(ms);
        let clean = timestamp::decode(&timestamp::encode(ts));
        prop_assert_eq!(clean.as_millis(), ms);
        let mut rng = SimRng::from_seed(noise_seed);
        let noisy = timestamp::corrupt(&timestamp::encode(ts), 40.0, 32 * 32, &mut rng);
        prop_assert_eq!(timestamp::decode(&noisy).as_millis(), ms);
    }

    /// Named RNG streams never collide for distinct names (spot check over
    /// arbitrary name pairs).
    #[test]
    fn rng_streams_decorrelate(seed in any::<u64>(), a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        prop_assume!(a != b);
        let mut ra = SimRng::stream(seed, &a);
        let mut rb = SimRng::stream(seed, &b);
        let matches = (0..32).filter(|_| {
            use rand::RngCore;
            ra.next_u64() == rb.next_u64()
        }).count();
        prop_assert!(matches <= 1);
    }
}
