//! Property-based tests over the workspace's core data structures and
//! invariants, spanning crates — on the in-repo `poi360_testkit`
//! harness (64+ seeded cases per property).

use poi360::lte::tbs;
use poi360::metrics::dist::Cdf;
use poi360::sim::event::EventQueue;
use poi360::sim::rng::SimRng;
use poi360::sim::time::{SimDuration, SimTime};
use poi360::transport::rtp::{Packetizer, Reassembler};
use poi360::video::compression::{CompressionMode, L_MIN};
use poi360::video::frame::{TileGrid, TilePos};
use poi360::video::timestamp;
use poi360_testkit::{prop_assert, prop_assert_eq, prop_assume, prop_check};

/// Compression levels are >= 1 everywhere and exactly 1 at the ROI
/// center, for every mode family and ROI position.
#[test]
fn compression_levels_valid() {
    prop_check!(96, |g| {
        let c = g.f64_in(1.01, 2.5);
        let i = g.u8_in(0, 11);
        let j = g.u8_in(0, 7);
        let protect = g.u8_in(0, 2);
        let grid = TileGrid::POI360;
        let center = TilePos::new(i, j);
        for mode in [
            CompressionMode::geometric(c),
            CompressionMode::protected_geometric(c, protect, protect),
            CompressionMode::two_level(protect, protect, 48.0),
        ] {
            let m = mode.matrix(&grid, center);
            prop_assert!((m.level(center) - L_MIN).abs() < 1e-12);
            for pos in grid.iter() {
                prop_assert!(m.level(pos) >= L_MIN - 1e-12);
            }
        }
        Ok(())
    });
}

/// Recentering a distance-based matrix equals rebuilding it, for any
/// pair of centers on the same row (no pole clamping involved).
#[test]
fn recenter_matches_rebuild() {
    prop_check!(96, |g| {
        let c = g.f64_in(1.05, 2.0);
        let from = g.u8_in(0, 11);
        let to = g.u8_in(0, 11);
        let row = g.u8_in(0, 7);
        let grid = TileGrid::POI360;
        let mode = CompressionMode::geometric(c);
        let built = mode.matrix(&grid, TilePos::new(to, row));
        let shifted = mode.matrix(&grid, TilePos::new(from, row)).recenter(TilePos::new(to, row));
        for pos in grid.iter() {
            prop_assert!((built.level(pos) - shifted.level(pos)).abs() < 1e-9);
        }
        Ok(())
    });
}

/// Cyclic tile distance is a metric: symmetric, zero iff equal, and
/// respects the triangle inequality.
#[test]
fn tile_distance_is_a_metric() {
    prop_check!(128, |g| {
        let g9 = TileGrid::POI360;
        let pa = TilePos::new(g.u8_in(0, 11), g.u8_in(0, 7));
        let pb = TilePos::new(g.u8_in(0, 11), g.u8_in(0, 7));
        let pc = TilePos::new(g.u8_in(0, 11), g.u8_in(0, 7));
        prop_assert_eq!(g9.distance(pa, pb), g9.distance(pb, pa));
        prop_assert_eq!(g9.distance(pa, pa), 0);
        if pa != pb {
            prop_assert!(g9.distance(pa, pb) > 0);
        }
        prop_assert!(g9.distance(pa, pc) <= g9.distance(pa, pb) + g9.distance(pb, pc));
        Ok(())
    });
}

/// Packetize → deliver (in any loss-free order) → reassemble recovers
/// exactly one frame with the right byte count.
#[test]
fn rtp_roundtrip() {
    prop_check!(128, |g| {
        let payload = g.u32_in(1, 199_999);
        let mut pz = Packetizer::new();
        let mut rs = Reassembler::new(SimDuration::from_secs(10));
        let pkts = pz.packetize(0, payload, SimTime::ZERO);
        let mut completed = None;
        for (k, p) in pkts.iter().enumerate() {
            prop_assert!(completed.is_none());
            completed = rs.on_packet(p, SimTime::from_millis(k as u64));
        }
        let frame = completed.expect("frame completes on final packet");
        let headers = pkts.len() as u32 * poi360::transport::rtp::HEADER_BYTES;
        prop_assert_eq!(frame.bytes, payload + headers);
        prop_assert!(!frame.suffered_loss);
        Ok(())
    });
}

/// Dropping any single packet triggers exactly one NACK for it, and a
/// retransmission completes the frame.
#[test]
fn rtp_single_loss_recovers() {
    prop_check!(64, |g| {
        let payload = g.u32_in(2_500, 49_999);
        let mut pz = Packetizer::new();
        let mut rs = Reassembler::new(SimDuration::from_secs(10));
        // Two frames so a trailing drop is still detected by later seqs.
        let pkts_a = pz.packetize(0, payload, SimTime::ZERO);
        let pkts_b = pz.packetize(1, 2_000, SimTime::from_millis(28));
        let all: Vec<_> = pkts_a.iter().chain(pkts_b.iter()).cloned().collect();
        let drop_idx = g.index(pkts_a.len()); // drop within frame 0
                                              // A loss of the very first packet of a stream is undetectable by
                                              // sequence-gap analysis (nothing earlier was seen) — real WebRTC
                                              // relies on frame timeouts there too. See
                                              // `first_packet_loss_is_undetectable_by_seq_gap` for that case.
        prop_assume!(drop_idx > 0);
        for (k, p) in all.iter().enumerate() {
            if k != drop_idx {
                rs.on_packet(p, SimTime::from_millis(k as u64 + 1));
            }
        }
        let nacks = rs.poll_nacks(SimTime::from_millis(100), SimDuration::from_millis(100), 4);
        prop_assert_eq!(nacks.len(), 1);
        prop_assert_eq!(nacks[0].seq, all[drop_idx].seq);
        let mut retx = all[drop_idx].clone();
        retx.retransmit = true;
        let frame = rs.on_packet(&retx, SimTime::from_millis(200)).expect("completes");
        prop_assert!(frame.suffered_loss);
        prop_assert_eq!(frame.frame_no, 0);
        Ok(())
    });
}

/// Regression (formerly `tests/property_based.proptest-regressions`,
/// payload = 2500 with the *first* packet dropped): a loss of the very
/// first packet of a stream produces no NACK, because sequence-gap
/// analysis has seen nothing earlier than the gap. The frame must not
/// complete, and no spurious NACK may be emitted for any other packet.
#[test]
fn first_packet_loss_is_undetectable_by_seq_gap() {
    let payload = 2_500u32;
    let mut pz = Packetizer::new();
    let mut rs = Reassembler::new(SimDuration::from_secs(10));
    let pkts_a = pz.packetize(0, payload, SimTime::ZERO);
    let pkts_b = pz.packetize(1, 2_000, SimTime::from_millis(28));
    assert!(pkts_a.len() >= 2, "payload 2500 must split across packets");
    let all: Vec<_> = pkts_a.iter().chain(pkts_b.iter()).cloned().collect();
    let mut frame0_completed = false;
    for (k, p) in all.iter().enumerate().skip(1) {
        if let Some(frame) = rs.on_packet(p, SimTime::from_millis(k as u64 + 1)) {
            frame0_completed |= frame.frame_no == 0;
        }
    }
    let nacks = rs.poll_nacks(SimTime::from_millis(100), SimDuration::from_millis(100), 4);
    assert!(
        !nacks.iter().any(|n| n.seq == all[0].seq),
        "seq-gap analysis cannot have detected the first packet of the stream"
    );
    assert!(nacks.is_empty(), "no other packet was lost, got {nacks:?}");
    assert!(!frame0_completed, "frame 0 is missing its first packet");
}

/// The event queue dequeues in non-decreasing time order regardless of
/// insertion order.
#[test]
fn event_queue_orders() {
    prop_check!(64, |g| {
        let times = g.vec_u64(1, 200, 0, 9_999);
        let mut q = EventQueue::new();
        for (k, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), k);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
        Ok(())
    });
}

/// TBS is monotone in both CQI and PRB count.
#[test]
fn tbs_monotone() {
    prop_check!(128, |g| {
        let cqi = g.u8_in(1, 14);
        let prbs = g.u32_in(1, 49);
        prop_assert!(tbs::tbs_bits(cqi + 1, prbs) >= tbs::tbs_bits(cqi, prbs));
        prop_assert!(tbs::tbs_bits(cqi, prbs + 1) >= tbs::tbs_bits(cqi, prbs));
        Ok(())
    });
}

/// An empirical CDF is monotone, bounded to [0,1], and its quantiles
/// stay within the sample range.
#[test]
fn cdf_properties() {
    prop_check!(64, |g| {
        let samples = g.vec_f64(1, 300, -1e6, 1e6);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let cdf = Cdf::new(samples);
        let mut prev = 0.0;
        for k in 0..=20 {
            let x = lo + (hi - lo) * k as f64 / 20.0;
            let v = cdf.at(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let quantile = cdf.quantile(q).expect("non-empty");
            prop_assert!(quantile >= lo - 1e-9 && quantile <= hi + 1e-9);
        }
        Ok(())
    });
}

/// The color-block timestamp codec round-trips any in-range timestamp,
/// even under averaged compression noise.
#[test]
fn timestamp_codec_roundtrip() {
    prop_check!(64, |g| {
        let ms = g.u64_in(0, 9_999_999_998);
        let noise_seed = g.any_u64();
        let ts = SimTime::from_millis(ms);
        let clean = timestamp::decode(&timestamp::encode(ts));
        prop_assert_eq!(clean.as_millis(), ms);
        let mut rng = SimRng::from_seed(noise_seed);
        let noisy = timestamp::corrupt(&timestamp::encode(ts), 40.0, 32 * 32, &mut rng);
        prop_assert_eq!(timestamp::decode(&noisy).as_millis(), ms);
        Ok(())
    });
}

/// Named RNG streams never collide for distinct names (spot check over
/// arbitrary name pairs).
#[test]
fn rng_streams_decorrelate() {
    prop_check!(64, |g| {
        let seed = g.any_u64();
        let a = g.lowercase(1, 12);
        let b = g.lowercase(1, 12);
        prop_assume!(a != b);
        let mut ra = SimRng::stream(seed, &a);
        let mut rb = SimRng::stream(seed, &b);
        let matches = (0..32).filter(|_| ra.next_u64() == rb.next_u64()).count();
        prop_assert!(matches <= 1);
        Ok(())
    });
}

/// Handover migration at an epoch barrier never loses or invents a
/// packet: for arbitrary seeds and shard widths, a handover-heavy grid
/// run (tight lattice, fast convoy — flows *will* migrate, carrying
/// their firmware buffers between cells) preserves
/// `enqueued == delivered + flushed + queued_at_end` for every flow,
/// and the load-UE conservation check inside the driver never trips.
#[test]
fn grid_migration_preserves_packet_conservation() {
    use poi360::core::multicell::{FlowSpec, MultiGrid, MultiGridConfig};
    prop_check!(6, |g| {
        let seed = g.u64_in(1, 1 << 40);
        let shards = g.usize_in(1, 8);
        let report = MultiGrid::new(MultiGridConfig {
            flows: vec![FlowSpec::default(); 2],
            load_ues: 8,
            static_bg_per_cell: 2,
            isd_m: 150.0,
            speed_mps: 35.0,
            duration: SimDuration::from_secs(4),
            seed,
            shards,
            ..Default::default()
        })
        .run();
        let migrated = report.flow_stats.iter().any(|f| f.handovers + f.rlfs > 0)
            || report.load_handovers + report.load_rlfs > 0;
        prop_assert!(migrated, "scenario too tame: no migration exercised");
        for f in &report.flow_stats {
            prop_assert!(
                f.conserved(),
                "flow {}: enqueued {} != delivered {} + flushed {} + queued {}",
                f.label,
                f.enqueued,
                f.delivered,
                f.flushed,
                f.queued_at_end
            );
        }
        prop_assert_eq!(report.load_conservation_violations, 0);
        Ok(())
    });
}
