#!/usr/bin/env bash
# Offline CI for the poi360 workspace. Everything here must pass with an
# empty cargo registry — the repo has zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

# Section banner prefixed with wall-clock seconds elapsed since the
# script started, so a slow gate is visible at a glance in the log.
banner() {
    echo "== [+${SECONDS}s] $* =="
}

banner "hermetic manifest check"
# No [dependencies]/[dev-dependencies] entry may name anything but
# poi360-* path crates (workspace-dep references included).
if grep -rn --include=Cargo.toml -E '^[a-zA-Z0-9_-]+ *= *[{"]' . \
    | grep -vE '^\./target/' \
    | sed -n '/\[.*dependencies\]/,$p' >/dev/null; then
    bad=$(awk '
        /^\[(dev-|build-)?dependencies/ { indeps = 1; next }
        /^\[/ { indeps = 0 }
        indeps && /^[a-zA-Z0-9_-]+ *=/ && !/^poi360-/ { print FILENAME ": " $0 }
    ' Cargo.toml crates/*/Cargo.toml)
    if [ -n "$bad" ]; then
        echo "non-hermetic dependency entries found:" >&2
        echo "$bad" >&2
        exit 1
    fi
fi
echo "ok: only poi360-* path dependencies"

banner "cargo fmt --check"
cargo fmt --check

banner "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

banner "build (release)"
cargo build --release

banner "examples compile"
cargo build --examples

banner "tests"
cargo test -q --workspace

banner "smoke bench (JSON output)"
cargo run --release -p poi360-bench --bin reproduce -- --smoke

banner "coexist smoke (shared-cell ensembles)"
cargo run --release -p poi360-bench --bin reproduce -- coexist --seconds 6 --repeats 1 --seed 77 >/dev/null

banner "trace smoke (probe JSONL export)"
cargo run --release -p poi360-bench --bin reproduce -- trace --smoke >/dev/null
test -s bench_results/trace_smoke.jsonl

banner "fault-injection smoke (recovery invariants, FBCC vs GCC)"
cargo run --release -p poi360-bench --bin reproduce -- faults --smoke >/dev/null
test -s bench_results/faults_smoke.jsonl

banner "fault + handover regression suite, 3-seed matrix"
# tests/faults.rs also carries the handover packet-conservation
# invariants, so this matrix covers both planes per seed.
for seed in 1 2 3; do
    POI360_FAULT_SEED=$seed cargo test -q --release --test faults
done

banner "hex-grid mobility smoke (handover invariants + thread invariance + 3-seed matrix)"
cargo run --release -p poi360-bench --bin reproduce -- mobility --smoke >/dev/null
test -s bench_results/mobility_smoke.jsonl

banner "perf gate (per-layer medians vs pinned baseline + zero-alloc steady state)"
cargo run --release -p poi360-bench --bin reproduce -- perf --smoke --compare bench_results/perf_baseline.json

banner "study smoke (cc_matrix: 2 controllers x 3 scenarios x 3 seeds + report)"
cargo run --release -p poi360-bench --bin reproduce -- study cc_matrix --smoke >/dev/null
test -s bench_results/study_cc_matrix_smoke.jsonl
test -s bench_results/study_cc_matrix_smoke_trace.json

banner "study byte-identity across worker-pool widths"
# The width must come from the environment, not --threads: the RunMeta
# stamp records argv, so differing flags would (correctly) differ in the
# artifact bytes.
mkdir -p target/ci
POI360_THREADS=1 POI360_BENCH_DIR=target/ci/study_w1 \
    cargo run --release -p poi360-bench --bin reproduce -- study cc_matrix --smoke >/dev/null
POI360_THREADS=4 POI360_BENCH_DIR=target/ci/study_w4 \
    cargo run --release -p poi360-bench --bin reproduce -- study cc_matrix --smoke >/dev/null
cmp target/ci/study_w1/study_cc_matrix_smoke.jsonl target/ci/study_w4/study_cc_matrix_smoke.jsonl
cmp target/ci/study_w1/study_cc_matrix_smoke.txt target/ci/study_w4/study_cc_matrix_smoke.txt
echo "ok: study artifact byte-identical at widths 1 and 4"

banner "arena smoke (3 controllers x 3 tilings: quality scores + fault verdicts)"
# Exits nonzero if any cell violates a fault-suite recovery invariant.
cargo run --release -p poi360-bench --bin reproduce -- arena --smoke >/dev/null
test -s bench_results/arena_smoke.jsonl
test -s bench_results/arena_smoke.txt

banner "arena byte-identity across worker-pool widths"
# Same env-not-flags rule as the study gate: the RunMeta stamp records
# argv, so the width must come from POI360_THREADS.
POI360_THREADS=1 POI360_BENCH_DIR=target/ci/arena_w1 \
    cargo run --release -p poi360-bench --bin reproduce -- arena --smoke >/dev/null
POI360_THREADS=4 POI360_BENCH_DIR=target/ci/arena_w4 \
    cargo run --release -p poi360-bench --bin reproduce -- arena --smoke >/dev/null
cmp target/ci/arena_w1/arena_smoke.jsonl target/ci/arena_w4/arena_smoke.jsonl
cmp target/ci/arena_w1/arena_smoke.txt target/ci/arena_w4/arena_smoke.txt
echo "ok: arena artifact byte-identical at widths 1 and 4"

banner "mobility byte-identity across shard widths"
# Same env-not-flags rule as the study gate. POI360_THREADS drives both
# the worker pool *and* the grid's epoch-lockstep shard width (they share
# one resolution in bench::runner), so this is the end-to-end proof that
# sharded cell stepping cannot reach the artifact bytes.
POI360_THREADS=1 POI360_BENCH_DIR=target/ci/mobility_w1 \
    cargo run --release -p poi360-bench --bin reproduce -- mobility --smoke >/dev/null
POI360_THREADS=4 POI360_BENCH_DIR=target/ci/mobility_w4 \
    cargo run --release -p poi360-bench --bin reproduce -- mobility --smoke >/dev/null
cmp target/ci/mobility_w1/mobility_smoke.jsonl target/ci/mobility_w4/mobility_smoke.jsonl
cmp target/ci/mobility_w1/mobility_smoke.txt target/ci/mobility_w4/mobility_smoke.txt
echo "ok: mobility artifact byte-identical at shard widths 1 and 4"

banner "ingest sweep: every generated JSONL artifact re-parses"
cargo test -q --release -p poi360-analyse --test roundtrip

banner "cell-scale micro-benchmark"
cargo bench -p poi360-bench --bench cell_scale

echo "CI green in ${SECONDS}s."
