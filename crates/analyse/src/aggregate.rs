//! Pooling and reduction: many traces → per-probe distributions and
//! per-source rollups.
//!
//! Aggregation semantics (pinned in DESIGN.md §12):
//!
//! * **Gauges and events** pool every finite sample value — a probe
//!   that fires 6 000 times across 3 seeds contributes 18 000 samples
//!   to its distribution.
//! * **Counters** are increments, not levels; pooling raw increments
//!   would only measure the emission granularity. Each *(segment,
//!   source)* within each trace therefore contributes its total as one
//!   sample — a
//!   3-seed single-session group reduces to a 3-sample distribution of
//!   run totals, and a concatenated suite artifact (one trace, one
//!   source tag per case segment) pools to exactly the same samples as
//!   the per-case traces it was concatenated from. That equivalence is
//!   what makes `--baseline` comparisons apples-to-apples.
//! * NaN samples (JSON `null`s) are dropped before reduction; the
//!   percentile kernel rejects them.
//!
//! Everything here is order-deterministic: probes keep first-appearance
//! order at pool level and reports sort by name, so identical inputs
//! reduce to identical tables.

use crate::ingest::RunTrace;
use poi360_metrics::dist::percentile;
use poi360_sim::trace::ProbeKind;

/// Reduced distribution of one probe across a pool of traces.
#[derive(Clone, Debug)]
pub struct ProbeStats {
    /// Probe name (`layer.signal`).
    pub name: String,
    /// Kind as first seen; a name never legitimately changes kind.
    pub kind: ProbeKind,
    /// Samples pooled (per-trace totals for counters).
    pub samples: u64,
    /// 50th percentile.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Sample pool across any number of traces (typically the seeds of one
/// `scenario × controller` study group).
#[derive(Clone, Debug, Default)]
pub struct Pool {
    probes: Vec<(String, ProbeKind, Vec<f64>)>,
    traces: u64,
}

impl Pool {
    /// An empty pool.
    pub fn new() -> Pool {
        Pool::default()
    }

    fn bucket(&mut self, name: &str, kind: ProbeKind) -> &mut Vec<f64> {
        let idx = match self.probes.iter().position(|(n, _, _)| n == name) {
            Some(idx) => idx,
            None => {
                self.probes.push((name.to_string(), kind, Vec::new()));
                self.probes.len() - 1
            }
        };
        &mut self.probes[idx].2
    }

    /// Fold one trace into the pool.
    pub fn add(&mut self, trace: &RunTrace) {
        self.traces += 1;
        // Counter totals accumulate per (segment, source, name) within
        // this trace, then land as one sample each.
        let mut counter_totals: Vec<((u32, u32, u32), f64)> = Vec::new();
        for rec in &trace.records {
            if !rec.value.is_finite() {
                continue;
            }
            match rec.kind {
                ProbeKind::Counter => {
                    let key = (rec.seg, rec.src, rec.name);
                    match counter_totals.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, total)) => *total += rec.value,
                        None => counter_totals.push((key, rec.value)),
                    }
                }
                ProbeKind::Gauge | ProbeKind::Event => {
                    self.bucket(trace.probes.name(rec.name), rec.kind).push(rec.value);
                }
            }
        }
        for ((_, _, id), total) in counter_totals {
            self.bucket(trace.probes.name(id), ProbeKind::Counter).push(total);
        }
    }

    /// Traces folded in so far.
    pub fn traces(&self) -> u64 {
        self.traces
    }

    /// Reduce to per-probe stats, sorted by probe name.
    pub fn stats(&self) -> Vec<ProbeStats> {
        let mut out: Vec<ProbeStats> = self
            .probes
            .iter()
            .filter(|(_, _, samples)| !samples.is_empty())
            .map(|(name, kind, samples)| ProbeStats {
                name: name.clone(),
                kind: *kind,
                samples: samples.len() as u64,
                median: percentile(samples, 0.50).unwrap(),
                p95: percentile(samples, 0.95).unwrap(),
                p99: percentile(samples, 0.99).unwrap(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

/// Per-source rollup: how much each cell / flow / session emitted.
#[derive(Clone, Debug)]
pub struct SrcStats {
    /// Source tag as stamped by the recorder (`session`, `fg.00`, ...).
    pub src: String,
    /// Probe records from this source.
    pub records: u64,
    /// Distinct probe names this source emitted.
    pub probes: u64,
    /// First emission time, µs.
    pub first_t_us: u64,
    /// Last emission time, µs.
    pub last_t_us: u64,
}

/// Roll up any number of traces by source tag, pooling same-named
/// sources (across seeds the tags coincide by construction). Output is
/// sorted by tag so reports are stable however the pool was filled.
pub fn src_rollup<'a>(traces: impl IntoIterator<Item = &'a RunTrace>) -> Vec<SrcStats> {
    // (tag, records, probe names seen, first, last)
    let mut acc: Vec<(String, u64, Vec<String>, u64, u64)> = Vec::new();
    for trace in traces {
        for rec in &trace.records {
            let tag = trace.srcs.name(rec.src);
            let slot = match acc.iter().position(|(t, ..)| t == tag) {
                Some(idx) => &mut acc[idx],
                None => {
                    acc.push((tag.to_string(), 0, Vec::new(), u64::MAX, 0));
                    acc.last_mut().unwrap()
                }
            };
            slot.1 += 1;
            let probe = trace.probes.name(rec.name);
            if !slot.2.iter().any(|p| p == probe) {
                slot.2.push(probe.to_string());
            }
            slot.3 = slot.3.min(rec.t_us);
            slot.4 = slot.4.max(rec.t_us);
        }
    }
    acc.sort_by(|a, b| a.0.cmp(&b.0));
    acc.into_iter()
        .map(|(src, records, probes, first, last)| SrcStats {
            src,
            records,
            probes: probes.len() as u64,
            first_t_us: first,
            last_t_us: last,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(lines: &[&str]) -> RunTrace {
        RunTrace::parse_str(&lines.join("\n")).expect("test trace parses")
    }

    fn rec(t: u64, src: &str, name: &str, kind: &str, value: f64) -> String {
        format!(r#"{{"t_us":{t},"src":"{src}","name":"{name}","kind":"{kind}","value":{value}}}"#)
    }

    #[test]
    fn gauges_pool_samples_and_counters_pool_per_trace_totals() {
        let a = trace(&[
            &rec(1, "s", "pacer.rate_bps", "gauge", 1.0),
            &rec(2, "s", "pacer.rate_bps", "gauge", 3.0),
            &rec(2, "s", "video.frame_encoded", "counter", 1.0),
            &rec(3, "s", "video.frame_encoded", "counter", 1.0),
        ]);
        let b = trace(&[
            &rec(1, "s", "pacer.rate_bps", "gauge", 5.0),
            &rec(2, "s", "video.frame_encoded", "counter", 1.0),
        ]);
        let mut pool = Pool::new();
        pool.add(&a);
        pool.add(&b);
        assert_eq!(pool.traces(), 2);
        let stats = pool.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "pacer.rate_bps", "stats sorted by name");
        assert_eq!(stats[0].samples, 3, "every gauge sample pooled");
        assert_eq!(stats[0].median, 3.0);
        let frames = &stats[1];
        assert_eq!(frames.name, "video.frame_encoded");
        assert_eq!(frames.samples, 2, "one total per trace, not one per increment");
        assert_eq!(frames.median, 1.5, "totals are 2 and 1");
        assert_eq!(frames.kind, ProbeKind::Counter);
    }

    #[test]
    fn percentiles_come_from_the_pooled_distribution() {
        let lines: Vec<String> =
            (0..100).map(|i| rec(i + 1, "s", "x.y", "event", i as f64)).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let mut pool = Pool::new();
        pool.add(&trace(&refs));
        let s = &pool.stats()[0];
        assert_eq!(s.samples, 100);
        assert!((s.median - 49.5).abs() < 1e-9);
        assert!((s.p95 - 94.05).abs() < 1e-9);
        assert!((s.p99 - 98.01).abs() < 1e-9);
    }

    #[test]
    fn nan_samples_are_dropped_before_reduction() {
        let t = trace(&[
            &rec(1, "s", "x.y", "gauge", 2.0),
            r#"{"t_us":2,"src":"s","name":"x.y","kind":"gauge","value":null}"#,
        ]);
        let mut pool = Pool::new();
        pool.add(&t);
        let s = &pool.stats()[0];
        assert_eq!(s.samples, 1);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn concatenated_suite_pools_like_its_per_case_traces() {
        let a_lines = [
            rec(1, "rlf.FBCC.s1", "video.frame_encoded", "counter", 1.0),
            rec(2, "rlf.FBCC.s1", "video.frame_encoded", "counter", 1.0),
            rec(2, "rlf.FBCC.s1", "pacer.rate_bps", "gauge", 4.0),
        ];
        let b_lines = [
            rec(1, "rlf.FBCC.s2", "video.frame_encoded", "counter", 1.0),
            rec(2, "rlf.FBCC.s2", "pacer.rate_bps", "gauge", 8.0),
        ];
        let mut per_case = Pool::new();
        per_case.add(&trace(&a_lines.iter().map(String::as_str).collect::<Vec<_>>()));
        per_case.add(&trace(&b_lines.iter().map(String::as_str).collect::<Vec<_>>()));
        let all: Vec<&str> = a_lines.iter().chain(&b_lines).map(String::as_str).collect();
        let mut concatenated = Pool::new();
        concatenated.add(&trace(&all));
        let (p, c) = (per_case.stats(), concatenated.stats());
        assert_eq!(p.len(), c.len());
        for (x, y) in p.iter().zip(&c) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.samples, y.samples, "counter totals split per source tag: {}", x.name);
            assert_eq!(x.median, y.median);
            assert_eq!(x.p99, y.p99);
        }
    }

    #[test]
    fn src_rollup_pools_by_tag_and_sorts() {
        let a = trace(&[
            &rec(5, "fg.01", "x.y", "event", 1.0),
            &rec(1, "cell", "cell.prb_grant", "event", 1.0),
            &rec(2, "cell", "cell.load", "gauge", 0.5),
        ]);
        let b = trace(&[&rec(9, "cell", "cell.prb_grant", "event", 2.0)]);
        let roll = src_rollup([&a, &b]);
        assert_eq!(roll.len(), 2);
        assert_eq!(roll[0].src, "cell");
        assert_eq!(roll[0].records, 3, "same tag pools across traces");
        assert_eq!(roll[0].probes, 2);
        assert_eq!((roll[0].first_t_us, roll[0].last_t_us), (1, 9));
        assert_eq!(roll[1].src, "fg.01");
        assert_eq!(roll[1].records, 1);
    }
}
