//! Offline analytics and the declarative study harness over the probe
//! JSONL that the instrumentation plane (`poi360_sim::trace`) streams.
//!
//! The trace plane answers "what happened inside one run"; this crate
//! answers "how do runs compare". It has four layers:
//!
//! * [`ingest`] — parse probe/fault/perf/mobility JSONL artifacts (and
//!   their leading [`poi360_sim::trace::RunMeta`] stamps) into typed
//!   [`ingest::RunTrace`]s with stable probe-name indexing, using the
//!   in-repo JSON codec only.
//! * [`aggregate`] — pool samples across runs and reduce them to
//!   per-probe median/p95/p99 plus per-source rollups.
//! * [`report`] / [`chrome`] — render cross-run tables (shared
//!   [`poi360_metrics::table::Table`] renderer), A-vs-B delta reports
//!   with configurable drift thresholds, and Chrome `trace_event` JSON
//!   for flame-style inspection of subframe timing.
//! * [`study`] — the declarative layer: a [`study::StudyConfig`]
//!   (scenarios × rate controllers × seeds, parsed from `key=value`
//!   text) expands to a deterministic case list. Execution lives in
//!   `poi360-bench` (`bench::study`), which fans the cases out over its
//!   scoped-thread pool and feeds the traces back into this crate;
//!   keeping this crate free of session-driving code is what lets
//!   `poi360-bench` depend on it without a cycle.
//!
//! Determinism contract: every function here is a pure fold over its
//! inputs — no clocks, no randomness, no filesystem side effects (file
//! IO is explicit and read-only). Identical input bytes produce
//! identical report bytes, which is what lets `ci.sh` compare study
//! output across worker-pool widths with `cmp`.

pub mod aggregate;
pub mod chrome;
pub mod ingest;
pub mod league;
pub mod report;
pub mod study;
