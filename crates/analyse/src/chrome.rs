//! Chrome `trace_event` export: one probe trace → a JSON document that
//! `chrome://tracing` / Perfetto load directly, for flame-style
//! inspection of subframe timing.
//!
//! Mapping (the format reference is the trace_event spec's stable
//! subset — `ph`, `ts` in µs, one `pid` per trace, one `tid` per
//! probe source):
//!
//! * events whose name ends in `_ns` are duration measurements (the
//!   perf plane's `perf.tick_ns` subframe timings) → complete events
//!   (`"ph":"X"`) at `ts = t_us` with `dur = value / 1000` µs;
//! * gauges and counters → counter events (`"ph":"C"`) so they render
//!   as stacked time series;
//! * every other event → an instant (`"ph":"i"`, thread scope).
//!
//! Sources are named via `"M"` thread-name metadata records, emitted
//! first in source-id order. Everything is in stream order after that,
//! so the export is byte-deterministic.

use crate::ingest::RunTrace;
use poi360_sim::json::JsonObject;
use poi360_sim::trace::ProbeKind;

fn push_event(out: &mut String, first: &mut bool, obj: String) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('\n');
    out.push_str(&obj);
}

/// Render the trace_event JSON document (`{"traceEvents":[...]}`).
pub fn chrome_trace(trace: &RunTrace) -> String {
    let mut out = String::with_capacity(64 + trace.records.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (id, src) in trace.srcs.names().enumerate() {
        let obj = JsonObject::new()
            .field("ph", &"M")
            .field("name", &"thread_name")
            .field("pid", &1u64)
            .field("tid", &(id as u64 + 1))
            .field("args", &ThreadName(src))
            .finish();
        push_event(&mut out, &mut first, obj);
    }
    for rec in &trace.records {
        let name = trace.probes.name(rec.name);
        let tid = rec.src as u64 + 1;
        let base = JsonObject::new()
            .field("name", &name)
            .field("cat", &"probe")
            .field("pid", &1u64)
            .field("tid", &tid)
            .field("ts", &(rec.t_us as f64));
        let obj = match rec.kind {
            ProbeKind::Event if name.ends_with("_ns") => base
                .field("ph", &"X")
                .field("dur", &(rec.value / 1_000.0))
                .field("args", &ValueArg(rec.value))
                .finish(),
            ProbeKind::Gauge | ProbeKind::Counter => {
                base.field("ph", &"C").field("args", &ValueArg(rec.value)).finish()
            }
            ProbeKind::Event => {
                base.field("ph", &"i").field("s", &"t").field("args", &ValueArg(rec.value)).finish()
            }
        };
        push_event(&mut out, &mut first, obj);
    }
    out.push_str("\n]}\n");
    out
}

struct ThreadName<'a>(&'a str);

impl poi360_sim::json::ToJson for ThreadName<'_> {
    fn write_json(&self, out: &mut String) {
        JsonObject::new().field("name", &self.0).write(out);
    }
}

struct ValueArg(f64);

impl poi360_sim::json::ToJson for ValueArg {
    fn write_json(&self, out: &mut String) {
        JsonObject::new().field("value", &self.0).write(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_sim::json::parse_json;

    #[test]
    fn export_is_valid_json_with_the_right_phases() {
        let jsonl = concat!(
            r#"{"t_us":1000,"src":"perf.window","name":"perf.tick_ns","kind":"event","value":57000}"#,
            "\n",
            r#"{"t_us":1000,"src":"perf.window","name":"cell.load","kind":"gauge","value":0.7}"#,
            "\n",
            r#"{"t_us":2000,"src":"session","name":"video.mode_switch","kind":"event","value":3}"#,
            "\n",
        );
        let trace = RunTrace::parse_str(jsonl).unwrap();
        let doc = chrome_trace(&trace);
        let v = parse_json(&doc).expect("chrome export is valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
        // 2 thread-name metadata records + 3 probe records.
        assert_eq!(events.len(), 5);
        let phase = |i: usize| events[i].get("ph").unwrap().as_str().unwrap();
        assert_eq!(phase(0), "M");
        assert_eq!(phase(1), "M");
        assert_eq!(phase(2), "X", "_ns event becomes a complete event");
        assert_eq!(events[2].get("dur").unwrap().as_f64(), Some(57.0), "ns -> µs");
        assert_eq!(events[2].get("ts").unwrap().as_f64(), Some(1000.0));
        assert_eq!(phase(3), "C", "gauge becomes a counter track");
        assert_eq!(phase(4), "i", "plain event becomes an instant");
        let tid = |i: usize| events[i].get("tid").unwrap().as_f64().unwrap();
        assert_eq!(tid(2), 1.0);
        assert_eq!(tid(4), 2.0, "second source gets the next tid");
    }

    #[test]
    fn export_is_deterministic() {
        let jsonl =
            r#"{"t_us":1,"src":"s","name":"a.b_ns","kind":"event","value":100}"#.to_string();
        let t1 = RunTrace::parse_str(&jsonl).unwrap();
        let t2 = RunTrace::parse_str(&jsonl).unwrap();
        assert_eq!(chrome_trace(&t1), chrome_trace(&t2));
    }
}
