//! League-table rendering for the controller × tiling arena.
//!
//! `bench::arena` runs the tournament and reduces every cell to one
//! [`LeagueRow`]; this module owns the presentation so the report stays a
//! pure fold over plain data (the crate's determinism contract). Layout
//! rules the golden test leans on:
//!
//! * the league table lists cells in *fixed input order* (the arena's
//!   controller-major expansion), never sorted by a measured quantity —
//!   a metric drifting within the golden tolerance can therefore never
//!   reorder rows;
//! * the standings section ranks by fault verdicts only — integers, so
//!   the order is drift-stable — with input order breaking ties;
//! * the champion line carries no numerals at all.

use poi360_metrics::table::{fnum, mbps, pct, Table};

/// One arena cell (a controller × tiling-policy pairing), fully scored.
#[derive(Clone, Debug, PartialEq)]
pub struct LeagueRow {
    /// Controller label ("FBCC", "GCC", "OCC").
    pub controller: String,
    /// Tiling-policy name ("roi", "pano", "ghosh").
    pub policy: String,
    /// Mean ROI PSNR across the cell's flows, dB.
    pub roi_psnr_db: f64,
    /// Fraction of MOS samples at Good or Excellent, pooled over flows.
    pub mos_good: f64,
    /// Mean playback freeze ratio across flows.
    pub freeze: f64,
    /// Jain fairness index over the flows' throughputs.
    pub jain: f64,
    /// Mean per-flow throughput, bps.
    pub throughput_bps: f64,
    /// Fault-suite invariants that held.
    pub fault_passes: usize,
    /// Fault-suite invariants judged.
    pub fault_total: usize,
    /// Violated invariants as `"scenario: name"` lines, input order.
    pub fault_failures: Vec<String>,
}

impl LeagueRow {
    /// Total violated invariants.
    pub fn failures(&self) -> usize {
        self.fault_total - self.fault_passes
    }
}

/// Render the full league report: scores, standings, champion line, and
/// a failure listing when any verdict failed.
pub fn league_report(title: &str, rows: &[LeagueRow]) -> String {
    let mut out = String::new();
    let mut table = Table::new(
        title,
        &[
            "controller",
            "tiling",
            "roi_psnr_db",
            "mos_good",
            "freeze",
            "jain",
            "tput_mbps",
            "faults",
        ],
    );
    for r in rows {
        table.row(vec![
            r.controller.clone(),
            r.policy.clone(),
            fnum(r.roi_psnr_db, 2),
            pct(r.mos_good),
            pct(r.freeze),
            fnum(r.jain, 4),
            mbps(r.throughput_bps),
            format!("{}/{}", r.fault_passes, r.fault_total),
        ]);
    }
    out.push_str(&table.render());

    // Standings: fault passes only (integers — drift-stable), ties kept
    // in input order via a stable sort.
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| rows[b].fault_passes.cmp(&rows[a].fault_passes));
    out.push_str("\nStandings (fault invariants held; ties in input order):\n");
    for (place, &k) in order.iter().enumerate() {
        let r = &rows[k];
        out.push_str(&format!(
            "  {}. {} + {} ({}/{})\n",
            place + 1,
            r.controller,
            r.policy,
            r.fault_passes,
            r.fault_total
        ));
    }
    if let Some(&champ) = order.first() {
        let r = &rows[champ];
        out.push_str(&format!(
            "champion: {} with {} tiling — most fault invariants held\n",
            r.controller, r.policy
        ));
    }

    let broken: Vec<&LeagueRow> = rows.iter().filter(|r| r.failures() > 0).collect();
    if broken.is_empty() {
        out.push_str("arena gate: every fault invariant held\n");
    } else {
        out.push_str("\nViolated invariants:\n");
        for r in &broken {
            for f in &r.fault_failures {
                out.push_str(&format!("  {} + {}: {}\n", r.controller, r.policy, f));
            }
        }
        let total: usize = broken.iter().map(|r| r.failures()).sum();
        out.push_str(&format!("arena gate: {total} violated invariant(s)\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(controller: &str, policy: &str, passes: usize) -> LeagueRow {
        LeagueRow {
            controller: controller.into(),
            policy: policy.into(),
            roi_psnr_db: 34.5,
            mos_good: 0.8,
            freeze: 0.01,
            jain: 0.99,
            throughput_bps: 2.0e6,
            fault_passes: passes,
            fault_total: 12,
            fault_failures: (passes..12).map(|k| format!("rlf: invariant-{k}")).collect(),
        }
    }

    #[test]
    fn league_rows_stay_in_input_order() {
        let rows = [row("GCC", "roi", 12), row("FBCC", "pano", 12)];
        let text = league_report("arena", &rows);
        let gcc = text.find("GCC").unwrap();
        let fbcc = text.find("FBCC").unwrap();
        assert!(gcc < fbcc, "league table must keep input order:\n{text}");
    }

    #[test]
    fn standings_rank_by_fault_passes_with_stable_ties() {
        let rows = [row("FBCC", "roi", 10), row("GCC", "roi", 12), row("OCC", "roi", 12)];
        let text = league_report("arena", &rows);
        let standings = text.split("Standings").nth(1).unwrap();
        let gcc = standings.find("GCC").unwrap();
        let occ = standings.find("OCC").unwrap();
        let fbcc = standings.find("FBCC").unwrap();
        assert!(gcc < occ && occ < fbcc, "{text}");
        assert!(text.contains("champion: GCC with roi"), "{text}");
    }

    #[test]
    fn champion_line_has_no_numerals() {
        let rows = [row("OCC", "ghosh", 12)];
        let text = league_report("arena", &rows);
        let line = text.lines().find(|l| l.starts_with("champion:")).unwrap();
        assert!(!line.chars().any(|c| c.is_ascii_digit()), "{line}");
    }

    #[test]
    fn clean_arena_reports_a_clean_gate() {
        let text = league_report("arena", &[row("FBCC", "roi", 12)]);
        assert!(text.contains("arena gate: every fault invariant held"), "{text}");
        assert!(!text.contains("Violated"), "{text}");
    }

    #[test]
    fn failures_are_listed_and_counted() {
        let text = league_report("arena", &[row("GCC", "pano", 11)]);
        assert!(text.contains("Violated invariants:"), "{text}");
        assert!(text.contains("GCC + pano: rlf: invariant-11"), "{text}");
        assert!(text.contains("arena gate: 1 violated invariant(s)"), "{text}");
    }
}
