//! JSONL ingest: probe trace artifacts → typed, indexed run records.
//!
//! A trace file is a sequence of JSON objects, one per line: zero or
//! more [`RunMeta`] stamps (one per producing run — suite artifacts
//! concatenate several runs) interleaved before each run's probe
//! records `{t_us, src, name, kind, value}`. Parsing interns the `src`
//! and `name` strings into dense ids in first-appearance order — the
//! stream itself is deterministic, so the ids are too — and keeps the
//! records in stream order so downstream consumers can rely on both.

use poi360_sim::json::{parse_json, JsonValue};
use poi360_sim::trace::{ProbeKind, RunMeta, TRACE_SCHEMA_VERSION};

/// Dense string interner: ids are assigned in first-appearance order,
/// which is stable because the probe stream itself is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    names: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Id for `name`, allocating the next id on first sight. The name
    /// population is small (tens of probes, at most hundreds of
    /// sources), so a linear scan beats hashing here.
    pub fn intern(&mut self, name: &str) -> u32 {
        match self.names.iter().position(|n| n == name) {
            Some(idx) => idx as u32,
            None => {
                self.names.push(name.to_string());
                (self.names.len() - 1) as u32
            }
        }
    }

    /// Id for `name` if it has been seen.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.names.iter().position(|n| n == name).map(|i| i as u32)
    }

    /// The name behind an id (panics on a foreign id).
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names in id order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

/// One probe record with its strings swapped for interned ids.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rec {
    /// Simulation time, microseconds.
    pub t_us: u64,
    /// Run segment this record belongs to: 0 before any metadata stamp,
    /// incremented at each stamp. Concatenated suite artifacts reuse
    /// source tags (`fg.00`) across cases; the segment id is what keeps
    /// their counter totals apart.
    pub seg: u32,
    /// Interned source tag (see [`RunTrace::srcs`]).
    pub src: u32,
    /// Interned probe name (see [`RunTrace::probes`]).
    pub name: u32,
    /// Counter, gauge, or event.
    pub kind: ProbeKind,
    /// Sample value; `null` in the JSONL (a non-finite float at write
    /// time) comes back as NaN.
    pub value: f64,
}

/// A parsed trace artifact: metadata stamps, interned name tables, and
/// every probe record in stream order.
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    /// Provenance stamps, in stream order — one per run segment for
    /// concatenated suite artifacts, possibly empty for pre-stamp files.
    pub metas: Vec<RunMeta>,
    /// Probe-name table (`cell.prb_grant`, ...).
    pub probes: Interner,
    /// Source-tag table (`session`, `rlf.FBCC`, `fg.00`, ...).
    pub srcs: Interner,
    /// Probe records in stream order.
    pub records: Vec<Rec>,
}

fn parse_kind(s: &str) -> Option<ProbeKind> {
    match s {
        "counter" => Some(ProbeKind::Counter),
        "gauge" => Some(ProbeKind::Gauge),
        "event" => Some(ProbeKind::Event),
        _ => None,
    }
}

fn field_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(JsonValue::Null) => Ok(f64::NAN),
        Some(x) => x.as_f64().ok_or_else(|| format!("non-numeric `{key}`")),
        None => Err(format!("record without `{key}`")),
    }
}

fn field_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key).and_then(|x| x.as_str()).ok_or_else(|| format!("record without a `{key}` string"))
}

impl RunTrace {
    /// Parse a whole JSONL document. Errors carry 1-based line numbers.
    pub fn parse_str(text: &str) -> Result<RunTrace, String> {
        let mut out = RunTrace::default();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            out.push_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        }
        Ok(out)
    }

    /// Parse from raw bytes (suite harnesses hand traces around as
    /// `Vec<u8>` for byte-identity checks).
    pub fn parse_bytes(bytes: &[u8]) -> Result<RunTrace, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("not UTF-8: {e}"))?;
        RunTrace::parse_str(text)
    }

    /// Parse a trace file from disk; errors are prefixed with the path.
    pub fn parse_file(path: &std::path::Path) -> Result<RunTrace, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        RunTrace::parse_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    fn push_line(&mut self, line: &str) -> Result<(), String> {
        let v = parse_json(line)?;
        if let Some(meta) = RunMeta::from_json(&v) {
            self.metas.push(meta?);
            return Ok(());
        }
        let seg = self.metas.len() as u32;
        let t = field_f64(&v, "t_us")?;
        if !t.is_finite() || t < 0.0 {
            return Err(format!("non-finite or negative `t_us` {t}"));
        }
        let src = self.srcs.intern(field_str(&v, "src")?);
        let name = self.probes.intern(field_str(&v, "name")?);
        let kind_str = field_str(&v, "kind")?;
        let kind =
            parse_kind(kind_str).ok_or_else(|| format!("unknown probe kind {kind_str:?}"))?;
        let value = field_f64(&v, "value")?;
        self.records.push(Rec { t_us: t as u64, seg, src, name, kind, value });
        Ok(())
    }

    /// Number of probe records (metadata stamps excluded).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace carries no probe records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one probe, in stream order.
    pub fn records_of<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a Rec> + 'a {
        let id = self.probes.lookup(name);
        self.records.iter().filter(move |r| Some(r.name) == id)
    }

    /// Finite sample values of one probe, in stream order.
    pub fn values_of(&self, name: &str) -> Vec<f64> {
        self.records_of(name).map(|r| r.value).filter(|v| v.is_finite()).collect()
    }

    /// Provenance sanity warnings: missing stamps, schema drift against
    /// this build, disagreeing commits across the segments of one
    /// artifact. Warnings, not errors — old artifacts stay readable.
    pub fn meta_warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.metas.is_empty() && !self.records.is_empty() {
            out.push("trace carries no metadata stamp (written before the stamp existed?)".into());
        }
        let mut schemas: Vec<u64> = self.metas.iter().map(|m| m.schema).collect();
        schemas.sort_unstable();
        schemas.dedup();
        for schema in schemas {
            if schema != TRACE_SCHEMA_VERSION {
                out.push(format!("trace schema v{schema} != this build's v{TRACE_SCHEMA_VERSION}"));
            }
        }
        let mut commits: Vec<&str> = self.metas.iter().map(|m| m.commit.as_str()).collect();
        commits.sort_unstable();
        commits.dedup();
        if commits.len() > 1 {
            out.push(format!(
                "trace segments come from {} different commits ({})",
                commits.len(),
                commits.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"meta":"poi360.trace","schema":1,"commit":"abc","argv":["reproduce"],"seed":7}"#,
        "\n",
        r#"{"t_us":1000,"src":"session","name":"pacer.rate_bps","kind":"gauge","value":2500000}"#,
        "\n",
        r#"{"t_us":2000,"src":"cell","name":"cell.prb_grant","kind":"event","value":40}"#,
        "\n",
        r#"{"t_us":2000,"src":"session","name":"video.frame_encoded","kind":"counter","value":1}"#,
        "\n",
        r#"{"t_us":3000,"src":"session","name":"pacer.rate_bps","kind":"gauge","value":null}"#,
        "\n",
    );

    #[test]
    fn parses_records_metas_and_interns_in_first_seen_order() {
        let tr = RunTrace::parse_str(SAMPLE).expect("sample parses");
        assert_eq!(tr.metas.len(), 1);
        assert_eq!(tr.metas[0].seed, 7);
        assert_eq!(tr.len(), 4);
        let srcs: Vec<&str> = tr.srcs.names().collect();
        assert_eq!(srcs, ["session", "cell"], "ids in first-appearance order");
        let probes: Vec<&str> = tr.probes.names().collect();
        assert_eq!(probes, ["pacer.rate_bps", "cell.prb_grant", "video.frame_encoded"]);
        assert_eq!(tr.records[0].kind, ProbeKind::Gauge);
        assert_eq!(tr.records[1].kind, ProbeKind::Event);
        assert_eq!(tr.records[2].kind, ProbeKind::Counter);
        assert!(tr.records[3].value.is_nan(), "JSON null comes back as NaN");
        assert_eq!(tr.values_of("pacer.rate_bps"), vec![2.5e6], "NaN filtered from values");
        assert_eq!(tr.records_of("cell.prb_grant").count(), 1);
        assert!(tr.records_of("never.fired").next().is_none());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = format!("{SAMPLE}{}", r#"{"t_us":4000,"src":"s","name":"x.y"}"#);
        let err = RunTrace::parse_str(&bad).unwrap_err();
        assert!(err.starts_with("line 6:"), "{err}");
        assert!(err.contains("kind"), "{err}");
        let bad_kind = r#"{"t_us":1,"src":"s","name":"x.y","kind":"histogram","value":1}"#;
        let err = RunTrace::parse_str(bad_kind).unwrap_err();
        assert!(err.contains("unknown probe kind"), "{err}");
        let err = RunTrace::parse_str("not json").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn meta_warnings_flag_missing_stamp_schema_and_commit_drift() {
        let unstamped = SAMPLE.lines().skip(1).collect::<Vec<_>>().join("\n");
        let tr = RunTrace::parse_str(&unstamped).unwrap();
        assert_eq!(tr.meta_warnings().len(), 1);
        assert!(tr.meta_warnings()[0].contains("no metadata stamp"));

        let drifted = format!(
            "{}\n{}\n{SAMPLE}",
            r#"{"meta":"poi360.trace","schema":99,"commit":"abc","argv":[],"seed":1}"#,
            r#"{"meta":"poi360.trace","schema":1,"commit":"def","argv":[],"seed":2}"#,
        );
        let tr = RunTrace::parse_str(&drifted).unwrap();
        let warnings = tr.meta_warnings();
        assert!(warnings.iter().any(|w| w.contains("schema v99")), "{warnings:?}");
        assert!(warnings.iter().any(|w| w.contains("2 different commits")), "{warnings:?}");

        let clean = RunTrace::parse_str(SAMPLE).unwrap();
        assert!(clean.meta_warnings().is_empty());
    }

    #[test]
    fn empty_input_is_an_empty_trace() {
        let tr = RunTrace::parse_str("\n  \n").unwrap();
        assert!(tr.is_empty());
        assert!(tr.metas.is_empty());
        assert!(tr.meta_warnings().is_empty(), "an empty trace is not suspicious");
    }
}
