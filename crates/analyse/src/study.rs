//! The declarative study layer: one `key=value` config describes a
//! `scenarios × rate-controllers × seeds` matrix; [`StudyConfig::cases`]
//! expands it to a deterministic case list that `bench::study` fans out
//! over the worker pool.
//!
//! Config format (DESIGN.md §12): flat `key=value` text parsed by the
//! in-repo [`KvMap`], list values `+`-separated (commas and whitespace
//! are KV separators). Keys: `name`, `family` (`fault` | `mobility`),
//! `scenarios`, `controllers` (fault family only: `fbcc` / `gcc`),
//! `seeds` (count), `base_seed`, `seconds`, `threshold` (A-vs-B drift
//! fraction). Unknown keys are errors — a typo must not silently run
//! the default matrix.
//!
//! The two checked-in presets (`studies/*.study`) are embedded at
//! compile time and registered in the same [`PresetInfo`] vocabulary as
//! the fault/mobility presets, so `reproduce --list` enumerates them
//! and unknown-study errors share the registry wording.

use poi360_lte::scenario::{unknown_scenario_error, FaultScenario, MobilityScenario, PresetInfo};
use poi360_sim::json::{FromKv, KvMap};

/// Which experiment family a study drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StudyFamily {
    /// Single-cell fault scenarios (`FaultScenario` presets plus the
    /// synthetic `baseline` = quiet cell, empty fault plan).
    Fault,
    /// Hex-grid mobility scenarios (`MobilityScenario` presets).
    Mobility,
}

impl StudyFamily {
    /// Stable lowercase name used in configs and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            StudyFamily::Fault => "fault",
            StudyFamily::Mobility => "mobility",
        }
    }

    fn parse(s: &str) -> Result<StudyFamily, String> {
        match s {
            "fault" => Ok(StudyFamily::Fault),
            "mobility" => Ok(StudyFamily::Mobility),
            other => Err(format!("unknown study family {other:?} (expected fault or mobility)")),
        }
    }
}

/// The rate controllers a fault-family study may race. Label vocabulary
/// only — `bench::study` maps these onto `RateControlKind`.
pub const CONTROLLERS: [&str; 3] = ["fbcc", "gcc", "occ"];

/// The synthetic no-fault scenario every fault study may include: a
/// quiet cell with an empty fault plan (byte-identical to an untraced
/// clean run by the PR 4 composition rule).
pub const BASELINE_SCENARIO: &str = "baseline";

/// A declarative study: the full matrix, before expansion.
#[derive(Clone, Debug, PartialEq)]
pub struct StudyConfig {
    /// Study name (artifact file names, report header).
    pub name: String,
    /// Which experiment family the scenarios come from.
    pub family: StudyFamily,
    /// Scenario preset names (fault family also accepts `baseline`).
    pub scenarios: Vec<String>,
    /// Rate-controller labels (fault family; empty for mobility, where
    /// the grid driver owns rate control).
    pub controllers: Vec<String>,
    /// Seeds per `scenario × controller` group.
    pub seeds: u64,
    /// First seed; repetition `r` runs at `base_seed + r`.
    pub base_seed: u64,
    /// Run length per case, seconds.
    pub seconds: u64,
    /// A-vs-B drift threshold as a fraction (0.25 = flag deltas >25%).
    pub threshold: f64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            name: "study".into(),
            family: StudyFamily::Fault,
            scenarios: Vec::new(),
            controllers: Vec::new(),
            seeds: 3,
            base_seed: 1,
            seconds: 0,
            threshold: 0.25,
        }
    }
}

fn split_list(v: &str) -> Vec<String> {
    v.split('+').filter(|s| !s.is_empty()).map(str::to_string).collect()
}

impl FromKv for StudyConfig {
    fn from_kv(kv: &KvMap) -> Result<Self, String> {
        const KNOWN: [&str; 8] = [
            "name",
            "family",
            "scenarios",
            "controllers",
            "seeds",
            "base_seed",
            "seconds",
            "threshold",
        ];
        for key in kv.keys() {
            if !KNOWN.contains(&key) {
                return Err(format!(
                    "unknown study key {key:?} (expected one of: {})",
                    KNOWN.join(", ")
                ));
            }
        }
        let mut cfg = StudyConfig::default();
        if let Some(name) = kv.get("name") {
            cfg.name = name.to_string();
        }
        if let Some(family) = kv.get("family") {
            cfg.family = StudyFamily::parse(family)?;
        }
        if let Some(scenarios) = kv.get("scenarios") {
            cfg.scenarios = split_list(scenarios);
        }
        if let Some(controllers) = kv.get("controllers") {
            cfg.controllers = split_list(controllers);
        }
        if let Some(seeds) = kv.get_parsed("seeds")? {
            cfg.seeds = seeds;
        }
        if let Some(base_seed) = kv.get_parsed("base_seed")? {
            cfg.base_seed = base_seed;
        }
        if let Some(seconds) = kv.get_parsed("seconds")? {
            cfg.seconds = seconds;
        }
        if let Some(threshold) = kv.get_parsed("threshold")? {
            cfg.threshold = threshold;
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// One expanded run of a study matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct StudyCase {
    /// Scenario preset name.
    pub scenario: String,
    /// Controller label (`None` for mobility cases).
    pub rc: Option<String>,
    /// Seed this case runs at.
    pub seed: u64,
    /// Stable case label, also the trace `src` tag:
    /// `scenario.rc.s<seed>` / `scenario.s<seed>`.
    pub label: String,
}

impl StudyConfig {
    /// Reject configs that could not run: empty or unknown scenarios,
    /// bad controller sets, zero seeds/seconds, broken thresholds.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("study name must not be empty".into());
        }
        if self.scenarios.is_empty() {
            return Err("study has no scenarios".into());
        }
        for s in &self.scenarios {
            let known = match self.family {
                StudyFamily::Fault => s == BASELINE_SCENARIO || FaultScenario::by_name(s).is_some(),
                StudyFamily::Mobility => MobilityScenario::by_name(s).is_some(),
            };
            if !known {
                return Err(match self.family {
                    StudyFamily::Fault => {
                        let mut valid = vec![BASELINE_SCENARIO];
                        valid.extend(FaultScenario::all().iter().map(|f| f.name));
                        unknown_scenario_error("fault", s, &valid)
                    }
                    StudyFamily::Mobility => {
                        let valid: Vec<&str> =
                            MobilityScenario::all().iter().map(|m| m.name).collect();
                        unknown_scenario_error("mobility", s, &valid)
                    }
                });
            }
        }
        match self.family {
            StudyFamily::Fault => {
                if self.controllers.is_empty() {
                    return Err("fault study needs controllers (fbcc and/or gcc)".into());
                }
                for c in &self.controllers {
                    if !CONTROLLERS.contains(&c.as_str()) {
                        return Err(unknown_scenario_error("controller", c, &CONTROLLERS));
                    }
                }
            }
            StudyFamily::Mobility => {
                if !self.controllers.is_empty() {
                    return Err(
                        "mobility study takes no controllers (the grid driver owns them)".into()
                    );
                }
            }
        }
        let mut dedup = self.scenarios.clone();
        dedup.sort();
        dedup.dedup();
        if dedup.len() != self.scenarios.len() {
            return Err("duplicate scenario in study".into());
        }
        if self.seeds == 0 {
            return Err("study needs seeds >= 1".into());
        }
        if self.seconds == 0 {
            return Err("study needs seconds >= 1".into());
        }
        if !(self.threshold > 0.0 && self.threshold.is_finite()) {
            return Err("threshold must be a positive fraction".into());
        }
        Ok(())
    }

    /// Expand the matrix in deterministic order: scenario-major, then
    /// controller, then repetition (`seed = base_seed + r`). This order
    /// is the contract `bench::study` relies on for input-ordered,
    /// byte-deterministic aggregation.
    pub fn cases(&self) -> Vec<StudyCase> {
        let mut out = Vec::new();
        let rcs: Vec<Option<&str>> = match self.family {
            StudyFamily::Fault => self.controllers.iter().map(|c| Some(c.as_str())).collect(),
            StudyFamily::Mobility => vec![None],
        };
        for scenario in &self.scenarios {
            for rc in &rcs {
                for r in 0..self.seeds {
                    let seed = self.base_seed + r;
                    let label = match rc {
                        Some(rc) => format!("{scenario}.{rc}.s{seed}"),
                        None => format!("{scenario}.s{seed}"),
                    };
                    out.push(StudyCase {
                        scenario: scenario.clone(),
                        rc: rc.map(str::to_string),
                        seed,
                        label,
                    });
                }
            }
        }
        out
    }

    /// Groups of the matrix (`scenario × controller`), in case order.
    pub fn groups(&self) -> Vec<(String, Option<String>)> {
        let mut out = Vec::new();
        for case in self.cases() {
            let key = (case.scenario.clone(), case.rc.clone());
            if !out.contains(&key) {
                out.push(key);
            }
        }
        out
    }
}

/// `cc_matrix` preset text, embedded at compile time.
pub const CC_MATRIX_STUDY: &str = include_str!("../studies/cc_matrix.study");
/// `ho_tails` preset text, embedded at compile time.
pub const HO_TAILS_STUDY: &str = include_str!("../studies/ho_tails.study");

/// The checked-in study presets: registry row + config text.
pub fn study_presets() -> Vec<(PresetInfo, &'static str)> {
    vec![
        (
            PresetInfo {
                family: "study",
                name: "cc_matrix",
                what: "FBCC vs GCC x {baseline,rlf,flash_crowd} x 3 seeds",
            },
            CC_MATRIX_STUDY,
        ),
        (
            PresetInfo {
                family: "study",
                name: "ho_tails",
                what: "handover-gap tails across mobility presets x 3 seeds",
            },
            HO_TAILS_STUDY,
        ),
    ]
}

/// Study rows for the unified `reproduce --list` registry.
pub fn registry() -> Vec<PresetInfo> {
    study_presets().into_iter().map(|(info, _)| info).collect()
}

/// Parse a preset by name (`None` for names not in the registry).
pub fn by_name(name: &str) -> Option<StudyConfig> {
    study_presets().into_iter().find(|(info, _)| info.name == name).map(|(info, text)| {
        StudyConfig::from_kv_str(text)
            .unwrap_or_else(|e| panic!("checked-in study {} is invalid: {e}", info.name))
    })
}

/// Error text for an unknown study that names the valid set, phrased
/// through the same formatter as the fault/mobility families.
pub fn unknown_study_error(got: &str) -> String {
    let valid: Vec<&str> = registry().into_iter().map(|p| p.name).collect();
    unknown_scenario_error("study", got, &valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_in_presets_parse_and_validate() {
        let cc = by_name("cc_matrix").expect("cc_matrix registered");
        assert_eq!(cc.family, StudyFamily::Fault);
        assert_eq!(cc.scenarios, ["baseline", "rlf", "flash_crowd"]);
        assert_eq!(cc.controllers, ["fbcc", "gcc"]);
        assert_eq!((cc.seeds, cc.base_seed, cc.seconds), (3, 1, 24));
        assert_eq!(cc.cases().len(), 18, "2 controllers x 3 scenarios x 3 seeds");

        let ho = by_name("ho_tails").expect("ho_tails registered");
        assert_eq!(ho.family, StudyFamily::Mobility);
        assert!(ho.controllers.is_empty());
        assert_eq!(ho.cases().len(), 9);
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn case_expansion_is_scenario_major_with_stable_labels() {
        let cc = by_name("cc_matrix").unwrap();
        let cases = cc.cases();
        assert_eq!(cases[0].label, "baseline.fbcc.s1");
        assert_eq!(cases[1].label, "baseline.fbcc.s2");
        assert_eq!(cases[3].label, "baseline.gcc.s1");
        assert_eq!(cases[6].label, "rlf.fbcc.s1");
        assert_eq!(cases[17].label, "flash_crowd.gcc.s3");
        assert_eq!(cc.groups().len(), 6, "groups follow case order: one per scenario x controller");
        assert_eq!(cc.groups()[0], ("baseline".into(), Some("fbcc".into())));
    }

    #[test]
    fn unknown_keys_scenarios_and_controllers_are_rejected() {
        let err = StudyConfig::from_kv_str("name=x family=fault scenariox=rlf").unwrap_err();
        assert!(err.contains("unknown study key"), "{err}");

        let err = StudyConfig::from_kv_str(
            "name=x family=fault scenarios=warp_core controllers=fbcc seconds=6",
        )
        .unwrap_err();
        assert!(err.contains("unknown fault scenario \"warp_core\""), "{err}");
        assert!(err.contains("baseline, rlf"), "valid set named: {err}");

        let err =
            StudyConfig::from_kv_str("name=x family=fault scenarios=rlf controllers=tcp seconds=6")
                .unwrap_err();
        assert!(err.contains("unknown controller scenario \"tcp\""), "{err}");

        let err = StudyConfig::from_kv_str(
            "name=x family=mobility scenarios=convoy controllers=fbcc seconds=6",
        )
        .unwrap_err();
        assert!(err.contains("no controllers"), "{err}");

        let err = StudyConfig::from_kv_str("name=x family=fault scenarios=rlf controllers=fbcc")
            .unwrap_err();
        assert!(err.contains("seconds"), "{err}");
    }

    #[test]
    fn unknown_study_error_names_the_registry() {
        let err = unknown_study_error("cc_matirx");
        assert_eq!(
            err,
            "unknown study scenario \"cc_matirx\" (expected one of: cc_matrix, ho_tails)"
        );
    }
}
