//! Cross-run report rendering: the study tables, A-vs-B deltas, and
//! the handover-gap tails, all through the shared
//! [`poi360_metrics::table::Table`] renderer.
//!
//! The rendered text is a golden artifact (`tests/golden.rs` pins the
//! `cc_matrix --smoke` report), so it deliberately contains nothing
//! that varies across checkouts: no paths, and no commit hashes outside
//! the explicitly requested `--baseline` section.

use crate::aggregate::{src_rollup, Pool, ProbeStats};
use crate::ingest::RunTrace;
use crate::study::{StudyConfig, StudyFamily};
use poi360_metrics::dist::percentile;
use poi360_metrics::table::{fnum, pct, Table};
use poi360_sim::trace::{ProbeKind, TRACE_SCHEMA_VERSION};

/// One executed study case, parsed and ready to aggregate. Produced by
/// `bench::study` (which owns the session-driving side).
#[derive(Clone, Debug)]
pub struct CaseTrace {
    /// Scenario preset name.
    pub scenario: String,
    /// Controller label (`None` for mobility cases).
    pub rc: Option<String>,
    /// Seed the case ran at.
    pub seed: u64,
    /// The parsed probe stream.
    pub trace: RunTrace,
    /// Per-flow delivery gaps (ms) — mobility report data that lives in
    /// `MultiGridReport`, not in probes; empty for fault cases.
    pub gaps_ms: Vec<f64>,
}

/// A rendered study report.
#[derive(Clone, Debug)]
pub struct StudyReport {
    /// The full report text (tables + warnings + gate line).
    pub text: String,
    /// Gate violations: baseline drift beyond the threshold, probes
    /// that disappeared against the baseline. 0 = pass.
    pub failures: usize,
    /// Provenance warnings (also embedded in `text`).
    pub warnings: Vec<String>,
}

/// Table-cell number format: 4-ish significant digits across the nine
/// decades a probe value can span (bytes, bps, ratios).
pub fn sig(v: f64) -> String {
    if !v.is_finite() {
        return "n/a".into();
    }
    let a = v.abs();
    if a >= 1e6 {
        format!("{:.3}e6", v / 1e6)
    } else if a >= 1000.0 {
        fnum(v, 0)
    } else if a >= 1.0 {
        fnum(v, 2)
    } else if a == 0.0 {
        "0".into()
    } else {
        fnum(v, 4)
    }
}

/// One row of an A-vs-B comparison (medians compared).
#[derive(Clone, Debug)]
pub struct Delta {
    /// Probe name.
    pub name: String,
    /// Probe kind.
    pub kind: ProbeKind,
    /// Median on the A side (NaN = probe absent there).
    pub a: f64,
    /// Median on the B side (NaN = probe absent there).
    pub b: f64,
    /// Relative change `(b - a) / |a|` (NaN when a side is absent).
    pub rel: f64,
    /// True when the change exceeds the threshold (or a side is
    /// missing, under `strict_missing`).
    pub flagged: bool,
}

/// Compare two stat sets by probe name. `strict_missing` flags probes
/// present on one side only — right for commit-vs-commit drift gates,
/// wrong for controller comparisons (FBCC emits `fbcc.*` probes GCC
/// never will).
pub fn deltas(
    a: &[ProbeStats],
    b: &[ProbeStats],
    threshold: f64,
    strict_missing: bool,
) -> Vec<Delta> {
    let mut names: Vec<&str> =
        a.iter().map(|s| s.name.as_str()).chain(b.iter().map(|s| s.name.as_str())).collect();
    names.sort_unstable();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let sa = a.iter().find(|s| s.name == name);
            let sb = b.iter().find(|s| s.name == name);
            let kind = sa.or(sb).unwrap().kind;
            let (va, vb) = (sa.map_or(f64::NAN, |s| s.median), sb.map_or(f64::NAN, |s| s.median));
            let (rel, flagged) = match (sa, sb) {
                (Some(_), Some(_)) => {
                    let rel = if va == vb {
                        0.0
                    } else if va.abs() > f64::EPSILON {
                        (vb - va) / va.abs()
                    } else {
                        f64::INFINITY
                    };
                    (rel, rel.abs() > threshold)
                }
                _ => (f64::NAN, strict_missing),
            };
            Delta { name: name.to_string(), kind, a: va, b: vb, rel, flagged }
        })
        .collect()
}

fn delta_rows(t: &mut Table, rows: &[Delta], flag_word: &str) -> usize {
    let mut flagged = 0;
    for d in rows {
        let rel_cell = if d.rel.is_nan() {
            if d.a.is_nan() { "new" } else { "gone" }.to_string()
        } else if d.rel.is_infinite() {
            "from 0".to_string()
        } else {
            pct(d.rel)
        };
        let mark = if d.flagged {
            flagged += 1;
            flag_word.to_string()
        } else {
            String::new()
        };
        t.row(vec![d.name.clone(), d.kind.as_str().into(), sig(d.a), sig(d.b), rel_cell, mark]);
    }
    flagged
}

fn group_label(rc: &Option<String>) -> String {
    rc.clone().unwrap_or_else(|| "-".into())
}

/// Render the full study report from the executed cases.
///
/// `baseline` is a previously written study JSONL artifact (the
/// concatenated per-case streams): the report then appends a
/// commit-vs-commit drift section whose flagged rows count as failures.
pub fn study_report(
    cfg: &StudyConfig,
    cases: &[CaseTrace],
    baseline: Option<&RunTrace>,
) -> StudyReport {
    let mut text = String::new();
    let mut warnings: Vec<String> = Vec::new();
    let mut failures = 0usize;

    let groups = cfg.groups();
    text.push_str(&format!(
        "Study `{}` — family {}, {} scenarios x {} controllers x {} seeds = {} cases, {}s each\n\n",
        cfg.name,
        cfg.family.as_str(),
        cfg.scenarios.len(),
        if cfg.family == StudyFamily::Fault { cfg.controllers.len() } else { 1 },
        cfg.seeds,
        cases.len(),
        cfg.seconds,
    ));

    // Pool each scenario x controller group across its seeds.
    type GroupPool<'a> = ((String, Option<String>), Pool, Vec<&'a CaseTrace>);
    let mut group_pools: Vec<GroupPool> = groups
        .iter()
        .map(|(scenario, rc)| ((scenario.clone(), rc.clone()), Pool::new(), Vec::new()))
        .collect();
    for case in cases {
        if let Some((_, pool, members)) =
            group_pools.iter_mut().find(|((s, rc), _, _)| *s == case.scenario && *rc == case.rc)
        {
            pool.add(&case.trace);
            members.push(case);
        }
    }

    // Per-probe distribution table, one block of rows per group.
    let mut probe_table = Table::new(
        "Per-probe distributions (pooled across seeds)",
        &["scenario", "ctl", "probe", "kind", "samples", "median", "p95", "p99"],
    );
    for ((scenario, rc), pool, _) in &group_pools {
        for s in pool.stats() {
            probe_table.row(vec![
                scenario.clone(),
                group_label(rc),
                s.name.clone(),
                s.kind.as_str().into(),
                s.samples.to_string(),
                sig(s.median),
                sig(s.p95),
                sig(s.p99),
            ]);
        }
    }
    text.push_str(&probe_table.render());
    text.push('\n');

    // Per-source rollup (cells, flows, sessions), pooled across seeds.
    let mut rollup = Table::new(
        "Per-source rollup (pooled across seeds)",
        &["scenario", "ctl", "src", "records", "probes", "span_s"],
    );
    for ((scenario, rc), _, members) in &group_pools {
        for s in src_rollup(members.iter().map(|c| &c.trace)) {
            let span = (s.last_t_us.saturating_sub(s.first_t_us)) as f64 / 1e6;
            rollup.row(vec![
                scenario.clone(),
                group_label(rc),
                s.src,
                s.records.to_string(),
                s.probes.to_string(),
                fnum(span, 1),
            ]);
        }
    }
    text.push_str(&rollup.render());
    text.push('\n');

    // Controller A-vs-B per scenario (informational: drift marks, no
    // failures — the controllers are *supposed* to differ).
    if cfg.family == StudyFamily::Fault && cfg.controllers.len() >= 2 {
        let (a_rc, b_rc) = (&cfg.controllers[0], &cfg.controllers[1]);
        for scenario in &cfg.scenarios {
            let stats_of = |rc: &str| {
                group_pools
                    .iter()
                    .find(|((s, r), _, _)| s == scenario && r.as_deref() == Some(rc))
                    .map(|(_, pool, _)| pool.stats())
                    .unwrap_or_default()
            };
            let rows = deltas(&stats_of(a_rc), &stats_of(b_rc), cfg.threshold, false);
            let mut t = Table::new(
                format!("{scenario}: {a_rc} vs {b_rc} (medians, drift > {})", pct(cfg.threshold)),
                &["probe", "kind", a_rc.as_str(), b_rc.as_str(), "delta", ""],
            );
            delta_rows(&mut t, &rows, "drift");
            text.push_str(&t.render());
            text.push('\n');
        }
    }

    // Handover-gap tails (mobility data carried outside the probes).
    if cases.iter().any(|c| !c.gaps_ms.is_empty()) {
        let mut t = Table::new(
            "Delivery-gap tails across handovers (ms, pooled across seeds)",
            &["scenario", "gaps", "p50", "p95", "p99", "max"],
        );
        for scenario in &cfg.scenarios {
            let gaps: Vec<f64> = cases
                .iter()
                .filter(|c| c.scenario == *scenario)
                .flat_map(|c| c.gaps_ms.iter().copied())
                .filter(|g| g.is_finite())
                .collect();
            let q = |p: f64| percentile(&gaps, p).map_or("n/a".into(), |v| fnum(v, 1));
            let max = gaps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            t.row(vec![
                scenario.clone(),
                gaps.len().to_string(),
                q(0.50),
                q(0.95),
                q(0.99),
                if gaps.is_empty() { "n/a".into() } else { fnum(max, 1) },
            ]);
        }
        text.push_str(&t.render());
        text.push('\n');
    }

    // Provenance warnings across the fresh cases.
    for case in cases {
        for w in case.trace.meta_warnings() {
            warnings.push(format!("case {}: {w}", case_label(case)));
        }
    }
    let mut commits: Vec<&str> =
        cases.iter().flat_map(|c| c.trace.metas.iter()).map(|m| m.commit.as_str()).collect();
    commits.sort_unstable();
    commits.dedup();
    if commits.len() > 1 {
        warnings.push(format!("cases span {} different commits", commits.len()));
    }

    // Baseline drift gate.
    if let Some(base) = baseline {
        let mut current = Pool::new();
        for case in cases {
            current.add(&case.trace);
        }
        let mut base_pool = Pool::new();
        base_pool.add(base);
        let rows = deltas(&base_pool.stats(), &current.stats(), cfg.threshold, true);
        let mut t = Table::new(
            format!("Baseline drift gate (medians, threshold {})", pct(cfg.threshold)),
            &["probe", "kind", "baseline", "current", "delta", ""],
        );
        let flagged = delta_rows(&mut t, &rows, "REGRESSION");
        failures += flagged;
        text.push_str(&t.render());
        for w in base.meta_warnings() {
            warnings.push(format!("baseline: {w}"));
        }
        match (base.metas.first(), commits.first()) {
            (Some(bm), Some(cur)) if bm.commit == *cur => {
                warnings.push("baseline was produced by the current commit".into());
            }
            (Some(bm), Some(cur)) => {
                text.push_str(&format!("comparing commits: {} -> {}\n", bm.commit, cur));
            }
            _ => {}
        }
        if bm_schema_mismatch(base) {
            warnings
                .push(format!("baseline schema differs from this build's v{TRACE_SCHEMA_VERSION}"));
        }
        text.push('\n');
    }

    for w in &warnings {
        text.push_str(&format!("warning: {w}\n"));
    }
    text.push_str(&format!("study gate: {failures} failure(s), {} warning(s)\n", warnings.len()));
    StudyReport { text, failures, warnings }
}

fn case_label(case: &CaseTrace) -> String {
    match &case.rc {
        Some(rc) => format!("{}.{}.s{}", case.scenario, rc, case.seed),
        None => format!("{}.s{}", case.scenario, case.seed),
    }
}

fn bm_schema_mismatch(base: &RunTrace) -> bool {
    base.metas.iter().any(|m| m.schema != TRACE_SCHEMA_VERSION)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::by_name;

    fn stats(rows: &[(&str, f64)]) -> Vec<ProbeStats> {
        rows.iter()
            .map(|(name, median)| ProbeStats {
                name: name.to_string(),
                kind: ProbeKind::Gauge,
                samples: 10,
                median: *median,
                p95: *median,
                p99: *median,
            })
            .collect()
    }

    #[test]
    fn deltas_flag_beyond_threshold_and_handle_missing_sides() {
        let a = stats(&[("x.same", 10.0), ("x.drift", 10.0), ("x.gone", 1.0)]);
        let b = stats(&[("x.same", 11.0), ("x.drift", 20.0), ("x.new", 1.0)]);
        let lax = deltas(&a, &b, 0.25, false);
        let by = |rows: &[Delta], n: &str| rows.iter().find(|d| d.name == n).unwrap().clone();
        assert!(!by(&lax, "x.same").flagged, "10%% is under a 25%% threshold");
        assert!(by(&lax, "x.drift").flagged);
        assert!((by(&lax, "x.drift").rel - 1.0).abs() < 1e-12);
        assert!(!by(&lax, "x.gone").flagged, "missing side tolerated when lax");
        assert!(!by(&lax, "x.new").flagged);
        let strict = deltas(&a, &b, 0.25, true);
        assert!(by(&strict, "x.gone").flagged, "disappearing probe fails a drift gate");
        assert!(by(&strict, "x.new").flagged);
        assert_eq!(strict.len(), 4, "union of names, deduped");
    }

    #[test]
    fn report_counts_baseline_regressions_as_failures() {
        let cfg = by_name("cc_matrix").unwrap();
        let jsonl = |v: f64| {
            format!(
                r#"{{"t_us":1000,"src":"baseline.fbcc.s1","name":"pacer.rate_bps","kind":"gauge","value":{v}}}"#
            )
        };
        let case = |v: f64| CaseTrace {
            scenario: "baseline".into(),
            rc: Some("fbcc".into()),
            seed: 1,
            trace: RunTrace::parse_str(&jsonl(v)).unwrap(),
            gaps_ms: vec![],
        };
        let drifted_base = RunTrace::parse_str(&jsonl(100.0)).unwrap();
        let rep = study_report(&cfg, &[case(200.0)], Some(&drifted_base));
        assert!(rep.failures >= 1, "100%% drift beyond 25%% threshold fails");
        assert!(rep.text.contains("REGRESSION"));
        let same_base = RunTrace::parse_str(&jsonl(200.0)).unwrap();
        let rep = study_report(&cfg, &[case(200.0)], Some(&same_base));
        assert_eq!(rep.failures, 0);
        let rep = study_report(&cfg, &[case(200.0)], None);
        assert_eq!(rep.failures, 0, "no baseline, no gate");
        assert!(rep.text.contains("study gate: 0 failure(s)"));
    }

    #[test]
    fn sig_spans_the_value_decades() {
        assert_eq!(sig(2_400_000.0), "2.400e6");
        assert_eq!(sig(57_123.0), "57123");
        assert_eq!(sig(3.17159), "3.17");
        assert_eq!(sig(0.01234), "0.0123");
        assert_eq!(sig(0.0), "0");
        assert_eq!(sig(f64::NAN), "n/a");
    }
}
