//! Ingest-layer integration tests: a generative JSONL round-trip
//! property (everything a `JsonlSink` writes comes back through
//! `RunTrace` unchanged), and an exhaustiveness check that every
//! checked-in `bench_results/*.jsonl` artifact still ingests.

use poi360_analyse::ingest::RunTrace;
use poi360_sim::time::SimTime;
use poi360_sim::trace::{JsonlSink, ProbeKind, RunMeta, TraceRecord, TraceSink};
use poi360_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Probe-name pool — `TraceRecord` names are `&'static str` by design,
/// so properties draw from a fixed set rather than generating strings.
const NAMES: &[&str] =
    &["cell.prb_used", "fbcc.rate_kbps", "video.psnr_db", "ho.gap_ms", "cell.tick_ns"];

/// Source-tag pool, shaped like the suites' real tags.
const SRCS: &[&str] = &["fg.00", "bg.01", "rlf.fbcc", "convoy.s1"];

/// Sink → parse preserves record count, order, timestamps, interned
/// names/sources, kinds, and finite values exactly; non-finite values
/// travel as JSON `null` and come back as NaN.
#[test]
fn jsonl_roundtrip_preserves_every_record() {
    prop_check!("jsonl_roundtrip", 96, |g| {
        let stamp = g.chance(0.8);
        // The JSON codec carries numbers as f64, so integers round-trip
        // exactly only up to 2^53 — far beyond any real seed.
        let seed = g.u64_in(0, (1 << 53) - 1);
        let recs = g.vec_of(0, 40, |g| {
            let kind = match g.u8_in(0, 2) {
                0 => ProbeKind::Counter,
                1 => ProbeKind::Gauge,
                _ => ProbeKind::Event,
            };
            let value = if g.chance(0.1) { f64::NAN } else { g.f64_in(-1e9, 1e9) };
            let rec = TraceRecord {
                at: SimTime::from_micros(g.u64_in(0, 1 << 40)),
                name: NAMES[g.index(NAMES.len())],
                kind,
                value,
            };
            (g.index(SRCS.len()), rec)
        });

        let mut sink = JsonlSink::to_writer(Vec::new());
        if stamp {
            sink.stamp(&RunMeta::current(seed));
        }
        for (src, rec) in &recs {
            sink.record(SRCS[*src], rec);
        }
        sink.flush();
        prop_assert!(!sink.had_io_error());
        prop_assert_eq!(sink.lines(), recs.len() as u64);
        let bytes = sink.into_inner();

        let trace = match RunTrace::parse_bytes(&bytes) {
            Ok(t) => t,
            Err(e) => {
                return Err(poi360_testkit::prop::CaseError::fail(format!("parse failed: {e}")))
            }
        };
        prop_assert_eq!(trace.records.len(), recs.len());
        prop_assert_eq!(trace.metas.len(), usize::from(stamp));
        if stamp {
            prop_assert_eq!(trace.metas[0].seed, seed);
        }
        for (parsed, (src, rec)) in trace.records.iter().zip(&recs) {
            prop_assert_eq!(parsed.t_us, rec.at.as_micros());
            prop_assert_eq!(trace.srcs.name(parsed.src), SRCS[*src]);
            prop_assert_eq!(trace.probes.name(parsed.name), rec.name);
            prop_assert_eq!(parsed.kind, rec.kind);
            if rec.value.is_finite() {
                prop_assert_eq!(parsed.value, rec.value);
            } else {
                prop_assert!(parsed.value.is_nan(), "null round-trips to NaN");
            }
        }
        Ok(())
    });
}

/// Every JSONL artifact in `bench_results/` must ingest without error —
/// the analyse layer may never fall behind the probe plane's output
/// format. The artifacts are generated (gitignored), so a fresh clone
/// has none and the test passes vacuously; `ci.sh` re-runs this test
/// after the trace/faults/mobility/perf/study smokes have written
/// theirs, which is where it bites.
#[test]
fn every_jsonl_artifact_on_disk_parses() {
    let Ok(entries) = std::fs::read_dir(poi360_testkit::results_dir()) else { return };
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        let trace = RunTrace::parse_file(&path)
            .unwrap_or_else(|e| panic!("{} does not ingest: {e}", path.display()));
        assert!(!trace.is_empty(), "{} parsed to an empty trace", path.display());
    }
}
