//! Property-based tests for the simulation kernel, on the in-repo
//! `poi360_testkit` harness (64+ seeded cases per property).

use poi360_sim::event::EventQueue;
use poi360_sim::process::{MarkovOnOff, OrnsteinUhlenbeck};
use poi360_sim::rng::SimRng;
use poi360_sim::series::TimeSeries;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Time arithmetic: (t + d) - d == t and (t + d) - t == d.
#[test]
fn time_arithmetic_roundtrips() {
    prop_check!(128, |g| {
        let t = g.u64_in(0, 999_999_999);
        let d = g.u64_in(0, 999_999_999);
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur) - time, dur);
        Ok(())
    });
}

/// saturating_since never underflows and matches checked_since when
/// ordered.
#[test]
fn since_is_safe() {
    prop_check!(128, |g| {
        let (a, b) = (g.u64_in(0, 999_999), g.u64_in(0, 999_999));
        let (ta, tb) = (SimTime::from_micros(a), SimTime::from_micros(b));
        let sat = ta.saturating_since(tb);
        match ta.checked_since(tb) {
            Some(d) => prop_assert_eq!(d, sat),
            None => prop_assert_eq!(sat, SimDuration::ZERO),
        }
        Ok(())
    });
}

/// Any schedule drains fully and in order, with FIFO ties.
#[test]
fn queue_drains_completely() {
    prop_check!(64, |g| {
        let times = g.vec_u64(0, 100, 0, 999);
        let mut q = EventQueue::new();
        for (k, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), k);
        }
        let drained = q.drain_due(SimTime::from_micros(1_000));
        prop_assert_eq!(drained.len(), times.len());
        prop_assert!(q.is_empty());
        // Equal-time events preserve insertion order.
        for w in drained.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        Ok(())
    });
}

/// TimeSeries window means average exactly the contained samples.
#[test]
fn window_means_average() {
    prop_check!(64, |g| {
        let values = g.vec_f64(1, 50, -100.0, 100.0);
        let series: TimeSeries =
            values.iter().enumerate().map(|(k, &v)| (SimTime::from_millis(k as u64), v)).collect();
        // One window covering everything equals the plain mean.
        let windows = series.window_means(SimDuration::from_secs(10));
        prop_assert_eq!(windows.len(), 1);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((windows[0].1 - mean).abs() < 1e-9);
        Ok(())
    });
}

/// OU stays finite under arbitrary step patterns.
#[test]
fn ou_stays_finite() {
    prop_check!(64, |g| {
        let seed = g.any_u64();
        let steps = g.vec_u64(1, 200, 1, 999);
        let mut rng = SimRng::from_seed(seed);
        let mut ou = OrnsteinUhlenbeck::with_stationary(5.0, 2.0, 1.0);
        for ms in steps {
            let v = ou.step(SimDuration::from_millis(ms), &mut rng);
            prop_assert!(v.is_finite());
            prop_assert!(v.abs() < 1_000.0, "implausible excursion {v}");
        }
        Ok(())
    });
}

/// Markov chain state is always consistent after arbitrary stepping.
#[test]
fn markov_always_valid() {
    prop_check!(64, |g| {
        let seed = g.any_u64();
        let steps = g.vec_u64(1, 100, 1, 9_999);
        let mut rng = SimRng::from_seed(seed);
        let mut chain = MarkovOnOff::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(300),
            false,
            &mut rng,
        );
        for ms in steps {
            let _ = chain.step(SimDuration::from_millis(ms), &mut rng);
        }
        let duty = chain.duty_cycle();
        prop_assert!((duty - 0.25).abs() < 1e-9);
        Ok(())
    });
}

/// Uniform, normal, exponential samplers produce finite values in
/// expected supports.
#[test]
fn samplers_respect_supports() {
    prop_check!(64, |g| {
        let mut rng = SimRng::from_seed(g.any_u64());
        for _ in 0..100 {
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
            prop_assert!(rng.normal(0.0, 1.0).is_finite());
            prop_assert!(rng.exponential(2.0) >= 0.0);
            let r = rng.uniform_range(-3.0, 7.0);
            prop_assert!((-3.0..7.0).contains(&r));
        }
        Ok(())
    });
}
