//! Integration tests for the trace plane under fault-heavy drivers: a
//! dense overlapping [`FaultTimeline`] must stream ordered transitions
//! into a [`RingSink`], and [`TimeSeries::try_push`] must reject a
//! misbehaving (time-rewinding) probe without corrupting the series.

use poi360_sim::fault::{FaultKind, FaultPlan, FaultTimeline};
use poi360_sim::series::TimeSeries;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::trace::{Recorder, RingSink};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn d(ms: u64) -> SimDuration {
    SimDuration::from_millis(ms)
}

/// A dense plan with every kind overlapping: transitions arrive at the
/// sink in non-decreasing time order, per-probe times are strictly
/// increasing (each edge fires exactly once), and after the horizon every
/// probe has recovered to the healthy value 0.0.
#[test]
fn ring_sink_keeps_fault_transitions_ordered() {
    let plan = FaultPlan::new()
        .with(FaultKind::RadioLinkFailure, t(100), d(200))
        .with(FaultKind::DiagStall, t(150), d(300))
        .with(FaultKind::GrantStarvation { factor: 0.5 }, t(120), d(250))
        .with(FaultKind::GrantStarvation { factor: 0.5 }, t(200), d(250))
        .with(FaultKind::FeedbackLoss { loss: 0.7 }, t(180), d(100))
        .with(FaultKind::WirelineSpike { extra_delay: d(40), extra_loss: 0.05 }, t(50), d(400))
        .with(FaultKind::FlashCrowd { extra_load: 0.4 }, t(300), d(150));
    let horizon = plan.horizon();

    let ring = RingSink::shared(4096);
    let rec = Recorder::to_sink(ring.clone(), "fault-heavy");
    let mut tl = FaultTimeline::new(plan);
    let mut now = SimTime::ZERO;
    while now < horizon + d(50) {
        tl.advance(now, &rec);
        now += poi360_sim::SUBFRAME;
    }

    let sink = ring.lock().unwrap();
    assert!(!sink.is_empty(), "transitions were recorded");
    let records: Vec<_> = sink.records().collect();
    for pair in records.windows(2) {
        assert!(pair[0].1.at <= pair[1].1.at, "sink stream went backwards in time");
    }
    let mut last_value = std::collections::BTreeMap::new();
    let mut last_at: std::collections::BTreeMap<&str, SimTime> = std::collections::BTreeMap::new();
    for (_, r) in &records {
        assert!(r.name.starts_with("fault."), "only fault transitions expected, got {}", r.name);
        if let Some(&prev) = last_at.get(r.name) {
            assert!(r.at > prev, "duplicate edge for {} at {:?}", r.name, r.at);
        }
        last_at.insert(r.name, r.at);
        last_value.insert(r.name, r.value);
    }
    assert_eq!(last_value.len(), 6, "every fault kind produced transitions");
    for (name, value) in last_value {
        assert_eq!(value, 0.0, "{name} did not recover to healthy by the horizon");
    }
}

/// The composed grant-starvation magnitude walks through the overlap:
/// one window takes half the grant, two stacked windows take 3/4, and the
/// trace shows each step exactly once.
#[test]
fn overlapping_starvation_steps_are_traced() {
    let plan = FaultPlan::new()
        .with(FaultKind::GrantStarvation { factor: 0.5 }, t(100), d(300))
        .with(FaultKind::GrantStarvation { factor: 0.5 }, t(200), d(100));
    let ring = RingSink::shared(64);
    let rec = Recorder::to_sink(ring.clone(), "steps");
    let mut tl = FaultTimeline::new(plan);
    for ms in 0..500 {
        tl.advance(t(ms), &rec);
    }
    let sink = ring.lock().unwrap();
    let values: Vec<f64> = sink
        .records()
        .filter(|(_, r)| r.name == "fault.grant_starvation")
        .map(|(_, r)| r.value)
        .collect();
    // Magnitude = 1 - grant_factor: 0.5, then 0.75, back to 0.5, then 0.
    assert_eq!(values, vec![0.5, 0.75, 0.5, 0.0]);
}

/// A full ring keeps the newest transitions: with a capacity smaller than
/// the transition count, the retained window is the tail of the stream.
#[test]
fn ring_sink_evicts_oldest_under_pressure() {
    let mut plan = FaultPlan::new();
    for k in 0..32 {
        plan.push(FaultKind::RadioLinkFailure, t(100 * (2 * k + 1)), d(50));
    }
    let ring = RingSink::shared(8);
    let rec = Recorder::to_sink(ring.clone(), "pressure");
    let mut tl = FaultTimeline::new(plan.clone());
    let mut now = SimTime::ZERO;
    while now < plan.horizon() + d(10) {
        tl.advance(now, &rec);
        now += poi360_sim::SUBFRAME;
    }
    let sink = ring.lock().unwrap();
    assert_eq!(sink.len(), 8, "ring holds exactly its capacity");
    // 32 windows x 2 edges = 64 transitions; the retained 8 are the last 8.
    let first_retained = sink.records().next().expect("non-empty ring").1.at;
    assert!(first_retained >= t(100 * (2 * 28 + 1)), "oldest retained {first_retained:?}");
}

/// A misbehaving probe that rewinds time must not corrupt a series:
/// `try_push` rejects exactly the rewound samples, keeps the rest, and
/// the series stays sorted throughout.
#[test]
fn try_push_rejects_rewinds_without_corrupting() {
    let mut series = TimeSeries::new();
    let mut rejected = 0u64;
    let mut accepted = 0u64;
    // A sawtooth driver: mostly forward, but every 7th sample rewinds —
    // the shape a buggy fault seam would produce.
    for k in 0u64..200 {
        let at = if k % 7 == 6 { t(k * 10 - 35) } else { t(k * 10) };
        match series.try_push(at, k as f64) {
            Ok(()) => accepted += 1,
            Err(err) => {
                rejected += 1;
                assert_eq!(err.rejected, at);
                assert!(err.last > at, "rejection must cite a later last sample");
            }
        }
    }
    assert_eq!(accepted + rejected, 200);
    assert!(rejected > 0, "the sawtooth must have produced rewinds");
    assert_eq!(series.len(), accepted as usize);
    let times: Vec<SimTime> = series.iter().map(|(at, _)| at).collect();
    for pair in times.windows(2) {
        assert!(pair[0] <= pair[1], "series order corrupted");
    }
}

/// The recorder's gauge channel turns rejected samples into a drop
/// counter in release builds and a debug assertion in debug builds —
/// either way the retained series survives intact.
#[test]
fn recorder_survives_out_of_order_gauges_from_a_faulty_driver() {
    let rec = Recorder::null();
    rec.gauge("seam.level", t(100), 1.0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rec.gauge("seam.level", t(40), 2.0);
    }));
    if cfg!(debug_assertions) {
        assert!(result.is_err(), "debug builds assert on out-of-order gauges");
    } else {
        assert!(result.is_ok());
        assert_eq!(rec.out_of_order_drops(), 1);
        rec.gauge("seam.level", t(200), 3.0);
        let series = rec.gauge_series("seam.level");
        assert_eq!(series.len(), 2, "good samples kept, bad sample dropped");
    }
}
