//! The instrumentation plane: typed probes, pluggable sinks, per-session
//! recorders.
//!
//! POI360's control loops are only explicable by correlating signals across
//! layers — firmware-buffer occupancy against PHY throughput against pacing
//! rate against per-frame quality (the paper's own Figs. 9–14 are exactly
//! such correlations). Before this module, every crate hand-rolled its own
//! [`TimeSeries`] plumbing into `SessionReport` and the interesting
//! *decisions* (FBCC congestion verdicts, PF grant shares, compression mode
//! switches) were invisible without code edits. The trace plane replaces
//! that with one vocabulary:
//!
//! * **Probes** are named measurements. Names are `&'static str` in
//!   `layer.signal` form (`fbcc.congestion_detected`, `cell.prb_grant`,
//!   `pacer.rate_bps`, `video.mode_switch`) so emitting one costs a pointer,
//!   not a formatting pass. Three kinds:
//!   - *counters* ([`Recorder::count`]) — monotonically accumulated `u64`s,
//!     retained per recorder (frames encoded, congestion detections);
//!   - *gauges* ([`Recorder::gauge`]) — timestamped scalar samples retained
//!     as a [`TimeSeries`] channel per recorder; `SessionReport` series are
//!     derived from these channels at the end of a run;
//!   - *events* ([`Recorder::event`]) — timestamped records forwarded to the
//!     sink only, never retained in memory, for high-frequency signals
//!     (per-subframe PRB grants) that would bloat a 90 s run.
//! * **Sinks** ([`TraceSink`]) receive every probe emission. The null sink
//!   (simply the absence of one — [`Recorder::null`]) reduces `event()` to
//!   a branch on an `Option`; [`RingSink`] keeps the last N records for
//!   tests; [`JsonlSink`] streams one JSON object per line through the
//!   in-repo writer for offline analysis.
//! * **Recorders** are per-session handles threaded through construction.
//!   Each [`Recorder`] owns its gauge/counter channels (so parallel sessions
//!   never share state) and optionally forwards to a sink. Handles are
//!   `Arc<Mutex<…>>`, so a session — recorder, channels, sink handle and
//!   all — is `Send` and may be shipped to a worker shard; the sharded
//!   grid driver gives each entity its own [`BufferSink`] and merges the
//!   buffers into the real sink in fixed entity order at each subframe
//!   barrier, so the merged stream is identical at any shard width.
//!   Cloning a recorder shares its channels — that is how one session
//!   hands the same registry to its pacer, encoder, and rate controller.
//!
//! Determinism contract: probes observe, they never influence. A recorder
//! draws no randomness, schedules no events, and never changes a control
//! decision; swapping sinks (or removing the recorder entirely) must leave
//! simulation output byte-identical. The determinism suite pins this.

use crate::json::{JsonObject, JsonValue, ToJson};
use crate::series::TimeSeries;
use crate::time::SimTime;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Version of the JSONL trace format. Bump when the record or metadata
/// shape changes; `poi360-analyse` warns when it aggregates across
/// mismatched versions.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// The git commit of the working tree, or `"unknown"` outside one.
/// Shared by the bench harness (suite JSON) and the trace plane (JSONL
/// metadata records) so every artifact is attributable to a revision.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Provenance metadata stamped as the leading record of a JSONL trace
/// artifact — the trace plane's counterpart of what `testkit::bench`
/// stamps into bench suite JSON. A metadata line is distinguished from
/// probe records by its `"meta"` field; [`RunMeta::from_json`] is the
/// inverse used by `poi360-analyse`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMeta {
    /// Trace format version ([`TRACE_SCHEMA_VERSION`] at write time).
    pub schema: u64,
    /// Git commit of the producing tree (`"unknown"` outside one).
    pub commit: String,
    /// Command line of the producing process.
    pub argv: Vec<String>,
    /// Seed of the traced run.
    pub seed: u64,
}

impl RunMeta {
    /// Metadata for the current process at the current schema version.
    pub fn current(seed: u64) -> RunMeta {
        RunMeta {
            schema: TRACE_SCHEMA_VERSION,
            commit: git_commit(),
            argv: std::env::args().collect(),
            seed,
        }
    }

    /// Render the metadata JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        JsonObject::new()
            .field("meta", &"poi360.trace")
            .field("schema", &self.schema)
            .field("commit", &self.commit)
            .field("argv", &self.argv)
            .field("seed", &self.seed)
            .finish()
    }

    /// True when a parsed JSONL line is a metadata record.
    pub fn is_meta(v: &JsonValue) -> bool {
        v.get("meta").and_then(|m| m.as_str()) == Some("poi360.trace")
    }

    /// Parse a metadata record back out of a JSONL line. `None` when the
    /// line is not a metadata record at all; `Some(Err)` when it claims
    /// to be one but is malformed.
    pub fn from_json(v: &JsonValue) -> Option<Result<RunMeta, String>> {
        if !RunMeta::is_meta(v) {
            return None;
        }
        let parse = || -> Result<RunMeta, &'static str> {
            let schema = v
                .get("schema")
                .and_then(|s| s.as_f64())
                .ok_or("meta record without a numeric `schema`")?;
            let commit = v
                .get("commit")
                .and_then(|c| c.as_str())
                .ok_or("meta record without a `commit` string")?
                .to_string();
            let argv = v
                .get("argv")
                .and_then(|a| a.as_array())
                .ok_or("meta record without an `argv` array")?
                .iter()
                .map(|s| s.as_str().map(str::to_string).ok_or("non-string argv entry"))
                .collect::<Result<Vec<_>, _>>()?;
            let seed =
                v.get("seed").and_then(|s| s.as_f64()).ok_or("meta record without a `seed`")?;
            Ok(RunMeta { schema: schema as u64, commit, argv, seed: seed as u64 })
        };
        Some(parse().map_err(|e: &str| e.to_string()))
    }
}

/// What kind of measurement a [`TraceRecord`] carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// A monotonic accumulation; `value` is the increment, not the total.
    Counter,
    /// An instantaneous scalar sample.
    Gauge,
    /// A point event, forwarded to the sink but not retained.
    Event,
}

impl ProbeKind {
    /// Stable lowercase name used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            ProbeKind::Counter => "counter",
            ProbeKind::Gauge => "gauge",
            ProbeKind::Event => "event",
        }
    }
}

/// One probe emission as seen by a sink.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Simulation time of the emission.
    pub at: SimTime,
    /// Static probe name, `layer.signal` convention.
    pub name: &'static str,
    /// Counter, gauge, or event.
    pub kind: ProbeKind,
    /// Sample value (counter increments are cast to `f64`).
    pub value: f64,
}

impl TraceRecord {
    /// Render the JSONL line for this record from source `src` (no
    /// trailing newline).
    pub fn to_jsonl(&self, src: &str) -> String {
        let mut out = String::new();
        self.write_jsonl(src, &mut out);
        out
    }

    /// Append the JSONL line to `out` (no trailing newline) without
    /// allocating. Sinks on the per-subframe hot path ([`JsonlSink`])
    /// render every record through one reusable line buffer; the field
    /// order (`t_us`, `src`, `name`, `kind`, `value`) is pinned by the
    /// round-trip tests and must match what [`JsonObject`] would emit.
    pub fn write_jsonl(&self, src: &str, out: &mut String) {
        out.push_str("{\"t_us\":");
        self.at.write_json(out);
        out.push_str(",\"src\":");
        crate::json::write_json_string(src, out);
        out.push_str(",\"name\":");
        crate::json::write_json_string(self.name, out);
        out.push_str(",\"kind\":");
        crate::json::write_json_string(self.kind.as_str(), out);
        out.push_str(",\"value\":");
        self.value.write_json(out);
        out.push('}');
    }
}

/// Receiver of probe emissions.
///
/// Contract: a sink is a pure observer. It must not panic on any record and
/// must tolerate interleaved sources (`src` distinguishes them). The handle
/// type is `Arc<Mutex<…>>`, so a sink may be shared across shard threads —
/// but deterministic artifacts require deterministic *record order*, which
/// concurrent emission does not give; parallel drivers must emit into
/// per-entity [`BufferSink`]s and merge them in fixed entity order at a
/// barrier instead of writing to a shared sink mid-epoch. Sinks may buffer;
/// [`TraceSink::flush`] is called when a driver wants bytes on disk.
pub trait TraceSink: Send {
    /// Accept one record from source `src`.
    fn record(&mut self, src: &str, rec: &TraceRecord);

    /// Flush any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Shared handle to a sink, cloneable across recorders (and shards).
pub type SinkHandle = Arc<Mutex<dyn TraceSink>>;

/// A sink that drops everything. [`Recorder::null`] avoids even the virtual
/// call, so this type exists mainly to document the bottom of the lattice
/// and for tests that need a real (if inert) sink object.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _src: &str, _rec: &TraceRecord) {}
}

/// In-memory sink retaining the most recent `cap` records, for tests.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    records: VecDeque<(String, TraceRecord)>,
}

impl RingSink {
    /// A ring holding at most `cap` records (oldest evicted first).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "a RingSink needs room for at least one record");
        RingSink { cap, records: VecDeque::with_capacity(cap.min(1024)) }
    }

    /// Wrap in the shared-handle type recorders expect.
    pub fn shared(cap: usize) -> Arc<Mutex<RingSink>> {
        Arc::new(Mutex::new(RingSink::new(cap)))
    }

    /// The retained `(src, record)` pairs, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &(String, TraceRecord)> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many retained records carry probe `name`.
    pub fn count_of(&self, name: &str) -> usize {
        self.records.iter().filter(|(_, r)| r.name == name).count()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, src: &str, rec: &TraceRecord) {
        // Once the ring is full, recycle the evicted record's `String`
        // instead of allocating a fresh one per record — long-running
        // drivers hold RingSinks across millions of subframes.
        let mut slot = if self.records.len() == self.cap {
            self.records.pop_front().map(|(s, _)| s).unwrap_or_default()
        } else {
            String::new()
        };
        slot.clear();
        slot.push_str(src);
        self.records.push_back((slot, *rec));
    }
}

/// Per-entity staging sink for sharded drivers.
///
/// A parallel driver cannot let shard threads write to the real sink
/// directly — interleaving would depend on the schedule. Instead each
/// entity (cell, flow, grid) records into its own `BufferSink`, and at the
/// epoch barrier the driver drains the buffers into the real sink in fixed
/// entity order. Within one entity, records keep emission order; across
/// entities, the drain order is the canonical order — so the merged stream
/// is byte-identical at any shard width, including width 1.
///
/// `TraceRecord` carries no source string, so the buffer stores only the
/// records; [`BufferSink::drain_into`] stamps the entity's `src` when it
/// replays them. A recorder's own `src` is therefore ignored while staged
/// records sit in the buffer — give each entity its own buffer and pass the
/// matching `src` at drain time.
#[derive(Debug, Default)]
pub struct BufferSink {
    records: Vec<TraceRecord>,
}

impl BufferSink {
    /// An empty buffer.
    pub fn new() -> Self {
        BufferSink::default()
    }

    /// Wrap in the shared-handle type recorders expect.
    pub fn shared() -> Arc<Mutex<BufferSink>> {
        Arc::new(Mutex::new(BufferSink::new()))
    }

    /// Number of staged records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Retained backing capacity, in records. After the first few epochs a
    /// recycled buffer should hold steady here — the zero-alloc gates
    /// depend on drains never shrinking the allocation.
    pub fn capacity(&self) -> usize {
        self.records.capacity()
    }

    /// Replay every staged record into `sink` under source `src`, in
    /// emission order, and clear the buffer (capacity is retained so the
    /// steady state stays allocation-free).
    pub fn drain_into(&mut self, src: &str, sink: &mut dyn TraceSink) {
        for rec in &self.records {
            sink.record(src, rec);
        }
        self.records.clear();
    }
}

impl TraceSink for BufferSink {
    fn record(&mut self, _src: &str, rec: &TraceRecord) {
        self.records.push(*rec);
    }
}

/// Streaming JSONL sink: one JSON object per probe emission, written through
/// the in-repo JSON writer. Also keeps per-probe-name counts so drivers can
/// render a summary table without re-reading the file.
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    meta_lines: u64,
    counts: Vec<(&'static str, u64)>,
    io_error: bool,
    /// Reusable line buffer: every record renders into this scratch
    /// (cleared, capacity retained) before one `write_all`, so the
    /// steady-state trace path allocates nothing per record.
    line: String,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Create (truncating) a JSONL file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink::to_writer(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Stream records into an arbitrary writer.
    pub fn to_writer(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            meta_lines: 0,
            counts: Vec::new(),
            io_error: false,
            line: String::new(),
        }
    }

    /// Write a leading [`RunMeta`] record. Call immediately after
    /// creating the sink, before any probe records; metadata lines are
    /// counted separately from probe records ([`JsonlSink::lines`]).
    pub fn stamp(&mut self, meta: &RunMeta) {
        if self.io_error {
            return;
        }
        if writeln!(self.out, "{}", meta.to_jsonl()).is_err() {
            self.io_error = true;
            return;
        }
        self.meta_lines += 1;
    }

    /// Probe-record lines written so far (metadata lines not included).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Metadata lines written so far via [`JsonlSink::stamp`].
    pub fn meta_lines(&self) -> u64 {
        self.meta_lines
    }

    /// True if any write failed; the sink keeps counting but stops writing.
    pub fn had_io_error(&self) -> bool {
        self.io_error
    }

    /// Per-probe-name record counts, sorted by name.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts = self.counts.clone();
        counts.sort_by_key(|&(name, _)| name);
        counts
    }

    /// Borrow the underlying writer, e.g. to measure how many bytes a
    /// `Vec<u8>`-backed sink holds between two runs sharing it.
    pub fn get_ref(&self) -> &W {
        &self.out
    }

    /// Consume the sink and hand back the underlying writer (e.g. a
    /// `Vec<u8>` buffer for byte-level comparison of two runs).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, src: &str, rec: &TraceRecord) {
        match self.counts.iter_mut().find(|(n, _)| std::ptr::eq(*n, rec.name) || *n == rec.name) {
            Some((_, c)) => *c += 1,
            None => self.counts.push((rec.name, 1)),
        }
        if self.io_error {
            return;
        }
        self.line.clear();
        rec.write_jsonl(src, &mut self.line);
        self.line.push('\n');
        if self.out.write_all(self.line.as_bytes()).is_err() {
            // A trace must never take the simulation down with it; remember
            // the failure and let the driver report it.
            self.io_error = true;
            return;
        }
        self.lines += 1;
    }

    fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.io_error = true;
        }
    }
}

/// Gauge channels and counters owned by one recorder (shared by clones).
#[derive(Debug, Default)]
struct Channels {
    gauges: Vec<(&'static str, TimeSeries)>,
    counters: Vec<(&'static str, u64)>,
    out_of_order_drops: u64,
}

impl Channels {
    fn gauge_mut(&mut self, name: &'static str) -> &mut TimeSeries {
        // Static names make pointer equality the common fast path; the
        // string comparison only runs for distinct instantiations of the
        // same literal (possible across codegen units).
        let idx = self
            .gauges
            .iter()
            .position(|&(n, _)| std::ptr::eq(n, name) || n == name)
            .unwrap_or_else(|| {
                self.gauges.push((name, TimeSeries::new()));
                self.gauges.len() - 1
            });
        &mut self.gauges[idx].1
    }

    fn counter_mut(&mut self, name: &'static str) -> &mut u64 {
        let idx = self
            .counters
            .iter()
            .position(|&(n, _)| std::ptr::eq(n, name) || n == name)
            .unwrap_or_else(|| {
                self.counters.push((name, 0));
                self.counters.len() - 1
            });
        &mut self.counters[idx].1
    }
}

/// A per-session probe handle.
///
/// Cheap to clone (two `Arc` bumps); clones share the gauge/counter channels
/// and the sink, which is how one session distributes the same recorder to
/// its pacer, encoder, uplink, and rate controller. Distinct sessions must
/// construct distinct recorders so channels are never contended; the
/// recorder is `Send`, so a whole session can be shipped to a worker shard,
/// but a correct driver still serializes the *emission order* it wants
/// (per-entity [`BufferSink`]s merged at a barrier).
#[derive(Clone)]
pub struct Recorder {
    channels: Arc<Mutex<Channels>>,
    sink: Option<SinkHandle>,
    src: Arc<str>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::null()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("src", &self.src)
            .field("has_sink", &self.sink.is_some())
            .field("channels", &self.channels)
            .finish()
    }
}

impl Recorder {
    /// A recorder with no sink: gauges and counters are retained for report
    /// derivation, `event()` compiles down to a branch on a `None`.
    pub fn null() -> Self {
        Recorder {
            channels: Arc::new(Mutex::new(Channels::default())),
            sink: None,
            src: Arc::from("session"),
        }
    }

    /// A recorder forwarding every emission to `sink`, tagged as coming
    /// from `src` ("session", "cell", "fg.00", ...).
    pub fn to_sink(sink: SinkHandle, src: &str) -> Self {
        Recorder {
            channels: Arc::new(Mutex::new(Channels::default())),
            sink: Some(sink),
            src: Arc::from(src),
        }
    }

    /// The source tag stamped on this recorder's sink records.
    pub fn src(&self) -> &str {
        &self.src
    }

    /// True when a sink is attached (used to skip building expensive
    /// event payloads when nobody is listening).
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Record a gauge sample: retained in the named channel and forwarded
    /// to the sink. Out-of-order samples are rejected by
    /// [`TimeSeries::try_push`] and counted instead of silently corrupting
    /// windowed reductions; see [`Recorder::out_of_order_drops`].
    pub fn gauge(&self, name: &'static str, at: SimTime, value: f64) {
        {
            let mut ch = self.channels.lock().unwrap();
            if ch.gauge_mut(name).try_push(at, value).is_err() {
                ch.out_of_order_drops += 1;
                debug_assert!(false, "out-of-order gauge sample on {name}");
                return;
            }
        }
        self.emit(name, at, ProbeKind::Gauge, value);
    }

    /// Increment the named counter by `n` and forward the increment.
    pub fn count(&self, name: &'static str, at: SimTime, n: u64) {
        *self.channels.lock().unwrap().counter_mut(name) += n;
        self.emit(name, at, ProbeKind::Counter, n as f64);
    }

    /// Record a point event: sink-only, nothing retained. With no sink this
    /// is a single branch, so per-subframe call sites stay effectively free.
    pub fn event(&self, name: &'static str, at: SimTime, value: f64) {
        if self.sink.is_none() {
            return;
        }
        self.emit(name, at, ProbeKind::Event, value);
    }

    fn emit(&self, name: &'static str, at: SimTime, kind: ProbeKind, value: f64) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().record(&self.src, &TraceRecord { at, name, kind, value });
        }
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.channels
            .lock()
            .unwrap()
            .counters
            .iter()
            .find(|&&(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Move the named gauge channel out of the recorder (empty series if the
    /// probe never fired). Reports call this once at the end of a run so the
    /// samples transfer without a copy.
    pub fn take_gauge(&self, name: &str) -> TimeSeries {
        let mut ch = self.channels.lock().unwrap();
        match ch.gauges.iter().position(|&(n, _)| n == name) {
            Some(idx) => std::mem::take(&mut ch.gauges[idx].1),
            None => TimeSeries::new(),
        }
    }

    /// Snapshot of a gauge channel without consuming it.
    pub fn gauge_series(&self, name: &str) -> TimeSeries {
        self.channels
            .lock()
            .unwrap()
            .gauges
            .iter()
            .find(|&&(n, _)| n == name)
            .map_or_else(TimeSeries::new, |(_, s)| s.clone())
    }

    /// Gauge samples rejected for arriving out of chronological order.
    pub fn out_of_order_drops(&self) -> u64 {
        self.channels.lock().unwrap().out_of_order_drops
    }

    /// Flush the attached sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, JsonValue};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn null_recorder_retains_gauges_and_counters() {
        let rec = Recorder::null();
        rec.gauge("pacer.rate_bps", t(1), 1.0e6);
        rec.gauge("pacer.rate_bps", t(2), 2.0e6);
        rec.count("video.frame_encoded", t(2), 1);
        rec.count("video.frame_encoded", t(3), 1);
        rec.event("cell.prb_grant", t(3), 40.0); // dropped: no sink
        assert_eq!(rec.gauge_series("pacer.rate_bps").len(), 2);
        assert_eq!(rec.counter("video.frame_encoded"), 2);
        assert_eq!(rec.counter("never.fired"), 0);
        let taken = rec.take_gauge("pacer.rate_bps");
        assert_eq!(taken.len(), 2);
        assert!(rec.gauge_series("pacer.rate_bps").is_empty(), "take moves the samples out");
    }

    #[test]
    fn clones_share_channels() {
        let rec = Recorder::null();
        let clone = rec.clone();
        clone.count("fbcc.congestion_detected", t(5), 1);
        clone.gauge("uplink.phy_rate_bps", t(5), 9.0e6);
        assert_eq!(rec.counter("fbcc.congestion_detected"), 1);
        assert_eq!(rec.gauge_series("uplink.phy_rate_bps").len(), 1);
    }

    #[test]
    fn ring_sink_sees_all_kinds_and_evicts_oldest() {
        let ring = RingSink::shared(2);
        let rec = Recorder::to_sink(ring.clone(), "fg.00");
        rec.count("a.one", t(1), 1);
        rec.gauge("a.two", t(2), 2.0);
        rec.event("a.three", t(3), 3.0);
        let sink = ring.lock().unwrap();
        assert_eq!(sink.len(), 2, "capacity 2 evicts the oldest");
        assert_eq!(sink.count_of("a.one"), 0);
        assert_eq!(sink.count_of("a.two"), 1);
        assert_eq!(sink.count_of("a.three"), 1);
        let (src, last) = sink.records().last().unwrap();
        assert_eq!(src, "fg.00");
        assert_eq!(last.kind, ProbeKind::Event);
        assert_eq!(last.value, 3.0);
    }

    #[test]
    fn out_of_order_gauge_is_dropped_and_counted() {
        let rec = Recorder::null();
        rec.gauge("x.y", t(10), 1.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rec.gauge("x.y", t(5), 2.0);
        }));
        if cfg!(debug_assertions) {
            assert!(result.is_err(), "debug builds assert on out-of-order gauges");
        } else {
            assert!(result.is_ok());
            assert_eq!(rec.out_of_order_drops(), 1);
            assert_eq!(rec.gauge_series("x.y").len(), 1);
        }
    }

    #[test]
    fn jsonl_record_round_trips_through_parser() {
        let rec = TraceRecord {
            at: t(1500),
            name: "fbcc.congestion_detected",
            kind: ProbeKind::Counter,
            value: 1.0,
        };
        let line = rec.to_jsonl("session");
        let v = parse_json(&line).expect("sink output must be valid JSON");
        assert_eq!(v.get("t_us").unwrap().as_f64(), Some(1_500_000.0));
        assert_eq!(v.get("src").unwrap().as_str(), Some("session"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("fbcc.congestion_detected"));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("counter"));
        assert_eq!(v.get("value").unwrap().as_f64(), Some(1.0));
        // Field order is part of the format: stable across runs.
        match v {
            JsonValue::Object(members) => {
                let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["t_us", "src", "name", "kind", "value"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn write_jsonl_matches_the_json_object_writer_bytes() {
        // The hand-rolled hot-path writer must stay byte-identical to what
        // the generic JsonObject writer would produce — goldens and the CI
        // `cmp` gates pin JSONL artifacts at the byte level.
        let cases = [
            TraceRecord { at: t(0), name: "a.b", kind: ProbeKind::Counter, value: 0.0 },
            TraceRecord { at: t(1500), name: "pacer.rate_bps", kind: ProbeKind::Gauge, value: 1e6 },
            TraceRecord { at: t(7), name: "x.y", kind: ProbeKind::Event, value: -2.25 },
            TraceRecord { at: t(7), name: "x.y", kind: ProbeKind::Event, value: f64::NAN },
        ];
        for rec in &cases {
            for src in ["session", "cell.07", "we\"ird\n"] {
                let via_object = JsonObject::new()
                    .field("t_us", &rec.at)
                    .field("src", &src)
                    .field("name", &rec.name)
                    .field("kind", &rec.kind.as_str())
                    .field("value", &rec.value)
                    .finish();
                assert_eq!(rec.to_jsonl(src), via_object, "src={src:?} rec={rec:?}");
            }
        }
    }

    #[test]
    fn jsonl_sink_line_scratch_does_not_leak_stale_bytes() {
        // A long line followed by a short one: with a reused scratch the
        // short line must not carry the long line's tail.
        let mut sink = JsonlSink::to_writer(Vec::new());
        let long = TraceRecord {
            at: t(123_456),
            name: "grid.interference_db_very_long_probe_name",
            kind: ProbeKind::Gauge,
            value: 1.234_567_890_123e-7,
        };
        let short = TraceRecord { at: t(1), name: "a.b", kind: ProbeKind::Counter, value: 1.0 };
        sink.record("cell.with.a.long.source.identifier", &long);
        sink.record("s", &short);
        sink.record("cell.with.a.long.source.identifier", &long);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let want = format!(
            "{}\n{}\n{}\n",
            long.to_jsonl("cell.with.a.long.source.identifier"),
            short.to_jsonl("s"),
            long.to_jsonl("cell.with.a.long.source.identifier"),
        );
        assert_eq!(text, want);
    }

    #[test]
    fn ring_sink_eviction_recycles_srcs_without_corruption() {
        let mut ring = RingSink::new(2);
        let rec = TraceRecord { at: t(1), name: "a.b", kind: ProbeKind::Gauge, value: 0.0 };
        for src in ["a-rather-long-source-name", "x", "medium.src", "y"] {
            ring.record(src, &rec);
        }
        let got: Vec<&str> = ring.records().map(|(src, _)| src.as_str()).collect();
        assert_eq!(got, ["medium.src", "y"], "recycled strings must carry only the new src");
    }

    #[test]
    fn run_meta_round_trips_and_is_distinguished_from_records() {
        let meta = RunMeta {
            schema: TRACE_SCHEMA_VERSION,
            commit: "0123456789abcdef0123456789abcdef01234567".into(),
            argv: vec!["reproduce".into(), "study".into(), "cc_matrix".into()],
            seed: 77,
        };
        let line = meta.to_jsonl();
        let v = parse_json(&line).expect("meta line is valid JSON");
        assert!(RunMeta::is_meta(&v));
        let back = RunMeta::from_json(&v).expect("is a meta record").expect("parses");
        assert_eq!(back, meta);
        // A probe record is not a metadata record.
        let rec = TraceRecord { at: t(1), name: "a.b", kind: ProbeKind::Gauge, value: 1.0 };
        let rec_v = parse_json(&rec.to_jsonl("s")).unwrap();
        assert!(!RunMeta::is_meta(&rec_v));
        assert!(RunMeta::from_json(&rec_v).is_none());
    }

    #[test]
    fn run_meta_rejects_malformed_meta_lines() {
        let v = parse_json(r#"{"meta":"poi360.trace","schema":"one"}"#).unwrap();
        let err = RunMeta::from_json(&v).expect("claims to be meta").unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn sink_stamp_writes_leading_meta_line() {
        let mut sink = JsonlSink::to_writer(Vec::new());
        sink.stamp(&RunMeta::current(9));
        let r = TraceRecord { at: t(1), name: "a.b", kind: ProbeKind::Gauge, value: 2.0 };
        sink.record("s", &r);
        assert_eq!(sink.meta_lines(), 1);
        assert_eq!(sink.lines(), 1, "meta lines are not probe records");
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = parse_json(lines[0]).unwrap();
        assert!(RunMeta::is_meta(&first));
        assert_eq!(RunMeta::from_json(&first).unwrap().unwrap().seed, 9);
        assert!(!RunMeta::is_meta(&parse_json(lines[1]).unwrap()));
    }

    #[test]
    fn recorder_and_sink_handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Recorder>();
        assert_send::<SinkHandle>();
        assert_send::<BufferSink>();
    }

    #[test]
    fn buffer_sink_replays_in_order_under_drain_src() {
        let buf = BufferSink::shared();
        let rec = Recorder::to_sink(buf.clone(), "ignored-while-staged");
        rec.gauge("a.one", t(1), 1.0);
        rec.count("a.two", t(2), 3);
        rec.event("a.three", t(3), 4.0);
        assert_eq!(buf.lock().unwrap().len(), 3);

        let mut ring = RingSink::new(8);
        buf.lock().unwrap().drain_into("cell.07", &mut ring);
        assert!(buf.lock().unwrap().is_empty(), "drain clears the buffer");
        let got: Vec<(String, &'static str)> =
            ring.records().map(|(src, r)| (src.clone(), r.name)).collect();
        assert_eq!(
            got,
            vec![
                ("cell.07".to_string(), "a.one"),
                ("cell.07".to_string(), "a.two"),
                ("cell.07".to_string(), "a.three"),
            ],
            "emission order kept, drain src stamped"
        );
    }

    #[test]
    fn buffer_sink_drain_retains_capacity_for_recycling() {
        let mut buf = BufferSink::new();
        let rec = TraceRecord { at: t(1), name: "a.b", kind: ProbeKind::Gauge, value: 1.0 };
        for _ in 0..64 {
            TraceSink::record(&mut buf, "ignored", &rec);
        }
        let mut ring = RingSink::new(8);
        buf.drain_into("cell.00", &mut ring);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 64, "drain must not give the backing storage back");
        // A second fill of the same size stays within the retained capacity.
        let cap = buf.capacity();
        for _ in 0..64 {
            TraceSink::record(&mut buf, "ignored", &rec);
        }
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record_and_counts() {
        let mut sink = JsonlSink::to_writer(Vec::new());
        let r1 =
            TraceRecord { at: t(1), name: "cell.prb_grant", kind: ProbeKind::Event, value: 40.0 };
        let r2 =
            TraceRecord { at: t(2), name: "cell.prb_grant", kind: ProbeKind::Event, value: 38.0 };
        let r3 =
            TraceRecord { at: t(2), name: "pacer.rate_bps", kind: ProbeKind::Gauge, value: 1e6 };
        sink.record("cell", &r1);
        sink.record("cell", &r2);
        sink.record("session", &r3);
        assert_eq!(sink.lines(), 3);
        assert_eq!(sink.counts(), vec![("cell.prb_grant", 2), ("pacer.rate_bps", 1)]);
        assert!(!sink.had_io_error());
        let text = String::from_utf8(std::mem::take(&mut sink.out)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            parse_json(line).expect("every JSONL line parses");
        }
    }
}
