//! Simulation clock types.
//!
//! [`SimTime`] is an absolute instant measured in microseconds since the
//! start of the simulation; [`SimDuration`] is a non-negative span. Both are
//! thin `u64` newtypes: cheap to copy, totally ordered, and overflow-checked
//! in debug builds like ordinary integer arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation instant, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulation time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future (which can happen for events racing within one tick).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds (rounding to the nearest µs).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "duration must be finite and non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float, for rate computations and reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// True if this is the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    /// How many whole `rhs` spans fit in `self`.
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Compute a rate in bits per second from a byte count over a span.
///
/// Returns 0.0 for a zero-length span rather than dividing by zero: a rate
/// observed over no time carries no information.
pub fn bits_per_sec(bytes: u64, over: SimDuration) -> f64 {
    if over.is_zero() {
        0.0
    } else {
        (bytes as f64 * 8.0) / over.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.0405).as_micros(), 40_500);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(3)).as_millis(), 12);
        assert_eq!(t - SimDuration::from_millis(15), SimTime::ZERO);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(late.saturating_since(early).as_millis(), 8);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn duration_division_counts_spans() {
        let frame = SimDuration::from_micros(27_778);
        let second = SimDuration::from_secs(1);
        assert_eq!(second / frame, 35); // 36 FPS => 35 whole intervals fit
    }

    #[test]
    fn rate_helper() {
        // 1250 bytes in 10 ms = 1 Mbps.
        let r = bits_per_sec(1_250, SimDuration::from_millis(10));
        assert!((r - 1_000_000.0).abs() < 1e-6);
        assert_eq!(bits_per_sec(100, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
