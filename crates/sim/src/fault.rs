//! Deterministic fault injection: typed fault plans applied through the
//! existing layer seams.
//!
//! POI360's contribution is surviving a *volatile* uplink (§4.3 of the
//! paper), but a smooth channel trace never exercises the recovery paths —
//! congestion-onset detection after a stall, pinning to PHY rate after a
//! radio link failure, ROI-feedback starvation. This module gives every
//! driver one vocabulary for breaking the link on purpose:
//!
//! * A [`FaultPlan`] is a time-ordered list of [`FaultEvent`]s, each a
//!   [`FaultKind`] active over a `[start, start + duration)` window.
//! * [`FaultPlan::at`] folds the windows overlapping an instant into one
//!   [`ActiveFaults`] summary with explicit composition rules (booleans OR,
//!   loss probabilities compose as `1 − Π(1−pᵢ)`, grant factors multiply,
//!   delays and loads add) so overlapping windows are deterministic and can
//!   never drive a value out of range.
//! * A [`FaultTimeline`] wraps a plan with edge detection: each subframe the
//!   owner of a seam calls [`FaultTimeline::advance`] and gets the active
//!   summary back, while injection/recovery *transitions* are emitted as
//!   sink-only `fault.*` events on the trace plane.
//!
//! Determinism contract: applying a fault plan draws **no randomness** of
//! its own — every fault scales or overrides values the simulation already
//! computed, so an empty plan is byte-identical to no plan at all, and the
//! same seed + plan always reproduces the same run. The seam owners
//! (cellular uplink, shared cell, session path pipes) each receive only the
//! slice of the plan they implement ([`FaultPlan::access_slice`] /
//! [`FaultPlan::path_slice`]), which also guarantees each transition event
//! is emitted exactly once.

use crate::time::{SimDuration, SimTime};

/// The fault taxonomy: everything the injection plane knows how to break.
///
/// Each variant maps onto exactly one existing layer seam; none of them
/// introduce new control flow into the healthy path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Radio link failure: the UE's grant drops to zero (TBS → 0) for the
    /// window, as if the channel entered a deep outage. Applied at the
    /// channel seam of `CellUplink` / the shared `Cell`.
    RadioLinkFailure,
    /// Diag-read stall: the modem diagnostic interface keeps reporting the
    /// buffer/TBS sample frozen at stall onset, so FBCC sees stale repeated
    /// `B(t)` values. Applied at the diag seam.
    DiagStall,
    /// Uplink grant starvation: the scheduler serves this UE only `factor`
    /// of its normal grant (0 ≤ factor < 1). Applied at the grant seam.
    GrantStarvation {
        /// Fraction of the normal grant that survives (clamped to [0, 1]).
        factor: f64,
    },
    /// RTCP / ROI-feedback loss burst: the receiver→sender feedback pipe
    /// drops packets with this extra probability. Applied at the feedback
    /// `DelayPipe` seam.
    FeedbackLoss {
        /// Extra loss probability on the feedback path (clamped to [0, 1]).
        loss: f64,
    },
    /// Wireline spike: the downstream (sender→receiver) path gains extra
    /// one-way delay and loss for the window. Applied at the downstream
    /// `DelayPipe` seam.
    WirelineSpike {
        /// Extra one-way delay added to each packet.
        extra_delay: SimDuration,
        /// Extra loss probability (clamped to [0, 1]).
        extra_loss: f64,
    },
    /// Background-load flash crowd: extra competing load appears on the
    /// cell (fraction of capacity, clamped to [0, 0.95]). Applied at the
    /// load seam of `CellUplink` / the shared `Cell`.
    FlashCrowd {
        /// Extra competing load as a fraction of cell capacity.
        extra_load: f64,
    },
}

impl FaultKind {
    /// Stable probe name for this kind's `fault.*` transition events.
    pub fn probe_name(self) -> &'static str {
        match self {
            FaultKind::RadioLinkFailure => "fault.radio_link_failure",
            FaultKind::DiagStall => "fault.diag_stall",
            FaultKind::GrantStarvation { .. } => "fault.grant_starvation",
            FaultKind::FeedbackLoss { .. } => "fault.feedback_loss",
            FaultKind::WirelineSpike { .. } => "fault.wireline_spike",
            FaultKind::FlashCrowd { .. } => "fault.flash_crowd",
        }
    }

    /// True for kinds applied inside the access network (uplink / cell).
    pub fn is_access(self) -> bool {
        matches!(
            self,
            FaultKind::RadioLinkFailure
                | FaultKind::DiagStall
                | FaultKind::GrantStarvation { .. }
                | FaultKind::FlashCrowd { .. }
        )
    }

    /// True for kinds applied on the end-to-end path pipes (feedback /
    /// downstream wireline).
    pub fn is_path(self) -> bool {
        !self.is_access()
    }
}

/// One fault window: `kind` is active over `[start, start + duration)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// What breaks.
    pub kind: FaultKind,
    /// When it breaks.
    pub start: SimTime,
    /// How long it stays broken.
    pub duration: SimDuration,
}

impl FaultEvent {
    /// First instant at which the fault is no longer active.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// True while the fault window covers `now` (half-open interval).
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end()
    }
}

/// Everything active at one instant, folded into in-range values.
///
/// `Default` is the healthy state: applying a default `ActiveFaults` must be
/// a no-op at every seam (the golden/determinism suites depend on it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActiveFaults {
    /// Any radio link failure window covers now.
    pub radio_failure: bool,
    /// Any diag stall window covers now.
    pub diag_stall: bool,
    /// Product of active grant-starvation factors, in [0, 1]; 1.0 = healthy.
    pub grant_factor: f64,
    /// Composed extra feedback loss probability, in [0, 1].
    pub feedback_loss: f64,
    /// Sum of active wireline extra delays.
    pub extra_path_delay: SimDuration,
    /// Composed extra downstream loss probability, in [0, 1].
    pub extra_path_loss: f64,
    /// Sum of active flash-crowd loads, clamped to [0, 0.95].
    pub flash_crowd_load: f64,
}

impl Default for ActiveFaults {
    fn default() -> Self {
        ActiveFaults {
            radio_failure: false,
            diag_stall: false,
            grant_factor: 1.0,
            feedback_loss: 0.0,
            extra_path_delay: SimDuration::ZERO,
            extra_path_loss: 0.0,
            flash_crowd_load: 0.0,
        }
    }
}

impl ActiveFaults {
    /// True when any fault is active (i.e. this differs from `Default`).
    pub fn any(&self) -> bool {
        *self != ActiveFaults::default()
    }
}

/// Compose two loss probabilities as independent drop chances.
fn compose_loss(a: f64, b: f64) -> f64 {
    (1.0 - (1.0 - a) * (1.0 - b)).clamp(0.0, 1.0)
}

/// A time-ordered list of fault windows.
///
/// Construction keeps the list sorted by `(start, end)` regardless of push
/// order, so two plans with the same windows are identical however they were
/// assembled — the property suite pins this.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: applying it anywhere is a no-op.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a fault window, clamping its parameters into range (loss and
    /// grant factors to [0, 1], flash-crowd load to [0, 0.95]) so that no
    /// plan can ever drive a seam value negative or above capacity.
    pub fn push(&mut self, kind: FaultKind, start: SimTime, duration: SimDuration) {
        let kind = match kind {
            FaultKind::GrantStarvation { factor } => {
                FaultKind::GrantStarvation { factor: factor.clamp(0.0, 1.0) }
            }
            FaultKind::FeedbackLoss { loss } => {
                FaultKind::FeedbackLoss { loss: loss.clamp(0.0, 1.0) }
            }
            FaultKind::WirelineSpike { extra_delay, extra_loss } => {
                FaultKind::WirelineSpike { extra_delay, extra_loss: extra_loss.clamp(0.0, 1.0) }
            }
            FaultKind::FlashCrowd { extra_load } => {
                FaultKind::FlashCrowd { extra_load: extra_load.clamp(0.0, 0.95) }
            }
            other => other,
        };
        let ev = FaultEvent { kind, start, duration };
        let at = self.events.partition_point(|e| (e.start, e.end()) <= (ev.start, ev.end()));
        self.events.insert(at, ev);
    }

    /// Builder-style [`FaultPlan::push`].
    pub fn with(mut self, kind: FaultKind, start: SimTime, duration: SimDuration) -> Self {
        self.push(kind, start, duration);
        self
    }

    /// True when the plan has no windows.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The windows, sorted by `(start, end)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The last instant at which any window is still active (`SimTime::ZERO`
    /// for an empty plan).
    pub fn horizon(&self) -> SimTime {
        self.events.iter().map(|e| e.end()).max().unwrap_or(SimTime::ZERO)
    }

    /// Fold every window covering `now` into one [`ActiveFaults`] summary.
    pub fn at(&self, now: SimTime) -> ActiveFaults {
        let mut af = ActiveFaults::default();
        for ev in &self.events {
            if !ev.active_at(now) {
                continue;
            }
            match ev.kind {
                FaultKind::RadioLinkFailure => af.radio_failure = true,
                FaultKind::DiagStall => af.diag_stall = true,
                FaultKind::GrantStarvation { factor } => {
                    af.grant_factor = (af.grant_factor * factor).clamp(0.0, 1.0);
                }
                FaultKind::FeedbackLoss { loss } => {
                    af.feedback_loss = compose_loss(af.feedback_loss, loss);
                }
                FaultKind::WirelineSpike { extra_delay, extra_loss } => {
                    af.extra_path_delay += extra_delay;
                    af.extra_path_loss = compose_loss(af.extra_path_loss, extra_loss);
                }
                FaultKind::FlashCrowd { extra_load } => {
                    af.flash_crowd_load = (af.flash_crowd_load + extra_load).clamp(0.0, 0.95);
                }
            }
        }
        af
    }

    /// The sub-plan of access-network faults (radio / diag / grant / flash
    /// crowd), owned by the uplink or cell seam.
    pub fn access_slice(&self) -> FaultPlan {
        FaultPlan { events: self.events.iter().copied().filter(|e| e.kind.is_access()).collect() }
    }

    /// The sub-plan of end-to-end path faults (feedback loss / wireline
    /// spikes), owned by the session's pipes.
    pub fn path_slice(&self) -> FaultPlan {
        FaultPlan { events: self.events.iter().copied().filter(|e| e.kind.is_path()).collect() }
    }

    /// The same plan with every start and duration multiplied by
    /// `num / den` — used to compress scenarios for `--smoke` runs.
    pub fn time_scaled(&self, num: u64, den: u64) -> FaultPlan {
        assert!(den > 0, "time_scaled denominator must be positive");
        let scale = |us: u64| us.saturating_mul(num) / den;
        FaultPlan {
            events: self
                .events
                .iter()
                .map(|e| FaultEvent {
                    kind: e.kind,
                    start: SimTime::from_micros(scale(e.start.as_micros())),
                    duration: SimDuration::from_micros(scale(e.duration.as_micros())),
                })
                .collect(),
        }
    }
}

/// A plan plus edge detection: the per-subframe driver of one seam.
///
/// Each seam owner holds one timeline over its slice of the plan and calls
/// [`FaultTimeline::advance`] once per subframe. The summary comes back for
/// application; transitions (a field changing since the previous call) are
/// emitted as sink-only `fault.*` events — value = the fault magnitude at
/// injection, `0.0` at recovery — so a JSONL trace shows exactly when each
/// fault hit and cleared.
#[derive(Clone, Debug, Default)]
pub struct FaultTimeline {
    plan: FaultPlan,
    prev: Option<ActiveFaults>,
}

impl FaultTimeline {
    /// Wrap a plan (usually a slice of the session-level plan).
    pub fn new(plan: FaultPlan) -> Self {
        FaultTimeline { plan, prev: None }
    }

    /// True when the underlying plan has no windows; the fast path for
    /// un-faulted runs.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Compute the faults active at `now`, emitting `fault.*` transition
    /// events on `rec` for every field that changed since the last call.
    pub fn advance(&mut self, now: SimTime, rec: &crate::trace::Recorder) -> ActiveFaults {
        if self.plan.is_empty() {
            return ActiveFaults::default();
        }
        let af = self.plan.at(now);
        let prev = self.prev.unwrap_or_default();
        if af != prev {
            let flag = |b: bool| if b { 1.0 } else { 0.0 };
            if af.radio_failure != prev.radio_failure {
                rec.event("fault.radio_link_failure", now, flag(af.radio_failure));
            }
            if af.diag_stall != prev.diag_stall {
                rec.event("fault.diag_stall", now, flag(af.diag_stall));
            }
            if af.grant_factor != prev.grant_factor {
                // Magnitude = how much of the grant is taken away.
                rec.event("fault.grant_starvation", now, 1.0 - af.grant_factor);
            }
            if af.feedback_loss != prev.feedback_loss {
                rec.event("fault.feedback_loss", now, af.feedback_loss);
            }
            if af.extra_path_delay != prev.extra_path_delay
                || af.extra_path_loss != prev.extra_path_loss
            {
                rec.event("fault.wireline_spike", now, af.extra_path_delay.as_secs_f64());
            }
            if af.flash_crowd_load != prev.flash_crowd_load {
                rec.event("fault.flash_crowd", now, af.flash_crowd_load);
            }
        }
        self.prev = Some(af);
        af
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Recorder, RingSink};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn empty_plan_is_healthy_everywhere() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.at(t(0)).any());
        assert!(!plan.at(t(1_000_000)).any());
        assert_eq!(plan.horizon(), SimTime::ZERO);
    }

    #[test]
    fn window_is_half_open() {
        let plan = FaultPlan::new().with(FaultKind::RadioLinkFailure, t(100), d(50));
        assert!(!plan.at(t(99)).radio_failure);
        assert!(plan.at(t(100)).radio_failure);
        assert!(plan.at(t(149)).radio_failure);
        assert!(!plan.at(t(150)).radio_failure, "end is exclusive");
        assert_eq!(plan.horizon(), t(150));
    }

    #[test]
    fn push_order_does_not_matter() {
        let a = FaultPlan::new().with(FaultKind::RadioLinkFailure, t(500), d(100)).with(
            FaultKind::DiagStall,
            t(100),
            d(300),
        );
        let b = FaultPlan::new().with(FaultKind::DiagStall, t(100), d(300)).with(
            FaultKind::RadioLinkFailure,
            t(500),
            d(100),
        );
        assert_eq!(a, b);
        assert_eq!(a.events()[0].kind, FaultKind::DiagStall);
    }

    #[test]
    fn overlapping_losses_compose_and_stay_in_range() {
        let plan = FaultPlan::new().with(FaultKind::FeedbackLoss { loss: 0.5 }, t(0), d(100)).with(
            FaultKind::FeedbackLoss { loss: 0.5 },
            t(50),
            d(100),
        );
        assert_eq!(plan.at(t(10)).feedback_loss, 0.5);
        assert!((plan.at(t(60)).feedback_loss - 0.75).abs() < 1e-12);
        // Even a stack of total-loss windows stays at exactly 1.0.
        let total = FaultPlan::new()
            .with(FaultKind::FeedbackLoss { loss: 1.0 }, t(0), d(100))
            .with(FaultKind::FeedbackLoss { loss: 1.0 }, t(0), d(100));
        assert_eq!(total.at(t(1)).feedback_loss, 1.0);
    }

    #[test]
    fn grant_factors_multiply_and_clamp() {
        let plan = FaultPlan::new()
            .with(FaultKind::GrantStarvation { factor: 0.5 }, t(0), d(100))
            .with(FaultKind::GrantStarvation { factor: 0.5 }, t(50), d(100));
        assert_eq!(plan.at(t(10)).grant_factor, 0.5);
        assert_eq!(plan.at(t(60)).grant_factor, 0.25);
        // Out-of-range parameters are clamped at push time.
        let wild = FaultPlan::new().with(FaultKind::GrantStarvation { factor: -3.0 }, t(0), d(10));
        assert_eq!(wild.at(t(1)).grant_factor, 0.0);
    }

    #[test]
    fn flash_crowd_loads_add_and_clamp() {
        let plan = FaultPlan::new()
            .with(FaultKind::FlashCrowd { extra_load: 0.6 }, t(0), d(100))
            .with(FaultKind::FlashCrowd { extra_load: 0.6 }, t(0), d(100));
        assert_eq!(plan.at(t(1)).flash_crowd_load, 0.95);
    }

    #[test]
    fn wireline_spikes_sum_delay() {
        let plan = FaultPlan::new()
            .with(FaultKind::WirelineSpike { extra_delay: d(30), extra_loss: 0.1 }, t(0), d(100))
            .with(FaultKind::WirelineSpike { extra_delay: d(20), extra_loss: 0.1 }, t(0), d(100));
        let af = plan.at(t(1));
        assert_eq!(af.extra_path_delay, d(50));
        assert!((af.extra_path_loss - 0.19).abs() < 1e-12);
    }

    #[test]
    fn slices_partition_the_plan() {
        let plan = FaultPlan::new()
            .with(FaultKind::RadioLinkFailure, t(0), d(10))
            .with(FaultKind::DiagStall, t(0), d(10))
            .with(FaultKind::GrantStarvation { factor: 0.2 }, t(0), d(10))
            .with(FaultKind::FlashCrowd { extra_load: 0.3 }, t(0), d(10))
            .with(FaultKind::FeedbackLoss { loss: 0.5 }, t(0), d(10))
            .with(FaultKind::WirelineSpike { extra_delay: d(5), extra_loss: 0.0 }, t(0), d(10));
        let access = plan.access_slice();
        let path = plan.path_slice();
        assert_eq!(access.events().len(), 4);
        assert_eq!(path.events().len(), 2);
        assert_eq!(access.events().len() + path.events().len(), plan.events().len());
        assert!(access.events().iter().all(|e| e.kind.is_access()));
        assert!(path.events().iter().all(|e| e.kind.is_path()));
    }

    #[test]
    fn time_scaling_compresses_windows() {
        let plan = FaultPlan::new().with(FaultKind::RadioLinkFailure, t(10_000), d(2_000));
        let smoke = plan.time_scaled(1, 4);
        assert_eq!(smoke.events()[0].start, t(2_500));
        assert_eq!(smoke.events()[0].duration, d(500));
    }

    #[test]
    fn timeline_emits_transitions_once() {
        let ring = RingSink::shared(64);
        let rec = Recorder::to_sink(ring.clone(), "test");
        let plan = FaultPlan::new().with(FaultKind::RadioLinkFailure, t(5), d(10));
        let mut tl = FaultTimeline::new(plan);
        for ms in 0..30 {
            tl.advance(t(ms), &rec);
        }
        let sink = ring.lock().unwrap();
        assert_eq!(sink.count_of("fault.radio_link_failure"), 2, "one onset + one recovery");
        let values: Vec<f64> = sink
            .records()
            .filter(|(_, r)| r.name == "fault.radio_link_failure")
            .map(|(_, r)| r.value)
            .collect();
        assert_eq!(values, vec![1.0, 0.0]);
    }

    #[test]
    fn empty_timeline_emits_nothing() {
        let ring = RingSink::shared(8);
        let rec = Recorder::to_sink(ring.clone(), "test");
        let mut tl = FaultTimeline::new(FaultPlan::new());
        for ms in 0..10 {
            assert!(!tl.advance(t(ms), &rec).any());
        }
        assert!(ring.lock().unwrap().is_empty());
    }
}
