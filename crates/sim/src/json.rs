//! Hand-rolled JSON writing and `key=value` parsing.
//!
//! The workspace builds offline against an empty registry, so instead of
//! `serde` the measurement plane serializes through two tiny traits kept
//! here in the kernel crate where every other crate can implement them:
//!
//! * [`ToJson`] — append a JSON representation to a `String`. Reports,
//!   aggregates and bench results implement it so the `reproduce` harness
//!   and `poi360-testkit::bench` can emit machine-readable output.
//! * [`FromKv`] — construct a value from a flat `key=value` map, the
//!   inverse direction used for CLI/experiment configuration overrides.
//! * [`parse_json`] — a small recursive-descent parser into [`JsonValue`],
//!   added for the instrumentation plane so tests can round-trip trace
//!   records through the same writer that produced them.
//!
//! The surface is deliberately minimal to stay auditable: the parser exists
//! for verification (round-tripping what the writer emits), not as a general
//! serde replacement.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serialize a value as JSON into a caller-provided buffer.
pub trait ToJson {
    /// Append this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Convenience: render to a fresh string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Escape and quote a string per RFC 8259.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` prints the shortest representation that round-trips.
            // `write!` formats straight into the caller's buffer: number
            // rendering sits on the per-subframe trace path, where a
            // `format!` temporary per scalar is measurable.
            let _ = write!(out, "{self:?}");
        } else {
            // JSON has no NaN/Inf; null is the conventional stand-in.
            out.push_str("null");
        }
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        }
    )*};
}
impl_tojson_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (k, v) in self.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl ToJson for crate::time::SimTime {
    fn write_json(&self, out: &mut String) {
        self.as_micros().write_json(out);
    }
}

impl ToJson for crate::time::SimDuration {
    fn write_json(&self, out: &mut String) {
        self.as_micros().write_json(out);
    }
}

impl ToJson for crate::series::TimeSeries {
    /// A series serializes as `[[t_us, value], ...]`.
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (k, (t, v)) in self.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            (t, v).write_json(out);
        }
        out.push(']');
    }
}

/// Incremental JSON object writer: `field()` for each key, then `finish()`.
///
/// Keys are written in call order, so a struct's `ToJson` impl produces
/// the same byte sequence every run — the determinism tests rely on that.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Start an object.
    pub fn new() -> JsonObject {
        JsonObject { buf: String::from("{"), any: false }
    }

    /// Append one `"key": value` member.
    pub fn field(mut self, key: &str, value: &dyn ToJson) -> JsonObject {
        if self.any {
            self.buf.push(',');
        }
        write_json_string(key, &mut self.buf);
        self.buf.push(':');
        value.write_json(&mut self.buf);
        self.any = true;
        self
    }

    /// Close the object and append it to `out`.
    pub fn write(mut self, out: &mut String) {
        self.buf.push('}');
        out.push_str(&self.buf);
    }

    /// Close the object and return it.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A flat string→string map parsed from `key=value` text.
///
/// Accepted separators between pairs: commas, whitespace, and newlines.
/// Lines starting with `#` are ignored so the format doubles as a minimal
/// config-file syntax.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvMap {
    pairs: BTreeMap<String, String>,
}

impl KvMap {
    /// Parse `key=value` pairs. Later duplicates win.
    pub fn parse(text: &str) -> Result<KvMap, String> {
        let mut pairs = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            for token in line.split(|c: char| c == ',' || c.is_whitespace()) {
                if token.is_empty() {
                    continue;
                }
                let Some((k, v)) = token.split_once('=') else {
                    return Err(format!("malformed key=value token: {token:?}"));
                };
                pairs.insert(k.trim().to_string(), v.trim().to_string());
            }
        }
        Ok(KvMap { pairs })
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.get(key).map(String::as_str)
    }

    /// Parse a value with `FromStr`; `Ok(None)` when the key is absent.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => {
                raw.parse::<T>().map(Some).map_err(|_| format!("cannot parse {key}={raw:?}"))
            }
        }
    }

    /// Keys present in the map.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.pairs.keys().map(String::as_str)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pairs were parsed.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// A parsed JSON document.
///
/// Objects keep their members in document order (a `Vec`, not a map) so a
/// round-trip through [`parse_json`] can also check field ordering, which
/// the determinism suites care about.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null` (also what the writer emits for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; the sim only ever writes values that fit an `f64`.
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up an object member by key; `None` for non-objects too.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        token
            .parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {token:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // The writer only emits \u for control chars, so
                            // surrogate pairs never occur; reject them rather
                            // than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u escape {code:#06x}"))?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape {hex:?}"))?;
        self.pos = end;
        Ok(code)
    }
}

/// Construct a value from a parsed [`KvMap`].
pub trait FromKv: Sized {
    /// Build from the map, erroring on malformed values. Implementations
    /// should treat missing keys as "keep the default".
    fn from_kv(kv: &KvMap) -> Result<Self, String>;

    /// Parse straight from `key=value` text.
    fn from_kv_str(text: &str) -> Result<Self, String> {
        Self::from_kv(&KvMap::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;
    use crate::time::SimTime;

    #[test]
    fn scalars_render() {
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-7i64).to_json(), "-7");
        assert_eq!(true.to_json(), "true");
        assert_eq!("a\"b\\c\n".to_json(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn containers_render() {
        assert_eq!(vec![1u64, 2, 3].to_json(), "[1,2,3]");
        assert_eq!((1u64, 2.5f64).to_json(), "[1,2.5]");
        assert_eq!(Option::<u64>::None.to_json(), "null");
        assert_eq!(Some(3u64).to_json(), "3");
    }

    #[test]
    fn objects_preserve_field_order() {
        let s = JsonObject::new().field("b", &1u64).field("a", &"x").finish();
        assert_eq!(s, r#"{"b":1,"a":"x"}"#);
    }

    #[test]
    fn series_renders_pairs() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(1), 2.0);
        ts.push(SimTime::from_millis(2), 3.5);
        assert_eq!(ts.to_json(), "[[1000,2.0],[2000,3.5]]");
    }

    #[test]
    fn kv_parses_mixed_separators() {
        let kv = KvMap::parse("a=1, b=2\n# comment\nc=hello d=4.5").unwrap();
        assert_eq!(kv.get("a"), Some("1"));
        assert_eq!(kv.get_parsed::<u64>("b").unwrap(), Some(2));
        assert_eq!(kv.get("c"), Some("hello"));
        assert_eq!(kv.get_parsed::<f64>("d").unwrap(), Some(4.5));
        assert_eq!(kv.get("missing"), None);
        assert_eq!(kv.len(), 4);
    }

    #[test]
    fn kv_rejects_malformed() {
        assert!(KvMap::parse("novalue").is_err());
        let kv = KvMap::parse("x=notanum").unwrap();
        assert!(kv.get_parsed::<u64>("x").is_err());
    }

    #[test]
    fn kv_malformed_token_error_names_the_token() {
        let err = KvMap::parse("a=1 stray b=2").unwrap_err();
        assert!(err.contains("malformed key=value token"), "{err}");
        assert!(err.contains("stray"), "error should quote the offender: {err}");
    }

    #[test]
    fn kv_malformed_value_error_names_key_and_value() {
        let kv = KvMap::parse("repeats=lots").unwrap();
        let err = kv.get_parsed::<u64>("repeats").unwrap_err();
        assert!(err.contains("repeats"), "{err}");
        assert!(err.contains("lots"), "{err}");
    }

    #[test]
    fn kv_later_duplicates_win() {
        let kv = KvMap::parse("a=1 a=2").unwrap();
        assert_eq!(kv.get("a"), Some("2"));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn from_kv_surfaces_unknown_keys() {
        // A minimal FromKv impl exercising the recommended strict pattern:
        // reject keys outside the known set so typos fail loudly.
        #[derive(Debug)]
        struct Strict {
            n: u64,
        }
        impl FromKv for Strict {
            fn from_kv(kv: &KvMap) -> Result<Self, String> {
                for key in kv.keys() {
                    if key != "n" {
                        return Err(format!("unknown key {key:?} (expected \"n\")"));
                    }
                }
                Ok(Strict { n: kv.get_parsed("n")?.unwrap_or(1) })
            }
        }
        assert_eq!(Strict::from_kv_str("n=9").unwrap().n, 9);
        let err = Strict::from_kv_str("m=9").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        assert!(err.contains('m'), "{err}");
        assert!(Strict::from_kv_str("n=x").is_err());
    }

    #[test]
    fn parser_handles_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("-2.5e3").unwrap(), JsonValue::Number(-2500.0));
        assert_eq!(parse_json(r#""a\"b\\c\n""#).unwrap().as_str(), Some("a\"b\\c\n"));
        assert_eq!(parse_json(r#""\u0007""#).unwrap().as_str(), Some("\u{7}"));
    }

    #[test]
    fn parser_handles_containers_and_order() {
        let v = parse_json(r#" {"b": [1, 2.5, null], "a": {"x": true}} "#).unwrap();
        let members = match &v {
            JsonValue::Object(m) => m,
            other => panic!("expected object, got {other:?}"),
        };
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().get("x").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let doc = JsonObject::new()
            .field("label", &"fbcc \"busy\"")
            .field("rate", &1.25e6f64)
            .field("nan", &f64::NAN)
            .field("series", &{
                let mut ts = TimeSeries::new();
                ts.push(SimTime::from_millis(1), 2.0);
                ts
            })
            .finish();
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("label").unwrap().as_str(), Some("fbcc \"busy\""));
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(1.25e6));
        assert_eq!(v.get("nan").unwrap(), &JsonValue::Null);
        let series = v.get("series").unwrap().as_array().unwrap();
        assert_eq!(series[0].as_array().unwrap()[0].as_f64(), Some(1000.0));
    }
}
