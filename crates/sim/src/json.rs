//! Hand-rolled JSON writing and `key=value` parsing.
//!
//! The workspace builds offline against an empty registry, so instead of
//! `serde` the measurement plane serializes through two tiny traits kept
//! here in the kernel crate where every other crate can implement them:
//!
//! * [`ToJson`] — append a JSON representation to a `String`. Reports,
//!   aggregates and bench results implement it so the `reproduce` harness
//!   and `poi360-testkit::bench` can emit machine-readable output.
//! * [`FromKv`] — construct a value from a flat `key=value` map, the
//!   inverse direction used for CLI/experiment configuration overrides.
//!
//! The JSON writer is write-only by design: nothing in the repo needs a
//! JSON *parser*, and keeping the surface minimal keeps it auditable.

use std::collections::BTreeMap;

/// Serialize a value as JSON into a caller-provided buffer.
pub trait ToJson {
    /// Append this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Convenience: render to a fresh string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Escape and quote a string per RFC 8259.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` prints the shortest representation that round-trips.
            out.push_str(&format!("{self:?}"));
        } else {
            // JSON has no NaN/Inf; null is the conventional stand-in.
            out.push_str("null");
        }
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_tojson_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (k, v) in self.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl ToJson for crate::time::SimTime {
    fn write_json(&self, out: &mut String) {
        self.as_micros().write_json(out);
    }
}

impl ToJson for crate::time::SimDuration {
    fn write_json(&self, out: &mut String) {
        self.as_micros().write_json(out);
    }
}

impl ToJson for crate::series::TimeSeries {
    /// A series serializes as `[[t_us, value], ...]`.
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (k, (t, v)) in self.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            (t, v).write_json(out);
        }
        out.push(']');
    }
}

/// Incremental JSON object writer: `field()` for each key, then `finish()`.
///
/// Keys are written in call order, so a struct's `ToJson` impl produces
/// the same byte sequence every run — the determinism tests rely on that.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Start an object.
    pub fn new() -> JsonObject {
        JsonObject { buf: String::from("{"), any: false }
    }

    /// Append one `"key": value` member.
    pub fn field(mut self, key: &str, value: &dyn ToJson) -> JsonObject {
        if self.any {
            self.buf.push(',');
        }
        write_json_string(key, &mut self.buf);
        self.buf.push(':');
        value.write_json(&mut self.buf);
        self.any = true;
        self
    }

    /// Close the object and append it to `out`.
    pub fn write(mut self, out: &mut String) {
        self.buf.push('}');
        out.push_str(&self.buf);
    }

    /// Close the object and return it.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A flat string→string map parsed from `key=value` text.
///
/// Accepted separators between pairs: commas, whitespace, and newlines.
/// Lines starting with `#` are ignored so the format doubles as a minimal
/// config-file syntax.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvMap {
    pairs: BTreeMap<String, String>,
}

impl KvMap {
    /// Parse `key=value` pairs. Later duplicates win.
    pub fn parse(text: &str) -> Result<KvMap, String> {
        let mut pairs = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            for token in line.split(|c: char| c == ',' || c.is_whitespace()) {
                if token.is_empty() {
                    continue;
                }
                let Some((k, v)) = token.split_once('=') else {
                    return Err(format!("malformed key=value token: {token:?}"));
                };
                pairs.insert(k.trim().to_string(), v.trim().to_string());
            }
        }
        Ok(KvMap { pairs })
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.get(key).map(String::as_str)
    }

    /// Parse a value with `FromStr`; `Ok(None)` when the key is absent.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => {
                raw.parse::<T>().map(Some).map_err(|_| format!("cannot parse {key}={raw:?}"))
            }
        }
    }

    /// Keys present in the map.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.pairs.keys().map(String::as_str)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pairs were parsed.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Construct a value from a parsed [`KvMap`].
pub trait FromKv: Sized {
    /// Build from the map, erroring on malformed values. Implementations
    /// should treat missing keys as "keep the default".
    fn from_kv(kv: &KvMap) -> Result<Self, String>;

    /// Parse straight from `key=value` text.
    fn from_kv_str(text: &str) -> Result<Self, String> {
        Self::from_kv(&KvMap::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;
    use crate::time::SimTime;

    #[test]
    fn scalars_render() {
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-7i64).to_json(), "-7");
        assert_eq!(true.to_json(), "true");
        assert_eq!("a\"b\\c\n".to_json(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn containers_render() {
        assert_eq!(vec![1u64, 2, 3].to_json(), "[1,2,3]");
        assert_eq!((1u64, 2.5f64).to_json(), "[1,2.5]");
        assert_eq!(Option::<u64>::None.to_json(), "null");
        assert_eq!(Some(3u64).to_json(), "3");
    }

    #[test]
    fn objects_preserve_field_order() {
        let s = JsonObject::new().field("b", &1u64).field("a", &"x").finish();
        assert_eq!(s, r#"{"b":1,"a":"x"}"#);
    }

    #[test]
    fn series_renders_pairs() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(1), 2.0);
        ts.push(SimTime::from_millis(2), 3.5);
        assert_eq!(ts.to_json(), "[[1000,2.0],[2000,3.5]]");
    }

    #[test]
    fn kv_parses_mixed_separators() {
        let kv = KvMap::parse("a=1, b=2\n# comment\nc=hello d=4.5").unwrap();
        assert_eq!(kv.get("a"), Some("1"));
        assert_eq!(kv.get_parsed::<u64>("b").unwrap(), Some(2));
        assert_eq!(kv.get("c"), Some("hello"));
        assert_eq!(kv.get_parsed::<f64>("d").unwrap(), Some(4.5));
        assert_eq!(kv.get("missing"), None);
        assert_eq!(kv.len(), 4);
    }

    #[test]
    fn kv_rejects_malformed() {
        assert!(KvMap::parse("novalue").is_err());
        let kv = KvMap::parse("x=notanum").unwrap();
        assert!(kv.get_parsed::<u64>("x").is_err());
    }
}
