//! Small reusable stochastic processes.
//!
//! The channel and traffic models in `poi360-lte` / `poi360-net` are built
//! from two primitives:
//!
//! * [`OrnsteinUhlenbeck`] — a mean-reverting Gaussian process, used for
//!   log-normal shadowing (slow RSS drift as the user or environment moves).
//! * [`MarkovOnOff`] — a two-state continuous-time Markov chain, used for
//!   bursty cross traffic and deep-fade episodes.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Mean-reverting Gaussian (Ornstein–Uhlenbeck) process.
///
/// `dX = theta (mu - X) dt + sigma dW`. Sampled with the exact discretization,
/// so the step size does not bias the stationary distribution: the stationary
/// std is `sigma / sqrt(2 theta)`.
#[derive(Clone, Debug)]
pub struct OrnsteinUhlenbeck {
    mu: f64,
    theta: f64,
    sigma: f64,
    x: f64,
    // Transition coefficients are pure functions of (theta, sigma, dt);
    // callers step on a fixed cadence, so cache them per step size and skip
    // the exp/sqrt on every tick. Recomputing yields the same bits, so the
    // cache cannot perturb a deterministic run.
    cached_dt: f64,
    decay: f64,
    noise_scale: f64,
}

impl OrnsteinUhlenbeck {
    /// Create a process with mean `mu`, reversion rate `theta` (1/s), and
    /// diffusion `sigma`, started at the mean.
    pub fn new(mu: f64, theta: f64, sigma: f64) -> Self {
        assert!(theta > 0.0, "reversion rate must be positive");
        assert!(sigma >= 0.0);
        OrnsteinUhlenbeck {
            mu,
            theta,
            sigma,
            x: mu,
            cached_dt: f64::NAN,
            decay: 0.0,
            noise_scale: 0.0,
        }
    }

    /// Convenience constructor from the stationary standard deviation and a
    /// correlation time constant `tau` (seconds): `theta = 1/tau`,
    /// `sigma = std * sqrt(2/tau)`.
    pub fn with_stationary(mu: f64, stationary_std: f64, tau_secs: f64) -> Self {
        assert!(tau_secs > 0.0);
        let theta = 1.0 / tau_secs;
        let sigma = stationary_std * (2.0 * theta).sqrt();
        Self::new(mu, theta, sigma)
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.x
    }

    /// Override the current value (e.g. after a handover discontinuity).
    pub fn set_value(&mut self, x: f64) {
        self.x = x;
    }

    /// Advance by `dt` and return the new value.
    pub fn step(&mut self, dt: SimDuration, rng: &mut SimRng) -> f64 {
        let dt = dt.as_secs_f64();
        if dt != self.cached_dt {
            let decay = (-self.theta * dt).exp();
            // Exact transition: X' ~ N(mu + (X-mu) e^{-theta dt}, var)
            let var = self.sigma * self.sigma / (2.0 * self.theta) * (1.0 - decay * decay);
            self.cached_dt = dt;
            self.decay = decay;
            self.noise_scale = var.sqrt();
        }
        self.x = self.mu + (self.x - self.mu) * self.decay + self.noise_scale * rng.gaussian();
        self.x
    }
}

/// Two-state (on/off) continuous-time Markov chain with exponentially
/// distributed dwell times.
#[derive(Clone, Debug)]
pub struct MarkovOnOff {
    mean_on: SimDuration,
    mean_off: SimDuration,
    on: bool,
    remaining: SimDuration,
}

impl MarkovOnOff {
    /// Create a chain with the given mean dwell times, starting in the
    /// `start_on` state with a freshly drawn dwell.
    pub fn new(
        mean_on: SimDuration,
        mean_off: SimDuration,
        start_on: bool,
        rng: &mut SimRng,
    ) -> Self {
        assert!(!mean_on.is_zero() && !mean_off.is_zero());
        let mut chain =
            MarkovOnOff { mean_on, mean_off, on: start_on, remaining: SimDuration::ZERO };
        chain.remaining = chain.draw_dwell(rng);
        chain
    }

    fn draw_dwell(&self, rng: &mut SimRng) -> SimDuration {
        let mean = if self.on { self.mean_on } else { self.mean_off };
        SimDuration::from_secs_f64(rng.exponential(mean.as_secs_f64()))
    }

    /// Whether the chain is currently in the ON state.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Long-run fraction of time spent ON.
    pub fn duty_cycle(&self) -> f64 {
        let on = self.mean_on.as_secs_f64();
        let off = self.mean_off.as_secs_f64();
        on / (on + off)
    }

    /// Advance the chain by `dt`, flipping through as many dwell periods as
    /// fit, and return the state at the end of the step.
    pub fn step(&mut self, mut dt: SimDuration, rng: &mut SimRng) -> bool {
        while dt >= self.remaining {
            dt -= self.remaining;
            self.on = !self.on;
            self.remaining = self.draw_dwell(rng);
        }
        self.remaining -= dt;
        self.on
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn ou_reverts_to_mean() {
        let mut rng = SimRng::from_seed(1);
        let mut ou = OrnsteinUhlenbeck::with_stationary(10.0, 2.0, 1.0);
        ou.set_value(100.0);
        // After many time constants the excursion must have decayed.
        for _ in 0..1_000 {
            ou.step(SimDuration::from_millis(100), &mut rng);
        }
        assert!((ou.value() - 10.0).abs() < 10.0, "value {}", ou.value());
    }

    #[test]
    fn ou_stationary_std_matches() {
        let mut rng = SimRng::from_seed(2);
        let mut ou = OrnsteinUhlenbeck::with_stationary(0.0, 3.0, 0.5);
        // Burn in.
        for _ in 0..1_000 {
            ou.step(SimDuration::from_millis(50), &mut rng);
        }
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let v = ou.step(SimDuration::from_millis(50), &mut rng);
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let std = (sumsq / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((std - 3.0).abs() < 0.3, "std {std}");
    }

    #[test]
    fn ou_exact_step_is_stepsize_invariant() {
        // Stepping 1x100ms vs 10x10ms must give the same *distribution*;
        // check variance agreement empirically.
        let run = |steps: u64, dt_ms: u64, seed: u64| -> f64 {
            let mut rng = SimRng::from_seed(seed);
            let mut ou = OrnsteinUhlenbeck::with_stationary(0.0, 1.0, 0.2);
            let mut sumsq = 0.0;
            let n = 20_000u64;
            for _ in 0..n {
                let mut v = 0.0;
                for _ in 0..steps {
                    v = ou.step(SimDuration::from_millis(dt_ms), &mut rng);
                }
                sumsq += v * v;
            }
            (sumsq / n as f64).sqrt()
        };
        let coarse = run(1, 100, 3);
        let fine = run(10, 10, 4);
        assert!((coarse - fine).abs() < 0.1, "coarse {coarse} fine {fine}");
    }

    #[test]
    fn ou_coefficient_cache_is_bit_identical() {
        // Alternating step sizes forces cache invalidation every step; a
        // process that recomputes from scratch each time (fresh clone, cold
        // cache) must produce the exact same bits.
        let mut rng_a = SimRng::from_seed(9);
        let mut rng_b = SimRng::from_seed(9);
        let mut cached = OrnsteinUhlenbeck::with_stationary(5.0, 2.0, 0.4);
        let mut cold = OrnsteinUhlenbeck::with_stationary(5.0, 2.0, 0.4);
        for k in 0..500u64 {
            let dt = SimDuration::from_millis(if k % 3 == 0 { 1 } else { 100 });
            let a = cached.step(dt, &mut rng_a);
            // Rebuild the uncached process at the same state each step.
            let mut fresh = OrnsteinUhlenbeck::with_stationary(5.0, 2.0, 0.4);
            fresh.set_value(cold.value());
            let b = fresh.step(dt, &mut rng_b);
            cold = fresh;
            assert_eq!(a.to_bits(), b.to_bits(), "step {k}");
        }
    }

    #[test]
    fn markov_duty_cycle_converges() {
        let mut rng = SimRng::from_seed(5);
        let mut chain = MarkovOnOff::new(
            SimDuration::from_millis(300),
            SimDuration::from_millis(700),
            false,
            &mut rng,
        );
        let dt = SimDuration::from_millis(1);
        let n = 2_000_000u64;
        let mut on_count = 0u64;
        for _ in 0..n {
            if chain.step(dt, &mut rng) {
                on_count += 1;
            }
        }
        let measured = on_count as f64 / n as f64;
        assert!((measured - chain.duty_cycle()).abs() < 0.02, "measured {measured}");
    }

    #[test]
    fn markov_flips_through_multiple_dwells_in_one_step() {
        let mut rng = SimRng::from_seed(6);
        let mut chain = MarkovOnOff::new(
            SimDuration::from_millis(1),
            SimDuration::from_millis(1),
            true,
            &mut rng,
        );
        // A very long step must terminate and land in a valid state.
        chain.step(SimDuration::from_secs(10), &mut rng);
    }
}
