//! Time-series recording for the measurement plane.
//!
//! Every experiment records `(SimTime, f64)` samples — buffer levels,
//! per-frame PSNR, throughput — and later reduces them to the statistics a
//! figure needs. [`TimeSeries`] is deliberately simple: an append-only vector
//! with reduction helpers, kept in `poi360-sim` so all crates share one
//! representation.

use crate::time::{SimDuration, SimTime};

/// Error returned by [`TimeSeries::try_push`] when a sample would land
/// before the series' current tail. Carries both timestamps so callers can
/// log or count the rejection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfOrderSample {
    /// Timestamp of the newest sample already in the series.
    pub last: SimTime,
    /// Timestamp of the rejected sample.
    pub rejected: SimTime,
}

impl std::fmt::Display for OutOfOrderSample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out-of-order sample at {} us (series tail is at {} us)",
            self.rejected.as_micros(),
            self.last.as_micros()
        )
    }
}

/// An append-only series of timestamped scalar samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Create an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty series with room for `cap` samples.
    pub fn with_capacity(cap: usize) -> Self {
        TimeSeries { samples: Vec::with_capacity(cap) }
    }

    /// Append a sample. Timestamps are expected to be non-decreasing; this is
    /// asserted in debug builds because out-of-order samples would corrupt
    /// windowed reductions silently. Callers that cannot statically guarantee
    /// ordering should use [`TimeSeries::try_push`] instead.
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|&(t, _)| t <= at),
            "samples must be pushed in chronological order"
        );
        self.samples.push((at, value));
    }

    /// Append a sample, rejecting it with [`OutOfOrderSample`] if it would
    /// land before the current tail. Unlike [`TimeSeries::push`], the check
    /// runs in release builds too, so a misbehaving producer cannot silently
    /// corrupt windowed reductions. The instrumentation plane
    /// ([`crate::trace`]) routes every gauge sample through this.
    pub fn try_push(&mut self, at: SimTime, value: f64) -> Result<(), OutOfOrderSample> {
        if let Some(&(last, _)) = self.samples.last() {
            if at < last {
                return Err(OutOfOrderSample { last, rejected: at });
            }
        }
        self.samples.push((at, value));
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterate over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// The raw values, discarding timestamps.
    pub fn values(&self) -> Vec<f64> {
        self.samples.iter().map(|&(_, v)| v).collect()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64)
    }

    /// Population standard deviation, or `None` when empty.
    pub fn std(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.samples.iter().map(|&(_, v)| (v - mean).powi(2)).sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// Minimum value, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Maximum value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Last sample, or `None` when empty.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.samples.last().copied()
    }

    /// Fraction of samples for which `pred` holds; `None` when empty.
    pub fn fraction_where(&self, pred: impl Fn(f64) -> bool) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let hits = self.samples.iter().filter(|&&(_, v)| pred(v)).count();
        Some(hits as f64 / self.samples.len() as f64)
    }

    /// Reduce to per-window means over fixed, aligned windows of `width`.
    /// Empty windows are skipped. Each output point is stamped with the
    /// window start.
    pub fn window_means(&self, width: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!width.is_zero());
        let mut out = Vec::new();
        let mut idx = 0;
        while idx < self.samples.len() {
            let window_no = self.samples[idx].0.as_micros() / width.as_micros();
            let window_start = SimTime::from_micros(window_no * width.as_micros());
            let window_end = window_start + width;
            let mut sum = 0.0;
            let mut n = 0u64;
            while idx < self.samples.len() && self.samples[idx].0 < window_end {
                sum += self.samples[idx].1;
                n += 1;
                idx += 1;
            }
            out.push((window_start, sum / n as f64));
        }
        out
    }

    /// Standard deviation of the values inside each sliding window of
    /// `width`, advanced by `stride`. Used for the paper's Fig. 12
    /// ("std of ROI compression level in a 2 s sliding window").
    pub fn sliding_window_std(&self, width: SimDuration, stride: SimDuration) -> Vec<f64> {
        assert!(!width.is_zero() && !stride.is_zero());
        if self.samples.is_empty() {
            return Vec::new();
        }
        let end = self.samples.last().unwrap().0;
        let mut out = Vec::new();
        let mut start = self.samples[0].0;
        let mut lo = 0usize;
        while start + width <= end + SimDuration::from_micros(1) {
            let stop = start + width;
            while lo < self.samples.len() && self.samples[lo].0 < start {
                lo += 1;
            }
            let mut hi = lo;
            while hi < self.samples.len() && self.samples[hi].0 < stop {
                hi += 1;
            }
            let window = &self.samples[lo..hi];
            if window.len() >= 2 {
                let mean = window.iter().map(|&(_, v)| v).sum::<f64>() / window.len() as f64;
                let var = window.iter().map(|&(_, v)| (v - mean).powi(2)).sum::<f64>()
                    / window.len() as f64;
                out.push(var.sqrt());
            }
            start += stride;
        }
        out
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = (SimTime, f64)>>(iter: T) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[(u64, f64)]) -> TimeSeries {
        values.iter().map(|&(ms, v)| (SimTime::from_millis(ms), v)).collect()
    }

    #[test]
    fn basic_statistics() {
        let s = series(&[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        let std = s.std().unwrap();
        assert!((std - 1.118).abs() < 1e-3);
    }

    #[test]
    fn empty_series_yields_none() {
        let s = TimeSeries::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.std(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.fraction_where(|v| v > 0.0), None);
    }

    #[test]
    fn fraction_where_counts() {
        let s = series(&[(0, 0.0), (1, 5.0), (2, 0.0), (3, 7.0)]);
        assert_eq!(s.fraction_where(|v| v == 0.0), Some(0.5));
    }

    #[test]
    fn window_means_align_to_grid() {
        let s = series(&[(0, 1.0), (5, 3.0), (10, 10.0), (14, 20.0), (30, 7.0)]);
        let w = s.window_means(SimDuration::from_millis(10));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], (SimTime::ZERO, 2.0));
        assert_eq!(w[1], (SimTime::from_millis(10), 15.0));
        assert_eq!(w[2], (SimTime::from_millis(30), 7.0));
    }

    #[test]
    fn sliding_std_constant_series_is_zero() {
        let s: TimeSeries = (0..100).map(|i| (SimTime::from_millis(i * 10), 5.0)).collect();
        let stds =
            s.sliding_window_std(SimDuration::from_millis(200), SimDuration::from_millis(100));
        assert!(!stds.is_empty());
        assert!(stds.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sliding_std_detects_variation() {
        let s: TimeSeries = (0..100)
            .map(|i| (SimTime::from_millis(i * 10), if i % 2 == 0 { 0.0 } else { 2.0 }))
            .collect();
        let stds =
            s.sliding_window_std(SimDuration::from_millis(200), SimDuration::from_millis(100));
        assert!(stds.iter().all(|&v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "chronological")]
    fn out_of_order_push_panics_in_debug() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_millis(10), 1.0);
        s.push(SimTime::from_millis(5), 2.0);
    }

    #[test]
    fn try_push_rejects_out_of_order_without_corrupting() {
        let mut s = TimeSeries::new();
        assert_eq!(s.try_push(SimTime::from_millis(10), 1.0), Ok(()));
        let err = s.try_push(SimTime::from_millis(5), 2.0).unwrap_err();
        assert_eq!(err.last, SimTime::from_millis(10));
        assert_eq!(err.rejected, SimTime::from_millis(5));
        assert!(err.to_string().contains("out-of-order"));
        // The rejected sample must not have been appended.
        assert_eq!(s.len(), 1);
        assert_eq!(s.last(), Some((SimTime::from_millis(10), 1.0)));
    }

    #[test]
    fn try_push_accepts_equal_timestamps() {
        let mut s = TimeSeries::new();
        s.try_push(SimTime::from_millis(3), 1.0).unwrap();
        s.try_push(SimTime::from_millis(3), 2.0).unwrap();
        assert_eq!(s.len(), 2);
    }
}
