//! Future-event queue.
//!
//! A min-heap keyed on `(due, seq)` where `seq` is a monotonically increasing
//! insertion counter. The counter makes pops deterministic: two events
//! scheduled for the same instant come out in the order they were scheduled,
//! regardless of heap internals. Determinism here is what makes whole-system
//! runs reproducible from a seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    due: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other.due.cmp(&self.due).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `payload` to fire at `due`.
    pub fn schedule(&mut self, due: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { due, seq, payload });
    }

    /// The instant of the earliest pending event, if any.
    pub fn next_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.due)
    }

    /// Pop the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.next_due()? <= now {
            let e = self.heap.pop().expect("peeked entry must exist");
            Some((e.due, e.payload))
        } else {
            None
        }
    }

    /// Drain every event due at or before `now`, in deterministic order.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        self.drain_due_into(now, &mut out);
        out
    }

    /// Like [`EventQueue::drain_due`], but appends into a caller-owned
    /// buffer so steady-state polling reuses capacity instead of
    /// allocating a fresh `Vec` per tick.
    pub fn drain_due_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, E)>) {
        while let Some(ev) = self.pop_due(now) {
            out.push(ev);
        }
    }

    /// Pop the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.due, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Remove every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert!(q.pop_due(SimTime::from_millis(9)).is_none());
        assert_eq!(q.pop_due(SimTime::from_millis(10)).unwrap().1, 1);
        assert!(q.pop_due(SimTime::from_millis(10)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_due_returns_everything_ripe() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_millis(i), i);
        }
        let drained = q.drain_due(SimTime::from_millis(4));
        assert_eq!(drained.len(), 5);
        assert_eq!(q.len(), 5);
        assert_eq!(q.next_due(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        let mut now = SimTime::ZERO;
        q.schedule(now + SimDuration::from_millis(1), 1);
        now += SimDuration::from_millis(1);
        let (due, v) = q.pop_due(now).unwrap();
        assert_eq!((due, v), (now, 1));
        q.schedule(now + SimDuration::from_millis(2), 2);
        q.schedule(now + SimDuration::from_millis(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn same_instant_ties_survive_interleaved_push_pop() {
        // Popping between same-instant schedules must not reset or reorder
        // the insertion counter: later arrivals at the same due time still
        // come out strictly after earlier ones.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        q.schedule(t, "a");
        q.schedule(t, "b");
        assert_eq!(q.pop_due(t).unwrap().1, "a");
        q.schedule(t, "c");
        assert_eq!(q.pop_due(t).unwrap().1, "b");
        q.schedule(t, "d");
        q.schedule(t, "e");
        assert_eq!(q.drain_due(t).into_iter().map(|(_, v)| v).collect::<Vec<_>>(), ["c", "d", "e"]);

        // Heavier mix: alternate bursts of same-instant schedules with pops
        // and check the global arrival order is reproduced exactly.
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        let mut popped = Vec::new();
        let mut next = 0u32;
        for round in 0..50 {
            for _ in 0..3 {
                q.schedule(t, next);
                expected.push(next);
                next += 1;
            }
            // Pop fewer than we pushed so ties accumulate across rounds.
            for _ in 0..2 {
                popped.push(q.pop_due(t).unwrap().1);
            }
            assert_eq!(q.len(), round + 1);
        }
        popped.extend(q.drain_due(t).into_iter().map(|(_, v)| v));
        assert_eq!(popped, expected);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
    }
}
