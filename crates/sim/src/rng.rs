//! Named, seeded random streams.
//!
//! Every stochastic component takes a [`SimRng`] derived from the experiment
//! master seed plus the component's *name*. Deriving by name (rather than by
//! construction order) means adding a new component never perturbs the random
//! sequence of existing ones — experiments stay comparable as the system
//! evolves.
//!
//! The generator is a small splitmix64-seeded xoshiro256++ implemented
//! locally so the workspace carries no external dependency at all (the
//! repo builds offline against an empty registry). All samplers — raw
//! 64-bit output, bounded integers, uniform/Gaussian (Box–Muller)/
//! exponential/log-normal floats — are inherent methods on [`SimRng`].

/// Deterministic 64-bit PRNG (xoshiro256++) with convenience samplers.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable 64-bit FNV-1a hash of a component name.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl SimRng {
    /// Create a stream from a raw 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1234_5678_9ABC_DEF0;
        }
        SimRng { s, gauss_spare: None }
    }

    /// Derive the stream for a named component of an experiment.
    ///
    /// `SimRng::stream(seed, "lte.fading")` always yields the same sequence
    /// for the same `(seed, name)` pair, independent of every other stream.
    pub fn stream(master_seed: u64, name: &str) -> Self {
        Self::from_seed(master_seed ^ hash_name(name))
    }

    /// Fork a child stream; the child is independent of subsequent draws
    /// from `self`.
    pub fn fork(&mut self, name: &str) -> Self {
        let salt = self.next_u64();
        Self::from_seed(salt ^ hash_name(name))
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // far below anything observable in these experiments.
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Draw u1 away from 0 to keep ln(u1) finite.
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-12 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.gaussian()
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = loop {
            let u = self.uniform();
            if u > 1e-12 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Log-normal sample parameterized by the underlying normal's
    /// `(mu, sigma)`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.next()
    }

    /// Next raw 32-bit output (upper half of the 64-bit state update).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// Fill a byte slice with generator output.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::stream(42, "lte.fading");
        let mut b = SimRng::stream(42, "lte.fading");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_decorrelate() {
        let mut a = SimRng::stream(42, "lte.fading");
        let mut b = SimRng::stream(42, "lte.shadowing");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::from_seed(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = SimRng::from_seed(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::from_seed(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::from_seed(17);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::from_seed(19);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
        // All residues should appear.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn int_range_inclusive() {
        let mut rng = SimRng::from_seed(23);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = rng.int_range(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::stream(1, "root");
        let mut b = SimRng::stream(1, "root");
        let mut fa = a.fork("child");
        let mut fb = b.fork("child");
        assert_eq!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::from_seed(29);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
