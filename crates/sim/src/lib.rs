//! Deterministic discrete-event simulation kernel for the POI360 reproduction.
//!
//! Every other crate in this workspace builds on the primitives here:
//!
//! * [`time`] — microsecond-resolution simulation clock types ([`SimTime`],
//!   [`SimDuration`]). One LTE subframe is exactly 1 ms; a 36 FPS video frame
//!   interval is 27 778 µs, so microseconds are the coarsest resolution that
//!   represents both without drift.
//! * [`rng`] — named, seeded random streams so that every experiment is
//!   reproducible bit-for-bit and components cannot perturb each other's
//!   random sequences when the wiring changes.
//! * [`event`] — a generic future-event queue with deterministic FIFO
//!   tie-breaking for events scheduled at the same instant.
//! * [`series`] — a time-series recorder used by the measurement plane of
//!   every experiment.
//! * [`json`] — hand-rolled `ToJson`/`FromKv` serialization traits; the
//!   workspace is hermetic (no external crates), so reports and bench
//!   output serialize through these instead of `serde`.
//! * [`process`] — small reusable stochastic processes (Ornstein–Uhlenbeck,
//!   Markov on/off) used by the channel and cross-traffic models.
//! * [`trace`] — the instrumentation plane: typed probes (counters, gauges,
//!   timestamped events), pluggable sinks (null / ring / JSONL), and the
//!   per-session [`trace::Recorder`] handle every layer reports through.
//! * [`fault`] — deterministic fault injection: typed [`fault::FaultPlan`]s
//!   of time-windowed faults (radio link failure, diag stalls, grant
//!   starvation, feedback loss, wireline spikes, flash crowds) applied
//!   through the existing layer seams, with `fault.*` transition events on
//!   the trace plane.
//! * [`workers`] — the persistent epoch worker pool shared by every
//!   parallel surface (bench job fan-outs, the `MultiGrid` sharded cell
//!   executor): threads spawn once per process, park between epochs, and
//!   wake on a generation-counter barrier, so a per-subframe dispatch
//!   costs no spawns and no heap allocation.
//!
//! The kernel follows the smoltcp idiom rather than an async runtime: every
//! component exposes an explicit `poll(now)`-style API, and a top-level
//! driver advances the clock. This keeps the whole system deterministic and
//! single-threaded by construction.

pub mod event;
pub mod fault;
pub mod json;
pub mod process;
pub mod rng;
pub mod series;
pub mod time;
pub mod trace;
pub mod workers;

pub use event::EventQueue;
pub use fault::{ActiveFaults, FaultEvent, FaultKind, FaultPlan, FaultTimeline};
pub use json::{FromKv, KvMap, ToJson};
pub use rng::SimRng;
pub use series::TimeSeries;
pub use time::{SimDuration, SimTime};
pub use trace::Recorder;

/// One LTE subframe / TTI: 1 ms.
pub const SUBFRAME: SimDuration = SimDuration::from_millis(1);

/// The prelude re-exports the handful of names that almost every downstream
/// module wants in scope.
pub mod prelude {
    pub use crate::event::EventQueue;
    pub use crate::rng::SimRng;
    pub use crate::series::TimeSeries;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::SUBFRAME;
}
