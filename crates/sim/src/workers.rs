//! The persistent epoch worker pool.
//!
//! Every parallel surface in the workspace — the bench crate's job
//! fan-outs and the `MultiGrid` epoch-lockstep cell executor — shares one
//! process-wide pool of worker threads ([`global`]). The pool exists
//! because the grid executor dispatches *per simulated millisecond*: a
//! 127-cell grid stepping 0.2 s of simulated time performs 200 dispatches
//! of 127 work items each, and anything the dispatch path allocates or
//! spawns is paid at that rate. The first sharded executor shipped on a
//! scoped-spawn + mpsc design and was measurably *slower* than serial
//! (every `CellWork` bundle moved by value through freshly allocated
//! channel blocks — ~29× the serial allocation volume); this pool is the
//! replacement.
//!
//! Design:
//!
//! * **Threads spawn once per process** and park on a condvar between
//!   epochs. [`EpochPool::dispatch`] publishes a generation-counter epoch
//!   (the barrier workers wake on), runs the job on the calling thread
//!   too, then closes the epoch and waits for every helper that joined to
//!   leave. Nothing is boxed, sent, or allocated per dispatch — the job
//!   is a type-erased pointer to the caller's stack closure, which is
//!   sound because `dispatch` cannot return while any worker still runs
//!   it.
//! * **The caller is worker 0.** On a single-core host the whole epoch
//!   usually runs to completion on the dispatching thread before a helper
//!   is ever scheduled; helpers that wake late find the epoch closed (or
//!   fully staffed) and go straight back to sleep. That is what keeps the
//!   width-4 grid within a few percent of width-1 on one core, where the
//!   old design paid 2× for channel traffic.
//! * **Work is claimed, not assigned.** The job closure receives only a
//!   worker index; callers share an `AtomicUsize` (or a locked queue) and
//!   let workers race for items. Determinism is the *caller's* contract:
//!   both users file results by item index (grid cells re-slot by cell
//!   id, `run_jobs` sorts by input index), so the claim order never
//!   reaches the output bytes.
//! * **Dispatches serialize.** One epoch runs at a time process-wide; a
//!   `dispatch` from inside a running job (a fan-out job that itself
//!   builds a sharded grid) executes inline on the calling worker instead
//!   of deadlocking on the epoch gate. Concurrent dispatchers on distinct
//!   threads queue on the gate.
//!
//! A panicking job marks the epoch poisoned; `dispatch` finishes the
//! barrier handshake (so the borrow stays sound) and then propagates the
//! panic to its caller.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A type-erased borrow of the dispatching caller's job closure.
///
/// Safety argument for the manual `Send`: a `Job` is only ever built from
/// `&F where F: Fn(usize) + Sync`, published under the state lock, and
/// every worker that copies it out increments `entered` under that same
/// lock; [`EpochPool::dispatch`] does not return (and so the closure is
/// not dropped) until `exited == entered` *after* the job slot is
/// cleared, so no worker can observe a dangling pointer. Sharing `&F`
/// across threads is exactly what `F: Sync` licenses.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

unsafe impl Send for Job {}

/// Epoch state guarded by [`Shared::state`].
struct State {
    /// Generation counter: bumped once per dispatch. Workers remember the
    /// last generation they examined and sleep until it moves.
    epoch: u64,
    /// The published job, `None` once the epoch is closed.
    job: Option<Job>,
    /// Maximum helpers allowed to join this epoch (`width - 1`): the pool
    /// may hold more threads than a narrow dispatch wants.
    limit: usize,
    /// Helpers that joined the current epoch…
    entered: usize,
    /// …and helpers that have finished the job and left it again.
    exited: usize,
    /// A worker's job invocation panicked this epoch.
    panicked: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between epochs.
    work_cv: Condvar,
    /// The dispatcher parks here while late helpers drain out.
    done_cv: Condvar,
}

/// Persistent pool of parked worker threads woken per epoch; see the
/// module docs. Use [`global`] — the whole point is that every dispatch
/// site shares one set of threads.
pub struct EpochPool {
    shared: Arc<Shared>,
    /// Dispatch gate; the guarded count is how many threads exist.
    gate: Mutex<usize>,
}

thread_local! {
    /// Set on pool worker threads (permanently) and on a dispatching
    /// caller while it runs its own share of the job, so nested
    /// dispatches degrade to inline execution instead of deadlocking.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn worker(shared: Arc<Shared>, idx: usize) {
    IN_POOL.with(|c| c.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.epoch != seen {
                    seen = st.epoch;
                    if let Some(job) = st.job {
                        if st.entered < st.limit {
                            st.entered += 1;
                            break job;
                        }
                    }
                    // Closed or fully staffed before we woke: not ours.
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        // SAFETY: `job` was copied out under the lock while the epoch was
        // open and `entered` was bumped in the same critical section, so
        // the dispatcher is now blocked until this thread bumps `exited`;
        // the closure behind `data` outlives this call (see [`Job`]).
        let ok = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, idx) })).is_ok();
        let mut st = shared.state.lock().unwrap();
        if !ok {
            st.panicked = true;
        }
        st.exited += 1;
        shared.done_cv.notify_one();
    }
}

impl EpochPool {
    fn new() -> Self {
        EpochPool {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    epoch: 0,
                    job: None,
                    limit: 0,
                    entered: 0,
                    exited: 0,
                    panicked: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            gate: Mutex::new(0),
        }
    }

    /// Run `f(worker_index)` on the calling thread *and* up to
    /// `width - 1` pool workers, returning once every participant has
    /// finished. `f` is typically a claim loop over shared items; indices
    /// are 0 (the caller) and 1.. (helpers), useful for debugging only —
    /// correctness must not depend on which worker claims what.
    ///
    /// `width <= 1` — and any dispatch from inside a running job — runs
    /// `f(0)` inline with no synchronization at all. The steady-state
    /// dispatch path performs no heap allocation; threads are spawned
    /// the first time a dispatch needs them and then live for the
    /// process.
    pub fn dispatch<F>(&self, width: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if width <= 1 || IN_POOL.with(|c| c.get()) {
            f(0);
            return;
        }
        let helpers = width - 1;
        let mut gate = self.gate.lock().unwrap();
        while *gate < helpers {
            let shared = Arc::clone(&self.shared);
            let idx = *gate + 1;
            std::thread::Builder::new()
                .name(format!("poi360-epoch-{idx}"))
                .spawn(move || worker(shared, idx))
                .expect("spawn epoch pool worker");
            *gate += 1;
        }

        unsafe fn call_erased<F: Fn(usize)>(data: *const (), idx: usize) {
            unsafe { (*(data as *const F))(idx) }
        }
        let job = Job { data: &f as *const F as *const (), call: call_erased::<F> };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch = st.epoch.wrapping_add(1);
            st.job = Some(job);
            st.limit = helpers;
            st.entered = 0;
            st.exited = 0;
            self.shared.work_cv.notify_all();
        }

        // The caller is worker 0; nested dispatches inside `f` inline.
        IN_POOL.with(|c| c.set(true));
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        IN_POOL.with(|c| c.set(false));

        // Close the epoch and wait out every helper that joined: only
        // after that may `f` — which the erased job borrows — be dropped.
        let panicked = {
            let mut st = self.shared.state.lock().unwrap();
            st.job = None;
            while st.exited != st.entered {
                st = self.shared.done_cv.wait(st).unwrap();
            }
            std::mem::replace(&mut st.panicked, false)
        };
        drop(gate);
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        assert!(!panicked, "an epoch pool worker panicked while running a dispatched job");
    }
}

/// The process-wide pool. Every dispatch site — `bench::runner`'s job
/// fan-outs and the `MultiGrid` cell executor — must use this instance so
/// the process never holds more parked threads than one pool's worth.
pub fn global() -> &'static EpochPool {
    static POOL: OnceLock<EpochPool> = OnceLock::new();
    POOL.get_or_init(EpochPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn dispatch_runs_every_claimed_item_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let next = AtomicUsize::new(0);
        global().dispatch(4, |_| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= hits.len() {
                break;
            }
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn width_one_runs_inline_on_the_caller() {
        let caller = std::thread::current().id();
        let slot = Mutex::new(None);
        global().dispatch(1, |w| *slot.lock().unwrap() = Some((w, std::thread::current().id())));
        assert_eq!(*slot.lock().unwrap(), Some((0, caller)));
    }

    #[test]
    fn sequential_dispatches_reuse_the_pool() {
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            let next = AtomicUsize::new(0);
            global().dispatch(3, |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= 10 {
                    break;
                }
                sum.fetch_add(i + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 45 + 10 * round);
        }
    }

    #[test]
    fn nested_dispatch_degrades_to_inline_instead_of_deadlocking() {
        let outer = AtomicUsize::new(0);
        let inner_total = AtomicUsize::new(0);
        let next = AtomicUsize::new(0);
        global().dispatch(4, |_| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= 8 {
                break;
            }
            outer.fetch_add(1, Ordering::Relaxed);
            let inner_next = AtomicUsize::new(0);
            global().dispatch(4, |_| loop {
                let j = inner_next.fetch_add(1, Ordering::Relaxed);
                if j >= 5 {
                    break;
                }
                inner_total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 8);
        assert_eq!(inner_total.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn worker_panic_propagates_to_the_dispatcher() {
        // Force the panic onto the caller (worker 0) so the test is
        // deterministic even when helpers never wake in time.
        let result = catch_unwind(AssertUnwindSafe(|| {
            global().dispatch(2, |w| {
                if w == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "a panicking job must fail the dispatch");
        // The pool must still be usable afterwards.
        let ok = AtomicUsize::new(0);
        global().dispatch(2, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ok.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn concurrent_dispatchers_serialize_on_the_gate() {
        let results: Vec<_> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|k| {
                    scope.spawn(move || {
                        let sum = std::sync::atomic::AtomicU64::new(0);
                        let next = AtomicUsize::new(0);
                        global().dispatch(3, |_| loop {
                            let i = next.fetch_add(1, Ordering::Relaxed) as u64;
                            if i >= 20 {
                                break;
                            }
                            sum.fetch_add(i * (k + 1), Ordering::Relaxed);
                        });
                        sum.load(Ordering::Relaxed)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(results, vec![190, 380, 570, 760]);
    }
}
