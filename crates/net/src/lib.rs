//! End-to-end network path substrate.
//!
//! The paper's traffic crosses: UE firmware buffer → LTE uplink (modeled in
//! `poi360-lte`) → eNodeB/core network → Internet → downlink to the viewer;
//! ROI and congestion feedback return over the reverse path. This crate
//! models everything *after* the uplink radio:
//!
//! * [`packet`] — the on-path packet representation shared by transport
//!   and session code.
//! * [`pipe`] — [`pipe::DelayPipe`], an order-preserving delay element with
//!   lognormal jitter, random loss, and optional *congestion episodes*
//!   (bursts of added queueing delay + loss) to model the paper's
//!   "congestion elsewhere along the end-to-end path" case (§4.3.1).
//! * [`wireline`] — a serialization-rate-limited link with a drop-tail
//!   queue, used for the paper's campus-wireline control condition.
//! * [`pool`] — [`pool::BufPool`], a strict free-list of reusable packet
//!   buffers for the per-tick staging vectors on the hot path.

pub mod packet;
pub mod pipe;
pub mod pool;
pub mod wireline;

pub use packet::{FlowKind, FrameTag, Packet};
pub use pipe::{CongestionEpisodes, DelayPipe, PipeConfig};
pub use pool::BufPool;
pub use wireline::{WirelineConfig, WirelineLink};
