//! A small free-list buffer pool for per-tick packet staging.
//!
//! The transport pacer and the delay pipes hand vectors of packets across
//! layer boundaries every tick. [`BufPool`] lets those call sites lease a
//! buffer, fill and consume it, and recycle the emptied shell — so the
//! steady-state loop reuses capacity instead of allocating a fresh `Vec`
//! per tick (DESIGN.md §10).
//!
//! The pool is deliberately strict: it has a fixed number of slots, and
//! leasing while every slot is already out panics. A buffer can never be
//! handed out twice — leasing moves it out of the pool — and the slot
//! accounting turns a leak (a leased buffer that is dropped instead of
//! recycled) into a loud failure at the next over-subscribed lease
//! rather than a silent allocation regression.

/// A bounded free-list of reusable `Vec<T>` buffers.
#[derive(Debug)]
pub struct BufPool<T> {
    free: Vec<Vec<T>>,
    slots: usize,
    live: usize,
}

impl<T> BufPool<T> {
    /// Create a pool with `slots` leasable buffers (initially empty
    /// shells; they grow to their working capacity on first use and keep
    /// it across recycles).
    pub fn with_slots(slots: usize) -> Self {
        assert!(slots > 0, "a pool needs at least one slot");
        BufPool { free: Vec::with_capacity(slots), slots, live: 0 }
    }

    /// Number of slots currently leased out.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Lease a buffer. The returned vector is empty but keeps whatever
    /// capacity it grew on earlier leases.
    ///
    /// # Panics
    ///
    /// Panics when every slot is already live: either the caller leaked a
    /// buffer (dropped it instead of [`BufPool::recycle`]-ing it) or two
    /// call sites are fighting over an undersized pool.
    pub fn lease(&mut self) -> Vec<T> {
        assert!(
            self.live < self.slots,
            "BufPool over-subscribed: all {} slots are live (leaked lease?)",
            self.slots
        );
        self.live += 1;
        self.free.pop().unwrap_or_default()
    }

    /// Return a leased buffer. Its contents are dropped; its capacity is
    /// kept for the next lease.
    pub fn recycle(&mut self, mut buf: Vec<T>) {
        assert!(self.live > 0, "BufPool::recycle without a live lease");
        buf.clear();
        self.live -= 1;
        self.free.push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycle_keeps_capacity() {
        let mut pool: BufPool<u32> = BufPool::with_slots(2);
        let mut a = pool.lease();
        a.extend(0..100);
        let cap = a.capacity();
        pool.recycle(a);
        let b = pool.lease();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "recycled shell keeps its capacity");
        pool.recycle(b);
    }

    #[test]
    #[should_panic(expected = "over-subscribed")]
    fn double_lease_beyond_slots_panics() {
        let mut pool: BufPool<u32> = BufPool::with_slots(1);
        let _live = pool.lease();
        // The one slot is out; the pool must refuse to hand out another
        // buffer rather than risk aliasing a live one.
        let _second = pool.lease();
    }

    #[test]
    fn leak_is_caught_at_the_next_oversubscribed_lease() {
        let mut pool: BufPool<u32> = BufPool::with_slots(2);
        drop(pool.lease()); // leaked: dropped, not recycled
        let _ok = pool.lease(); // one slot still free
        assert_eq!(pool.live(), 2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.lease()));
        assert!(r.is_err(), "third lease must panic: the leak used up a slot");
    }

    #[test]
    #[should_panic(expected = "without a live lease")]
    fn recycle_of_a_foreign_buffer_panics() {
        let mut pool: BufPool<u32> = BufPool::with_slots(1);
        pool.recycle(Vec::new());
    }
}
