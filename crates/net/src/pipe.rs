//! Order-preserving delay pipe with jitter, loss, and congestion episodes.
//!
//! Models the path segments downstream of the uplink radio: core network,
//! Internet transit, and the viewer's downlink. Delays are base + lognormal
//! jitter; arrivals never reorder within a pipe (the core path is a single
//! route; LTE RLC delivers in order). A [`CongestionEpisodes`] modulator
//! adds bursty extra queueing delay and loss to model the paper's
//! "congestion elsewhere" case where POI360 must fall back to GCC.

use poi360_sim::event::EventQueue;
use poi360_sim::process::MarkovOnOff;
use poi360_sim::rng::SimRng;
use poi360_sim::time::{SimDuration, SimTime};

/// Configuration for a delay pipe.
#[derive(Clone, Copy, Debug)]
pub struct PipeConfig {
    /// Base one-way delay.
    pub base_delay: SimDuration,
    /// Lognormal jitter: std of the multiplicative factor's underlying
    /// normal (0 disables jitter).
    pub jitter_sigma: f64,
    /// Independent random loss probability.
    pub loss_prob: f64,
}

impl PipeConfig {
    /// Core network + viewer downlink after a cellular uplink: ~45 ms one
    /// way with moderate jitter (paper cites cellular paths as "much longer
    /// and unstabler latency than wireline").
    pub fn cellular_downstream() -> PipeConfig {
        PipeConfig {
            base_delay: SimDuration::from_millis(60),
            jitter_sigma: 0.30,
            loss_prob: 0.0005,
        }
    }

    /// Reverse (feedback) path when the viewer is also on LTE: the data
    /// channel is tiny, so it sees base cellular RTT-scale latency and
    /// jitter but no self-induced queueing.
    pub fn cellular_feedback() -> PipeConfig {
        PipeConfig {
            base_delay: SimDuration::from_millis(120),
            jitter_sigma: 0.50,
            loss_prob: 0.001,
        }
    }

    /// Mobile-edge relaying (paper §8): media turns around at the serving
    /// base station — only the radio legs and the edge switch remain.
    pub fn edge_downstream() -> PipeConfig {
        PipeConfig {
            base_delay: SimDuration::from_millis(18),
            jitter_sigma: 0.25,
            loss_prob: 0.0005,
        }
    }

    /// Edge-relayed feedback path: one radio RTT, no Internet transit.
    pub fn edge_feedback() -> PipeConfig {
        PipeConfig {
            base_delay: SimDuration::from_millis(35),
            jitter_sigma: 0.35,
            loss_prob: 0.001,
        }
    }

    /// Campus wireline transit: short and stable.
    pub fn wireline_transit() -> PipeConfig {
        PipeConfig {
            base_delay: SimDuration::from_millis(12),
            jitter_sigma: 0.08,
            loss_prob: 0.0001,
        }
    }

    /// Wireline feedback path.
    pub fn wireline_feedback() -> PipeConfig {
        PipeConfig {
            base_delay: SimDuration::from_millis(14),
            jitter_sigma: 0.08,
            loss_prob: 0.0001,
        }
    }
}

/// Bursty remote congestion: while ON, the pipe gains extra delay (ramping
/// like a growing queue) and extra loss.
#[derive(Clone, Debug)]
pub struct CongestionEpisodes {
    chain: MarkovOnOff,
    /// Extra delay added at the peak of an episode.
    pub peak_extra_delay: SimDuration,
    /// Extra loss probability while congested.
    pub extra_loss: f64,
    /// Current ramp position in [0, 1].
    ramp: f64,
    /// Ramp speed per second.
    ramp_rate: f64,
}

impl CongestionEpisodes {
    /// Create episodes with the given mean on/off durations.
    pub fn new(
        mean_on: SimDuration,
        mean_off: SimDuration,
        peak_extra_delay: SimDuration,
        extra_loss: f64,
        rng: &mut SimRng,
    ) -> Self {
        CongestionEpisodes {
            chain: MarkovOnOff::new(mean_on, mean_off, false, rng),
            peak_extra_delay,
            extra_loss,
            ramp: 0.0,
            ramp_rate: 2.0,
        }
    }

    /// Advance by `dt`; returns `(extra_delay, extra_loss)` for this step.
    pub fn step(&mut self, dt: SimDuration, rng: &mut SimRng) -> (SimDuration, f64) {
        let on = self.chain.step(dt, rng);
        let delta = self.ramp_rate * dt.as_secs_f64();
        self.ramp = if on { (self.ramp + delta).min(1.0) } else { (self.ramp - delta).max(0.0) };
        let extra = SimDuration::from_secs_f64(self.peak_extra_delay.as_secs_f64() * self.ramp);
        let loss = if on { self.extra_loss } else { 0.0 };
        (extra, loss)
    }

    /// Whether an episode is currently active.
    pub fn is_congested(&self) -> bool {
        self.ramp > 0.05
    }
}

/// The delay pipe.
pub struct DelayPipe<T> {
    cfg: PipeConfig,
    rng: SimRng,
    in_flight: EventQueue<T>,
    last_arrival: SimTime,
    congestion: Option<CongestionEpisodes>,
    congestion_state: (SimDuration, f64),
    fault_state: (SimDuration, f64),
    last_step: SimTime,
    sent: u64,
    lost: u64,
}

impl<T> DelayPipe<T> {
    /// Create a pipe.
    pub fn new(cfg: PipeConfig, seed: u64) -> Self {
        DelayPipe {
            cfg,
            rng: SimRng::stream(seed, "net.pipe"),
            in_flight: EventQueue::new(),
            last_arrival: SimTime::ZERO,
            congestion: None,
            congestion_state: (SimDuration::ZERO, 0.0),
            fault_state: (SimDuration::ZERO, 0.0),
            last_step: SimTime::ZERO,
            sent: 0,
            lost: 0,
        }
    }

    /// Attach a remote-congestion modulator.
    pub fn with_congestion(mut self, episodes: CongestionEpisodes) -> Self {
        self.congestion = Some(episodes);
        self
    }

    /// Packets accepted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Packets dropped so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether a remote-congestion episode is active.
    pub fn is_congested(&self) -> bool {
        self.congestion.as_ref().is_some_and(|c| c.is_congested())
    }

    /// Advance the congestion modulator to `now` (call once per tick).
    pub fn tick(&mut self, now: SimTime) {
        if let Some(c) = &mut self.congestion {
            let dt = now.saturating_since(self.last_step);
            if !dt.is_zero() {
                self.congestion_state = c.step(dt, &mut self.rng);
                self.last_step = now;
            }
        }
    }

    /// Impose injected fault conditions on the pipe: every subsequent send
    /// sees `extra_delay` more one-way delay and `extra_loss` more drop
    /// probability, composing with any remote-congestion episode. Resetting
    /// to `(SimDuration::ZERO, 0.0)` restores the healthy pipe. The fault
    /// plane calls this from the session's per-subframe fault timeline.
    pub fn set_fault_state(&mut self, extra_delay: SimDuration, extra_loss: f64) {
        self.fault_state = (extra_delay, extra_loss.clamp(0.0, 1.0));
    }

    /// Send a packet into the pipe at `now`.
    pub fn send(&mut self, item: T, now: SimTime) {
        self.sent += 1;
        let (cong_delay, cong_loss) = self.congestion_state;
        let (fault_delay, fault_loss) = self.fault_state;
        let extra_delay = cong_delay + fault_delay;
        let extra_loss = cong_loss + fault_loss;
        if self.rng.chance(self.cfg.loss_prob + extra_loss) {
            self.lost += 1;
            return;
        }
        let jitter = if self.cfg.jitter_sigma > 0.0 {
            (self.rng.gaussian() * self.cfg.jitter_sigma).exp()
        } else {
            1.0
        };
        let delay =
            SimDuration::from_secs_f64(self.cfg.base_delay.as_secs_f64() * jitter) + extra_delay;
        // FIFO: never deliver before a previously sent packet.
        let arrival = (now + delay).max(self.last_arrival);
        self.last_arrival = arrival;
        self.in_flight.schedule(arrival, item);
    }

    /// Deliver everything due by `now`, in order.
    pub fn poll(&mut self, now: SimTime) -> Vec<(SimTime, T)> {
        self.in_flight.drain_due(now)
    }

    /// Like [`DelayPipe::poll`], but appends into a caller-owned buffer so
    /// per-tick polling reuses capacity instead of allocating.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, T)>) {
        self.in_flight.drain_due_into(now, out);
    }

    /// Next arrival instant, if any packet is in flight.
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.in_flight.next_due()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe(cfg: PipeConfig, seed: u64) -> DelayPipe<u64> {
        DelayPipe::new(cfg, seed)
    }

    #[test]
    fn delivers_after_base_delay() {
        let cfg = PipeConfig {
            base_delay: SimDuration::from_millis(50),
            jitter_sigma: 0.0,
            loss_prob: 0.0,
        };
        let mut p = pipe(cfg, 1);
        p.send(7, SimTime::ZERO);
        assert!(p.poll(SimTime::from_millis(49)).is_empty());
        let got = p.poll(SimTime::from_millis(50));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 7);
        assert_eq!(got[0].0, SimTime::from_millis(50));
    }

    #[test]
    fn preserves_order_despite_jitter() {
        let cfg = PipeConfig {
            base_delay: SimDuration::from_millis(40),
            jitter_sigma: 0.5,
            loss_prob: 0.0,
        };
        let mut p = pipe(cfg, 2);
        for k in 0..500u64 {
            p.send(k, SimTime::from_millis(k));
        }
        let got = p.poll(SimTime::from_secs(10));
        let values: Vec<u64> = got.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, (0..500).collect::<Vec<_>>());
        // Arrivals must be non-decreasing.
        for w in got.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn loss_rate_near_configured() {
        let cfg = PipeConfig {
            base_delay: SimDuration::from_millis(10),
            jitter_sigma: 0.0,
            loss_prob: 0.05,
        };
        let mut p = pipe(cfg, 3);
        for k in 0..20_000u64 {
            p.send(k, SimTime::from_micros(k));
        }
        let rate = p.lost() as f64 / p.sent() as f64;
        assert!((rate - 0.05).abs() < 0.01, "loss rate {rate}");
    }

    #[test]
    fn jitter_spreads_delays() {
        let cfg = PipeConfig {
            base_delay: SimDuration::from_millis(50),
            jitter_sigma: 0.3,
            loss_prob: 0.0,
        };
        let mut p = pipe(cfg, 4);
        // Spaced sends so FIFO clamping doesn't mask the jitter.
        for k in 0..200u64 {
            p.send(k, SimTime::from_millis(k * 500));
        }
        let got = p.poll(SimTime::from_secs(200));
        let delays: Vec<f64> = got
            .iter()
            .map(|&(at, v)| (at - SimTime::from_millis(v * 500)).as_secs_f64() * 1e3)
            .collect();
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        let spread = delays.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / delays.len() as f64;
        assert!(spread.sqrt() > 5.0, "jitter std {}", spread.sqrt());
    }

    #[test]
    fn congestion_episode_inflates_delay() {
        let mut rng = SimRng::from_seed(5);
        let episodes = CongestionEpisodes::new(
            SimDuration::from_secs(1_000), // effectively always on once started
            SimDuration::from_micros(1),
            SimDuration::from_millis(400),
            0.0,
            &mut rng,
        );
        let cfg = PipeConfig {
            base_delay: SimDuration::from_millis(20),
            jitter_sigma: 0.0,
            loss_prob: 0.0,
        };
        let mut p = DelayPipe::new(cfg, 6).with_congestion(episodes);
        // Let the ramp build.
        for ms in 0..2_000 {
            p.tick(SimTime::from_millis(ms));
        }
        assert!(p.is_congested());
        p.send(1, SimTime::from_millis(2_000));
        let got = p.poll(SimTime::from_secs(10));
        let delay = got[0].0 - SimTime::from_millis(2_000);
        assert!(delay >= SimDuration::from_millis(300), "delay {delay:?}");
    }

    #[test]
    fn no_congestion_without_modulator() {
        let mut p = pipe(PipeConfig::wireline_transit(), 7);
        p.tick(SimTime::from_secs(100));
        assert!(!p.is_congested());
    }

    #[test]
    fn fault_state_adds_delay_and_loss_then_clears() {
        let cfg = PipeConfig {
            base_delay: SimDuration::from_millis(20),
            jitter_sigma: 0.0,
            loss_prob: 0.0,
        };
        let mut p = pipe(cfg, 11);
        p.set_fault_state(SimDuration::from_millis(100), 0.0);
        p.send(1, SimTime::ZERO);
        let got = p.poll(SimTime::from_secs(1));
        assert_eq!(got[0].0, SimTime::from_millis(120), "fault delay adds to base");
        // Total loss while the fault is active, none after it clears.
        p.set_fault_state(SimDuration::ZERO, 1.0);
        for k in 0..50u64 {
            p.send(k, SimTime::from_secs(2));
        }
        assert_eq!(p.lost(), 50);
        p.set_fault_state(SimDuration::ZERO, 0.0);
        p.send(2, SimTime::from_secs(3));
        assert_eq!(p.lost(), 50, "healthy pipe drops nothing at loss_prob 0");
    }

    #[test]
    fn next_arrival_tracks_queue() {
        let cfg = PipeConfig {
            base_delay: SimDuration::from_millis(30),
            jitter_sigma: 0.0,
            loss_prob: 0.0,
        };
        let mut p = pipe(cfg, 8);
        assert!(p.next_arrival().is_none());
        p.send(1, SimTime::ZERO);
        assert_eq!(p.next_arrival(), Some(SimTime::from_millis(30)));
        p.poll(SimTime::from_secs(1));
        assert!(p.next_arrival().is_none());
    }
}
