//! On-path packet representation.

use poi360_lte::buffer::PacketLike;
use poi360_sim::time::SimTime;

/// Which flow a packet belongs to. The prototype multiplexes the video
/// stream and the WebRTC data channel (ROI + M feedback) over UDP with equal
/// priority (paper §5 footnote), plus RTCP for transport feedback.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowKind {
    /// RTP video payload.
    Video,
    /// ROI / M feedback on the data channel.
    Feedback,
    /// RTCP receiver reports & REMB.
    Rtcp,
    /// Background cross traffic.
    Cross,
}

/// Frame membership of a video packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameTag {
    /// Which encoded frame the packet carries.
    pub frame_no: u64,
    /// Packet index within the frame.
    pub index: u32,
    /// Total packets in the frame.
    pub count: u32,
}

/// A packet in flight.
#[derive(Clone, Debug, PartialEq)]
pub struct Packet {
    /// Flow the packet belongs to.
    pub flow: FlowKind,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Wire size in bytes (payload + RTP/UDP/IP headers).
    pub bytes: u32,
    /// Application send timestamp (RTP timestamp equivalent).
    pub sent_at: SimTime,
    /// Frame membership for video packets.
    pub frame: Option<FrameTag>,
    /// True if this packet is a retransmission.
    pub retransmit: bool,
}

impl Packet {
    /// Construct a video packet.
    pub fn video(seq: u64, bytes: u32, sent_at: SimTime, frame: FrameTag) -> Packet {
        Packet { flow: FlowKind::Video, seq, bytes, sent_at, frame: Some(frame), retransmit: false }
    }

    /// Construct a feedback (data-channel) packet.
    pub fn feedback(seq: u64, bytes: u32, sent_at: SimTime) -> Packet {
        Packet { flow: FlowKind::Feedback, seq, bytes, sent_at, frame: None, retransmit: false }
    }

    /// Construct an RTCP packet.
    pub fn rtcp(seq: u64, bytes: u32, sent_at: SimTime) -> Packet {
        Packet { flow: FlowKind::Rtcp, seq, bytes, sent_at, frame: None, retransmit: false }
    }

    /// Construct a background cross-traffic packet (grid load UEs).
    pub fn cross(seq: u64, bytes: u32, sent_at: SimTime) -> Packet {
        Packet { flow: FlowKind::Cross, seq, bytes, sent_at, frame: None, retransmit: false }
    }
}

impl PacketLike for Packet {
    fn wire_bytes(&self) -> u32 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flow() {
        let t = SimTime::from_millis(5);
        let v = Packet::video(1, 1200, t, FrameTag { frame_no: 0, index: 0, count: 3 });
        assert_eq!(v.flow, FlowKind::Video);
        assert_eq!(v.frame.unwrap().count, 3);
        assert!(!v.retransmit);
        assert_eq!(Packet::feedback(2, 64, t).flow, FlowKind::Feedback);
        assert_eq!(Packet::rtcp(3, 80, t).flow, FlowKind::Rtcp);
    }

    #[test]
    fn wire_bytes_is_packet_size() {
        let p = Packet::feedback(0, 128, SimTime::ZERO);
        assert_eq!(p.wire_bytes(), 128);
    }
}
