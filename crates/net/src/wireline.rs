//! Campus-wireline access link (paper §6.1 control condition).
//!
//! A serialization-rate-limited link with a small drop-tail queue. Unlike
//! the LTE uplink, its service rate is constant and independent of queue
//! occupancy — which is exactly why the baselines behave well on wireline
//! and fall apart on cellular.

use poi360_lte::buffer::PacketLike;
use poi360_sim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Wireline link configuration.
#[derive(Clone, Copy, Debug)]
pub struct WirelineConfig {
    /// Link rate in bits per second.
    pub rate_bps: f64,
    /// Queue capacity in bytes.
    pub queue_bytes: u64,
}

impl Default for WirelineConfig {
    fn default() -> Self {
        // Campus ethernet uplink: fast enough that a 12.65 Mbps raw 360°
        // stream fits with headroom.
        WirelineConfig { rate_bps: 100.0e6, queue_bytes: 256 * 1024 }
    }
}

struct Queued<T> {
    item: T,
    bytes: u32,
}

/// The wireline link.
pub struct WirelineLink<T> {
    cfg: WirelineConfig,
    queue: VecDeque<Queued<T>>,
    queued_bytes: u64,
    /// Absolute time the transmitter frees up.
    busy_until: SimTime,
    /// Fractional transmit budget carried between polls, in bytes.
    dropped: u64,
}

impl<T: PacketLike> WirelineLink<T> {
    /// Create a link.
    pub fn new(cfg: WirelineConfig) -> Self {
        assert!(cfg.rate_bps > 0.0);
        WirelineLink {
            cfg,
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy_until: SimTime::ZERO,
            dropped: 0,
        }
    }

    /// Current queue occupancy in bytes.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets dropped at the tail.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Offer a packet at `now`; drop-tail on overflow.
    pub fn enqueue(&mut self, item: T, _now: SimTime) -> bool {
        let bytes = item.wire_bytes() as u64;
        if self.queued_bytes + bytes > self.cfg.queue_bytes {
            self.dropped += 1;
            return false;
        }
        self.queued_bytes += bytes;
        self.queue.push_back(Queued { bytes: item.wire_bytes(), item });
        true
    }

    /// Transmit everything whose serialization completes by `now`; returns
    /// `(departure_time, item)` pairs in order.
    pub fn poll(&mut self, now: SimTime) -> Vec<(SimTime, T)> {
        let mut out = Vec::new();
        while let Some(head) = self.queue.front() {
            let start = self.busy_until.max(
                // If idle, transmission can start immediately at `now` minus
                // however long the packet has notionally been transmitting;
                // being conservative, start at the later of busy_until and
                // "now - nothing": the poll granularity bounds the error.
                SimTime::ZERO,
            );
            let tx = SimDuration::from_secs_f64(head.bytes as f64 * 8.0 / self.cfg.rate_bps);
            let done = start.max(self.last_idle_floor(now)) + tx;
            if done > now {
                break;
            }
            let q = self.queue.pop_front().expect("head exists");
            self.queued_bytes -= q.bytes as u64;
            self.busy_until = done;
            out.push((done, q.item));
        }
        out
    }

    /// When idle, serialization of a newly observed packet starts "now-ish":
    /// we floor the start time at the previous busy_until, which is correct
    /// for a continuously polled link (polled every ≤1 ms in this workspace).
    fn last_idle_floor(&self, _now: SimTime) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pkt(u32);
    impl PacketLike for Pkt {
        fn wire_bytes(&self) -> u32 {
            self.0
        }
    }

    #[test]
    fn serialization_rate_limits_throughput() {
        // 1 Mbps link, 1250-byte packets => 100 packets/s.
        let cfg = WirelineConfig { rate_bps: 1.0e6, queue_bytes: 10_000_000 };
        let mut link = WirelineLink::new(cfg);
        for _ in 0..1_000 {
            link.enqueue(Pkt(1_250), SimTime::ZERO);
        }
        let mut delivered = 0;
        let mut now = SimTime::ZERO;
        for _ in 0..1_000 {
            now += SimDuration::from_millis(1);
            delivered += link.poll(now).len();
        }
        // After 1 s at 100 pkts/s: ~100 delivered.
        assert!((95..=101).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn departures_are_ordered_and_spaced() {
        let cfg = WirelineConfig { rate_bps: 8.0e6, queue_bytes: 1_000_000 };
        let mut link = WirelineLink::new(cfg);
        for k in 0..10u32 {
            link.enqueue(Pkt(1_000 + k), SimTime::ZERO);
        }
        let got = link.poll(SimTime::from_secs(1));
        assert_eq!(got.len(), 10);
        for w in got.windows(2) {
            assert!(w[1].0 > w[0].0, "departures strictly ordered");
        }
        // 1000 bytes at 8 Mbps = 1 ms per packet.
        let gap = got[1].0 - got[0].0;
        assert!((gap.as_micros() as i64 - 1_000).abs() < 20, "gap {gap:?}");
    }

    #[test]
    fn overflow_drops() {
        let cfg = WirelineConfig { rate_bps: 1.0e6, queue_bytes: 2_000 };
        let mut link = WirelineLink::new(cfg);
        assert!(link.enqueue(Pkt(1_500), SimTime::ZERO));
        assert!(!link.enqueue(Pkt(1_500), SimTime::ZERO));
        assert_eq!(link.dropped(), 1);
    }

    #[test]
    fn fast_link_is_effectively_transparent() {
        let mut link = WirelineLink::new(WirelineConfig::default());
        link.enqueue(Pkt(1_200), SimTime::ZERO);
        let got = link.poll(SimTime::from_millis(1));
        assert_eq!(got.len(), 1);
        // 1200 B at 100 Mbps = 96 µs.
        assert!(got[0].0.as_micros() <= 200);
    }
}
