//! Property-based tests for the metrics crate, on the in-repo
//! `poi360_testkit` harness (64+ seeded cases per property).

use poi360_metrics::dist::{percentile, Histogram, Summary};
use poi360_metrics::freeze::FreezeStats;
use poi360_metrics::mos::{Mos, MosPdf};
use poi360_sim::time::SimDuration;
use poi360_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Summary statistics are internally consistent.
#[test]
fn summary_consistent() {
    prop_check!(64, |g| {
        let values = g.vec_f64(1, 200, -1e4, 1e4);
        let s = Summary::of(&values);
        prop_assert_eq!(s.n, values.len());
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
        // std is bounded by the half-range.
        prop_assert!(s.std <= (s.max - s.min) / 2.0 + 1e-9);
        Ok(())
    });
}

/// Percentiles are monotone in q and bounded by the extremes.
#[test]
fn percentiles_monotone() {
    prop_check!(64, |g| {
        let values = g.vec_f64(1, 200, -1e4, 1e4);
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let p = percentile(&values, q).expect("non-empty");
            prop_assert!(p >= last - 1e-12);
            last = p;
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(percentile(&values, 0.0).unwrap(), lo);
        prop_assert_eq!(percentile(&values, 1.0).unwrap(), hi);
        Ok(())
    });
}

/// Every PSNR lands in exactly one MOS band, and the PDF sums to 1.
#[test]
fn mos_partition() {
    prop_check!(64, |g| {
        let psnrs = g.vec_f64(1, 300, 0.0, 60.0);
        let pdf = MosPdf::from_psnrs(psnrs.iter().copied());
        prop_assert_eq!(pdf.total() as usize, psnrs.len());
        let total: f64 = pdf.pdf().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Band boundaries are ordered.
        for &p in &psnrs {
            let band = Mos::from_psnr(p);
            if p > 37.0 {
                prop_assert_eq!(band, Mos::Excellent);
            }
            if p <= 20.0 {
                prop_assert_eq!(band, Mos::Bad);
            }
        }
        Ok(())
    });
}

/// Freeze ratio is a valid probability and counts exactly the >600 ms
/// frames plus losses.
#[test]
fn freeze_ratio_counts() {
    prop_check!(64, |g| {
        let delays = g.vec_u64(1, 200, 1, 2_999);
        let lost = g.u64_in(0, 19);
        let mut s = FreezeStats::new();
        for &d in &delays {
            s.record(SimDuration::from_millis(d));
        }
        for _ in 0..lost {
            s.record_lost();
        }
        let ratio = s.freeze_ratio().expect("non-empty");
        prop_assert!((0.0..=1.0).contains(&ratio));
        let frozen = delays.iter().filter(|&&d| d > 600).count() as u64 + lost;
        let expect = frozen as f64 / (delays.len() as u64 + lost) as f64;
        prop_assert!((ratio - expect).abs() < 1e-12);
        Ok(())
    });
}

/// A histogram never loses samples: in-range + out-of-range == total.
#[test]
fn histogram_conserves() {
    prop_check!(64, |g| {
        let values = g.vec_f64(0, 300, -50.0, 150.0);
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &v in &values {
            h.add(v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
        let in_range: f64 = h.pdf().iter().sum();
        let expected_in_range = values.iter().filter(|&&v| (0.0..100.0).contains(&v)).count();
        if !values.is_empty() {
            prop_assert!((in_range - expected_in_range as f64 / values.len() as f64).abs() < 1e-9);
        }
        Ok(())
    });
}
