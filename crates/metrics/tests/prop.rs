//! Property-based tests for the metrics crate.

use poi360_metrics::dist::{percentile, Histogram, Summary};
use poi360_metrics::freeze::FreezeStats;
use poi360_metrics::mos::{Mos, MosPdf};
use poi360_sim::time::SimDuration;
use proptest::prelude::*;

proptest! {
    /// Summary statistics are internally consistent.
    #[test]
    fn summary_consistent(values in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let s = Summary::of(&values);
        prop_assert_eq!(s.n, values.len());
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
        // std is bounded by the half-range.
        prop_assert!(s.std <= (s.max - s.min) / 2.0 + 1e-9);
    }

    /// Percentiles are monotone in q and bounded by the extremes.
    #[test]
    fn percentiles_monotone(values in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let mut last = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let p = percentile(&values, q).expect("non-empty");
            prop_assert!(p >= last - 1e-12);
            last = p;
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(percentile(&values, 0.0).unwrap(), lo);
        prop_assert_eq!(percentile(&values, 1.0).unwrap(), hi);
    }

    /// Every PSNR lands in exactly one MOS band, and the PDF sums to 1.
    #[test]
    fn mos_partition(psnrs in prop::collection::vec(0f64..60.0, 1..300)) {
        let pdf = MosPdf::from_psnrs(psnrs.iter().copied());
        prop_assert_eq!(pdf.total() as usize, psnrs.len());
        let total: f64 = pdf.pdf().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Band boundaries are ordered.
        for &p in &psnrs {
            let band = Mos::from_psnr(p);
            if p > 37.0 {
                prop_assert_eq!(band, Mos::Excellent);
            }
            if p <= 20.0 {
                prop_assert_eq!(band, Mos::Bad);
            }
        }
    }

    /// Freeze ratio is a valid probability and counts exactly the >600 ms
    /// frames plus losses.
    #[test]
    fn freeze_ratio_counts(delays in prop::collection::vec(1u64..3_000, 1..200), lost in 0u64..20) {
        let mut s = FreezeStats::new();
        for &d in &delays {
            s.record(SimDuration::from_millis(d));
        }
        for _ in 0..lost {
            s.record_lost();
        }
        let ratio = s.freeze_ratio().expect("non-empty");
        prop_assert!((0.0..=1.0).contains(&ratio));
        let frozen = delays.iter().filter(|&&d| d > 600).count() as u64 + lost;
        let expect = frozen as f64 / (delays.len() as u64 + lost) as f64;
        prop_assert!((ratio - expect).abs() < 1e-12);
    }

    /// A histogram never loses samples: in-range + out-of-range == total.
    #[test]
    fn histogram_conserves(values in prop::collection::vec(-50f64..150.0, 0..300)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &v in &values {
            h.add(v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
        let in_range: f64 = h.pdf().iter().sum();
        let expected_in_range = values.iter().filter(|&&v| (0.0..100.0).contains(&v)).count();
        if !values.is_empty() {
            prop_assert!((in_range - expected_in_range as f64 / values.len() as f64).abs() < 1e-9);
        }
    }
}
