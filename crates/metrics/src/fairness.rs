//! Fairness metrics for multi-flow experiments.
//!
//! Jain's index (Jain, Chiu, Hawe 1984) summarizes how evenly a resource
//! is shared: `J = (Σx)² / (n·Σx²)`. It is 1 when all n allocations are
//! equal and falls to `1/n` when a single flow takes everything — scale-
//! free, so it applies to bitrates, PRB counts, or PSNR alike.

/// Jain's fairness index over the allocations `xs`.
///
/// Degenerate inputs (no flows, or all-zero allocations — nothing was
/// shared unevenly) return 1.0.
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sumsq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_rates_are_perfectly_fair() {
        assert!((jain_index(&[5.0; 8]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.3e6, 0.3e6]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_hog_scores_one_over_n() {
        for n in [2usize, 4, 10] {
            let mut xs = vec![0.0; n];
            xs[0] = 7.5e6;
            let j = jain_index(&xs);
            assert!((j - 1.0 / n as f64).abs() < 1e-12, "n={n} j={j}");
        }
    }

    #[test]
    fn index_is_scale_free() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_one() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn index_stays_in_unit_interval() {
        let xs = [0.1, 4.0, 2.5, 0.0, 9.9];
        let j = jain_index(&xs);
        assert!(j > 1.0 / xs.len() as f64 - 1e-12 && j <= 1.0 + 1e-12);
    }
}
