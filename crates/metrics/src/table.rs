//! Fixed-width text tables for the `reproduce` harness.
//!
//! Every figure regeneration prints its rows/series through this renderer
//! so the harness output is uniform and diffable across runs.

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for k in 0..cols {
                if k > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[k], width = widths[k]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with the given decimals — shorthand for table cells.
pub fn fnum(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a fraction as a percentage string.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format a bits-per-second rate in Mbps.
pub fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["scheme", "PSNR (dB)"]);
        t.row(vec!["POI360".into(), "38.2".into()]);
        t.row(vec!["Conduit".into(), "25.90".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        // Columns align: "POI360 " pads to the width of "Conduit".
        assert!(lines[3].starts_with("POI360 "));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fnum(4.5678, 2), "4.57");
        assert_eq!(pct(0.047), "4.7%");
        assert_eq!(mbps(2_500_000.0), "2.50");
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new("Empty", &["a"]);
        assert!(t.is_empty());
        assert!(t.render().contains('a'));
    }
}
