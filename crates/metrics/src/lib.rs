//! Measurement-plane statistics for the POI360 reproduction.
//!
//! Every figure in the paper's evaluation reduces raw session traces to one
//! of a handful of statistics; this crate implements them once:
//!
//! * [`dist`] — streaming summary statistics, percentiles, CDF/PDF
//!   builders with fixed binning (Figs. 6, 12, 13, 15).
//! * [`mos`] — the PSNR → Mean-Opinion-Score mapping of paper Table 1
//!   and MOS-PDF aggregation (Figs. 11c/d, 16b, 17b/d/f).
//! * [`freeze`] — frame-delay bookkeeping and the freeze-ratio metric
//!   (frames delayed beyond 600 ms; Figs. 14, 16a, 17a/c/e).
//! * [`table`] — fixed-width text rendering of rows/series so the
//!   `reproduce` harness prints figures the way the paper tabulates them.
//! * [`fairness`] — Jain's index for multi-flow share comparisons (the
//!   `coexist` experiment).

pub mod dist;
pub mod fairness;
pub mod freeze;
pub mod mos;
pub mod table;

pub use dist::{Cdf, Summary};
pub use fairness::jain_index;
pub use freeze::FreezeStats;
pub use mos::{Mos, MosPdf};
pub use table::Table;
