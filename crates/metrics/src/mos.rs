//! PSNR → Mean Opinion Score mapping (paper Table 1).
//!
//! | MOS        | PSNR range (dB) |
//! |------------|-----------------|
//! | Excellent  | > 37            |
//! | Good       | 31 – 37         |
//! | Fair       | 25 – 31         |
//! | Poor       | 20 – 25         |
//! | Bad        | < 20            |
//!
//! The paper computes per-frame MOS from frame-level ROI PSNR and reports
//! PDFs over the five bands.

/// The five MOS bands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mos {
    /// PSNR below 20 dB.
    Bad,
    /// 20–25 dB.
    Poor,
    /// 25–31 dB.
    Fair,
    /// 31–37 dB.
    Good,
    /// Above 37 dB.
    Excellent,
}

impl Mos {
    /// Classify a PSNR value per Table 1.
    pub fn from_psnr(psnr_db: f64) -> Mos {
        if psnr_db > 37.0 {
            Mos::Excellent
        } else if psnr_db > 31.0 {
            Mos::Good
        } else if psnr_db > 25.0 {
            Mos::Fair
        } else if psnr_db > 20.0 {
            Mos::Poor
        } else {
            Mos::Bad
        }
    }

    /// All bands, worst first (the order the paper's PDF plots use).
    pub fn all() -> [Mos; 5] {
        [Mos::Bad, Mos::Poor, Mos::Fair, Mos::Good, Mos::Excellent]
    }

    /// Short label used in figures ("EXC" matches the paper's axis).
    pub fn label(&self) -> &'static str {
        match self {
            Mos::Bad => "Bad",
            Mos::Poor => "Poor",
            Mos::Fair => "Fair",
            Mos::Good => "Good",
            Mos::Excellent => "EXC",
        }
    }
}

/// A PDF over the five MOS bands.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MosPdf {
    counts: [u64; 5],
}

impl MosPdf {
    /// Empty PDF.
    pub fn new() -> MosPdf {
        MosPdf::default()
    }

    /// Build directly from per-frame PSNR samples.
    pub fn from_psnrs(psnrs: impl IntoIterator<Item = f64>) -> MosPdf {
        let mut pdf = MosPdf::new();
        for p in psnrs {
            pdf.add_psnr(p);
        }
        pdf
    }

    /// Record one frame's PSNR.
    pub fn add_psnr(&mut self, psnr_db: f64) {
        self.add(Mos::from_psnr(psnr_db));
    }

    /// Record one frame's band.
    pub fn add(&mut self, mos: Mos) {
        self.counts[mos as usize] += 1;
    }

    /// Total frames recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of frames in a band.
    pub fn fraction(&self, mos: Mos) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[mos as usize] as f64 / total as f64
        }
    }

    /// The full PDF, worst band first.
    pub fn pdf(&self) -> [f64; 5] {
        let mut out = [0.0; 5];
        for (k, m) in Mos::all().iter().enumerate() {
            out[k] = self.fraction(*m);
        }
        out
    }

    /// Fraction of frames at Good or better.
    pub fn good_or_better(&self) -> f64 {
        self.fraction(Mos::Good) + self.fraction(Mos::Excellent)
    }

    /// Merge another PDF into this one (aggregate across sessions).
    pub fn merge(&mut self, other: &MosPdf) {
        for k in 0..5 {
            self.counts[k] += other.counts[k];
        }
    }
}

impl poi360_sim::json::ToJson for MosPdf {
    /// Band counts, worst band first (`[bad, poor, fair, good, excellent]`).
    fn write_json(&self, out: &mut String) {
        poi360_sim::json::ToJson::write_json(self.counts.as_slice(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_boundaries() {
        assert_eq!(Mos::from_psnr(37.01), Mos::Excellent);
        assert_eq!(Mos::from_psnr(37.0), Mos::Good);
        assert_eq!(Mos::from_psnr(31.01), Mos::Good);
        assert_eq!(Mos::from_psnr(31.0), Mos::Fair);
        assert_eq!(Mos::from_psnr(25.01), Mos::Fair);
        assert_eq!(Mos::from_psnr(25.0), Mos::Poor);
        assert_eq!(Mos::from_psnr(20.01), Mos::Poor);
        assert_eq!(Mos::from_psnr(20.0), Mos::Bad);
        assert_eq!(Mos::from_psnr(5.0), Mos::Bad);
    }

    #[test]
    fn band_order_matches_quality_order() {
        assert!(Mos::Bad < Mos::Poor);
        assert!(Mos::Poor < Mos::Fair);
        assert!(Mos::Fair < Mos::Good);
        assert!(Mos::Good < Mos::Excellent);
    }

    #[test]
    fn pdf_sums_to_one() {
        let pdf = MosPdf::from_psnrs([15.0, 22.0, 28.0, 33.0, 40.0, 41.0]);
        let total: f64 = pdf.pdf().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(pdf.total(), 6);
    }

    #[test]
    fn fractions_count_correctly() {
        let pdf = MosPdf::from_psnrs([40.0, 40.0, 33.0, 10.0]);
        assert_eq!(pdf.fraction(Mos::Excellent), 0.5);
        assert_eq!(pdf.fraction(Mos::Good), 0.25);
        assert_eq!(pdf.fraction(Mos::Bad), 0.25);
        assert_eq!(pdf.fraction(Mos::Fair), 0.0);
        assert_eq!(pdf.good_or_better(), 0.75);
    }

    #[test]
    fn empty_pdf_is_zero() {
        let pdf = MosPdf::new();
        assert_eq!(pdf.total(), 0);
        assert_eq!(pdf.pdf(), [0.0; 5]);
        assert_eq!(pdf.good_or_better(), 0.0);
    }

    #[test]
    fn merge_aggregates_sessions() {
        let mut a = MosPdf::from_psnrs([40.0, 33.0]);
        let b = MosPdf::from_psnrs([40.0, 10.0]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.fraction(Mos::Excellent), 0.5);
    }

    #[test]
    fn labels_match_paper_axes() {
        let labels: Vec<&str> = Mos::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["Bad", "Poor", "Fair", "Good", "EXC"]);
    }
}
