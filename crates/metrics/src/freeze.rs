//! Frame-delay bookkeeping and the freeze-ratio metric.
//!
//! The paper defines the freezing ratio as "the percentage of video frames
//! that experience higher than 600 ms delay" (§6.1.1) and calls it "the
//! most crucial user experience metric".

use poi360_sim::json::{JsonObject, ToJson};
use poi360_sim::time::SimDuration;

/// The paper's freeze threshold.
pub const FREEZE_THRESHOLD: SimDuration = SimDuration::from_millis(600);

/// Accumulates per-frame delays and reduces them to delay/freeze metrics.
#[derive(Clone, Debug, Default)]
pub struct FreezeStats {
    delays_ms: Vec<f64>,
    /// Frames that never arrived (counted as frozen).
    lost: u64,
}

impl FreezeStats {
    /// Empty stats.
    pub fn new() -> FreezeStats {
        FreezeStats::default()
    }

    /// Record a delivered frame's end-to-end delay.
    pub fn record(&mut self, delay: SimDuration) {
        self.delays_ms.push(delay.as_micros() as f64 / 1e3);
    }

    /// Record a frame that was never delivered (it froze the display).
    pub fn record_lost(&mut self) {
        self.lost += 1;
    }

    /// Number of delivered frames.
    pub fn delivered(&self) -> usize {
        self.delays_ms.len()
    }

    /// Number of undelivered frames.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// All recorded delays in milliseconds.
    pub fn delays_ms(&self) -> &[f64] {
        &self.delays_ms
    }

    /// Freeze ratio: fraction of frames delayed beyond the threshold,
    /// counting lost frames as frozen. `None` before any frame.
    pub fn freeze_ratio(&self) -> Option<f64> {
        let total = self.delays_ms.len() as u64 + self.lost;
        if total == 0 {
            return None;
        }
        let threshold_ms = FREEZE_THRESHOLD.as_micros() as f64 / 1e3;
        let frozen =
            self.delays_ms.iter().filter(|&&d| d > threshold_ms).count() as u64 + self.lost;
        Some(frozen as f64 / total as f64)
    }

    /// Median delivered delay in ms.
    pub fn median_delay_ms(&self) -> Option<f64> {
        crate::dist::median(&self.delays_ms)
    }

    /// Arbitrary delay percentile in ms.
    pub fn delay_percentile_ms(&self, q: f64) -> Option<f64> {
        crate::dist::percentile(&self.delays_ms, q)
    }

    /// Merge stats from another session.
    pub fn merge(&mut self, other: &FreezeStats) {
        self.delays_ms.extend_from_slice(&other.delays_ms);
        self.lost += other.lost;
    }
}

impl ToJson for FreezeStats {
    fn write_json(&self, out: &mut String) {
        JsonObject::new().field("delays_ms", &self.delays_ms).field("lost", &self.lost).write(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_has_no_ratio() {
        assert_eq!(FreezeStats::new().freeze_ratio(), None);
    }

    #[test]
    fn threshold_is_600ms_exclusive() {
        let mut s = FreezeStats::new();
        s.record(ms(600)); // exactly 600 is NOT a freeze ("higher than")
        s.record(ms(601));
        assert_eq!(s.freeze_ratio(), Some(0.5));
    }

    #[test]
    fn counts_fractions() {
        let mut s = FreezeStats::new();
        for d in [100u64, 200, 300, 700] {
            s.record(ms(d));
        }
        assert_eq!(s.freeze_ratio(), Some(0.25));
        assert_eq!(s.median_delay_ms(), Some(250.0));
    }

    #[test]
    fn lost_frames_count_as_frozen() {
        let mut s = FreezeStats::new();
        s.record(ms(100));
        s.record_lost();
        assert_eq!(s.freeze_ratio(), Some(0.5));
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.lost(), 1);
    }

    #[test]
    fn merge_pools_sessions() {
        let mut a = FreezeStats::new();
        a.record(ms(100));
        let mut b = FreezeStats::new();
        b.record(ms(900));
        b.record_lost();
        a.merge(&b);
        assert_eq!(a.delivered(), 2);
        assert_eq!(a.freeze_ratio(), Some(2.0 / 3.0));
    }

    #[test]
    fn percentiles_on_delays() {
        let mut s = FreezeStats::new();
        for d in 1..=100u64 {
            s.record(ms(d * 10));
        }
        let p90 = s.delay_percentile_ms(0.9).unwrap();
        assert!((p90 - 910.0).abs() < 10.0, "p90 {p90}");
    }
}
