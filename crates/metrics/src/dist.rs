//! Summary statistics and empirical distributions.

use poi360_sim::json::{JsonObject, ToJson};

/// Summary statistics over a sample set.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute a summary; returns the zero summary for an empty slice.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, std: var.sqrt(), min, max }
    }
}

impl ToJson for Summary {
    fn write_json(&self, out: &mut String) {
        JsonObject::new()
            .field("n", &self.n)
            .field("mean", &self.mean)
            .field("std", &self.std)
            .field("min", &self.min)
            .field("max", &self.max)
            .write(out);
    }
}

/// Percentile of a sample set (linear interpolation between order
/// statistics). `q` in `[0, 1]`. Returns `None` on an empty slice.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median shorthand.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 0.5)
}

/// An empirical CDF over the sample set.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs rejected by debug assertion).
    pub fn new(mut values: Vec<f64>) -> Cdf {
        debug_assert!(values.iter().all(|v| !v.is_nan()));
        values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        Cdf { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when built from no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        percentile(&self.sorted, q)
    }

    /// Evaluate on an even grid of `points` x-values spanning the data,
    /// returning `(x, F(x))` pairs — what a CDF plot needs.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points < 2 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        (0..points)
            .map(|k| {
                let x = lo + span * k as f64 / (points - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

/// A fixed-bin histogram normalized to a PDF.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    bin_width: f64,
    counts: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Create `bins` equal bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            bin_width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            total: 0,
            below: 0,
            above: 0,
        }
    }

    /// Add a sample; out-of-range samples count in `below`/`above`.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.below += 1;
            return;
        }
        let idx = ((x - self.lo) / self.bin_width) as usize;
        if idx >= self.counts.len() {
            self.above += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Fraction of samples in each bin (sums to ≤ 1; the remainder fell
    /// outside the range).
    pub fn pdf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// Bin center x-values.
    pub fn centers(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|k| self.lo + (k as f64 + 0.5) * self.bin_width).collect()
    }

    /// Total samples observed (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - 1.118).abs() < 1e-3);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 1.0), Some(40.0));
        assert_eq!(percentile(&v, 0.5), Some(25.0));
        assert_eq!(median(&[1.0, 2.0, 100.0]), Some(2.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 2.0, 5.0]);
        assert_eq!(cdf.at(0.0), 0.0);
        assert_eq!(cdf.at(1.0), 0.2);
        assert_eq!(cdf.at(2.0), 0.6);
        assert_eq!(cdf.at(10.0), 1.0);
        let curve = cdf.curve(9);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing");
        }
    }

    #[test]
    fn cdf_quantile_matches_percentile() {
        let samples: Vec<f64> = (0..101).map(|k| k as f64).collect();
        let cdf = Cdf::new(samples);
        assert_eq!(cdf.quantile(0.5), Some(50.0));
        assert_eq!(cdf.quantile(0.95), Some(95.0));
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.at(1.0), 0.0);
        assert!(cdf.curve(10).is_empty());
    }

    #[test]
    fn histogram_pdf_sums_to_one_in_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for k in 0..100 {
            h.add(k as f64 % 10.0);
        }
        let pdf = h.pdf();
        assert!((pdf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for p in pdf {
            assert!((p - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn histogram_counts_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        h.add(0.5);
        assert_eq!(h.total(), 3);
        assert!((h.pdf().iter().sum::<f64>() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_centers() {
        let h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.centers(), vec![0.5, 1.5, 2.5, 3.5]);
    }
}
