//! Thread-local heap-allocation counting (in-repo `dhat` replacement).
//!
//! The workspace's perf discipline (DESIGN.md §10) says the steady-state
//! subframe loop must not touch the heap. Asserting that needs a way to
//! *count* allocations, hermetically. [`CountingAlloc`] wraps the system
//! allocator and bumps thread-local counters on every `alloc`/`realloc`;
//! [`AllocScope`] snapshots those counters around a region:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: poi360_testkit::alloc::CountingAlloc = poi360_testkit::alloc::CountingAlloc;
//!
//! let scope = AllocScope::enter();
//! hot_loop();
//! let stats = scope.exit();
//! assert_eq!(stats.allocs, 0, "steady state must not allocate");
//! ```
//!
//! The counters come in two flavors. The thread-local `Cell<u64>`s (with
//! const initializers, so reading or bumping them never allocates — a
//! lazily-initialized TLS slot would recurse into the allocator on first
//! touch) feed [`AllocScope`], which sees only the current thread.
//! Process-global relaxed atomics, bumped alongside the thread-locals,
//! feed [`GlobalAllocScope`], which sees **every** thread — the scope the
//! zero-alloc gate uses now that the grid's hot loop can run on shard
//! worker threads (a thread-local scope around a sharded loop would
//! vacuously pass while the workers allocate freely). Installing the
//! allocator is the *binary's* choice — a `#[global_allocator]` item in
//! the bench/test binary — so library crates and ordinary test binaries
//! keep the plain system allocator. When the counting allocator is not
//! installed, scopes simply report zero deltas; callers that need to
//! distinguish "no allocations" from "not counting" check
//! [`counting_is_active`], which performs a sentinel allocation and sees
//! whether the counters moved.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide totals across all threads (relaxed: the gate only reads
/// them outside the measured region, after the workers have joined or
/// gone idle at a barrier, so no ordering is required — only counts).
static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_BYTES: AtomicU64 = AtomicU64::new(0);

#[inline]
fn bump(bytes: u64) {
    ALLOCS.with(|c| c.set(c.get() + 1));
    BYTES.with(|c| c.set(c.get() + bytes));
    GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    GLOBAL_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// A `#[global_allocator]` shim that counts allocations per thread.
///
/// Delegates every operation to [`System`]; the only addition is the
/// thread-local bookkeeping. `dealloc` is deliberately not counted — the
/// zero-alloc gate cares about *acquiring* heap memory in the hot loop,
/// and frees of pre-existing buffers (e.g. a shrink-to-fit outside the
/// measured region) would only muddy the signal.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump(layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc acquires heap (growth) or at least exercises the
        // allocator; either way the hot loop must not do it.
        bump(new_size as u64);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocation counts observed over an [`AllocScope`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap acquisitions (`alloc` + `alloc_zeroed` + `realloc` calls).
    pub allocs: u64,
    /// Bytes requested across those acquisitions.
    pub bytes: u64,
}

/// Snapshot-based measurement of allocations on the current thread.
#[derive(Debug)]
pub struct AllocScope {
    allocs_at_enter: u64,
    bytes_at_enter: u64,
}

impl AllocScope {
    /// Start counting from the current thread's totals.
    pub fn enter() -> Self {
        AllocScope {
            allocs_at_enter: ALLOCS.with(Cell::get),
            bytes_at_enter: BYTES.with(Cell::get),
        }
    }

    /// Allocations on this thread since [`AllocScope::enter`].
    pub fn exit(self) -> AllocStats {
        AllocStats {
            allocs: ALLOCS.with(Cell::get) - self.allocs_at_enter,
            bytes: BYTES.with(Cell::get) - self.bytes_at_enter,
        }
    }
}

/// Measure the allocations `f` performs on the current thread.
pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
    let scope = AllocScope::enter();
    let r = f();
    (r, scope.exit())
}

/// Snapshot-based measurement of allocations across **all** threads.
///
/// This is the shard-aware scope: a region whose hot loop fans out to
/// worker threads (the sharded grid driver) must be measured here, not
/// with [`AllocScope`], or worker-side allocations escape the count.
/// Because the totals are process-wide, concurrent unrelated activity
/// (another test, a background thread) also lands in the delta — callers
/// that need an exact number must serialize such activity themselves.
#[derive(Debug)]
pub struct GlobalAllocScope {
    allocs_at_enter: u64,
    bytes_at_enter: u64,
}

impl GlobalAllocScope {
    /// Start counting from the process-wide totals.
    pub fn enter() -> Self {
        GlobalAllocScope {
            allocs_at_enter: GLOBAL_ALLOCS.load(Ordering::Relaxed),
            bytes_at_enter: GLOBAL_BYTES.load(Ordering::Relaxed),
        }
    }

    /// Allocations on any thread since [`GlobalAllocScope::enter`].
    pub fn exit(self) -> AllocStats {
        AllocStats {
            allocs: GLOBAL_ALLOCS.load(Ordering::Relaxed) - self.allocs_at_enter,
            bytes: GLOBAL_BYTES.load(Ordering::Relaxed) - self.bytes_at_enter,
        }
    }
}

/// Whether the counting allocator is actually installed in this binary.
///
/// Performs one sentinel heap allocation and checks that the thread's
/// counter moved. A zero-alloc assertion should require this first —
/// otherwise a binary that forgot its `#[global_allocator]` item would
/// vacuously pass.
pub fn counting_is_active() -> bool {
    let before = ALLOCS.with(Cell::get);
    let sentinel: Vec<u8> = Vec::with_capacity(64);
    std::hint::black_box(&sentinel);
    ALLOCS.with(Cell::get) > before
}

#[cfg(test)]
mod tests {
    use super::*;

    // The testkit test binary does NOT install CountingAlloc (that is a
    // per-binary decision), so these tests exercise the inactive path;
    // the active path is covered by poi360-bench's zero_alloc test which
    // installs the allocator for real.

    #[test]
    fn inactive_counting_reports_zero_deltas() {
        assert!(!counting_is_active());
        let ((), stats) = count_allocs(|| {
            let v: Vec<u64> = (0..1_000).collect();
            std::hint::black_box(&v);
        });
        assert_eq!(stats, AllocStats { allocs: 0, bytes: 0 });
    }

    #[test]
    fn scope_deltas_are_relative_to_enter() {
        let a = AllocScope::enter();
        let b = AllocScope::enter();
        let sa = a.exit();
        let sb = b.exit();
        assert_eq!(sa.allocs, sb.allocs);
    }
}
