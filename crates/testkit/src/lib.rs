//! Deterministic test harness for the POI360 workspace.
//!
//! The workspace builds hermetically — no external crates — so the roles
//! `proptest` and `criterion` used to play are implemented here, on top of
//! the same [`poi360_sim::rng::SimRng`] streams the experiments use:
//!
//! * [`prop`] — seeded property-based testing. [`prop_check!`] runs a
//!   property over N generated cases; a failing case is shrunk by
//!   bisection over its raw random draws and reported with the exact
//!   seed (`POI360_PROP_SEED=...`) that reproduces it.
//! * [`bench`] — wall-clock micro-benchmarks: adaptive warmup, then the
//!   median of N timed batches, with JSON results written to
//!   `bench_results/` and a [`bench::diff`] comparator for the CI
//!   perf-regression gate.
//! * [`alloc`] — a thread-local counting allocator so perf suites can
//!   assert the steady-state hot path performs zero heap allocations
//!   (DESIGN.md §10).
//!
//! Both harnesses are deterministic by construction: case seeds derive
//! from the property's name, never from ambient entropy, so CI and a
//! developer laptop always test the identical case set.

pub mod alloc;
pub mod bench;
pub mod prop;

pub use alloc::{count_allocs, AllocScope, AllocStats, CountingAlloc};
pub use bench::{results_dir, Bench, BenchResult};
pub use prop::{CaseError, CaseResult, Gen};

// Benches moved off criterion still want a `black_box`.
pub use std::hint::black_box;
