//! Seeded property-based testing with shrinking-by-bisection.
//!
//! A property is a closure `FnMut(&mut Gen) -> CaseResult`. The harness
//! runs it over `cases` generated inputs; each case's randomness comes
//! from a [`SimRng`] seeded deterministically from the property name and
//! case index, so the case set is identical on every machine and every
//! run.
//!
//! # Reproducing a failure
//!
//! A failing property panics with the case's seed. Re-run just that case
//! with `POI360_PROP_SEED=<seed> cargo test <name>`. `POI360_PROP_CASES`
//! scales the case count globally (e.g. `POI360_PROP_CASES=1000` for a
//! soak run).
//!
//! # Shrinking
//!
//! [`Gen`] records every raw 64-bit draw a case makes. All generator
//! methods map raw draws *monotonically* onto their output range, so a
//! smaller raw draw always means a smaller (or earlier) value. On
//! failure, the harness bisects each recorded draw toward zero, keeping
//! a reduction whenever the property still fails, until a fixpoint. The
//! shrunk raw draws are replayed through the same property, which turns
//! "some 80-element vector fails" into a minimal counterexample without
//! any per-type shrinking machinery.

use poi360_sim::rng::SimRng;

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum CaseError {
    /// The property's assertion failed; the string explains where/why.
    Fail(String),
    /// The generated input was outside the property's precondition
    /// (`prop_assume!`); the harness replaces it with a fresh case.
    Reject,
}

impl CaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> CaseError {
        CaseError::Fail(msg.into())
    }
}

/// Outcome of one property evaluation.
pub type CaseResult = Result<(), CaseError>;

/// Deterministic input generator handed to each property case.
///
/// Every sampler consumes exactly one raw `u64` draw per scalar and maps
/// it monotonically onto the requested range (so shrinking the raw draw
/// shrinks the value). Draws are recorded to enable replay/shrinking.
#[derive(Debug)]
pub struct Gen {
    rng: SimRng,
    /// Overrides for replay: draw `i` yields `forced[i]` when present.
    forced: Vec<u64>,
    /// Every raw draw made so far in this case.
    draws: Vec<u64>,
}

impl Gen {
    /// A generator for a fresh case.
    pub fn from_seed(seed: u64) -> Gen {
        Gen { rng: SimRng::from_seed(seed), forced: Vec::new(), draws: Vec::new() }
    }

    /// A generator that replays `forced` draws (falling back to the seeded
    /// stream once past the recorded prefix).
    fn replay(seed: u64, forced: Vec<u64>) -> Gen {
        Gen { rng: SimRng::from_seed(seed), forced, draws: Vec::new() }
    }

    /// One raw 64-bit draw (recorded).
    fn raw(&mut self) -> u64 {
        let fresh = self.rng.next_u64();
        let v = match self.forced.get(self.draws.len()) {
            Some(&f) => f,
            None => fresh,
        };
        self.draws.push(v);
        v
    }

    /// Uniform `u64` over the full range.
    pub fn any_u64(&mut self) -> u64 {
        self.raw()
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Monotone in the raw draw.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "u64_in: empty range {lo}..={hi}");
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            // Full-range request: the raw draw is already uniform.
            return self.raw();
        }
        lo + ((self.raw() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "i64_in: empty range {lo}..={hi}");
        lo.wrapping_add(self.u64_in(0, lo.abs_diff(hi)) as i64)
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform `u8` in `[lo, hi]` (inclusive).
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.u64_in(lo as u64, hi as u64) as u8
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform float in `[lo, hi)`. Monotone in the raw draw.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "f64_in: empty range {lo}..{hi}");
        let unit = (self.raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    /// Index into a collection of `len` elements (`len > 0`).
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index into empty collection");
        self.usize_in(0, len - 1)
    }

    /// Bernoulli draw (probability of `true` = `p`). `true` shrinks to
    /// `false`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_in(0.0, 1.0) < p
    }

    /// Vector with a generated length in `[min_len, max_len]`, elements
    /// from `f`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }

    /// Vector of uniform `u64`s in `[lo, hi]`.
    pub fn vec_u64(&mut self, min_len: usize, max_len: usize, lo: u64, hi: u64) -> Vec<u64> {
        self.vec_of(min_len, max_len, |g| g.u64_in(lo, hi))
    }

    /// Vector of uniform `u32`s in `[lo, hi]`.
    pub fn vec_u32(&mut self, min_len: usize, max_len: usize, lo: u32, hi: u32) -> Vec<u32> {
        self.vec_of(min_len, max_len, |g| g.u32_in(lo, hi))
    }

    /// Vector of uniform floats in `[lo, hi)`.
    pub fn vec_f64(&mut self, min_len: usize, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        self.vec_of(min_len, max_len, |g| g.f64_in(lo, hi))
    }

    /// Lowercase ASCII string with a generated length in
    /// `[min_len, max_len]`.
    pub fn lowercase(&mut self, min_len: usize, max_len: usize) -> String {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| (b'a' + self.u8_in(0, 25)) as char).collect()
    }
}

/// FNV-1a, the same stable hash `SimRng::stream` uses for names.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hard cap on precondition rejections per case slot before the harness
/// declares the property's `prop_assume!` unsatisfiable.
const MAX_REJECTS_PER_CASE: u32 = 1_000;

/// Budget of property evaluations the shrinker may spend.
const SHRINK_BUDGET: u32 = 2_000;

/// Run `f` against `cases` generated inputs (see [`prop_check!`]).
///
/// Panics on the first failing case after shrinking it, reporting the
/// reproducing seed. `POI360_PROP_SEED` re-runs exactly one seed;
/// `POI360_PROP_CASES` overrides the case count.
pub fn check(name: &str, cases: u64, mut f: impl FnMut(&mut Gen) -> CaseResult) {
    if let Ok(seed_text) = std::env::var("POI360_PROP_SEED") {
        let seed = parse_seed(&seed_text)
            .unwrap_or_else(|| panic!("unparsable POI360_PROP_SEED {seed_text:?}"));
        run_one(name, seed, u64::MAX, &mut f);
        return;
    }
    let cases = match std::env::var("POI360_PROP_CASES") {
        Ok(n) => n.parse().unwrap_or_else(|_| panic!("unparsable POI360_PROP_CASES {n:?}")),
        Err(_) => cases,
    };
    let mut state = hash_name(name);
    for case_no in 0..cases {
        let mut rejects = 0u32;
        loop {
            let seed = splitmix64(&mut state);
            match run_case(seed, &mut f) {
                Ok(()) => break,
                Err(CaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects < MAX_REJECTS_PER_CASE,
                        "property '{name}': prop_assume! rejected {MAX_REJECTS_PER_CASE} \
                         inputs in a row at case {case_no}; the precondition is too narrow"
                    );
                }
                Err(CaseError::Fail(msg)) => {
                    report_failure(name, case_no, seed, &msg, &mut f);
                }
            }
        }
    }
}

fn parse_seed(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn run_one(name: &str, seed: u64, case_no: u64, f: &mut impl FnMut(&mut Gen) -> CaseResult) {
    match run_case(seed, f) {
        Ok(()) => {}
        Err(CaseError::Reject) => {
            eprintln!("property '{name}': seed {seed:#x} rejected by prop_assume!");
        }
        Err(CaseError::Fail(msg)) => report_failure(name, case_no, seed, &msg, f),
    }
}

/// Evaluate one fresh case.
fn run_case(seed: u64, f: &mut impl FnMut(&mut Gen) -> CaseResult) -> CaseResult {
    f(&mut Gen::from_seed(seed))
}

/// Evaluate a replay with forced draws; returns the failure message and
/// the draws actually made, if it still fails.
fn run_forced(
    seed: u64,
    forced: &[u64],
    f: &mut impl FnMut(&mut Gen) -> CaseResult,
) -> Option<(String, Vec<u64>)> {
    let mut g = Gen::replay(seed, forced.to_vec());
    match f(&mut g) {
        Err(CaseError::Fail(msg)) => Some((msg, g.draws)),
        _ => None,
    }
}

/// Shrink the failing case by bisecting each recorded raw draw toward
/// zero, then panic with the reproduction seed and minimal failure.
fn report_failure(
    name: &str,
    case_no: u64,
    seed: u64,
    first_msg: &str,
    f: &mut impl FnMut(&mut Gen) -> CaseResult,
) -> ! {
    // Recover the original draw trace.
    let mut g = Gen::from_seed(seed);
    let _ = f(&mut g);
    let mut draws = g.draws;
    let mut msg = first_msg.to_string();
    let mut evals = 0u32;
    let mut shrunk = 0u32;
    // Passes of per-draw bisection until a fixpoint (or budget). The trace
    // may shorten mid-pass (shrinking a length draw drops later element
    // draws), so positions are re-checked against the live trace.
    loop {
        let mut changed = false;
        let mut i = 0usize;
        while i < draws.len() && evals < SHRINK_BUDGET {
            if draws[i] == 0 {
                i += 1;
                continue;
            }
            // Bisect for the smallest replacement of draw `i` that still
            // fails; `best` tracks the failing run at the current `hi`.
            let (mut lo, mut hi) = (0u64, draws[i]);
            let mut best: Option<(String, Vec<u64>)> = None;
            while lo < hi && evals < SHRINK_BUDGET {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = draws.clone();
                candidate[i] = mid;
                evals += 1;
                match run_forced(seed, &candidate, f) {
                    Some(found) => {
                        hi = mid;
                        best = Some(found);
                    }
                    None => lo = mid + 1,
                }
            }
            if let Some((m, observed)) = best {
                // Adopt the trace the shrunk run actually consumed, so
                // later positions index real draws.
                msg = m;
                draws = observed;
                changed = true;
                shrunk += 1;
            }
            i += 1;
        }
        if !changed || evals >= SHRINK_BUDGET {
            break;
        }
    }
    let preview: Vec<u64> = draws.iter().copied().take(16).collect();
    panic!(
        "property '{name}' failed at case {case_no} (seed {seed:#018x}).\n\
         minimal failure after shrinking ({shrunk} draws reduced, {evals} evals): {msg}\n\
         raw draws ({} total, first {}): {preview:?}\n\
         reproduce with: POI360_PROP_SEED={seed:#x} cargo test {name}",
        draws.len(),
        preview.len(),
    );
}

/// Run a property over generated cases:
/// `prop_check!(64, |g| { ...; Ok(()) });` or with an explicit name
/// `prop_check!("queue_drains", 64, |g| ...)`.
///
/// The property receives `&mut Gen` and returns [`CaseResult`]; use
/// [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`] inside.
#[macro_export]
macro_rules! prop_check {
    ($cases:expr, $f:expr) => {
        $crate::prop::check(concat!(module_path!(), ":", line!()), $cases as u64, $f)
    };
    ($name:expr, $cases:expr, $f:expr) => {
        $crate::prop::check($name, $cases as u64, $f)
    };
}

/// Assert inside a property; returns `CaseError::Fail` with location and
/// an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed at {}:{}: {} == {} ({:?} vs {:?})",
                file!(),
                line!(),
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
}

/// Reject the current input (precondition not met); the harness draws a
/// replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::CaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let draw = || {
            let mut g = Gen::from_seed(7);
            (g.u64_in(0, 100), g.f64_in(-1.0, 1.0), g.vec_u32(1, 10, 0, 9), g.lowercase(1, 8))
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::from_seed(1);
        for _ in 0..10_000 {
            let v = g.u64_in(3, 17);
            assert!((3..=17).contains(&v));
            let x = g.f64_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
            let i = g.i64_in(-4, 4);
            assert!((-4..=4).contains(&i));
            let n = g.index(7);
            assert!(n < 7);
        }
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut g = Gen::from_seed(2);
        for _ in 0..100 {
            let _ = g.u64_in(0, u64::MAX);
            let _ = g.i64_in(i64::MIN, i64::MAX);
        }
    }

    #[test]
    fn vec_lengths_in_bounds() {
        let mut g = Gen::from_seed(3);
        for _ in 0..1_000 {
            let v = g.vec_f64(2, 30, 0.0, 1.0);
            assert!((2..=30).contains(&v.len()));
        }
    }

    #[test]
    fn monotone_mapping_of_raw_draws() {
        // Forcing a smaller raw draw must never increase the mapped value —
        // the shrinker relies on this.
        for &(lo, hi) in &[(0u64, 9u64), (5, 5), (100, 10_000)] {
            let mut prev = None;
            for raw in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
                let mut g = Gen::replay(0, vec![raw]);
                let v = g.u64_in(lo, hi);
                if let Some(p) = prev {
                    assert!(v >= p, "u64_in not monotone: raw {raw} gave {v} < {p}");
                }
                prev = Some(v);
            }
        }
    }

    #[test]
    fn passing_property_completes() {
        check("testkit::always_passes", 64, |g| {
            let v = g.u64_in(0, 10);
            prop_assert!(v <= 10);
            Ok(())
        });
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check("testkit::fails_above_5", 64, |g| {
                let v = g.u64_in(0, 1000);
                prop_assert!(v <= 5, "v = {v}");
                Ok(())
            });
        }));
        let msg = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic".into()),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("POI360_PROP_SEED="), "missing repro seed in: {msg}");
        // Bisection must land on the boundary: the minimal failure is v = 6.
        assert!(msg.contains("v = 6"), "expected shrunk counterexample v = 6 in: {msg}");
    }

    #[test]
    fn shrinking_minimizes_vectors() {
        // Fails whenever the vector contains an element >= 50; the minimal
        // counterexample is a single-element vector [50].
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check("testkit::vec_shrink", 64, |g| {
                let v = g.vec_u64(0, 40, 0, 100);
                prop_assert!(v.iter().all(|&x| x < 50), "offending vec {v:?}");
                Ok(())
            });
        }));
        let msg = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic".into()),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("offending vec [50]"), "expected minimal vec [50] in: {msg}");
    }

    #[test]
    fn assume_rejects_and_resamples() {
        let mut evens = 0u32;
        check("testkit::assume_filters", 64, |g| {
            let v = g.u64_in(0, 1_000_000);
            prop_assume!(v % 2 == 0);
            evens += 1;
            prop_assert!(v % 2 == 0);
            Ok(())
        });
        assert_eq!(evens, 64);
    }

    #[test]
    fn unsatisfiable_assume_panics() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check("testkit::never_satisfied", 4, |_g| -> CaseResult {
                prop_assume!(false);
                Ok(())
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn seed_parses_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2a"), Some(42));
        assert_eq!(parse_seed(" 0X2A "), Some(42));
        assert_eq!(parse_seed("zzz"), None);
    }
}
