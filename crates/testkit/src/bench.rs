//! Wall-clock micro-benchmark harness (in-repo `criterion` replacement).
//!
//! Each benchmark runs a closure in timed batches: the batch size is
//! calibrated so one batch takes roughly [`TARGET_BATCH`], warmup batches
//! run until consecutive batch times agree within [`WARMUP_TOLERANCE`]
//! (capped at [`MAX_WARMUP_BATCHES`]) so caches, branch predictors, and
//! frequency scaling settle, then the per-iteration time is the
//! **median** over [`Bench::samples`] timed batches — robust to scheduler
//! noise without criterion's statistical machinery. The adaptive warmup
//! exists because fixed 1-batch warmups left samples=5 medians jittering
//! ~8% run-to-run on cold suites.
//!
//! [`Bench::finish`] writes every result as JSON to
//! `bench_results/<suite>.json` (one object per line inside a JSON array)
//! and prints a human-readable table, so bench binaries stay useful both
//! interactively and from `reproduce --smoke`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use poi360_sim::json::{JsonObject, ToJson};

/// Directory all bench/report artifacts land in: `bench_results/` at the
/// *workspace root*, regardless of the invoking process's cwd (cargo runs
/// benches from the crate directory, which used to scatter stray copies).
/// Set `POI360_BENCH_DIR` to override.
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("POI360_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    // This crate lives at `<workspace>/crates/testkit`.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("testkit sits two levels below the workspace root")
        .join("bench_results")
}

/// The git commit the bench binary was run against, or `"unknown"`
/// outside a work tree. Queried once per suite at `finish` time so bench
/// JSON is attributable to a revision when comparing runs. The same
/// stamp goes onto JSONL trace artifacts via `poi360_sim::trace::RunMeta`.
fn git_commit() -> String {
    poi360_sim::trace::git_commit()
}

/// The invoking command line, for reproducing a recorded suite verbatim.
fn invocation() -> Vec<String> {
    std::env::args().collect()
}

/// Calibration target for one timed batch.
const TARGET_BATCH: Duration = Duration::from_millis(20);

/// Timed batches per benchmark (median taken over these).
const DEFAULT_SAMPLES: usize = 11;

/// Minimum warmup batches before timing starts.
const DEFAULT_WARMUP: usize = 3;

/// Warmup continues until two consecutive batches agree within this
/// relative spread (|a-b| / min(a,b)).
const WARMUP_TOLERANCE: f64 = 0.03;

/// Hard cap on warmup batches, so a body with irreducible variance (e.g.
/// one dominated by OS jitter) cannot warm up forever.
const MAX_WARMUP_BATCHES: usize = 12;

/// One benchmark's measurements.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name (unique within the suite).
    pub name: String,
    /// Iterations per timed batch (after calibration).
    pub iters_per_sample: u64,
    /// Number of timed batches.
    pub samples: usize,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Fastest per-iteration time across batches, nanoseconds.
    pub min_ns: f64,
    /// Mean per-iteration time across batches, nanoseconds.
    pub mean_ns: f64,
}

impl BenchResult {
    /// Median per-iteration time in milliseconds (for table display).
    pub fn median_ms(&self) -> f64 {
        self.median_ns / 1e6
    }
}

impl ToJson for BenchResult {
    fn write_json(&self, out: &mut String) {
        JsonObject::new()
            .field("name", &self.name)
            .field("iters_per_sample", &self.iters_per_sample)
            .field("samples", &self.samples)
            .field("median_ns", &self.median_ns)
            .field("min_ns", &self.min_ns)
            .field("mean_ns", &self.mean_ns)
            .write(out);
    }
}

/// A benchmark suite: run with [`Bench::bench`], report with
/// [`Bench::finish`].
pub struct Bench {
    suite: String,
    samples: usize,
    warmup: usize,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Start a suite named `suite` (also the output file stem).
    pub fn new(suite: impl Into<String>) -> Self {
        Bench {
            suite: suite.into(),
            samples: DEFAULT_SAMPLES,
            warmup: DEFAULT_WARMUP,
            results: Vec::new(),
        }
    }

    /// Override the number of timed batches (odd keeps the median exact).
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Override the *minimum* number of warmup batches (warmup continues
    /// past this until consecutive batch times stabilize, up to
    /// [`MAX_WARMUP_BATCHES`]).
    pub fn warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Time `f`, recording the result under `name`. Wrap inputs/outputs in
    /// [`crate::black_box`] inside `f` to defeat dead-code elimination.
    pub fn bench(&mut self, name: impl Into<String>, mut f: impl FnMut()) -> &BenchResult {
        let name = name.into();
        let mut iters = calibrate(&mut f);
        // Adaptive warmup: keep running batches until two consecutive
        // ones agree within WARMUP_TOLERANCE, so the timed samples see a
        // settled cache/branch-predictor/clock state.
        let cap = MAX_WARMUP_BATCHES.max(self.warmup);
        let mut prev = run_batch(&mut f, iters).as_secs_f64();
        let mut batches = 1usize;
        while batches < cap {
            let cur = run_batch(&mut f, iters).as_secs_f64();
            batches += 1;
            let spread = (cur - prev).abs() / cur.min(prev).max(f64::MIN_POSITIVE);
            prev = cur;
            if batches >= self.warmup && spread <= WARMUP_TOLERANCE {
                break;
            }
        }
        // Recalibrate after warmup: the settled body is often faster than
        // the cold one calibrate() saw, which would undersize batches and
        // let scheduler noise back in.
        let settled = run_batch(&mut f, iters);
        if settled < TARGET_BATCH / 2 {
            let scale = TARGET_BATCH.as_secs_f64() / settled.as_secs_f64().max(1e-9);
            iters = ((iters as f64 * scale).ceil() as u64).max(iters);
        }
        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| run_batch(&mut f, iters).as_nanos() as f64 / iters as f64)
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];
        let min_ns = per_iter_ns[0];
        let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        eprintln!("  {name:<44} {:>12.3} ms/iter  (x{iters})", median_ns / 1e6);
        self.results.push(BenchResult {
            name,
            iters_per_sample: iters,
            samples: self.samples,
            median_ns,
            min_ns,
            mean_ns,
        });
        self.results.last().expect("just pushed")
    }

    /// All results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Render the suite as a JSON document, stamped with the git commit
    /// and the exact command line that produced it.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"suite\":");
        self.suite.write_json(&mut out);
        out.push_str(",\"commit\":");
        git_commit().write_json(&mut out);
        out.push_str(",\"invocation\":");
        invocation().write_json(&mut out);
        out.push_str(",\"results\":[\n");
        for (k, r) in self.results.iter().enumerate() {
            if k > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            r.write_json(&mut out);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Print the summary table and write `<suite>.json` into
    /// [`results_dir`]. Returns the path written, or an IO error (missing
    /// directory is created).
    pub fn finish(self) -> std::io::Result<std::path::PathBuf> {
        println!("\nsuite {}:", self.suite);
        for r in &self.results {
            println!(
                "  {:<44} median {:>12.3} ms  min {:>12.3} ms",
                r.name,
                r.median_ns / 1e6,
                r.min_ns / 1e6
            );
        }
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.suite));
        std::fs::write(&path, self.to_json())?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

/// One benchmark's current-vs-baseline comparison from [`diff`].
#[derive(Clone, Debug)]
pub struct DiffEntry {
    /// Benchmark name (shared by both suites).
    pub name: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: f64,
    /// Current median, nanoseconds.
    pub current_ns: f64,
    /// Relative change: `(current - baseline) / baseline`. Positive means
    /// the current run is slower.
    pub rel_delta: f64,
    /// Whether `rel_delta` exceeds the comparison threshold.
    pub regressed: bool,
}

/// Outcome of comparing a suite against a baseline with [`diff`].
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Per-benchmark comparisons, in the current suite's order. Only
    /// benchmarks present in *both* suites appear.
    pub entries: Vec<DiffEntry>,
    /// Benchmark names present in the baseline but missing from the
    /// current run — a silently dropped benchmark must not pass the gate.
    pub missing: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes: no entry regressed and nothing vanished.
    pub fn ok(&self) -> bool {
        self.missing.is_empty() && self.entries.iter().all(|e| !e.regressed)
    }

    /// Human-readable comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let verdict = if e.regressed { "REGRESSED" } else { "ok" };
            out.push_str(&format!(
                "  {:<44} {:>10.3} ms -> {:>10.3} ms  {:>+7.1}%  {}\n",
                e.name,
                e.baseline_ns / 1e6,
                e.current_ns / 1e6,
                e.rel_delta * 100.0,
                verdict
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("  {name:<44} missing from current run\n"));
        }
        out
    }
}

/// Pull `(name, median_ns)` pairs out of a suite JSON document (the
/// format [`Bench::to_json`] writes).
fn suite_medians(doc: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = poi360_sim::json::parse_json(doc)?;
    let results = doc
        .get("results")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "suite JSON has no `results` array".to_string())?;
    results
        .iter()
        .map(|r| {
            let name = r
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or_else(|| "result without a `name`".to_string())?;
            let median = r
                .get("median_ns")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("result {name:?} without `median_ns`"))?;
            Ok((name.to_string(), median))
        })
        .collect()
}

/// Relative regressions are only failures when the absolute slowdown
/// also clears this floor: sub-microsecond benchmark bodies jitter tens
/// of percent run-to-run from scheduler noise alone, and a "regression"
/// of 300 ns is not a hot-path event worth failing CI over.
pub const ABS_SLACK_NS: f64 = 1_000.0;

/// Compare a current suite JSON against a baseline suite JSON.
///
/// A benchmark regresses when its current median exceeds the baseline
/// median by more than `threshold` (relative: 0.25 = 25% slower) *and*
/// by more than [`ABS_SLACK_NS`] absolute. Medians *below* baseline
/// never fail — improvements are free; the baseline is re-pinned
/// deliberately (EXPERIMENTS.md), not ratcheted automatically.
/// Benchmarks new in the current run are ignored; benchmarks that
/// disappeared are reported in [`DiffReport::missing`].
pub fn diff(current_json: &str, baseline_json: &str, threshold: f64) -> Result<DiffReport, String> {
    let current = suite_medians(current_json)?;
    let baseline = suite_medians(baseline_json)?;
    let mut entries = Vec::new();
    for (name, current_ns) in &current {
        if let Some((_, baseline_ns)) = baseline.iter().find(|(b, _)| b == name) {
            let rel_delta = (current_ns - baseline_ns) / baseline_ns.max(f64::MIN_POSITIVE);
            entries.push(DiffEntry {
                name: name.clone(),
                baseline_ns: *baseline_ns,
                current_ns: *current_ns,
                rel_delta,
                regressed: rel_delta > threshold && current_ns - baseline_ns > ABS_SLACK_NS,
            });
        }
    }
    let missing = baseline
        .iter()
        .map(|(name, _)| name.clone())
        .filter(|name| !current.iter().any(|(c, _)| c == name))
        .collect();
    Ok(DiffReport { entries, missing })
}

/// Find an iteration count whose batch takes roughly [`TARGET_BATCH`]:
/// double from 1 until the batch is measurable, then scale linearly.
fn calibrate(f: &mut impl FnMut()) -> u64 {
    let mut iters = 1u64;
    loop {
        let t = run_batch(f, iters);
        if t >= TARGET_BATCH {
            return iters;
        }
        if t >= Duration::from_micros(500) {
            // Close enough to extrapolate in one step.
            let scale = TARGET_BATCH.as_secs_f64() / t.as_secs_f64();
            return ((iters as f64 * scale).ceil() as u64).max(1);
        }
        iters = iters.saturating_mul(2);
        if iters >= 1 << 24 {
            return iters; // sub-nanosecond body; cap the calibration
        }
    }
}

fn run_batch(f: &mut impl FnMut(), iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_serializes() {
        let mut b = Bench::new("unit").samples(3).warmup(1);
        let mut acc = 0u64;
        b.bench("spin", || {
            for k in 0..100u64 {
                acc = acc.wrapping_add(crate::black_box(k));
            }
        });
        assert_eq!(b.results().len(), 1);
        let r = &b.results()[0];
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert_eq!(r.samples, 3);
        let json = b.to_json();
        assert!(json.contains("\"suite\":\"unit\""));
        assert!(json.contains("\"name\":\"spin\""));
        assert!(json.contains("median_ns"));
    }

    #[test]
    fn suite_json_is_stamped_with_commit_and_invocation() {
        let json = Bench::new("stamped").to_json();
        let doc = poi360_sim::json::parse_json(&json).expect("suite JSON parses");
        let commit = doc.get("commit").and_then(|v| v.as_str()).expect("commit string");
        assert!(commit == "unknown" || commit.len() == 40, "commit {commit:?}");
        let invocation = doc.get("invocation").and_then(|v| v.as_array()).expect("argv array");
        assert!(!invocation.is_empty(), "argv records at least the binary name");
    }

    #[test]
    fn calibrate_scales_up_cheap_bodies() {
        let mut noop = || {};
        assert!(calibrate(&mut noop) > 1);
    }

    fn suite_json(results: &[(&str, f64)]) -> String {
        let mut out = String::new();
        out.push_str("{\"suite\":\"t\",\"commit\":\"unknown\",\"invocation\":[],\"results\":[");
        for (k, (name, median)) in results.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"iters_per_sample\":1,\"samples\":5,\
                 \"median_ns\":{median},\"min_ns\":{median},\"mean_ns\":{median}}}"
            ));
        }
        out.push_str("]}");
        out
    }

    #[test]
    fn diff_passes_within_threshold_and_on_improvement() {
        let baseline = suite_json(&[("a", 100.0), ("b", 100.0)]);
        let current = suite_json(&[("a", 110.0), ("b", 40.0)]);
        let report = diff(&current, &baseline, 0.25).expect("parses");
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.entries.len(), 2);
        assert!((report.entries[0].rel_delta - 0.10).abs() < 1e-9);
    }

    #[test]
    fn diff_fails_a_synthetic_regression() {
        // The CI gate's contract: a median that blows past the threshold
        // must flip ok() to false.
        let baseline = suite_json(&[("cell_scale/subframe_500_ues", 60_000.0)]);
        let current = suite_json(&[("cell_scale/subframe_500_ues", 100_000.0)]);
        let report = diff(&current, &baseline, 0.25).expect("parses");
        assert!(!report.ok());
        assert!(report.entries[0].regressed);
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn diff_tolerates_relative_jitter_on_nanosecond_bodies() {
        // 3x slower, but only 200 ns absolute: scheduler noise, not a
        // regression — the absolute slack keeps the gate quiet.
        let baseline = suite_json(&[("tiny", 100.0)]);
        let current = suite_json(&[("tiny", 300.0)]);
        let report = diff(&current, &baseline, 0.25).expect("parses");
        assert!(report.ok(), "{}", report.render());
    }

    #[test]
    fn diff_reports_benchmarks_missing_from_current() {
        let baseline = suite_json(&[("a", 100.0), ("gone", 100.0)]);
        let current = suite_json(&[("a", 100.0)]);
        let report = diff(&current, &baseline, 0.25).expect("parses");
        assert!(!report.ok(), "a vanished benchmark must not pass silently");
        assert_eq!(report.missing, vec!["gone".to_string()]);
    }

    #[test]
    fn diff_ignores_benchmarks_new_in_current() {
        let baseline = suite_json(&[("a", 100.0)]);
        let current = suite_json(&[("a", 100.0), ("new", 5.0)]);
        let report = diff(&current, &baseline, 0.25).expect("parses");
        assert!(report.ok());
        assert_eq!(report.entries.len(), 1);
    }

    #[test]
    fn diff_rejects_malformed_json() {
        assert!(diff("{", "{}", 0.25).is_err());
        assert!(diff("{\"results\":true}", "{\"results\":[]}", 0.25).is_err());
    }
}
