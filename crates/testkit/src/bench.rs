//! Wall-clock micro-benchmark harness (in-repo `criterion` replacement).
//!
//! Each benchmark runs a closure in timed batches: the batch size is
//! calibrated so one batch takes roughly [`TARGET_BATCH`], a few warmup
//! batches prime caches and branch predictors, then the per-iteration
//! time is the **median** over [`Bench::samples`] timed batches — robust
//! to scheduler noise without criterion's statistical machinery.
//!
//! [`Bench::finish`] writes every result as JSON to
//! `bench_results/<suite>.json` (one object per line inside a JSON array)
//! and prints a human-readable table, so bench binaries stay useful both
//! interactively and from `reproduce --smoke`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use poi360_sim::json::{JsonObject, ToJson};

/// Directory all bench/report artifacts land in: `bench_results/` at the
/// *workspace root*, regardless of the invoking process's cwd (cargo runs
/// benches from the crate directory, which used to scatter stray copies).
/// Set `POI360_BENCH_DIR` to override.
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("POI360_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    // This crate lives at `<workspace>/crates/testkit`.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("testkit sits two levels below the workspace root")
        .join("bench_results")
}

/// The git commit the bench binary was run against, or `"unknown"`
/// outside a work tree. Queried once per suite at `finish` time so bench
/// JSON is attributable to a revision when comparing runs.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The invoking command line, for reproducing a recorded suite verbatim.
fn invocation() -> Vec<String> {
    std::env::args().collect()
}

/// Calibration target for one timed batch.
const TARGET_BATCH: Duration = Duration::from_millis(20);

/// Timed batches per benchmark (median taken over these).
const DEFAULT_SAMPLES: usize = 11;

/// Warmup batches before timing starts.
const DEFAULT_WARMUP: usize = 3;

/// One benchmark's measurements.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name (unique within the suite).
    pub name: String,
    /// Iterations per timed batch (after calibration).
    pub iters_per_sample: u64,
    /// Number of timed batches.
    pub samples: usize,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Fastest per-iteration time across batches, nanoseconds.
    pub min_ns: f64,
    /// Mean per-iteration time across batches, nanoseconds.
    pub mean_ns: f64,
}

impl BenchResult {
    /// Median per-iteration time in milliseconds (for table display).
    pub fn median_ms(&self) -> f64 {
        self.median_ns / 1e6
    }
}

impl ToJson for BenchResult {
    fn write_json(&self, out: &mut String) {
        JsonObject::new()
            .field("name", &self.name)
            .field("iters_per_sample", &self.iters_per_sample)
            .field("samples", &self.samples)
            .field("median_ns", &self.median_ns)
            .field("min_ns", &self.min_ns)
            .field("mean_ns", &self.mean_ns)
            .write(out);
    }
}

/// A benchmark suite: run with [`Bench::bench`], report with
/// [`Bench::finish`].
pub struct Bench {
    suite: String,
    samples: usize,
    warmup: usize,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Start a suite named `suite` (also the output file stem).
    pub fn new(suite: impl Into<String>) -> Self {
        Bench {
            suite: suite.into(),
            samples: DEFAULT_SAMPLES,
            warmup: DEFAULT_WARMUP,
            results: Vec::new(),
        }
    }

    /// Override the number of timed batches (odd keeps the median exact).
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Override the number of warmup batches.
    pub fn warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Time `f`, recording the result under `name`. Wrap inputs/outputs in
    /// [`crate::black_box`] inside `f` to defeat dead-code elimination.
    pub fn bench(&mut self, name: impl Into<String>, mut f: impl FnMut()) -> &BenchResult {
        let name = name.into();
        let iters = calibrate(&mut f);
        for _ in 0..self.warmup {
            run_batch(&mut f, iters);
        }
        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| run_batch(&mut f, iters).as_nanos() as f64 / iters as f64)
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];
        let min_ns = per_iter_ns[0];
        let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        eprintln!("  {name:<44} {:>12.3} ms/iter  (x{iters})", median_ns / 1e6);
        self.results.push(BenchResult {
            name,
            iters_per_sample: iters,
            samples: self.samples,
            median_ns,
            min_ns,
            mean_ns,
        });
        self.results.last().expect("just pushed")
    }

    /// All results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Render the suite as a JSON document, stamped with the git commit
    /// and the exact command line that produced it.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"suite\":");
        self.suite.write_json(&mut out);
        out.push_str(",\"commit\":");
        git_commit().write_json(&mut out);
        out.push_str(",\"invocation\":");
        invocation().write_json(&mut out);
        out.push_str(",\"results\":[\n");
        for (k, r) in self.results.iter().enumerate() {
            if k > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            r.write_json(&mut out);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Print the summary table and write `<suite>.json` into
    /// [`results_dir`]. Returns the path written, or an IO error (missing
    /// directory is created).
    pub fn finish(self) -> std::io::Result<std::path::PathBuf> {
        println!("\nsuite {}:", self.suite);
        for r in &self.results {
            println!(
                "  {:<44} median {:>12.3} ms  min {:>12.3} ms",
                r.name,
                r.median_ns / 1e6,
                r.min_ns / 1e6
            );
        }
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.suite));
        std::fs::write(&path, self.to_json())?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

/// Find an iteration count whose batch takes roughly [`TARGET_BATCH`]:
/// double from 1 until the batch is measurable, then scale linearly.
fn calibrate(f: &mut impl FnMut()) -> u64 {
    let mut iters = 1u64;
    loop {
        let t = run_batch(f, iters);
        if t >= TARGET_BATCH {
            return iters;
        }
        if t >= Duration::from_micros(500) {
            // Close enough to extrapolate in one step.
            let scale = TARGET_BATCH.as_secs_f64() / t.as_secs_f64();
            return ((iters as f64 * scale).ceil() as u64).max(1);
        }
        iters = iters.saturating_mul(2);
        if iters >= 1 << 24 {
            return iters; // sub-nanosecond body; cap the calibration
        }
    }
}

fn run_batch(f: &mut impl FnMut(), iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_serializes() {
        let mut b = Bench::new("unit").samples(3).warmup(1);
        let mut acc = 0u64;
        b.bench("spin", || {
            for k in 0..100u64 {
                acc = acc.wrapping_add(crate::black_box(k));
            }
        });
        assert_eq!(b.results().len(), 1);
        let r = &b.results()[0];
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert_eq!(r.samples, 3);
        let json = b.to_json();
        assert!(json.contains("\"suite\":\"unit\""));
        assert!(json.contains("\"name\":\"spin\""));
        assert!(json.contains("median_ns"));
    }

    #[test]
    fn suite_json_is_stamped_with_commit_and_invocation() {
        let json = Bench::new("stamped").to_json();
        let doc = poi360_sim::json::parse_json(&json).expect("suite JSON parses");
        let commit = doc.get("commit").and_then(|v| v.as_str()).expect("commit string");
        assert!(commit == "unknown" || commit.len() == 40, "commit {commit:?}");
        let invocation = doc.get("invocation").and_then(|v| v.as_array()).expect("argv array");
        assert!(!invocation.is_empty(), "argv records at least the binary name");
    }

    #[test]
    fn calibrate_scales_up_cheap_bodies() {
        let mut noop = || {};
        assert!(calibrate(&mut noop) > 1);
    }
}
