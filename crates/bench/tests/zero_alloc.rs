//! The zero-alloc steady-state gate as a regression test.
//!
//! This test binary installs the counting allocator for real (the lib
//! test binary deliberately does not), self-checks that counting works,
//! and then asserts DESIGN.md §10's core claim: once pools and scratch
//! buffers have grown to their working capacity, a busy 500-UE cell's
//! subframe + recycle loop performs **zero** heap allocations.

use poi360_testkit::alloc::{count_allocs, counting_is_active};
use poi360_testkit::black_box;

#[global_allocator]
static ALLOC: poi360_testkit::CountingAlloc = poi360_testkit::CountingAlloc;

/// The zero-alloc gate counts with the shard-aware *global* scope, so a
/// concurrent test allocating on another thread would show up in its
/// delta. Every test in this binary takes the lock; the gate gets the
/// process to itself.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn counting_allocator_actually_counts() {
    let _guard = SERIAL.lock().unwrap();
    assert!(counting_is_active(), "this binary installs CountingAlloc");
    let ((), stats) = count_allocs(|| {
        let v: Vec<u64> = Vec::with_capacity(32);
        black_box(&v);
    });
    assert!(stats.allocs >= 1, "a Vec::with_capacity must be observed");
    assert!(stats.bytes >= 32 * 8, "observed {} bytes", stats.bytes);
}

#[test]
fn steady_state_subframes_do_not_allocate() {
    let _guard = SERIAL.lock().unwrap();
    let allocs = poi360_bench::perf::steady_state_allocs()
        .expect("counting allocator is installed in this binary");
    assert_eq!(allocs, 0, "ticks 1000.. of a busy 500-UE cell must not touch the heap");
}

#[test]
fn sharded_grid_steady_state_allocs_are_bounded_by_serial() {
    let _guard = SERIAL.lock().unwrap();
    // The persistent epoch pool steps cell bundles in place, so once the
    // warm-up epochs have grown every pool, a width-4 grid's steady-state
    // epochs must allocate what the serial path does — the simulation is
    // byte-identical across widths — give or take a small constant for
    // pool-internal bookkeeping.
    let serial = poi360_bench::perf::grid_steady_allocs(1)
        .expect("counting allocator is installed in this binary");
    let sharded = poi360_bench::perf::grid_steady_allocs(4)
        .expect("counting allocator is installed in this binary");
    assert!(
        sharded <= serial + poi360_bench::perf::GRID_ALLOC_SLACK,
        "sharded grid steady state allocates {sharded} vs serial {serial} — \
         the parallel path has regressed past the {} alloc slack",
        poi360_bench::perf::GRID_ALLOC_SLACK,
    );
}

#[test]
fn session_steady_state_has_bounded_allocation_rate() {
    let _guard = SERIAL.lock().unwrap();
    // The full session keeps ordered maps on purpose (reassembly,
    // feedback bookkeeping), so it is not zero-alloc — but the hot-path
    // work should hold it to a handful of allocations per subframe, not
    // the dozens the staging vectors used to cost.
    use poi360_core::config::{NetworkKind, RateControlKind, SessionConfig};
    use poi360_core::session::Session;
    use poi360_lte::scenario::Scenario;
    use poi360_sim::time::SimDuration;

    let mut s = Session::new(SessionConfig {
        rate_control: RateControlKind::Fbcc,
        network: NetworkKind::Cellular(Scenario::baseline()),
        duration: SimDuration::from_secs(1_000_000),
        seed: 1,
        ..Default::default()
    });
    for _ in 0..5_000 {
        s.step();
    }
    let ticks = 5_000u64;
    let ((), stats) = count_allocs(|| {
        for _ in 0..ticks {
            s.step();
        }
        black_box(s.now());
    });
    let per_tick = stats.allocs as f64 / ticks as f64;
    assert!(per_tick < 4.0, "session allocates {per_tick:.2}/subframe — staging has regressed");
}
