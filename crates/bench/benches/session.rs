//! Criterion benches for whole-session simulation speed.
//!
//! The real-time-feasibility check: simulating one second of telephony
//! (1000 subframes, 36 encoded frames, full feedback plane) must run far
//! faster than real time, or the reproduce harness could not sweep the
//! paper's 5 × 10 × 5-minute session grid.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use poi360_core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360_core::session::Session;
use poi360_lte::scenario::Scenario;
use poi360_sim::time::SimDuration;
use poi360_viewport::motion::UserArchetype;

fn cfg(rc: RateControlKind, net: NetworkKind) -> SessionConfig {
    SessionConfig {
        scheme: CompressionScheme::Poi360,
        rate_control: rc,
        network: net,
        user: UserArchetype::EventDriven,
        duration: SimDuration::from_secs(3600), // irrelevant: we step manually
        seed: 1,
        ..Default::default()
    }
}

fn bench_session_second(c: &mut Criterion) {
    c.bench_function("session/one_simulated_second_cellular_fbcc", |b| {
        b.iter_batched(
            || {
                let mut s = Session::new(cfg(
                    RateControlKind::Fbcc,
                    NetworkKind::Cellular(Scenario::baseline()),
                ));
                // Warm up past the startup transient.
                for _ in 0..2_000 {
                    s.step();
                }
                s
            },
            |mut s| {
                for _ in 0..1_000 {
                    s.step();
                }
                black_box(s.now())
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("session/one_simulated_second_wireline_gcc", |b| {
        b.iter_batched(
            || {
                let mut s = Session::new(cfg(RateControlKind::Gcc, NetworkKind::Wireline));
                for _ in 0..2_000 {
                    s.step();
                }
                s
            },
            |mut s| {
                for _ in 0..1_000 {
                    s.step();
                }
                black_box(s.now())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_session_second
}
criterion_main!(benches);
