//! Benches for whole-session simulation speed.
//!
//! The real-time-feasibility check: simulating one second of telephony
//! (1000 subframes, 36 encoded frames, full feedback plane) must run far
//! faster than real time, or the reproduce harness could not sweep the
//! paper's 5 × 10 × 5-minute session grid. Results land in
//! `bench_results/session.json`.

use poi360_core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360_core::session::Session;
use poi360_lte::scenario::Scenario;
use poi360_sim::time::SimDuration;
use poi360_testkit::{black_box, Bench};
use poi360_viewport::motion::UserArchetype;

fn cfg(rc: RateControlKind, net: NetworkKind) -> SessionConfig {
    SessionConfig {
        scheme: CompressionScheme::Poi360,
        rate_control: rc,
        network: net,
        user: UserArchetype::EventDriven,
        // Far beyond what the bench will ever step: we drive it manually.
        duration: SimDuration::from_secs(1_000_000),
        seed: 1,
        ..Default::default()
    }
}

fn main() {
    let mut b = Bench::new("session");

    // One long-lived warmed-up session per condition; each iteration
    // advances it by one simulated second (1000 subframes).
    let mut cellular =
        Session::new(cfg(RateControlKind::Fbcc, NetworkKind::Cellular(Scenario::baseline())));
    for _ in 0..2_000 {
        cellular.step();
    }
    b.bench("session/one_simulated_second_cellular_fbcc", || {
        for _ in 0..1_000 {
            cellular.step();
        }
        black_box(cellular.now());
    });

    let mut wireline = Session::new(cfg(RateControlKind::Gcc, NetworkKind::Wireline));
    for _ in 0..2_000 {
        wireline.step();
    }
    b.bench("session/one_simulated_second_wireline_gcc", || {
        for _ in 0..1_000 {
            wireline.step();
        }
        black_box(wireline.now());
    });

    b.finish().expect("write bench_results/session.json");
}
