//! Criterion benches for the LTE substrate: the per-subframe cost of the
//! channel model, the PF grant computation, and a loaded uplink subframe.
//! One simulated second costs 1000 subframes, so these dominate whole-
//! session simulation speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use poi360_lte::buffer::PacketLike;
use poi360_lte::channel::{Channel, ChannelConfig};
use poi360_lte::scheduler::{PfScheduler, SchedulerConfig};
use poi360_lte::uplink::{CellUplink, UplinkConfig};
use poi360_sim::time::SimTime;

struct Pkt;
impl PacketLike for Pkt {
    fn wire_bytes(&self) -> u32 {
        1_240
    }
}

fn bench_channel(c: &mut Criterion) {
    c.bench_function("lte/channel_subframe", |b| {
        let mut ch = Channel::new(ChannelConfig::default(), 1);
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now = now + poi360_sim::SUBFRAME;
            black_box(ch.subframe(now))
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("lte/pf_grant", |b| {
        let mut s = PfScheduler::new(SchedulerConfig::default(), 2);
        b.iter(|| black_box(s.grant_bits(black_box(12_000), 15, 0.3)))
    });
}

fn bench_uplink(c: &mut Criterion) {
    c.bench_function("lte/uplink_subframe_loaded", |b| {
        let mut ul = CellUplink::new(UplinkConfig::default(), 3);
        let mut now = SimTime::ZERO;
        b.iter(|| {
            while ul.buffer_level() < 12_000 {
                ul.enqueue(Pkt, now);
            }
            now = now + poi360_sim::SUBFRAME;
            black_box(ul.subframe(now))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_channel, bench_scheduler, bench_uplink
}
criterion_main!(benches);
