//! Benches for the LTE substrate: the per-subframe cost of the channel
//! model, the PF grant computation, and a loaded uplink subframe. One
//! simulated second costs 1000 subframes, so these dominate whole-
//! session simulation speed. Results land in `bench_results/lte.json`.

use poi360_lte::buffer::PacketLike;
use poi360_lte::channel::{Channel, ChannelConfig};
use poi360_lte::scheduler::{PfScheduler, SchedulerConfig};
use poi360_lte::uplink::{CellUplink, UplinkConfig};
use poi360_sim::time::SimTime;
use poi360_testkit::{black_box, Bench};

struct Pkt;
impl PacketLike for Pkt {
    fn wire_bytes(&self) -> u32 {
        1_240
    }
}

fn main() {
    let mut b = Bench::new("lte");

    let mut ch = Channel::new(ChannelConfig::default(), 1);
    let mut now = SimTime::ZERO;
    b.bench("lte/channel_subframe", || {
        now += poi360_sim::SUBFRAME;
        black_box(ch.subframe(now));
    });

    let mut s = PfScheduler::new(SchedulerConfig::default(), 2);
    b.bench("lte/pf_grant", || {
        black_box(s.grant_bits(black_box(12_000), 15, 0.3));
    });

    let mut ul = CellUplink::new(UplinkConfig::default(), 3);
    let mut now = SimTime::ZERO;
    b.bench("lte/uplink_subframe_loaded", || {
        while ul.buffer_level() < 12_000 {
            ul.enqueue(Pkt, now);
        }
        now += poi360_sim::SUBFRAME;
        black_box(ul.subframe(now));
    });

    b.finish().expect("write bench_results/lte.json");
}
