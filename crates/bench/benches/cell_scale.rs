//! How the shared-cell scheduler scales with UE count: per-subframe cost
//! (and therefore simulated subframes per wall-clock second) as the
//! attached population grows 10 → 500. One foreground UE is kept
//! backlogged so the PF allocator always has contention to resolve.
//! Results land in `bench_results/cell_scale.json` at the workspace root.

use poi360_lte::buffer::PacketLike;
use poi360_lte::cell::{Cell, CellConfig, UeId};
use poi360_lte::channel::ChannelConfig;
use poi360_sim::time::SimTime;
use poi360_testkit::{black_box, Bench};

struct Pkt;
impl PacketLike for Pkt {
    fn wire_bytes(&self) -> u32 {
        1_240
    }
}

fn main() {
    let mut b = Bench::new("cell_scale").samples(5).warmup(1);

    for ues in [10usize, 50, 100, 250, 500] {
        let mut cell = Cell::new(CellConfig::default(), 42);
        let fg = cell.attach_foreground("fg.0", ChannelConfig::default());
        cell.attach_background_population(ues - 1);
        let mut now = SimTime::ZERO;
        let r = b.bench(format!("cell_scale/subframe_{ues}_ues"), || {
            while cell.buffer_level(fg) < 20_000 {
                cell.enqueue(fg, Pkt, now);
            }
            now += poi360_sim::SUBFRAME;
            let out = cell.subframe(now);
            black_box(&out);
            cell.recycle(out);
        });
        let subframes_per_sec = 1e9 / r.median_ns;
        eprintln!("  {ues:>4} UEs: {subframes_per_sec:>12.0} subframes/sec");
        assert_eq!(UeId(0), fg);
    }

    b.finish().expect("write bench_results/cell_scale.json");
}
