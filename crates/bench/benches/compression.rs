//! Criterion benches for the spatial-compression hot path: matrix
//! construction, the cyclic-shift recenter, and per-frame encoding. These
//! run once per video frame in the prototype, so they must be far below
//! the 27.8 ms frame budget.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use poi360_sim::time::SimTime;
use poi360_video::compression::{CompressionMatrix, CompressionMode};
use poi360_video::content::ContentModel;
use poi360_video::encoder::{Encoder, EncoderConfig};
use poi360_video::frame::{TileGrid, TilePos};
use poi360_video::roi::Roi;

fn bench_matrix(c: &mut Criterion) {
    let grid = TileGrid::POI360;
    let mode = CompressionMode::protected_geometric(1.4, 1, 1);
    c.bench_function("compression/matrix_build", |b| {
        b.iter(|| black_box(mode.matrix(&grid, TilePos::new(6, 4))))
    });

    let matrix = mode.matrix(&grid, TilePos::new(6, 4));
    c.bench_function("compression/matrix_recenter", |b| {
        b.iter(|| black_box(matrix.recenter(TilePos::new(9, 5))))
    });

    c.bench_function("compression/load_factor", |b| {
        b.iter(|| black_box(CompressionMatrix::uniform(&grid, 2.0).load_factor()))
    });
}

fn bench_encode(c: &mut Criterion) {
    let grid = TileGrid::POI360;
    let mut encoder = Encoder::new(EncoderConfig::default(), 1);
    let content = ContentModel::new(grid, 1);
    let roi = Roi::at_tile(&grid, TilePos::new(6, 4));
    let matrix = CompressionMode::protected_geometric(1.4, 1, 1).matrix(&grid, roi.center);
    let mut now = SimTime::ZERO;
    c.bench_function("compression/encode_frame", |b| {
        b.iter(|| {
            now = now + poi360_sim::SimDuration::from_micros(27_778);
            black_box(encoder.encode(now, roi, &matrix, &content, 3.0e6))
        })
    });

    c.bench_function("compression/required_bitrate", |b| {
        b.iter(|| black_box(encoder.required_bitrate(&matrix, &content)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matrix, bench_encode
}
criterion_main!(benches);
