//! Benches for the spatial-compression hot path: matrix construction,
//! the cyclic-shift recenter, and per-frame encoding. These run once per
//! video frame in the prototype, so they must be far below the 27.8 ms
//! frame budget. Results land in `bench_results/compression.json`.

use poi360_sim::time::SimTime;
use poi360_testkit::{black_box, Bench};
use poi360_video::compression::{CompressionMatrix, CompressionMode};
use poi360_video::content::ContentModel;
use poi360_video::encoder::{Encoder, EncoderConfig};
use poi360_video::frame::{TileGrid, TilePos};
use poi360_video::roi::Roi;

fn main() {
    let mut b = Bench::new("compression");
    let grid = TileGrid::POI360;
    let mode = CompressionMode::protected_geometric(1.4, 1, 1);

    b.bench("compression/matrix_build", || {
        black_box(mode.matrix(&grid, TilePos::new(6, 4)));
    });

    let matrix = mode.matrix(&grid, TilePos::new(6, 4));
    b.bench("compression/matrix_recenter", || {
        black_box(matrix.recenter(TilePos::new(9, 5)));
    });

    b.bench("compression/load_factor", || {
        black_box(CompressionMatrix::uniform(&grid, 2.0).load_factor());
    });

    let mut encoder = Encoder::new(EncoderConfig::default(), 1);
    let content = ContentModel::new(grid, 1);
    let roi = Roi::at_tile(&grid, TilePos::new(6, 4));
    let enc_matrix = CompressionMode::protected_geometric(1.4, 1, 1).matrix(&grid, roi.center);
    let mut now = SimTime::ZERO;
    b.bench("compression/encode_frame", || {
        now += poi360_sim::SimDuration::from_micros(27_778);
        black_box(encoder.encode(now, roi, &enc_matrix, &content, 3.0e6));
    });

    b.bench("compression/required_bitrate", || {
        black_box(encoder.required_bitrate(&enc_matrix, &content));
    });

    b.finish().expect("write bench_results/compression.json");
}
