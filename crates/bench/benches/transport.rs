//! Benches for the transport hot path: GCC's per-packet update, RTP
//! packetization/reassembly, and the pacer tick. These run per packet
//! (hundreds per second), so nanosecond-scale costs matter for the
//! real-time claim. Results land in `bench_results/transport.json`.

use poi360_net::packet::{FrameTag, Packet};
use poi360_sim::time::{SimDuration, SimTime};
use poi360_testkit::{black_box, Bench};
use poi360_transport::gcc::GccReceiver;
use poi360_transport::pacer::Pacer;
use poi360_transport::rtp::{Packetizer, Reassembler};

fn main() {
    let mut b = Bench::new("transport");

    let mut rx = GccReceiver::new(2.0e6);
    let mut frame = 0u64;
    let mut seq = 0u64;
    b.bench("transport/gcc_on_packet", || {
        let sent = SimTime::from_micros(frame * 27_778);
        let arrival = sent + SimDuration::from_millis(60);
        let pkt = Packet::video(seq, 1_240, sent, FrameTag { frame_no: frame, index: 0, count: 1 });
        rx.on_packet(black_box(&pkt), arrival);
        frame += 1;
        seq += 1;
    });

    let mut pz = Packetizer::new();
    let mut frame = 0u64;
    b.bench("transport/packetize_10kB_frame", || {
        frame += 1;
        black_box(pz.packetize(frame, 10_000, SimTime::from_millis(frame)));
    });

    let mut pz = Packetizer::new();
    let mut rs = Reassembler::new(SimDuration::from_millis(1_500));
    let mut frame = 0u64;
    b.bench("transport/reassemble_frame", || {
        frame += 1;
        let pkts = pz.packetize(frame, 10_000, SimTime::from_millis(frame));
        let mut done = None;
        for (k, p) in pkts.iter().enumerate() {
            done = rs.on_packet(p, SimTime::from_millis(frame + k as u64));
        }
        black_box(done);
    });

    let mut pacer = Pacer::new(3.0e6);
    let mut now = SimTime::ZERO;
    let mut seq = 0u64;
    b.bench("transport/pacer_tick", || {
        for _ in 0..4 {
            pacer.enqueue(Packet::video(
                seq,
                1_240,
                now,
                FrameTag { frame_no: seq, index: 0, count: 1 },
            ));
            seq += 1;
        }
        now += SimDuration::from_millis(1);
        black_box(pacer.tick(now));
    });

    b.finish().expect("write bench_results/transport.json");
}
