//! Criterion benches timing the per-figure regeneration generators at a
//! reduced scale — a regression guard on the cost of reproducing each
//! paper figure (the `reproduce` binary runs the same generators at full
//! scale).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use poi360_bench::experiments;
use poi360_bench::runner::ExpConfig;

fn tiny() -> ExpConfig {
    ExpConfig { duration_secs: 5, repeats: 1, base_seed: 77 }
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("figures/fig5_buffer_tbs_sweep", |b| {
        b.iter(|| black_box(experiments::fig5_series(&tiny())))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("figures/fig6_gcc_buffer_cdf", |b| {
        b.iter(|| black_box(experiments::fig6_aggregate(&tiny())))
    });
}

fn bench_fig17(c: &mut Criterion) {
    c.bench_function("figures/fig17_load_sweep", |b| {
        b.iter(|| black_box(experiments::fig17_bench(&tiny(), experiments::Fig17Axis::Load)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5, bench_fig6, bench_fig17
}
criterion_main!(benches);
