//! Benches timing the per-figure regeneration generators at a reduced
//! scale — a regression guard on the cost of reproducing each paper
//! figure (the `reproduce` binary runs the same generators at full
//! scale). Results land in `bench_results/figures.json`.

use poi360_bench::experiments;
use poi360_bench::runner::ExpConfig;
use poi360_testkit::{black_box, Bench};

fn tiny() -> ExpConfig {
    ExpConfig { duration_secs: 5, repeats: 1, base_seed: 77 }
}

fn main() {
    let mut b = Bench::new("figures").samples(5).warmup(1);

    b.bench("figures/fig5_buffer_tbs_sweep", || {
        black_box(experiments::fig5_series(&tiny()));
    });

    b.bench("figures/fig6_gcc_buffer_cdf", || {
        black_box(experiments::fig6_aggregate(&tiny()));
    });

    b.bench("figures/fig17_load_sweep", || {
        black_box(experiments::fig17_bench(&tiny(), experiments::Fig17Axis::Load));
    });

    b.finish().expect("write bench_results/figures.json");
}
