//! The controller × tiling tournament (`reproduce arena`).
//!
//! Every rate controller races every tiling policy; each pairing (a
//! *cell* of the league) runs two legs:
//!
//! * a **quality leg** — a shared-cell ensemble (two identical flows of
//!   the pairing plus emergent background load) scored on the paper's
//!   metrics: mean ROI PSNR, pooled MOS Good-or-better, freeze ratio,
//!   Jain fairness;
//! * **fault legs** — the pairing runs the fault suite's presets through
//!   `faults::judge`, and the league counts how many recovery invariants
//!   held.
//!
//! One job per (cell, leg) fans out over [`crate::runner::run_jobs`],
//! each tracing into its own stamped in-memory JSONL sink; concatenating
//! the buffers in input order makes the arena artifact byte-identical at
//! any `POI360_THREADS` width (ci.sh `cmp`-gates it, like the study).
//! Rendering lives in `poi360_analyse::league` — this module only
//! reduces runs to [`LeagueRow`]s.

use poi360_analyse::league::{league_report, LeagueRow};
use poi360_core::config::{CompressionScheme, RateControlKind};
use poi360_core::multicell::{FlowSpec, MultiCell, MultiCellConfig};
use poi360_lte::scenario::{unknown_scenario_error, FaultScenario, PresetInfo, FAULT_RUN_SECS};
use poi360_metrics::mos::MosPdf;
use poi360_sim::time::SimDuration;
use poi360_sim::trace::SinkHandle;
use poi360_sim::Recorder;
use std::sync::Arc;

/// CLI vocabulary for the controllers the arena can race.
pub const CONTROLLER_NAMES: [&str; 3] = ["fbcc", "gcc", "occ"];

/// CLI vocabulary for the tiling policies (`roi` is the paper's
/// distance-based POI360 policy; `pano` and `ghosh` are the related-work
/// modulations in `video::perceptual`).
pub const POLICY_NAMES: [&str; 3] = ["roi", "pano", "ghosh"];

/// Resolve a controller name, erroring with the valid set.
pub fn controller_by_name(name: &str) -> Result<RateControlKind, String> {
    match name {
        "fbcc" => Ok(RateControlKind::Fbcc),
        "gcc" => Ok(RateControlKind::Gcc),
        "occ" => Ok(RateControlKind::Occ),
        other => Err(unknown_scenario_error("controller", other, &CONTROLLER_NAMES)),
    }
}

/// Resolve a tiling-policy name, erroring with the valid set.
pub fn policy_by_name(name: &str) -> Result<CompressionScheme, String> {
    match name {
        "roi" => Ok(CompressionScheme::Poi360),
        "pano" => Ok(CompressionScheme::Pano),
        "ghosh" => Ok(CompressionScheme::Ghosh),
        other => Err(unknown_scenario_error("tiling", other, &POLICY_NAMES)),
    }
}

/// The tiling-policy CLI name of a scheme the arena admitted.
fn policy_name(scheme: CompressionScheme) -> &'static str {
    match scheme {
        CompressionScheme::Poi360 => "roi",
        CompressionScheme::Pano => "pano",
        CompressionScheme::Ghosh => "ghosh",
        other => unreachable!("policy_by_name admitted {other:?}"),
    }
}

/// Arena names for `reproduce --list`, alongside the scenario presets.
pub fn registry() -> Vec<PresetInfo> {
    let mut out = Vec::new();
    for (name, what) in [
        ("fbcc", "arena controller: POI360's firmware-buffer-aware control"),
        ("gcc", "arena controller: stock WebRTC delay-gradient control"),
        ("occ", "arena controller: PHY-assisted grant/backlog control"),
    ] {
        out.push(PresetInfo { family: "arena", name, what });
    }
    for (name, what) in [
        ("roi", "arena tiling: POI360 distance-based compression matrix"),
        ("pano", "arena tiling: Pano-style quality-sensitivity weighting"),
        ("ghosh", "arena tiling: Ghosh-style per-tile bitrate optimization"),
    ] {
        out.push(PresetInfo { family: "arena", name, what });
    }
    out
}

/// The tournament matrix, after CLI parsing.
#[derive(Clone, Debug)]
pub struct ArenaConfig {
    /// Controllers to race, league order.
    pub controllers: Vec<RateControlKind>,
    /// Tiling policies to race, league order.
    pub policies: Vec<CompressionScheme>,
    /// Per-leg run length, seconds.
    pub seconds: u64,
    /// Master seed for every leg.
    pub seed: u64,
    /// Fault presets each cell must survive.
    pub fault_scenarios: Vec<FaultScenario>,
}

impl ArenaConfig {
    /// The full tournament: every controller × every policy × the whole
    /// 7-scenario fault suite at full timeline scale.
    pub fn full() -> Self {
        ArenaConfig {
            controllers: CONTROLLER_NAMES.iter().map(|n| controller_by_name(n).unwrap()).collect(),
            policies: POLICY_NAMES.iter().map(|n| policy_by_name(n).unwrap()).collect(),
            seconds: FAULT_RUN_SECS,
            seed: 1,
            fault_scenarios: FaultScenario::all(),
        }
    }

    /// CI scale: same 3×3 matrix, compressed timeline, three fault
    /// presets covering the radio, diag, and load seams.
    pub fn smoke() -> Self {
        ArenaConfig {
            seconds: 6,
            fault_scenarios: ["rlf", "diag_freeze", "flash_crowd"]
                .iter()
                .map(|n| FaultScenario::by_name(n).expect("preset exists"))
                .collect(),
            ..ArenaConfig::full()
        }
    }
}

/// One cell of the league matrix.
#[derive(Clone, Copy, Debug)]
struct ArenaCell {
    rc: RateControlKind,
    scheme: CompressionScheme,
}

/// One unit of parallel work: a cell's quality leg or one fault leg.
#[derive(Clone, Debug)]
enum Leg {
    Quality,
    Fault(FaultScenario),
}

/// A leg's contribution to its cell's row.
enum LegScore {
    Quality { roi_psnr_db: f64, mos_good: f64, freeze: f64, jain: f64, throughput_bps: f64 },
    Fault { held: usize, judged: usize, failures: Vec<String> },
}

/// Everything one `reproduce arena` invocation produces, minus file IO.
pub struct ArenaProtocol {
    /// Rendered league report (the golden artifact).
    pub text: String,
    /// Total violated fault invariants; 0 = pass.
    pub failures: usize,
    /// Every leg's JSONL stream concatenated in league order.
    pub jsonl: Vec<u8>,
    /// The scored rows, league order (diagnostics / tests).
    pub rows: Vec<LeagueRow>,
}

/// Run the whole tournament: expand cells controller-major, fan every
/// leg across the worker pool, reduce to league rows, render.
pub fn run_protocol(cfg: &ArenaConfig) -> ArenaProtocol {
    let mut cells = Vec::new();
    for &rc in &cfg.controllers {
        for &scheme in &cfg.policies {
            cells.push(ArenaCell { rc, scheme });
        }
    }
    let mut jobs: Vec<(usize, ArenaCell, Leg)> = Vec::new();
    for (k, &cell) in cells.iter().enumerate() {
        jobs.push((k, cell, Leg::Quality));
        for fs in &cfg.fault_scenarios {
            jobs.push((k, cell, Leg::Fault(fs.clone())));
        }
    }
    let seconds = cfg.seconds;
    let seed = cfg.seed;
    let results = crate::runner::run_jobs(jobs, move |(k, cell, leg)| {
        let sink = crate::study::stamped_sink(seed);
        let handle: SinkHandle = sink.clone();
        let score = match leg {
            Leg::Quality => {
                let mc = MultiCellConfig {
                    background_ues: 4,
                    flows: vec![
                        FlowSpec {
                            scheme: cell.scheme,
                            rate_control: cell.rc,
                            ..Default::default()
                        };
                        2
                    ],
                    duration: SimDuration::from_secs(seconds),
                    seed,
                    ..Default::default()
                };
                let report = MultiCell::traced(mc, Arc::clone(&handle)).run();
                let n = report.flows.len() as f64;
                let mut mos = MosPdf::new();
                for f in &report.flows {
                    mos.merge(&f.mos());
                }
                LegScore::Quality {
                    roi_psnr_db: report.flows.iter().map(|f| f.mean_psnr_db()).sum::<f64>() / n,
                    mos_good: mos.good_or_better(),
                    freeze: report.flows.iter().map(|f| f.freeze_ratio()).sum::<f64>() / n,
                    jain: report.jain_throughput(),
                    throughput_bps: report
                        .flows
                        .iter()
                        .map(|f| f.mean_throughput_bps())
                        .sum::<f64>()
                        / n,
                }
            }
            Leg::Fault(fs) => {
                let src = format!("{}.{}.{}", cell.rc.label(), policy_name(cell.scheme), fs.name);
                let recorder = Recorder::to_sink(Arc::clone(&handle), &src);
                let out = crate::faults::run_case_with_scheme(
                    &fs,
                    cell.scheme,
                    cell.rc,
                    seconds,
                    seed,
                    recorder,
                );
                let names = out.verdict.failures();
                LegScore::Fault {
                    held: 4 - names.len(),
                    judged: 4,
                    failures: names.iter().map(|f| format!("{}: {f}", fs.name)).collect(),
                }
            }
        };
        drop(handle);
        (k, score, crate::study::finish_sink(sink))
    });

    let mut rows: Vec<LeagueRow> = cells
        .iter()
        .map(|cell| LeagueRow {
            controller: cell.rc.label().to_string(),
            policy: policy_name(cell.scheme).to_string(),
            roi_psnr_db: 0.0,
            mos_good: 0.0,
            freeze: 0.0,
            jain: 0.0,
            throughput_bps: 0.0,
            fault_passes: 0,
            fault_total: 0,
            fault_failures: Vec::new(),
        })
        .collect();
    let mut jsonl = Vec::new();
    for (k, score, bytes) in results {
        jsonl.extend_from_slice(&bytes);
        let row = &mut rows[k];
        match score {
            LegScore::Quality { roi_psnr_db, mos_good, freeze, jain, throughput_bps } => {
                row.roi_psnr_db = roi_psnr_db;
                row.mos_good = mos_good;
                row.freeze = freeze;
                row.jain = jain;
                row.throughput_bps = throughput_bps;
            }
            LegScore::Fault { held, judged, failures } => {
                row.fault_passes += held;
                row.fault_total += judged;
                row.fault_failures.extend(failures);
            }
        }
    }
    let failures = rows.iter().map(|r| r.failures()).sum();
    let title = format!(
        "Controller x tiling arena ({} cells, {}s legs, {} fault presets, seed {})",
        rows.len(),
        cfg.seconds,
        cfg.fault_scenarios.len(),
        cfg.seed
    );
    let text = league_report(&title, &rows);
    ArenaProtocol { text, failures, jsonl, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ArenaConfig {
        ArenaConfig {
            controllers: vec![RateControlKind::Fbcc, RateControlKind::Occ],
            policies: vec![CompressionScheme::Poi360, CompressionScheme::Pano],
            seconds: 3,
            seed: 5,
            fault_scenarios: vec![FaultScenario::by_name("rlf").expect("preset")],
        }
    }

    #[test]
    fn names_resolve_and_unknowns_list_the_valid_set() {
        for n in CONTROLLER_NAMES {
            controller_by_name(n).expect(n);
        }
        for n in POLICY_NAMES {
            policy_by_name(n).expect(n);
        }
        let e = controller_by_name("tcp").unwrap_err();
        assert_eq!(e, "unknown controller scenario \"tcp\" (expected one of: fbcc, gcc, occ)");
        let e = policy_by_name("tiles").unwrap_err();
        assert_eq!(e, "unknown tiling scenario \"tiles\" (expected one of: roi, pano, ghosh)");
    }

    #[test]
    fn registry_rows_carry_the_cli_vocabulary() {
        let names: Vec<&str> = registry().iter().map(|p| p.name).collect();
        for n in CONTROLLER_NAMES.iter().chain(POLICY_NAMES.iter()) {
            assert!(names.contains(n), "{n} missing from registry");
        }
        assert!(registry().iter().all(|p| p.family == "arena"));
    }

    #[test]
    fn smoke_covers_the_full_matrix() {
        let cfg = ArenaConfig::smoke();
        assert_eq!(cfg.controllers.len() * cfg.policies.len(), 9);
        assert_eq!(cfg.fault_scenarios.len(), 3);
        assert!(cfg.seconds < FAULT_RUN_SECS);
    }

    #[test]
    fn tiny_arena_scores_every_cell_and_is_rerun_stable() {
        let cfg = tiny();
        let a = run_protocol(&cfg);
        assert_eq!(a.rows.len(), 4);
        for row in &a.rows {
            assert!(row.roi_psnr_db > 0.0, "quality leg missing: {row:?}");
            assert_eq!(row.fault_total, 4, "one fault preset, four invariants");
        }
        assert!(a.text.contains("Standings"));
        let b = run_protocol(&cfg);
        assert_eq!(a.jsonl, b.jsonl, "arena reruns must be byte-identical");
        assert_eq!(a.text, b.text);
    }
}
