//! The `reproduce perf` profiling plane: per-layer hot-path timing plus
//! heap-allocation accounting, in one table.
//!
//! One micro-benchmark per layer of the subframe pipeline — cell
//! scheduler, standalone uplink, transport (pacer + delay pipe), video
//! encoder, whole session step — each measured with the testkit [`Bench`]
//! harness *and* the counting allocator (allocations per iteration), so a
//! perf regression and an allocation regression are caught by the same
//! run. Medians are surfaced as `perf.*` trace-style gauge probes into
//! `bench_results/perf_probes.jsonl` together with the **full gated
//! window**: every tick of the steady-state loop (ticks
//! [`WARM_TICKS`]`..`[`WARM_TICKS`]` + `[`GATE_TICKS`]) re-run traced,
//! emitting per-tick `perf.tick_ns` wall-clock timings and
//! `perf.buffer_bytes` occupancy — the drill-down data `poi360-analyse`
//! aggregates and exports as a Chrome trace (`perf_trace.json`) when the
//! `diff()` gate fails. A truncated window is a loud failure, not a
//! 12-line artifact. The suite JSON (stamped with commit + argv by the
//! harness) lands in `bench_results/perf.json`.
//!
//! Two gates ride on the output (wired into `ci.sh`):
//!
//! * `--compare <baseline.json>` diffs the fresh medians against the
//!   checked-in `bench_results/perf_baseline.json` with a relative
//!   threshold ([`DEFAULT_THRESHOLD`], `POI360_PERF_THRESHOLD` to
//!   override) and fails the process on a regression.
//! * The steady-state zero-alloc check: ticks 1000.. of a busy 500-UE
//!   cell loop must perform **zero** heap allocations (DESIGN.md §10).
//!   Requires the binary to install [`poi360_testkit::CountingAlloc`];
//!   when it is absent the check reports `n/a` instead of vacuously
//!   passing.
//! * The sharded-grid bounded-alloc check ([`grid_steady_allocs`]): the
//!   same simulation stepped at shard width 4 must allocate no more than
//!   width 1 plus a small constant — the executor itself (persistent
//!   pool dispatch, in-place bundle stepping, recycled trace staging)
//!   contributes **zero** steady-state allocations, so any width-scaled
//!   allocation growth is a regression. This is the gate that would have
//!   caught the original mpsc-based executor's 29x allocation blowup.

use poi360_core::multicell::{FlowSpec, MultiGrid, MultiGridConfig};
use poi360_lte::buffer::PacketLike;
use poi360_lte::cell::{Cell, CellConfig, UeId};
use poi360_lte::channel::ChannelConfig;
use poi360_lte::scenario::Scenario;
use poi360_lte::uplink::{CellUplink, UplinkConfig};
use poi360_metrics::table::Table;
use poi360_net::packet::{FrameTag, Packet};
use poi360_net::pipe::{DelayPipe, PipeConfig};
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::trace::{JsonlSink, RunMeta, SinkHandle, TraceSink};
use poi360_sim::Recorder;
use poi360_testkit::alloc::{counting_is_active, AllocScope, GlobalAllocScope};
use poi360_testkit::{bench, black_box, Bench};
use poi360_transport::pacer::Pacer;
use poi360_video::compression::CompressionMode;
use poi360_video::content::ContentModel;
use poi360_video::encoder::{Encoder, EncoderConfig};
use poi360_video::frame::{TileGrid, TilePos};
use poi360_video::roi::Roi;
use std::sync::{Arc, Mutex};

/// Default relative-median regression threshold for `--compare`:
/// generous enough to absorb machine noise on a 5-sample median, tight
/// enough that a real hot-path regression (the kind that doubles a
/// layer's cost) cannot hide. `POI360_PERF_THRESHOLD` overrides.
pub const DEFAULT_THRESHOLD: f64 = 0.30;

/// Ticks skipped before the zero-alloc window opens (pool/scratch
/// capacities settle during these).
const WARM_TICKS: u64 = 1_000;

/// Ticks measured by the zero-alloc gate.
const GATE_TICKS: u64 = 1_000;

/// Grid epochs stepped before the sharded bounded-alloc window opens
/// (session/cell scratch settles, trace buffers reach their high-water
/// capacity, and the persistent pool spawns its workers).
const GRID_WARM_EPOCHS: u64 = 200;

/// Grid epochs measured by the sharded bounded-alloc gate.
const GRID_GATE_EPOCHS: u64 = 200;

/// Allocation headroom allowed for the sharded grid over the serial
/// grid across [`GRID_GATE_EPOCHS`] epochs. The simulation is
/// byte-identical at every width, so the honest expectation is *equal*
/// allocation counts; the slack only absorbs one-off lazy-init noise
/// (thread-local storage, a first-use `OnceLock`) that can land inside
/// the window on some platforms.
pub const GRID_ALLOC_SLACK: u64 = 64;

/// Parsed `reproduce perf` options.
#[derive(Clone, Debug, Default)]
pub struct PerfOptions {
    /// Fewer samples for the CI entry point.
    pub smoke: bool,
    /// Baseline suite JSON to diff against (gate fails on regression).
    pub compare: Option<std::path::PathBuf>,
}

/// The regression threshold in effect: env override or the default.
pub fn threshold() -> f64 {
    std::env::var("POI360_PERF_THRESHOLD")
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t > 0.0)
        .unwrap_or(DEFAULT_THRESHOLD)
}

struct Pkt;
impl PacketLike for Pkt {
    fn wire_bytes(&self) -> u32 {
        1_240
    }
}

/// A busy cell: one backlogged foreground UE among `ues` total.
fn busy_cell(ues: usize) -> (Cell<Pkt>, UeId) {
    let mut cell = Cell::new(CellConfig::default(), 42);
    let fg = cell.attach_foreground("fg.0", ChannelConfig::default());
    cell.attach_background_population(ues - 1);
    (cell, fg)
}

/// One measured layer: timing result plus allocations per iteration.
struct LayerRow {
    layer: &'static str,
    what: String,
    median_ns: f64,
    allocs_per_iter: f64,
    bytes_per_iter: f64,
}

/// Time `f` under `name`, then measure its allocation rate over
/// `alloc_iters` extra (warmed-up) iterations.
fn layer(
    b: &mut Bench,
    rows: &mut Vec<LayerRow>,
    layer: &'static str,
    what: &'static str,
    name: &str,
    mut f: impl FnMut(),
) {
    let median_ns = b.bench(name, &mut f).median_ns;
    let alloc_iters = 256u64;
    let scope = AllocScope::enter();
    for _ in 0..alloc_iters {
        f();
    }
    let stats = scope.exit();
    rows.push(LayerRow {
        layer,
        what: what.to_string(),
        median_ns,
        allocs_per_iter: stats.allocs as f64 / alloc_iters as f64,
        bytes_per_iter: stats.bytes as f64 / alloc_iters as f64,
    });
}

/// The steady-state zero-alloc gate: a busy 500-UE cell loop, allocation
/// count taken over ticks [`WARM_TICKS`]`..`[`WARM_TICKS`]` + `
/// [`GATE_TICKS`]. Counted with the shard-aware [`GlobalAllocScope`], so
/// the gate stays honest for hot loops that fan out to worker threads
/// (the loop here is serial today, but the gate must not silently go
/// blind the day it isn't). Returns `None` when the counting allocator
/// is not installed in this binary.
pub fn steady_state_allocs() -> Option<u64> {
    if !counting_is_active() {
        return None;
    }
    let (mut cell, fg) = busy_cell(500);
    let mut now = SimTime::ZERO;
    let tick = |cell: &mut Cell<Pkt>, now: &mut SimTime| {
        while cell.buffer_level(fg) < 20_000 {
            cell.enqueue(fg, Pkt, *now);
        }
        *now += poi360_sim::SUBFRAME;
        let out = cell.subframe(*now);
        black_box(&out);
        cell.recycle(out);
    };
    for _ in 0..WARM_TICKS {
        tick(&mut cell, &mut now);
    }
    let scope = GlobalAllocScope::enter();
    for _ in 0..GATE_TICKS {
        tick(&mut cell, &mut now);
    }
    Some(scope.exit().allocs)
}

/// A short grid run for the `grid_scale` scaling benchmarks: `rings` hex
/// rings (2/4/6 → 19/61/127 cells) advanced for 0.2 s of simulated time
/// at the given shard width. Per-cell populations are kept small so the
/// *cell count* — the scaling axis under test — dominates the cost, not
/// per-cell scheduler load.
fn grid_scale_config(rings: usize, shards: usize) -> MultiGridConfig {
    MultiGridConfig {
        rings,
        isd_m: 300.0,
        speed_mps: 30.0,
        flows: vec![FlowSpec::default(); 2],
        load_ues: 16,
        static_bg_per_cell: 2,
        duration: SimDuration::from_secs_f64(0.2),
        seed: 9,
        shards,
        ..Default::default()
    }
}

/// The sharded-grid bounded-alloc probe: step a 19-cell grid at the
/// given shard width for [`GRID_WARM_EPOCHS`] epochs, then count global
/// heap allocations over the next [`GRID_GATE_EPOCHS`]. Counted with the
/// shard-aware [`GlobalAllocScope`] — at widths ≥ 2 most of the work
/// (and so any executor-leaked allocation) happens on pool worker
/// threads a thread-local scope would never see. Returns `None` when the
/// counting allocator is not installed in this binary.
///
/// The simulation itself legitimately allocates at a low steady rate
/// (frame encodes, handover bookkeeping), and — because output is
/// byte-identical at every width — at a rate *independent of the shard
/// width*. The gate therefore compares widths against each other rather
/// than against zero: see the `grid steady-state allocs` line in
/// [`run`].
pub fn grid_steady_allocs(shards: usize) -> Option<u64> {
    if !counting_is_active() {
        return None;
    }
    let mut cfg = grid_scale_config(2, shards);
    // Far beyond what this probe will ever step: sessions must not end
    // inside the measured window.
    cfg.duration = SimDuration::from_secs(1_000);
    let mut grid = MultiGrid::new(cfg);
    for _ in 0..GRID_WARM_EPOCHS {
        grid.step();
    }
    let scope = GlobalAllocScope::enter();
    for _ in 0..GRID_GATE_EPOCHS {
        grid.step();
    }
    Some(scope.exit().allocs)
}

/// Run the whole per-layer suite. Returns the number of gate failures
/// (regressions, missing benchmarks, steady-state allocations, IO
/// errors); the caller turns nonzero into a nonzero exit code.
pub fn run(opts: &PerfOptions) -> usize {
    let samples = if opts.smoke { 5 } else { 11 };
    let mut b = Bench::new("perf").samples(samples).warmup(2);
    let mut rows: Vec<LayerRow> = Vec::new();

    // --- cell: the multi-UE scheduler subframe (the dominant cost) ---
    let (mut cell, fg) = busy_cell(500);
    let mut now = SimTime::ZERO;
    layer(
        &mut b,
        &mut rows,
        "cell",
        "500-UE PF subframe + recycle",
        "perf/cell_subframe_500_ues",
        || {
            while cell.buffer_level(fg) < 20_000 {
                cell.enqueue(fg, Pkt, now);
            }
            now += poi360_sim::SUBFRAME;
            let out = cell.subframe(now);
            black_box(&out);
            cell.recycle(out);
        },
    );

    // --- uplink: the standalone single-UE uplink subframe ---
    let mut ul = CellUplink::new(UplinkConfig::default(), 3);
    let mut now = SimTime::ZERO;
    layer(
        &mut b,
        &mut rows,
        "uplink",
        "loaded standalone subframe",
        "perf/uplink_subframe_loaded",
        || {
            while ul.buffer_level() < 12_000 {
                ul.enqueue(Pkt, now);
            }
            now += poi360_sim::SUBFRAME;
            let out = ul.subframe(now);
            black_box(&out);
            if let Some(diag) = out.diag {
                ul.recycle_diag(diag);
            }
            ul.recycle_departed(out.departed);
        },
    );

    // --- transport: pacer tick and delay-pipe poll, per-tick costs ---
    let mut pacer = Pacer::new(3.0e6);
    let mut now = SimTime::ZERO;
    let mut seq = 0u64;
    let mut staged: Vec<Packet> = Vec::new();
    layer(
        &mut b,
        &mut rows,
        "transport",
        "pacer enqueue x4 + tick_into",
        "perf/pacer_tick",
        || {
            for _ in 0..4 {
                pacer.enqueue(Packet::video(
                    seq,
                    1_240,
                    now,
                    FrameTag { frame_no: seq, index: 0, count: 1 },
                ));
                seq += 1;
            }
            now += poi360_sim::SUBFRAME;
            staged.clear();
            pacer.tick_into(now, &mut staged);
            black_box(&staged);
        },
    );

    let mut pipe: DelayPipe<Packet> = DelayPipe::new(PipeConfig::cellular_downstream(), 7);
    let mut now = SimTime::ZERO;
    let mut seq = 0u64;
    let mut arrivals: Vec<(SimTime, Packet)> = Vec::new();
    layer(&mut b, &mut rows, "transport", "pipe send x2 + poll_into", "perf/pipe_poll", || {
        now += poi360_sim::SUBFRAME;
        for _ in 0..2 {
            pipe.send(
                Packet::video(seq, 1_240, now, FrameTag { frame_no: seq, index: 0, count: 1 }),
                now,
            );
            seq += 1;
        }
        arrivals.clear();
        pipe.poll_into(now, &mut arrivals);
        black_box(&arrivals);
    });

    // --- video: one encoded frame ---
    let grid = TileGrid::POI360;
    let mut encoder = Encoder::new(EncoderConfig::default(), 1);
    let content = ContentModel::new(grid, 1);
    let roi = Roi::at_tile(&grid, TilePos::new(6, 4));
    let matrix = CompressionMode::protected_geometric(1.4, 1, 1).matrix(&grid, roi.center);
    let mut now = SimTime::ZERO;
    layer(&mut b, &mut rows, "video", "one encoded frame", "perf/video_encode_frame", || {
        now += poi360_sim::SimDuration::from_micros(27_778);
        black_box(encoder.encode(now, roi, &matrix, &content, 3.0e6));
    });

    // --- session: the whole vertical slice, one subframe ---
    let mut session = poi360_core::session::Session::new(poi360_core::config::SessionConfig {
        rate_control: poi360_core::config::RateControlKind::Fbcc,
        network: poi360_core::config::NetworkKind::Cellular(Scenario::baseline()),
        // Far beyond what the bench will ever step: we drive it manually.
        duration: poi360_sim::time::SimDuration::from_secs(1_000_000),
        seed: 1,
        ..Default::default()
    });
    for _ in 0..2_000 {
        session.step();
    }
    layer(
        &mut b,
        &mut rows,
        "session",
        "full-stack subframe step",
        "perf/session_step_cellular_fbcc",
        || {
            session.step();
            black_box(session.now());
        },
    );

    // --- grid: the sharded epoch-lockstep executor, whole runs ---
    // Whole-run timing (construction + epochs + report) is the honest
    // unit. Pool workers persist across runs (they spawn once per
    // process, during the warmup iterations), so what's measured here is
    // the real steady-state dispatch cost — generation-counter wakeups,
    // not thread spawns. Benchmarked directly rather than through
    // `layer()` — 256 alloc-measurement grid runs would dwarf the rest
    // of the suite, and one extra run already gives the per-iteration
    // allocation figure at this scale. Counted with the shard-aware
    // [`GlobalAllocScope`]: at widths ≥ 2 most allocations happen on
    // worker threads a thread-local scope would never see.
    for &rings in &[2usize, 4, 6] {
        let cells = 1 + 3 * rings * (rings + 1);
        for &shards in &[1usize, 2, 4, 8] {
            let cfg = grid_scale_config(rings, shards);
            let name = format!("perf/grid_scale_{cells}c_w{shards}");
            let median_ns = b
                .bench(&name, &mut || {
                    black_box(MultiGrid::new(cfg.clone()).run());
                })
                .median_ns;
            let scope = GlobalAllocScope::enter();
            black_box(MultiGrid::new(cfg.clone()).run());
            let stats = scope.exit();
            rows.push(LayerRow {
                layer: "grid",
                what: format!("{cells}-cell grid, shard width {shards}, 0.2 s"),
                median_ns,
                allocs_per_iter: stats.allocs as f64,
                bytes_per_iter: stats.bytes as f64,
            });
        }
    }

    let mut failures = 0;

    // Surface the medians as trace-style probes alongside the table.
    let dir = poi360_testkit::results_dir();
    std::fs::create_dir_all(&dir).ok();
    let probe_path = dir.join("perf_probes.jsonl");
    let summary_count = b.results().len() as u64;
    match JsonlSink::create(&probe_path) {
        Ok(sink) => {
            let sink = Arc::new(Mutex::new(sink));
            sink.lock().unwrap().stamp(&RunMeta::current(42));
            let handle: SinkHandle = sink.clone();
            let rec = Recorder::to_sink(Arc::clone(&handle), "perf");
            for (k, r) in b.results().iter().enumerate() {
                // One gauge per layer benchmark; strictly increasing
                // timestamps keep the recorder's order check happy.
                rec.gauge("perf.median_ns", SimTime::from_micros(k as u64), r.median_ns);
                rec.event(
                    "perf.allocs_per_iter",
                    SimTime::from_micros(k as u64),
                    rows[k].allocs_per_iter,
                );
            }
            drop(rec);
            // The full gated window: the steady-state loop re-run with
            // probes attached (a separate loop — JSONL writes allocate,
            // so the zero-alloc gate itself must stay untraced). Every
            // tick of the window lands in the artifact; truncation is a
            // loud failure.
            let window = Recorder::to_sink(handle, "perf.window");
            let (mut cell, fg) = busy_cell(500);
            let mut now = SimTime::ZERO;
            for _ in 0..WARM_TICKS {
                while cell.buffer_level(fg) < 20_000 {
                    cell.enqueue(fg, Pkt, now);
                }
                now += poi360_sim::SUBFRAME;
                let out = cell.subframe(now);
                black_box(&out);
                cell.recycle(out);
            }
            for _ in 0..GATE_TICKS {
                while cell.buffer_level(fg) < 20_000 {
                    cell.enqueue(fg, Pkt, now);
                }
                now += poi360_sim::SUBFRAME;
                let t0 = std::time::Instant::now();
                let out = cell.subframe(now);
                let tick_ns = t0.elapsed().as_nanos() as f64;
                black_box(&out);
                cell.recycle(out);
                window.event("perf.tick_ns", now, tick_ns);
                window.gauge("perf.buffer_bytes", now, cell.buffer_level(fg) as f64);
            }
            drop(window);
            sink.lock().unwrap().flush();
            let expected = summary_count * 2 + GATE_TICKS * 2;
            let written = sink.lock().unwrap().lines();
            if written != expected {
                eprintln!(
                    "FAIL: perf probe window truncated: {written} of {expected} records in {}",
                    probe_path.display()
                );
                failures += 1;
            }
            if sink.lock().unwrap().had_io_error() {
                eprintln!("FAIL: probe writes to {} failed", probe_path.display());
                failures += 1;
            }
        }
        Err(e) => {
            eprintln!("FAIL: cannot create {}: {e}", probe_path.display());
            failures += 1;
        }
    }

    // Chrome trace_event export of the gated window, the flame-style
    // drill-down for a failed perf gate (open in chrome://tracing).
    match poi360_analyse::ingest::RunTrace::parse_file(&probe_path) {
        Ok(trace) => {
            let chrome = poi360_analyse::chrome::chrome_trace(&trace);
            if std::fs::write(dir.join("perf_trace.json"), chrome).is_err() {
                eprintln!("FAIL: cannot write perf_trace.json");
                failures += 1;
            }
        }
        Err(e) => {
            eprintln!("FAIL: fresh perf probe artifact does not ingest: {e}");
            failures += 1;
        }
    }

    // The per-layer table.
    let mut t = Table::new(
        "Hot-path profile — per-layer medians and heap allocations per iteration",
        &["Layer", "What", "Median (us)", "Allocs/iter", "Bytes/iter"],
    );
    let counting = counting_is_active();
    for r in &rows {
        let (allocs, bytes) = if counting {
            (format!("{:.2}", r.allocs_per_iter), format!("{:.0}", r.bytes_per_iter))
        } else {
            ("n/a".into(), "n/a".into())
        };
        t.row(vec![
            r.layer.to_string(),
            r.what.clone(),
            format!("{:.2}", r.median_ns / 1e3),
            allocs,
            bytes,
        ]);
    }
    let mut out = t.render();

    // Shard-scaling headline: how much the epoch-lockstep executor buys
    // at the largest grid. On a single-core host the widths tie (the
    // caller steps every cell itself before the parked helpers ever get
    // scheduled); the number is honest either way.
    let grid_median = |name: &str| b.results().iter().find(|r| r.name == name).map(|r| r.median_ns);
    if let (Some(w1), Some(w4)) =
        (grid_median("perf/grid_scale_127c_w1"), grid_median("perf/grid_scale_127c_w4"))
    {
        out.push_str(&format!(
            "grid_scale 127 cells: w1 {:.2} ms, w4 {:.2} ms — speedup {:.2}x\n",
            w1 / 1e6,
            w4 / 1e6,
            w1 / w4.max(1.0),
        ));
    }
    // ... and the matching allocation ratio: identical simulations should
    // allocate identically, so w4/w1 near 1.0 means the parallel path
    // itself adds nothing.
    if counting {
        let grid_allocs = |what: &str| {
            rows.iter().find(|r| r.layer == "grid" && r.what == what).map(|r| r.allocs_per_iter)
        };
        if let (Some(a1), Some(a4)) = (
            grid_allocs("127-cell grid, shard width 1, 0.2 s"),
            grid_allocs("127-cell grid, shard width 4, 0.2 s"),
        ) {
            out.push_str(&format!(
                "grid_scale 127 cells: w1 {a1:.0} allocs, w4 {a4:.0} allocs — w1-vs-w4 alloc \
                 ratio {:.2}x\n",
                a4 / a1.max(1.0),
            ));
        }
    }

    // The steady-state zero-alloc gate.
    match steady_state_allocs() {
        Some(0) => out.push_str(&format!(
            "steady-state allocs (busy 500-UE cell, ticks {WARM_TICKS}..{}): 0 — pass\n",
            WARM_TICKS + GATE_TICKS
        )),
        Some(n) => {
            out.push_str(&format!(
                "steady-state allocs (busy 500-UE cell, ticks {WARM_TICKS}..{}): {n} — FAIL \
                 (DESIGN.md §10 requires zero)\n",
                WARM_TICKS + GATE_TICKS
            ));
            failures += 1;
        }
        None => {
            out.push_str("steady-state allocs: n/a (CountingAlloc not installed in this binary)\n")
        }
    }

    // The sharded-grid bounded-alloc gate: identical simulations, so the
    // width-4 window may exceed the width-1 window only by the lazy-init
    // slack. This is what catches a parallel path that allocates per
    // epoch (channels, boxed jobs, moved bundles).
    match (grid_steady_allocs(1), grid_steady_allocs(4)) {
        (Some(serial), Some(sharded)) => {
            let window =
                format!("epochs {GRID_WARM_EPOCHS}..{}", GRID_WARM_EPOCHS + GRID_GATE_EPOCHS);
            if sharded <= serial + GRID_ALLOC_SLACK {
                out.push_str(&format!(
                    "grid steady-state allocs (19 cells, {window}): w1 {serial}, w4 {sharded} — \
                     pass (≤ w1 + {GRID_ALLOC_SLACK})\n"
                ));
            } else {
                out.push_str(&format!(
                    "grid steady-state allocs (19 cells, {window}): w1 {serial}, w4 {sharded} — \
                     FAIL (sharded executor allocates per epoch; bound is w1 + \
                     {GRID_ALLOC_SLACK})\n"
                ));
                failures += 1;
            }
        }
        _ => out.push_str(
            "grid steady-state allocs: n/a (CountingAlloc not installed in this binary)\n",
        ),
    }

    // The baseline comparison gate.
    if let Some(baseline_path) = &opts.compare {
        let threshold = threshold();
        match std::fs::read_to_string(baseline_path) {
            Ok(baseline_json) => match bench::diff(&b.to_json(), &baseline_json, threshold) {
                Ok(report) => {
                    out.push_str(&format!(
                        "baseline {} (threshold {:.0}%):\n{}",
                        baseline_path.display(),
                        threshold * 100.0,
                        report.render()
                    ));
                    if !report.ok() {
                        out.push_str("perf gate: FAIL — median regression beyond threshold\n");
                        failures += 1;
                    } else {
                        out.push_str("perf gate: pass\n");
                    }
                }
                Err(e) => {
                    out.push_str(&format!("perf gate: FAIL — cannot diff: {e}\n"));
                    failures += 1;
                }
            },
            Err(e) => {
                out.push_str(&format!(
                    "perf gate: FAIL — cannot read {}: {e}\n",
                    baseline_path.display()
                ));
                failures += 1;
            }
        }
    }

    println!("{out}");
    if std::fs::write(dir.join("perf.txt"), &out).is_err() {
        eprintln!("warning: could not write perf.txt");
    }
    if let Err(e) = b.finish() {
        eprintln!("FAIL: cannot write perf.json: {e}");
        failures += 1;
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_env_override_is_validated() {
        // No env manipulation (tests run in parallel): just the default.
        assert!(threshold() > 0.0);
    }

    #[test]
    fn steady_state_check_is_honest_without_the_allocator() {
        // The bench *lib* test binary does not install CountingAlloc, so
        // the gate must report "not counting" rather than a vacuous pass.
        assert_eq!(steady_state_allocs(), None);
        assert_eq!(grid_steady_allocs(2), None);
    }
}
