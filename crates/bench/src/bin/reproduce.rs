//! `reproduce` — regenerate every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! cargo run --release -p poi360-bench --bin reproduce -- all
//! cargo run --release -p poi360-bench --bin reproduce -- fig11 --full
//! cargo run --release -p poi360-bench --bin reproduce -- fig17 --seconds 120 --repeats 5
//! ```
//!
//! Subcommands: `fig5 fig6 table1 fig11 fig12 fig13 fig14 fig15 fig16
//! fig17 coexist ablation trace all` (`--list` enumerates them). Flags:
//! `--full` (paper scale: 300 s × 10 repeats), `--seconds N`,
//! `--repeats N`, `--seed N`. Output also lands in
//! `bench_results/<name>.txt` at the workspace root, regardless of the
//! invoking directory.
//!
//! `trace` runs one scenario (`busy` by default — the loaded cell where
//! FBCC earns its keep — or `baseline`, `quiet`, `coexist`) with a JSONL
//! probe sink attached and writes every probe emission to
//! `bench_results/trace_<scenario>.jsonl`, one JSON object per line, plus
//! a probe-count summary table. `trace --smoke` is the CI entry point: a
//! 5 s busy-cell run emitting `bench_results/trace_smoke.jsonl`.
//!
//! `faults` runs the named fault-injection scenarios (radio link failure,
//! diag stall, grant starvation, feedback blackout, wireline spike, flash
//! crowd, and a stacked combination) under both FBCC and GCC, checks the
//! recovery invariants, runs the whole batch twice and asserts the JSONL
//! trace streams are byte-identical, and writes
//! `bench_results/faults[_smoke].jsonl` plus a verdict table. Any violated
//! invariant makes the process exit nonzero, so CI can gate on it.
//!
//! `mobility` drives telephony sessions across a hex grid of cells
//! (ground mobility, inter-cell interference, A3 handover with firmware
//! buffers migrating between cells), judges the handover invariants —
//! every convoy flow hands over, exact packet conservation across every
//! migration, no video reordering, bounded delivery gaps — proves the
//! JSONL probe stream byte-identical across reruns and worker-pool
//! widths, runs a 3-seed matrix, and writes
//! `bench_results/mobility[_smoke].jsonl` plus a per-flow table. Any
//! violated invariant exits nonzero. Presets come from the shared
//! scenario registry (`convoy` by default; `--list` shows the rest).
//!
//! `perf` profiles one layer of the subframe pipeline at a time (cell,
//! uplink, transport, video, session, plus the sharded-grid `grid_scale`
//! matrix at 19/61/127 cells × shard widths 1/2/4/8), prints medians
//! plus heap allocations per iteration, asserts the busy-cell steady
//! state allocates nothing, and with `--compare <baseline.json>` fails
//! on a median regression beyond the threshold — the CI perf gate.
//! Results in `bench_results/perf.json` / `perf_probes.jsonl` (the full
//! gated window) / `perf_trace.json` (Chrome trace of that window).
//!
//! `study` runs a declarative scenario × rate-controller × seed matrix
//! (a checked-in preset like `cc_matrix` / `ho_tails`, or a `.study`
//! config file) through the worker pool and renders the cross-run
//! aggregation: per-probe median/p95/p99 tables, per-source rollups,
//! controller A-vs-B deltas, handover-gap tails, and a Chrome trace of
//! the first case. `--baseline <dir>` diffs the fresh medians against a
//! previously written study artifact and fails on drift beyond the
//! study's threshold. Artifacts: `bench_results/study_<name>[_smoke]
//! .{txt,jsonl,trace.json}`.
//!
//! Every subcommand accepts `--threads N` to pin the worker-pool width
//! (otherwise `POI360_THREADS`, otherwise all cores).

use poi360_bench::experiments as exp;
use poi360_bench::runner::ExpConfig;
use poi360_sim::json::{FromKv, KvMap, ToJson};
use poi360_testkit::{black_box, Bench};
use std::io::Write;

/// Count heap allocations so `reproduce perf` can enforce the
/// zero-alloc steady-state gate (DESIGN.md §10). Counting is a few
/// thread-local increments per allocation — noise for every other
/// subcommand.
#[global_allocator]
static ALLOC: poi360_testkit::CountingAlloc = poi360_testkit::CountingAlloc;

/// Every subcommand with a one-line description; `--list` prints this and
/// an unknown subcommand enumerates the names.
const SUBCOMMANDS: &[(&str, &str)] = &[
    ("fig5", "sum UL TBS/s vs firmware buffer occupancy"),
    ("fig6", "CDF of firmware buffer level under WebRTC/GCC"),
    ("table1", "PSNR to Mean Opinion Score mapping"),
    ("fig11", "compression ratio per scheme"),
    ("fig12", "encode time per scheme"),
    ("fig13", "ROI PSNR per scheme"),
    ("fig14", "mismatch recovery per scheme"),
    ("fig15", "FBCC vs GCC rate-control comparison"),
    ("fig16", "FBCC vs GCC buffer occupancy CDF"),
    ("fig17", "robustness sweeps: load, signal, speed"),
    ("coexist", "FBCC/GCC flows sharing one cell"),
    ("ablation", "prediction, mode, policy, and edge-relay ablations"),
    ("trace", "probe-stream JSONL export for one scenario (see --help text)"),
    ("faults", "fault-injection robustness suite, FBCC vs GCC (see --help text)"),
    ("mobility", "hex-grid A3 handover suite: conservation + gap invariants (see --help text)"),
    ("perf", "per-layer hot-path profile + allocation gate (see --help text)"),
    ("study", "declarative scenario x controller x seed matrix + cross-run report"),
    ("arena", "controller x tiling tournament: quality scores + fault verdicts + league table"),
    ("all", "every figure and table above"),
    ("list", "print this subcommand list (also --list)"),
    ("smoke", "quick JSON bench + aggregate sanity run (also --smoke)"),
];

fn list() {
    println!("reproduce subcommands:");
    for (name, what) in SUBCOMMANDS {
        println!("  {name:<10} {what}");
    }
    println!(
        "\nnamed presets (reproduce faults|mobility|study <name>; arena --controllers/--policies):"
    );
    let presets = poi360_lte::scenario::preset_registry()
        .into_iter()
        .chain(poi360_analyse::study::registry())
        .chain(poi360_bench::arena::registry());
    for p in presets {
        println!("  {:<9} {:<12} {}", p.family, p.name, p.what);
    }
}

fn unknown(what: &str) -> ! {
    let names: Vec<&str> = SUBCOMMANDS.iter().map(|&(n, _)| n).collect();
    eprintln!("unknown subcommand `{what}`; expected one of: {}", names.join(", "));
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: reproduce <fig5|fig6|table1|fig11|fig12|fig13|fig14|fig15|fig16|fig17|coexist|ablation|all> \
         [--full] [--seconds N] [--repeats N] [--seed N] [--exp k=v,...]\n\
         \x20      reproduce trace [busy|baseline|quiet|coexist] [--seconds N] [--seed N] [--smoke]\n\
         \x20      reproduce faults [scenario] [--seconds N] [--seed N] [--smoke]\n\
         \x20      reproduce mobility [scenario] [--seconds N] [--seed N] [--smoke]\n\
         \x20      reproduce perf [--smoke] [--compare <baseline.json>]\n\
         \x20      reproduce study <preset|config-file> [--smoke] [--baseline <dir>]\n\
         \x20      reproduce arena [--smoke] [--seconds N] [--seed N] [--controllers a+b] [--policies x+y]\n\
         \x20      reproduce --list    (enumerate subcommands)\n\
         \x20      reproduce --smoke   (quick JSON bench + aggregate sanity run)\n\
         \x20      any subcommand also accepts --threads N (worker-pool width;\n\
         \x20      POI360_THREADS env is the fallback)"
    );
    std::process::exit(2);
}

/// Quick hermetic sanity run for CI: a tiny timed suite over the figure
/// generators plus a reduced-scale aggregate, all emitted as JSON
/// (`bench_results/smoke.json` / `smoke_aggregate.json`).
fn smoke() {
    let cfg = ExpConfig { duration_secs: 5, repeats: 1, base_seed: 77 };
    let mut b = Bench::new("smoke").samples(3).warmup(1);
    b.bench("smoke/fig5_buffer_tbs_sweep", || {
        black_box(exp::fig5_series(&cfg));
    });
    b.bench("smoke/table1_modes", || {
        black_box(exp::table1());
    });
    b.finish().expect("write bench_results/smoke.json");

    let agg = exp::fig6_aggregate(&cfg);
    let dir = poi360_testkit::results_dir();
    std::fs::create_dir_all(&dir).ok();
    std::fs::write(dir.join("smoke_aggregate.json"), agg.to_json() + "\n")
        .expect("write smoke_aggregate.json");
    println!("{}", agg.to_json());
}

/// `reproduce trace <scenario>` — run one scenario with a JSONL sink
/// attached and render a probe-count summary table. Returns the number of
/// failures (a failed trace write is a failure, not a warning, so CI can
/// gate on the exit code).
fn trace(args: &[String]) -> usize {
    use poi360_core::config::{NetworkKind, RateControlKind, SessionConfig};
    use poi360_core::multicell::{FlowSpec, MultiCell, MultiCellConfig};
    use poi360_core::session::Session;
    use poi360_lte::scenario::Scenario;
    use poi360_metrics::table::Table;
    use poi360_sim::time::SimDuration;
    use poi360_sim::trace::{JsonlSink, SinkHandle, TraceSink};
    use poi360_sim::Recorder;
    use std::sync::{Arc, Mutex};

    let mut scenario = String::from("busy");
    let mut seconds: u64 = 30;
    let mut seed: u64 = 1;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                // CI entry point: short busy-cell run, fixed output name.
                smoke = true;
                seconds = 5;
            }
            "--seconds" => {
                seconds = it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => {
                seed = it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            name if !name.starts_with('-') => scenario = name.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }

    let dir = poi360_testkit::results_dir();
    std::fs::create_dir_all(&dir).ok();
    let stem = if smoke { "trace_smoke".to_string() } else { format!("trace_{scenario}") };
    let path = dir.join(format!("{stem}.jsonl"));
    let sink = Arc::new(Mutex::new(JsonlSink::create(&path).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", path.display());
        std::process::exit(1);
    })));
    sink.lock().unwrap().stamp(&poi360_sim::trace::RunMeta::current(seed));
    let handle: SinkHandle = sink.clone();

    let session_cfg = |net: Scenario| SessionConfig {
        rate_control: RateControlKind::Fbcc,
        network: NetworkKind::Cellular(net),
        duration: SimDuration::from_secs(seconds),
        seed,
        ..Default::default()
    };
    match scenario.as_str() {
        // load_sweep()[1] is the busy cell: the FBCC-relevant condition
        // where competing load drives the firmware buffer and Γ(t).
        "busy" => {
            black_box(
                Session::traced(
                    session_cfg(Scenario::load_sweep()[1]),
                    Recorder::to_sink(handle, "session"),
                )
                .run(),
            );
        }
        "baseline" => {
            black_box(
                Session::traced(
                    session_cfg(Scenario::baseline()),
                    Recorder::to_sink(handle, "session"),
                )
                .run(),
            );
        }
        "quiet" => {
            black_box(
                Session::traced(
                    session_cfg(Scenario::quiet()),
                    Recorder::to_sink(handle, "session"),
                )
                .run(),
            );
        }
        "coexist" => {
            let cfg = MultiCellConfig {
                flows: vec![
                    FlowSpec::with_rate_control(RateControlKind::Fbcc),
                    FlowSpec::with_rate_control(RateControlKind::Gcc),
                ],
                duration: SimDuration::from_secs(seconds),
                seed,
                ..Default::default()
            };
            black_box(MultiCell::traced(cfg, handle).run());
        }
        other => {
            eprintln!(
                "unknown trace scenario `{other}`; expected one of: busy, baseline, quiet, coexist"
            );
            std::process::exit(2);
        }
    }

    sink.lock().unwrap().flush();
    let sink = sink.lock().unwrap();
    let mut failures = 0;
    if sink.had_io_error() {
        eprintln!("FAIL: some trace writes to {} failed", path.display());
        failures += 1;
    }
    let mut t = Table::new(
        format!("Probe counts — scenario `{scenario}`, {seconds}s, seed {seed}"),
        &["Probe", "Records"],
    );
    for (name, count) in sink.counts() {
        t.row(vec![name.to_string(), count.to_string()]);
    }
    let mut out = t.render();
    out.push_str(&format!("{} JSONL records -> {}\n", sink.lines(), path.display()));
    println!("{out}");
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("{stem}.txt"))) {
        let _ = f.write_all(out.as_bytes());
    }
    failures
}

/// `reproduce faults [scenario]` — run the named fault-injection presets
/// under both FBCC and GCC, judge the recovery invariants, and prove the
/// whole batch byte-identical across a rerun. Returns the number of
/// failed invariants (plus one if the rerun diverged).
fn faults(args: &[String]) -> usize {
    use poi360_bench::faults as fi;
    use poi360_lte::scenario::{FaultScenario, FAULT_RUN_SECS};
    use poi360_metrics::table::Table;

    let mut seconds: u64 = FAULT_RUN_SECS;
    let mut seed: u64 = 1;
    let mut smoke = false;
    let mut which: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                // CI entry point: the whole fault timeline compressed 4x.
                smoke = true;
                seconds = 6;
            }
            "--seconds" => {
                seconds = it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => {
                seed = it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            name if !name.starts_with('-') => which = Some(name.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }

    let scenarios: Vec<FaultScenario> = match &which {
        Some(name) => match FaultScenario::by_name(name) {
            Some(fs) => vec![fs],
            None => {
                eprintln!("{}", poi360_lte::scenario::unknown_preset_error("fault", name));
                std::process::exit(2);
            }
        },
        None => FaultScenario::all(),
    };

    eprintln!(
        "# fault suite: {} scenarios x {{FBCC, GCC}}, {seconds}s each, seed {seed}, run twice",
        scenarios.len()
    );
    let (outcomes, bytes) = fi::run_suite(&scenarios, seconds, seed);
    let (_, rerun) = fi::run_suite(&scenarios, seconds, seed);
    let deterministic = bytes == rerun;

    let dir = poi360_testkit::results_dir();
    std::fs::create_dir_all(&dir).ok();
    let stem = if smoke { "faults_smoke" } else { "faults" };
    let path = dir.join(format!("{stem}.jsonl"));
    std::fs::write(&path, &bytes).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    });

    let mut failures = 0;
    let mut t = Table::new(
        format!("Fault robustness — {seconds}s runs, seed {seed}"),
        &["Scenario", "RC", "Pre Mbps", "Post Mbps", "Freeze %", "Tail buf KB", "Verdict"],
    );
    for o in &outcomes {
        let v = &o.verdict;
        let verdict = if v.pass() {
            "pass".to_string()
        } else {
            failures += 1;
            format!("FAIL: {}", v.failures().join(","))
        };
        t.row(vec![
            o.scenario.to_string(),
            o.rc.label().to_string(),
            format!("{:.2}", v.pre_rate_bps / 1e6),
            format!("{:.2}", v.post_rate_bps / 1e6),
            format!("{:.1}", v.freeze_ratio * 100.0),
            format!("{:.0}", v.tail_buffer_bytes / 1e3),
            verdict,
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "trace determinism: {}\n",
        if deterministic { "byte-identical across reruns" } else { "FAIL: reruns differ" }
    ));
    if !deterministic {
        failures += 1;
    }
    out.push_str(&format!("{} JSONL bytes -> {}\n", bytes.len(), path.display()));
    println!("{out}");
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("{stem}.txt"))) {
        let _ = f.write_all(out.as_bytes());
    }
    failures
}

/// `reproduce mobility [scenario]` — drive sessions across the hex
/// grid, judge the handover invariants, prove the probe stream
/// thread-count invariant, and run a 3-seed matrix. Returns the number
/// of failures.
fn mobility(args: &[String]) -> usize {
    use poi360_bench::mobility as mo;
    use poi360_lte::scenario::{unknown_preset_error, MobilityScenario};

    let mut scale = mo::MobilityScale::full();
    let mut seed: u64 = 1;
    let mut smoke = false;
    let mut which: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                // CI entry point: compressed lattice, same invariants.
                smoke = true;
                scale = mo::MobilityScale::smoke();
            }
            "--seconds" => {
                scale.seconds =
                    it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => {
                seed = it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            name if !name.starts_with('-') => which = Some(name.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    let name = which.unwrap_or_else(|| "convoy".to_string());
    let Some(ms) = MobilityScenario::by_name(&name) else {
        eprintln!("{}", unknown_preset_error("mobility", &name));
        std::process::exit(2);
    };

    eprintln!(
        "# mobility `{}`: {}s, {} flows + {} load UEs, seed {seed}; thread-invariance pair + 3-seed matrix",
        ms.name, scale.seconds, scale.flows, scale.load_ues
    );
    let protocol = mo::run_protocol(&ms, &scale, seed);

    let dir = poi360_testkit::results_dir();
    std::fs::create_dir_all(&dir).ok();
    let stem = match (smoke, name.as_str()) {
        (true, "convoy") => "mobility_smoke".to_string(),
        (true, other) => format!("mobility_{other}_smoke"),
        (false, other) => format!("mobility_{other}"),
    };
    let path = dir.join(format!("{stem}.jsonl"));
    std::fs::write(&path, &protocol.bytes).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    });

    // The .txt artifact is exactly the protocol text — the golden test
    // regenerates and pins it — so the path line (which varies by
    // checkout) goes to stdout only.
    println!("{}", protocol.text);
    println!("{} JSONL bytes -> {}", protocol.bytes.len(), path.display());
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("{stem}.txt"))) {
        let _ = f.write_all(protocol.text.as_bytes());
    }
    protocol.failures
}

/// `reproduce study <preset|config-file>` — run a declarative
/// scenario × controller × seed matrix through the worker pool and
/// render the cross-run aggregation. Returns the number of gate
/// failures (baseline drift beyond the study's threshold).
fn study(args: &[String]) -> usize {
    use poi360_analyse::study::{by_name, unknown_study_error, StudyConfig};
    use poi360_bench::study as st;
    use poi360_sim::json::FromKv;

    let mut smoke = false;
    let mut baseline_dir: Option<std::path::PathBuf> = None;
    let mut which: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--baseline" => {
                baseline_dir = Some(std::path::PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            name if !name.starts_with('-') => which = Some(name.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    let Some(which) = which else {
        eprintln!("study needs a preset name or a .study config file");
        usage();
    };

    // A registered preset first; otherwise a config file on disk.
    let cfg = match by_name(&which) {
        Some(cfg) => cfg,
        None => {
            let path = std::path::Path::new(&which);
            if !path.is_file() {
                eprintln!("{}", unknown_study_error(&which));
                std::process::exit(2);
            }
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {}: {e}", path.display());
                std::process::exit(2);
            });
            StudyConfig::from_kv_str(&text).unwrap_or_else(|e| {
                eprintln!("{}: {e}", path.display());
                std::process::exit(2);
            })
        }
    };

    let stem =
        if smoke { format!("study_{}_smoke", cfg.name) } else { format!("study_{}", cfg.name) };
    let baseline_bytes = baseline_dir.map(|dir| {
        let path = dir.join(format!("{stem}.jsonl"));
        std::fs::read(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", path.display());
            std::process::exit(2);
        })
    });

    eprintln!(
        "# study `{}`: {} cases ({} family){}",
        cfg.name,
        cfg.cases().len(),
        cfg.family.as_str(),
        if smoke { ", smoke scale" } else { "" }
    );
    let protocol = st::run_protocol(&cfg, smoke, baseline_bytes.as_deref()).unwrap_or_else(|e| {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    });

    let dir = poi360_testkit::results_dir();
    std::fs::create_dir_all(&dir).ok();
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    std::fs::write(&jsonl_path, &protocol.jsonl).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", jsonl_path.display());
        std::process::exit(1);
    });
    let chrome_path = dir.join(format!("{stem}_trace.json"));
    std::fs::write(&chrome_path, &protocol.chrome).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", chrome_path.display());
        std::process::exit(1);
    });

    // Like mobility: the .txt artifact is exactly the protocol text (the
    // golden test pins the smoke variant), path lines go to stdout only.
    println!("{}", protocol.text);
    println!("{} JSONL bytes -> {}", protocol.jsonl.len(), jsonl_path.display());
    println!("chrome trace -> {}", chrome_path.display());
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("{stem}.txt"))) {
        let _ = f.write_all(protocol.text.as_bytes());
    }
    protocol.failures
}

/// `reproduce arena [--smoke] [--seconds N] [--seed N]
/// [--controllers a+b] [--policies x+y]` — the controller × tiling
/// tournament. Returns the number of violated fault invariants.
fn arena(args: &[String]) -> usize {
    use poi360_bench::arena as ar;

    let mut cfg = ar::ArenaConfig::full();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                // CI entry point: full 3x3 matrix, compressed legs.
                let seed = cfg.seed;
                cfg = ar::ArenaConfig { seed, ..ar::ArenaConfig::smoke() };
                smoke = true;
            }
            "--seconds" => {
                cfg.seconds =
                    it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => {
                cfg.seed = it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--controllers" => {
                let spec = it.next().unwrap_or_else(|| usage());
                cfg.controllers = spec
                    .split('+')
                    .map(|name| {
                        ar::controller_by_name(name).unwrap_or_else(|e| {
                            eprintln!("{e}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--policies" => {
                let spec = it.next().unwrap_or_else(|| usage());
                cfg.policies = spec
                    .split('+')
                    .map(|name| {
                        ar::policy_by_name(name).unwrap_or_else(|e| {
                            eprintln!("{e}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }

    eprintln!(
        "# arena: {} controllers x {} policies, {}s legs, {} fault presets, seed {}",
        cfg.controllers.len(),
        cfg.policies.len(),
        cfg.seconds,
        cfg.fault_scenarios.len(),
        cfg.seed
    );
    let protocol = ar::run_protocol(&cfg);

    let dir = poi360_testkit::results_dir();
    std::fs::create_dir_all(&dir).ok();
    let stem = if smoke { "arena_smoke" } else { "arena" };
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    std::fs::write(&jsonl_path, &protocol.jsonl).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", jsonl_path.display());
        std::process::exit(1);
    });

    // Like study: the .txt artifact is exactly the protocol text (the
    // golden test pins the smoke variant), path lines go to stdout only.
    println!("{}", protocol.text);
    println!("{} JSONL bytes -> {}", protocol.jsonl.len(), jsonl_path.display());
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("{stem}.txt"))) {
        let _ = f.write_all(protocol.text.as_bytes());
    }
    protocol.failures
}

/// `reproduce perf [--smoke] [--compare <baseline.json>]` — the
/// profiling plane. Returns the number of gate failures.
fn perf(args: &[String]) -> usize {
    let mut opts = poi360_bench::perf::PerfOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--compare" => {
                opts.compare = Some(std::path::PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    poi360_bench::perf::run(&opts)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--threads N` applies to every subcommand: strip it here, before
    // dispatch, and pin the worker pool.
    if let Some(k) = args.iter().position(|a| a == "--threads") {
        let Some(n) = args.get(k + 1).and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
        else {
            eprintln!("--threads needs a positive integer");
            usage();
        };
        poi360_bench::runner::set_worker_threads(n);
        args.drain(k..k + 2);
    }
    if args.is_empty() {
        usage();
    }
    let what = args[0].clone();
    if what == "--smoke" || what == "smoke" {
        smoke();
        return;
    }
    if what == "--list" || what == "list" {
        list();
        return;
    }
    if what == "trace" {
        if trace(&args[1..]) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if what == "faults" {
        if faults(&args[1..]) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if what == "mobility" {
        if mobility(&args[1..]) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if what == "perf" {
        if perf(&args[1..]) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if what == "study" {
        if study(&args[1..]) > 0 {
            std::process::exit(1);
        }
        return;
    }
    if what == "arena" {
        if arena(&args[1..]) > 0 {
            std::process::exit(1);
        }
        return;
    }
    let mut cfg = ExpConfig::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--full" => cfg = ExpConfig { base_seed: cfg.base_seed, ..ExpConfig::full() },
            "--seconds" => {
                cfg.duration_secs =
                    it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--repeats" => {
                cfg.repeats =
                    it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => {
                cfg.base_seed =
                    it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--exp" => {
                // `key=value` overrides, validated by ExpConfig's FromKv;
                // only the keys actually present are merged in, so --exp
                // composes with --full/--seconds/--repeats/--seed.
                let text = it.next().unwrap_or_else(|| usage());
                let kv = KvMap::parse(text).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
                let parsed = ExpConfig::from_kv(&kv).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
                if kv.get("duration_secs").is_some() {
                    cfg.duration_secs = parsed.duration_secs;
                }
                if kv.get("repeats").is_some() {
                    cfg.repeats = parsed.repeats;
                }
                if kv.get("base_seed").is_some() {
                    cfg.base_seed = parsed.base_seed;
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }

    eprintln!(
        "# sessions: {}s x {} repeats x 5 users per condition (seed {})",
        cfg.duration_secs, cfg.repeats, cfg.base_seed
    );

    let mut outputs: Vec<(&str, String)> = Vec::new();
    let micro_needed = ["fig11", "fig12", "fig13", "fig14", "all"].contains(&what.as_str());
    let micro = micro_needed.then(|| exp::compression_bench(&cfg));
    let rate_needed = ["fig15", "fig16", "all"].contains(&what.as_str());
    let rate = rate_needed.then(|| exp::rate_control_bench(&cfg));

    match what.as_str() {
        "fig5" => outputs.push(("fig5", exp::fig5(&cfg))),
        "fig6" => outputs.push(("fig6", exp::fig6(&cfg))),
        "table1" => outputs.push(("table1", exp::table1())),
        "fig11" => outputs.push(("fig11", exp::fig11(micro.as_ref().expect("computed")))),
        "fig12" => outputs.push(("fig12", exp::fig12(micro.as_ref().expect("computed")))),
        "fig13" => outputs.push(("fig13", exp::fig13(micro.as_ref().expect("computed")))),
        "fig14" => outputs.push(("fig14", exp::fig14(micro.as_ref().expect("computed")))),
        "fig15" => outputs.push(("fig15", exp::fig15(rate.as_ref().expect("computed")))),
        "fig16" => outputs.push(("fig16", exp::fig16(rate.as_ref().expect("computed")))),
        "fig17" => {
            outputs.push(("fig17_load", exp::fig17(&cfg, exp::Fig17Axis::Load)));
            outputs.push(("fig17_signal", exp::fig17(&cfg, exp::Fig17Axis::Signal)));
            outputs.push(("fig17_speed", exp::fig17(&cfg, exp::Fig17Axis::Speed)));
        }
        "coexist" => outputs.push(("coexist", exp::coexist(&cfg))),
        "ablation" => {
            outputs.push(("ablation_prediction", exp::roi_prediction_ablation()));
            outputs.push(("ablation_modes", exp::mode_ablation(&cfg)));
            outputs.push(("ablation_prediction_policy", exp::prediction_policy_ablation(&cfg)));
            outputs.push(("ablation_edge", exp::edge_relay_ablation(&cfg)));
        }
        "all" => {
            outputs.push(("table1", exp::table1()));
            outputs.push(("fig5", exp::fig5(&cfg)));
            outputs.push(("fig6", exp::fig6(&cfg)));
            let micro = micro.expect("computed");
            outputs.push(("fig11", exp::fig11(&micro)));
            outputs.push(("fig12", exp::fig12(&micro)));
            outputs.push(("fig13", exp::fig13(&micro)));
            outputs.push(("fig14", exp::fig14(&micro)));
            let rate = rate.expect("computed");
            outputs.push(("fig15", exp::fig15(&rate)));
            outputs.push(("fig16", exp::fig16(&rate)));
            outputs.push(("fig17_load", exp::fig17(&cfg, exp::Fig17Axis::Load)));
            outputs.push(("fig17_signal", exp::fig17(&cfg, exp::Fig17Axis::Signal)));
            outputs.push(("fig17_speed", exp::fig17(&cfg, exp::Fig17Axis::Speed)));
            outputs.push(("coexist", exp::coexist(&cfg)));
            outputs.push(("ablation_prediction", exp::roi_prediction_ablation()));
            outputs.push(("ablation_modes", exp::mode_ablation(&cfg)));
            outputs.push(("ablation_prediction_policy", exp::prediction_policy_ablation(&cfg)));
            outputs.push(("ablation_edge", exp::edge_relay_ablation(&cfg)));
        }
        other => unknown(other),
    }

    let dir = poi360_testkit::results_dir();
    std::fs::create_dir_all(&dir).ok();
    let mut failures = 0;
    for (name, text) in &outputs {
        println!("{text}");
        if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.txt"))) {
            let _ = f.write_all(text.as_bytes());
        }
        // Generators mark violated self-checks with a FAIL line; surface
        // them in the exit code so ci.sh actually gates on the run.
        if text.contains("FAIL") {
            eprintln!("{name}: output contains a FAIL marker");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
