//! `reproduce` — regenerate every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! cargo run --release -p poi360-bench --bin reproduce -- all
//! cargo run --release -p poi360-bench --bin reproduce -- fig11 --full
//! cargo run --release -p poi360-bench --bin reproduce -- fig17 --seconds 120 --repeats 5
//! ```
//!
//! Subcommands: `fig5 fig6 table1 fig11 fig12 fig13 fig14 fig15 fig16
//! fig17 ablation all`. Flags: `--full` (paper scale: 300 s × 10 repeats),
//! `--seconds N`, `--repeats N`, `--seed N`. Output also lands in
//! `bench_results/<name>.txt`.

use poi360_bench::experiments as exp;
use poi360_bench::runner::ExpConfig;
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: reproduce <fig5|fig6|table1|fig11|fig12|fig13|fig14|fig15|fig16|fig17|ablation|all> \
         [--full] [--seconds N] [--repeats N] [--seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let what = args[0].clone();
    let mut cfg = ExpConfig::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--full" => cfg = ExpConfig { base_seed: cfg.base_seed, ..ExpConfig::full() },
            "--seconds" => {
                cfg.duration_secs = it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--repeats" => {
                cfg.repeats = it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => {
                cfg.base_seed = it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }

    eprintln!(
        "# sessions: {}s x {} repeats x 5 users per condition (seed {})",
        cfg.duration_secs, cfg.repeats, cfg.base_seed
    );

    let mut outputs: Vec<(&str, String)> = Vec::new();
    let micro_needed = ["fig11", "fig12", "fig13", "fig14", "all"].contains(&what.as_str());
    let micro = micro_needed.then(|| exp::compression_bench(&cfg));
    let rate_needed = ["fig15", "fig16", "all"].contains(&what.as_str());
    let rate = rate_needed.then(|| exp::rate_control_bench(&cfg));

    match what.as_str() {
        "fig5" => outputs.push(("fig5", exp::fig5(&cfg))),
        "fig6" => outputs.push(("fig6", exp::fig6(&cfg))),
        "table1" => outputs.push(("table1", exp::table1())),
        "fig11" => outputs.push(("fig11", exp::fig11(micro.as_ref().expect("computed")))),
        "fig12" => outputs.push(("fig12", exp::fig12(micro.as_ref().expect("computed")))),
        "fig13" => outputs.push(("fig13", exp::fig13(micro.as_ref().expect("computed")))),
        "fig14" => outputs.push(("fig14", exp::fig14(micro.as_ref().expect("computed")))),
        "fig15" => outputs.push(("fig15", exp::fig15(rate.as_ref().expect("computed")))),
        "fig16" => outputs.push(("fig16", exp::fig16(rate.as_ref().expect("computed")))),
        "fig17" => {
            outputs.push(("fig17_load", exp::fig17(&cfg, exp::Fig17Axis::Load)));
            outputs.push(("fig17_signal", exp::fig17(&cfg, exp::Fig17Axis::Signal)));
            outputs.push(("fig17_speed", exp::fig17(&cfg, exp::Fig17Axis::Speed)));
        }
        "ablation" => {
            outputs.push(("ablation_prediction", exp::roi_prediction_ablation()));
            outputs.push(("ablation_modes", exp::mode_ablation(&cfg)));
            outputs.push(("ablation_prediction_policy", exp::prediction_policy_ablation(&cfg)));
            outputs.push(("ablation_edge", exp::edge_relay_ablation(&cfg)));
        }
        "all" => {
            outputs.push(("table1", exp::table1()));
            outputs.push(("fig5", exp::fig5(&cfg)));
            outputs.push(("fig6", exp::fig6(&cfg)));
            let micro = micro.expect("computed");
            outputs.push(("fig11", exp::fig11(&micro)));
            outputs.push(("fig12", exp::fig12(&micro)));
            outputs.push(("fig13", exp::fig13(&micro)));
            outputs.push(("fig14", exp::fig14(&micro)));
            let rate = rate.expect("computed");
            outputs.push(("fig15", exp::fig15(&rate)));
            outputs.push(("fig16", exp::fig16(&rate)));
            outputs.push(("fig17_load", exp::fig17(&cfg, exp::Fig17Axis::Load)));
            outputs.push(("fig17_signal", exp::fig17(&cfg, exp::Fig17Axis::Signal)));
            outputs.push(("fig17_speed", exp::fig17(&cfg, exp::Fig17Axis::Speed)));
            outputs.push(("ablation_prediction", exp::roi_prediction_ablation()));
            outputs.push(("ablation_modes", exp::mode_ablation(&cfg)));
            outputs.push(("ablation_prediction_policy", exp::prediction_policy_ablation(&cfg)));
            outputs.push(("ablation_edge", exp::edge_relay_ablation(&cfg)));
        }
        _ => usage(),
    }

    std::fs::create_dir_all("bench_results").ok();
    for (name, text) in &outputs {
        println!("{text}");
        if let Ok(mut f) = std::fs::File::create(format!("bench_results/{name}.txt")) {
            let _ = f.write_all(text.as_bytes());
        }
    }
}
