//! `reproduce` — regenerate every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! cargo run --release -p poi360-bench --bin reproduce -- all
//! cargo run --release -p poi360-bench --bin reproduce -- fig11 --full
//! cargo run --release -p poi360-bench --bin reproduce -- fig17 --seconds 120 --repeats 5
//! ```
//!
//! Subcommands: `fig5 fig6 table1 fig11 fig12 fig13 fig14 fig15 fig16
//! fig17 coexist ablation all`. Flags: `--full` (paper scale: 300 s × 10
//! repeats), `--seconds N`, `--repeats N`, `--seed N`. Output also lands
//! in `bench_results/<name>.txt` at the workspace root, regardless of the
//! invoking directory.

use poi360_bench::experiments as exp;
use poi360_bench::runner::ExpConfig;
use poi360_sim::json::{FromKv, KvMap, ToJson};
use poi360_testkit::{black_box, Bench};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: reproduce <fig5|fig6|table1|fig11|fig12|fig13|fig14|fig15|fig16|fig17|coexist|ablation|all> \
         [--full] [--seconds N] [--repeats N] [--seed N] [--exp k=v,...]\n\
         \x20      reproduce --smoke   (quick JSON bench + aggregate sanity run)"
    );
    std::process::exit(2);
}

/// Quick hermetic sanity run for CI: a tiny timed suite over the figure
/// generators plus a reduced-scale aggregate, all emitted as JSON
/// (`bench_results/smoke.json` / `smoke_aggregate.json`).
fn smoke() {
    let cfg = ExpConfig { duration_secs: 5, repeats: 1, base_seed: 77 };
    let mut b = Bench::new("smoke").samples(3).warmup(1);
    b.bench("smoke/fig5_buffer_tbs_sweep", || {
        black_box(exp::fig5_series(&cfg));
    });
    b.bench("smoke/table1_modes", || {
        black_box(exp::table1());
    });
    b.finish().expect("write bench_results/smoke.json");

    let agg = exp::fig6_aggregate(&cfg);
    let dir = poi360_testkit::results_dir();
    std::fs::create_dir_all(&dir).ok();
    std::fs::write(dir.join("smoke_aggregate.json"), agg.to_json() + "\n")
        .expect("write smoke_aggregate.json");
    println!("{}", agg.to_json());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let what = args[0].clone();
    if what == "--smoke" || what == "smoke" {
        smoke();
        return;
    }
    let mut cfg = ExpConfig::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--full" => cfg = ExpConfig { base_seed: cfg.base_seed, ..ExpConfig::full() },
            "--seconds" => {
                cfg.duration_secs =
                    it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--repeats" => {
                cfg.repeats =
                    it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => {
                cfg.base_seed =
                    it.next().unwrap_or_else(|| usage()).parse().unwrap_or_else(|_| usage())
            }
            "--exp" => {
                // `key=value` overrides, validated by ExpConfig's FromKv;
                // only the keys actually present are merged in, so --exp
                // composes with --full/--seconds/--repeats/--seed.
                let text = it.next().unwrap_or_else(|| usage());
                let kv = KvMap::parse(text).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
                let parsed = ExpConfig::from_kv(&kv).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
                if kv.get("duration_secs").is_some() {
                    cfg.duration_secs = parsed.duration_secs;
                }
                if kv.get("repeats").is_some() {
                    cfg.repeats = parsed.repeats;
                }
                if kv.get("base_seed").is_some() {
                    cfg.base_seed = parsed.base_seed;
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }

    eprintln!(
        "# sessions: {}s x {} repeats x 5 users per condition (seed {})",
        cfg.duration_secs, cfg.repeats, cfg.base_seed
    );

    let mut outputs: Vec<(&str, String)> = Vec::new();
    let micro_needed = ["fig11", "fig12", "fig13", "fig14", "all"].contains(&what.as_str());
    let micro = micro_needed.then(|| exp::compression_bench(&cfg));
    let rate_needed = ["fig15", "fig16", "all"].contains(&what.as_str());
    let rate = rate_needed.then(|| exp::rate_control_bench(&cfg));

    match what.as_str() {
        "fig5" => outputs.push(("fig5", exp::fig5(&cfg))),
        "fig6" => outputs.push(("fig6", exp::fig6(&cfg))),
        "table1" => outputs.push(("table1", exp::table1())),
        "fig11" => outputs.push(("fig11", exp::fig11(micro.as_ref().expect("computed")))),
        "fig12" => outputs.push(("fig12", exp::fig12(micro.as_ref().expect("computed")))),
        "fig13" => outputs.push(("fig13", exp::fig13(micro.as_ref().expect("computed")))),
        "fig14" => outputs.push(("fig14", exp::fig14(micro.as_ref().expect("computed")))),
        "fig15" => outputs.push(("fig15", exp::fig15(rate.as_ref().expect("computed")))),
        "fig16" => outputs.push(("fig16", exp::fig16(rate.as_ref().expect("computed")))),
        "fig17" => {
            outputs.push(("fig17_load", exp::fig17(&cfg, exp::Fig17Axis::Load)));
            outputs.push(("fig17_signal", exp::fig17(&cfg, exp::Fig17Axis::Signal)));
            outputs.push(("fig17_speed", exp::fig17(&cfg, exp::Fig17Axis::Speed)));
        }
        "coexist" => outputs.push(("coexist", exp::coexist(&cfg))),
        "ablation" => {
            outputs.push(("ablation_prediction", exp::roi_prediction_ablation()));
            outputs.push(("ablation_modes", exp::mode_ablation(&cfg)));
            outputs.push(("ablation_prediction_policy", exp::prediction_policy_ablation(&cfg)));
            outputs.push(("ablation_edge", exp::edge_relay_ablation(&cfg)));
        }
        "all" => {
            outputs.push(("table1", exp::table1()));
            outputs.push(("fig5", exp::fig5(&cfg)));
            outputs.push(("fig6", exp::fig6(&cfg)));
            let micro = micro.expect("computed");
            outputs.push(("fig11", exp::fig11(&micro)));
            outputs.push(("fig12", exp::fig12(&micro)));
            outputs.push(("fig13", exp::fig13(&micro)));
            outputs.push(("fig14", exp::fig14(&micro)));
            let rate = rate.expect("computed");
            outputs.push(("fig15", exp::fig15(&rate)));
            outputs.push(("fig16", exp::fig16(&rate)));
            outputs.push(("fig17_load", exp::fig17(&cfg, exp::Fig17Axis::Load)));
            outputs.push(("fig17_signal", exp::fig17(&cfg, exp::Fig17Axis::Signal)));
            outputs.push(("fig17_speed", exp::fig17(&cfg, exp::Fig17Axis::Speed)));
            outputs.push(("coexist", exp::coexist(&cfg)));
            outputs.push(("ablation_prediction", exp::roi_prediction_ablation()));
            outputs.push(("ablation_modes", exp::mode_ablation(&cfg)));
            outputs.push(("ablation_prediction_policy", exp::prediction_policy_ablation(&cfg)));
            outputs.push(("ablation_edge", exp::edge_relay_ablation(&cfg)));
        }
        _ => usage(),
    }

    let dir = poi360_testkit::results_dir();
    std::fs::create_dir_all(&dir).ok();
    for (name, text) in &outputs {
        println!("{text}");
        if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.txt"))) {
            let _ = f.write_all(text.as_bytes());
        }
    }
}
