//! Shared experiment plumbing: session fan-out across users × repetitions,
//! parallelized across OS threads (sessions are independent and
//! deterministic per seed). Every fan-out in the crate — session batches,
//! shared-cell ensembles, the fault matrices — funnels through
//! [`run_jobs`], which borrows workers from the process-wide persistent
//! epoch pool ([`pool`], shared with the `MultiGrid` sharded executor) at
//! a width resolved by [`worker_threads`]: a `--threads` flag or
//! `POI360_THREADS` env override, else `available_parallelism`. Results
//! always come back in input order, so parallelism never perturbs output
//! bytes.

use poi360_core::config::SessionConfig;
use poi360_core::multicell::{MultiCell, MultiCellConfig, MultiCellReport};
use poi360_core::report::{Aggregate, SessionReport};
use poi360_core::session::Session;
use poi360_sim::json::{FromKv, KvMap};
use poi360_sim::time::SimDuration;
use poi360_viewport::motion::UserArchetype;

/// Global experiment scaling.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Per-session duration in seconds (paper: 300 s).
    pub duration_secs: u64,
    /// Repetitions per user (paper: 10).
    pub repeats: u64,
    /// Base seed; session seeds derive from it, the user, and the repeat.
    pub base_seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        // Quick mode: enough sessions for stable aggregates in seconds of
        // wall-clock. `reproduce --full` switches to the paper's scale.
        ExpConfig { duration_secs: 90, repeats: 3, base_seed: 360 }
    }
}

impl ExpConfig {
    /// The paper's full scale: 5-minute sessions, 10 repetitions per user.
    pub fn full() -> Self {
        ExpConfig { duration_secs: 300, repeats: 10, base_seed: 360 }
    }

    /// Session duration.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.duration_secs)
    }
}

impl FromKv for ExpConfig {
    /// Override any subset of the defaults from `key=value` text, e.g.
    /// `reproduce fig6 --exp duration_secs=30,repeats=2`. Unknown keys are
    /// errors so a typo cannot silently run the wrong experiment.
    fn from_kv(kv: &KvMap) -> Result<Self, String> {
        const KEYS: [&str; 3] = ["duration_secs", "repeats", "base_seed"];
        if let Some(bad) = kv.keys().find(|k| !KEYS.contains(k)) {
            return Err(format!("unknown ExpConfig key {bad:?} (expected one of {KEYS:?})"));
        }
        let mut cfg = ExpConfig::default();
        if let Some(v) = kv.get_parsed("duration_secs")? {
            cfg.duration_secs = v;
        }
        if let Some(v) = kv.get_parsed("repeats")? {
            cfg.repeats = v;
        }
        if let Some(v) = kv.get_parsed("base_seed")? {
            cfg.base_seed = v;
        }
        Ok(cfg)
    }
}

/// Process-wide worker-thread override (0 = unset). Set by the
/// `reproduce --threads N` flag via [`set_worker_threads`].
static THREAD_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Pin the worker-pool width for this process (0 clears the override).
pub fn set_worker_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, std::sync::atomic::Ordering::Relaxed);
}

/// Worker-pool width for [`run_jobs`] — and shard width for the
/// `MultiGrid` epoch-lockstep executor, which must reuse this resolution
/// rather than re-reading the environment: the [`set_worker_threads`]
/// override if set, else the `POI360_THREADS` environment variable, else
/// `available_parallelism` (min 1 in every case). An unparsable env
/// value warns exactly once per process, however many resolutions run.
pub fn worker_threads() -> usize {
    let pinned = THREAD_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed);
    if pinned > 0 {
        return pinned;
    }
    if let Ok(env) = std::env::var("POI360_THREADS") {
        if let Ok(n) = env.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!("warning: ignoring unparsable POI360_THREADS={env:?}");
        });
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// The persistent worker pool every parallel surface shares: `run_jobs`
/// fan-outs here, and the `MultiGrid` epoch-lockstep executor in
/// `poi360-core`. One set of threads serves both — they spawn on first
/// use and park between dispatches, so neither a bench fan-out nor a
/// per-subframe grid epoch ever pays a thread spawn.
pub fn pool() -> &'static poi360_sim::workers::EpochPool {
    poi360_sim::workers::global()
}

/// Run independent jobs across up to [`worker_threads`] pool workers and
/// return the outputs **in input order**.
///
/// Each worker repeatedly pops a job off a shared stack, runs `f`, and
/// files the result under the job's original index, so the caller sees
/// identical bytes no matter how many threads ran or how the scheduler
/// interleaved them. Jobs are plain data (`Send`); any non-`Send` state
/// (sessions, cells) is constructed inside `f` on the worker thread. A
/// job may itself dispatch onto the pool (e.g. build a sharded
/// `MultiGrid`) — nested dispatches run inline on that worker.
pub fn run_jobs<I: Send, O: Send>(jobs: Vec<I>, f: impl Fn(I) -> O + Sync) -> Vec<O> {
    let width = worker_threads().min(jobs.len()).max(1);
    let jobs = std::sync::Mutex::new(jobs.into_iter().enumerate().collect::<Vec<_>>());
    let results_mutex = std::sync::Mutex::new(Vec::new());
    pool().dispatch(width, |_| loop {
        let job = jobs.lock().expect("job queue poisoned").pop();
        let Some((idx, input)) = job else { break };
        let output = f(input);
        results_mutex.lock().expect("results poisoned").push((idx, output));
    });
    let mut results = results_mutex.into_inner().expect("results poisoned");
    results.sort_by_key(|&(idx, _)| idx);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Deterministic per-session seed from experiment base seed, user index,
/// and repetition number.
pub fn session_seed(base: u64, user_idx: usize, repeat: u64) -> u64 {
    base ^ ((user_idx as u64 + 1) << 24) ^ (repeat.wrapping_mul(0x9E37_79B9))
}

/// Run `users × repeats` sessions of `make_cfg` and pool them into an
/// aggregate. `make_cfg` receives (user, seed) and returns the session
/// configuration.
pub fn run_sessions(
    exp: &ExpConfig,
    label: &str,
    make_cfg: impl Fn(UserArchetype, u64) -> SessionConfig + Sync,
) -> Aggregate {
    let users = UserArchetype::all();
    let mut jobs: Vec<SessionConfig> = Vec::new();
    for (user_idx, &user) in users.iter().enumerate() {
        for repeat in 0..exp.repeats {
            let seed = session_seed(exp.base_seed, user_idx, repeat);
            jobs.push(make_cfg(user, seed));
        }
    }
    let reports = run_parallel(jobs);
    let mut agg = Aggregate::new(label);
    for r in &reports {
        agg.add(r);
    }
    agg
}

/// Run a batch of independent sessions across the worker pool.
pub fn run_parallel(jobs: Vec<SessionConfig>) -> Vec<SessionReport> {
    run_jobs(jobs, |cfg| Session::new(cfg).run())
}

/// Run a batch of independent shared-cell ensembles across the worker
/// pool. Each ensemble is constructed inside its worker thread from the
/// plain-data config. Result order matches input order.
pub fn run_multicells(configs: Vec<MultiCellConfig>) -> Vec<MultiCellReport> {
    run_jobs(configs, |cfg| MultiCell::new(cfg).run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_core::config::{CompressionScheme, NetworkKind, RateControlKind};
    use poi360_core::multicell::FlowSpec;
    use poi360_sim::json::ToJson;

    #[test]
    fn exp_config_from_kv_overrides_and_rejects() {
        let cfg = ExpConfig::from_kv_str("duration_secs=12,repeats=2").unwrap();
        assert_eq!(cfg.duration_secs, 12);
        assert_eq!(cfg.repeats, 2);
        assert_eq!(cfg.base_seed, ExpConfig::default().base_seed);
        assert!(ExpConfig::from_kv_str("duraton=12").is_err());
        assert!(ExpConfig::from_kv_str("repeats=abc").is_err());
    }

    #[test]
    fn run_jobs_preserves_input_order() {
        let jobs: Vec<u64> = (0..64).collect();
        let out = run_jobs(jobs, |k| k * k);
        assert_eq!(out, (0..64).map(|k| k * k).collect::<Vec<_>>());
    }

    #[test]
    fn thread_override_takes_priority() {
        set_worker_threads(3);
        assert_eq!(worker_threads(), 3);
        set_worker_threads(0);
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn run_jobs_handles_empty_and_single() {
        assert!(run_jobs(Vec::<u32>::new(), |k| k).is_empty());
        assert_eq!(run_jobs(vec![7u32], |k| k + 1), vec![8]);
    }

    #[test]
    fn seeds_are_distinct_across_users_and_repeats() {
        let mut seen = std::collections::HashSet::new();
        for user in 0..5 {
            for rep in 0..10 {
                assert!(seen.insert(session_seed(1, user, rep)));
            }
        }
    }

    #[test]
    fn run_sessions_pools_all() {
        let exp = ExpConfig { duration_secs: 5, repeats: 2, base_seed: 9 };
        let agg = run_sessions(&exp, "smoke", |user, seed| SessionConfig {
            scheme: CompressionScheme::Poi360,
            rate_control: RateControlKind::Gcc,
            network: NetworkKind::Wireline,
            user,
            duration: exp.duration(),
            seed,
            ..Default::default()
        });
        assert_eq!(agg.sessions, 10);
        assert!(agg.freeze.delivered() > 0);
    }

    #[test]
    fn parallel_order_is_stable() {
        let exp = ExpConfig { duration_secs: 3, repeats: 1, base_seed: 5 };
        let mk = |user: UserArchetype, seed: u64| SessionConfig {
            scheme: CompressionScheme::Poi360,
            rate_control: RateControlKind::Gcc,
            network: NetworkKind::Wireline,
            user,
            duration: exp.duration(),
            seed,
            ..Default::default()
        };
        let a = run_sessions(&exp, "a", mk);
        let b = run_sessions(&exp, "b", mk);
        assert_eq!(a.roi_psnr_db, b.roi_psnr_db, "fan-out must be deterministic");
    }

    #[test]
    fn multicell_fanout_is_ordered_and_deterministic() {
        let mk = || {
            (0..3u64)
                .map(|rep| MultiCellConfig {
                    flows: vec![FlowSpec::default(); 2],
                    background_ues: 3,
                    duration: SimDuration::from_secs(4),
                    seed: 100 + rep,
                    ..Default::default()
                })
                .collect::<Vec<_>>()
        };
        let a = run_multicells(mk());
        let b = run_multicells(mk());
        assert_eq!(a.len(), 3);
        for (ra, rb) in a.iter().zip(&b) {
            let (mut ja, mut jb) = (String::new(), String::new());
            ra.write_json(&mut ja);
            rb.write_json(&mut jb);
            assert_eq!(ja, jb);
        }
    }
}
