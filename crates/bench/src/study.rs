//! Execution layer of the declarative study harness.
//!
//! `poi360-analyse` owns the declaration ([`StudyConfig`]), the ingest,
//! and the report rendering; this module owns the only part it cannot —
//! actually driving sessions. [`run_cases`] expands a config to its
//! case list and fans the cases out over [`crate::runner::run_jobs`]:
//! each case runs in its own worker with its own in-memory JSONL sink
//! (stamped with a [`RunMeta`]), and the results come back in input
//! order, so the concatenated study artifact is byte-identical at any
//! worker-pool width — `ci.sh` proves it with `cmp` across
//! `POI360_THREADS=1` and `=4`.
//!
//! [`run_protocol`] is the whole `reproduce study` pipeline minus file
//! IO (run → parse → aggregate → render → Chrome export), shared
//! verbatim by the CLI and the golden test that pins the
//! `cc_matrix --smoke` report.

use poi360_analyse::chrome;
use poi360_analyse::ingest::RunTrace;
use poi360_analyse::report::{self, CaseTrace};
use poi360_analyse::study::{StudyCase, StudyConfig, StudyFamily, BASELINE_SCENARIO};
use poi360_core::config::RateControlKind;
use poi360_lte::scenario::{FaultScenario, MobilityScenario, Scenario};
use poi360_sim::fault::FaultPlan;
use poi360_sim::trace::{JsonlSink, RunMeta, SinkHandle, TraceSink};
use poi360_sim::Recorder;
use std::sync::{Arc, Mutex};

/// Map a study controller label onto the typed rate-control kind. The
/// labels were validated at config parse, so this is total.
pub fn rate_control(label: &str) -> RateControlKind {
    match label {
        "fbcc" => RateControlKind::Fbcc,
        "gcc" => RateControlKind::Gcc,
        "occ" => RateControlKind::Occ,
        other => unreachable!("StudyConfig::validate admitted controller {other:?}"),
    }
}

/// Resolve a fault-study scenario name, including the synthetic
/// `baseline` (quiet cell, empty plan — byte-identical to a clean run
/// by the fault plane's composition rule).
pub fn fault_scenario(name: &str) -> FaultScenario {
    if name == BASELINE_SCENARIO {
        FaultScenario {
            name: "baseline",
            what: "quiet cell, no faults injected",
            scenario: Scenario::quiet(),
            plan: FaultPlan::new(),
        }
    } else {
        FaultScenario::by_name(name)
            .unwrap_or_else(|| unreachable!("StudyConfig::validate admitted scenario {name:?}"))
    }
}

/// The CI-scale variant of a study: same matrix, compressed runs — the
/// fault timeline 4x shorter (mirroring `faults --smoke`), the mobility
/// lattice swapped for the compressed smoke grid (8 s, 160 m sites).
pub fn smoke_variant(cfg: &StudyConfig) -> StudyConfig {
    let mut out = cfg.clone();
    out.seconds = match cfg.family {
        StudyFamily::Fault => 6,
        StudyFamily::Mobility => crate::mobility::MobilityScale::smoke().seconds,
    };
    out
}

/// One executed case: the descriptor, its stamped JSONL stream, and the
/// per-flow delivery gaps (mobility only — that data lives in the grid
/// report, not in probes).
pub struct ExecutedCase {
    /// The case descriptor from [`StudyConfig::cases`].
    pub case: StudyCase,
    /// The case's JSONL stream (leading [`RunMeta`] stamp included).
    pub bytes: Vec<u8>,
    /// Per-flow delivery gaps, ms (empty for fault cases).
    pub gaps_ms: Vec<f64>,
}

pub(crate) fn stamped_sink(seed: u64) -> Arc<Mutex<JsonlSink<Vec<u8>>>> {
    let sink = Arc::new(Mutex::new(JsonlSink::to_writer(Vec::new())));
    sink.lock().unwrap().stamp(&RunMeta::current(seed));
    sink
}

pub(crate) fn finish_sink(sink: Arc<Mutex<JsonlSink<Vec<u8>>>>) -> Vec<u8> {
    sink.lock().unwrap().flush();
    let Ok(sink) = Arc::try_unwrap(sink) else { panic!("all trace handles dropped") };
    sink.into_inner().unwrap().into_inner()
}

/// Run every case of the (already smoke-adjusted) config through the
/// worker pool, in config order.
pub fn run_cases(cfg: &StudyConfig, smoke: bool) -> Vec<ExecutedCase> {
    match cfg.family {
        StudyFamily::Fault => {
            let seconds = cfg.seconds;
            let jobs: Vec<(StudyCase, FaultScenario, RateControlKind)> = cfg
                .cases()
                .into_iter()
                .map(|case| {
                    let fs = fault_scenario(&case.scenario);
                    let rc = rate_control(case.rc.as_deref().expect("fault cases carry an rc"));
                    (case, fs, rc)
                })
                .collect();
            crate::runner::run_jobs(jobs, move |(case, fs, rc)| {
                let sink = stamped_sink(case.seed);
                let handle: SinkHandle = sink.clone();
                let recorder = Recorder::to_sink(Arc::clone(&handle), &case.label);
                crate::faults::run_case(&fs, rc, seconds, case.seed, recorder);
                drop(handle);
                ExecutedCase { case, bytes: finish_sink(sink), gaps_ms: Vec::new() }
            })
        }
        StudyFamily::Mobility => {
            let scale = if smoke {
                crate::mobility::MobilityScale::smoke()
            } else {
                crate::mobility::MobilityScale {
                    seconds: cfg.seconds,
                    ..crate::mobility::MobilityScale::full()
                }
            };
            let jobs: Vec<(StudyCase, MobilityScenario)> = cfg
                .cases()
                .into_iter()
                .map(|case| {
                    let ms = MobilityScenario::by_name(&case.scenario).unwrap_or_else(|| {
                        unreachable!("StudyConfig::validate admitted {:?}", case.scenario)
                    });
                    (case, ms)
                })
                .collect();
            crate::runner::run_jobs(jobs, move |(case, ms)| {
                let (outcome, bytes) = crate::mobility::run_case(&ms, &scale, case.seed);
                let gaps_ms = outcome
                    .report
                    .flow_stats
                    .iter()
                    .flat_map(|f| f.gap_ms.iter().copied())
                    .collect();
                ExecutedCase { case, bytes, gaps_ms }
            })
        }
    }
}

/// Everything one `reproduce study` invocation produces, minus file IO.
pub struct StudyProtocol {
    /// Rendered report (tables + warnings + gate line) — the golden
    /// artifact; deliberately free of paths and commit hashes unless a
    /// baseline was compared.
    pub text: String,
    /// Gate violations (baseline drift); 0 = pass.
    pub failures: usize,
    /// The study JSONL artifact: every case stream concatenated in
    /// config order.
    pub jsonl: Vec<u8>,
    /// Chrome `trace_event` export of the first case's probe stream.
    pub chrome: String,
}

/// Run the full study pipeline: execute, parse back, aggregate, render.
/// `baseline` is the byte content of a previously written study JSONL
/// artifact to diff against.
pub fn run_protocol(
    cfg: &StudyConfig,
    smoke: bool,
    baseline: Option<&[u8]>,
) -> Result<StudyProtocol, String> {
    let cfg = if smoke { smoke_variant(cfg) } else { cfg.clone() };
    let executed = run_cases(&cfg, smoke);
    let mut jsonl = Vec::new();
    for e in &executed {
        jsonl.extend_from_slice(&e.bytes);
    }
    let cases: Vec<CaseTrace> = executed
        .iter()
        .map(|e| {
            Ok(CaseTrace {
                scenario: e.case.scenario.clone(),
                rc: e.case.rc.clone(),
                seed: e.case.seed,
                trace: RunTrace::parse_bytes(&e.bytes)
                    .map_err(|err| format!("case {}: {err}", e.case.label))?,
                gaps_ms: e.gaps_ms.clone(),
            })
        })
        .collect::<Result<_, String>>()?;
    let base_trace = match baseline {
        Some(bytes) => Some(RunTrace::parse_bytes(bytes).map_err(|e| format!("baseline: {e}"))?),
        None => None,
    };
    let rep = report::study_report(&cfg, &cases, base_trace.as_ref());
    let chrome = chrome::chrome_trace(&cases[0].trace);
    Ok(StudyProtocol { text: rep.text, failures: rep.failures, jsonl, chrome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_analyse::study::by_name;

    fn tiny_cc() -> StudyConfig {
        StudyConfig {
            name: "tiny".into(),
            scenarios: vec!["baseline".into()],
            controllers: vec!["fbcc".into()],
            seeds: 1,
            seconds: 3,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn cases_come_back_stamped_in_config_order_and_byte_deterministic() {
        let cfg = tiny_cc();
        crate::runner::set_worker_threads(1);
        let narrow = run_cases(&cfg, false);
        crate::runner::set_worker_threads(4);
        let wide = run_cases(&cfg, false);
        crate::runner::set_worker_threads(0);
        assert_eq!(narrow.len(), 1);
        assert_eq!(narrow[0].case.label, "baseline.fbcc.s1");
        assert_eq!(
            narrow[0].bytes, wide[0].bytes,
            "study case stream invariant across worker widths"
        );
        let trace = RunTrace::parse_bytes(&narrow[0].bytes).expect("case stream parses");
        assert_eq!(trace.metas.len(), 1, "leading RunMeta stamp");
        assert_eq!(trace.metas[0].seed, 1);
        assert!(!trace.is_empty());
        assert_eq!(trace.srcs.names().collect::<Vec<_>>(), ["baseline.fbcc.s1"]);
    }

    #[test]
    fn protocol_renders_report_and_chrome_and_gates_on_baseline() {
        let cfg = tiny_cc();
        let p = run_protocol(&cfg, false, None).expect("protocol runs");
        assert_eq!(p.failures, 0);
        assert!(p.text.contains("Per-probe distributions"));
        assert!(p.text.contains("study gate: 0 failure(s)"));
        assert!(!p.jsonl.is_empty());
        poi360_sim::json::parse_json(&p.chrome).expect("chrome export is valid JSON");

        // Self-baseline: identical bytes must not drift.
        let jsonl = p.jsonl.clone();
        let p2 = run_protocol(&cfg, false, Some(&jsonl)).expect("protocol with baseline");
        assert_eq!(p2.failures, 0, "identical baseline must pass:\n{}", p2.text);
        assert!(p2.text.contains("Baseline drift gate"));
    }

    #[test]
    fn smoke_variant_compresses_both_families() {
        let cc = smoke_variant(&by_name("cc_matrix").unwrap());
        assert_eq!(cc.seconds, 6);
        assert_eq!(cc.cases().len(), 18, "matrix shape unchanged");
        let ho = smoke_variant(&by_name("ho_tails").unwrap());
        assert_eq!(ho.seconds, crate::mobility::MobilityScale::smoke().seconds);
    }
}
