//! Figure/table regeneration harness for the POI360 reproduction.
//!
//! One generator per table/figure of the paper's evaluation (§3 and §6);
//! the `reproduce` binary wraps them in a CLI. See DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured numbers.

pub mod arena;
pub mod experiments;
pub mod faults;
pub mod mobility;
pub mod perf;
pub mod runner;
pub mod study;

pub use experiments::*;
pub use runner::{run_sessions, ExpConfig};
