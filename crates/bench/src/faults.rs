//! Shared harness for the fault-injection robustness runs.
//!
//! Both the `reproduce faults` subcommand and the `tests/faults.rs`
//! regression suite drive the same [`FaultScenario`] presets through the
//! same recovery invariants, defined exactly once here: after the last
//! fault window clears, the video rate must climb back to at least half
//! its pre-fault mean, the firmware buffer must drain back toward its
//! pre-fault level, playback freeze time must stay bounded, and the
//! probe plane must never see an out-of-order gauge sample. A whole
//! suite run is a pure function of its seed, so the JSONL byte stream it
//! produces is asserted byte-identical across reruns.

use poi360_core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360_core::report::SessionReport;
use poi360_core::session::Session;
use poi360_lte::scenario::{FaultScenario, FAULT_RUN_SECS};
use poi360_sim::fault::{FaultKind, FaultPlan};
use poi360_sim::series::TimeSeries;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::trace::{JsonlSink, RunMeta, SinkHandle, TraceSink};
use poi360_sim::Recorder;
use std::sync::{Arc, Mutex};

/// Recovery-invariant verdicts for one `scenario x rate-control` run.
///
/// All windowed means come from the session's retained gauge series; the
/// windows are derived from the (possibly time-scaled) fault plan so the
/// same thresholds apply to full-length and `--smoke` runs.
#[derive(Clone, Debug)]
pub struct FaultVerdict {
    /// Mean video rate over the pre-fault window, bps.
    pub pre_rate_bps: f64,
    /// Mean video rate over the post-recovery window, bps.
    pub post_rate_bps: f64,
    /// Post-recovery rate is at least half the pre-fault rate.
    pub rate_recovered: bool,
    /// Mean firmware buffer over the pre-fault window, bytes.
    pub pre_buffer_bytes: f64,
    /// Mean firmware buffer over the final 10% of the run, bytes.
    pub tail_buffer_bytes: f64,
    /// The firmware buffer drained back toward its pre-fault level.
    pub buffer_drained: bool,
    /// Fraction of the run the viewer spent frozen.
    pub freeze_ratio: f64,
    /// Freeze time stayed within the bound.
    pub freeze_bounded: bool,
    /// The recorder never dropped an out-of-order gauge sample.
    pub probes_in_order: bool,
}

impl FaultVerdict {
    /// Names of every invariant this run violated (empty = pass).
    pub fn failures(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.rate_recovered {
            out.push("rate-recovery");
        }
        if !self.buffer_drained {
            out.push("buffer-drain");
        }
        if !self.freeze_bounded {
            out.push("freeze-bound");
        }
        if !self.probes_in_order {
            out.push("probe-order");
        }
        out
    }

    /// True when every invariant held.
    pub fn pass(&self) -> bool {
        self.failures().is_empty()
    }
}

/// One completed fault run: the report plus its invariant verdicts.
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// Preset name (`rlf`, `diag_freeze`, ...).
    pub scenario: &'static str,
    /// One-line description of the preset.
    pub what: &'static str,
    /// Which rate control ran.
    pub rc: RateControlKind,
    /// The full session report.
    pub report: SessionReport,
    /// The invariant verdicts.
    pub verdict: FaultVerdict,
}

/// A preset's plan scaled to a `seconds`-long run (identity at
/// [`FAULT_RUN_SECS`]); `--smoke` runs compress the whole timeline.
pub fn scaled_plan(fs: &FaultScenario, seconds: u64) -> FaultPlan {
    fs.plan.time_scaled(seconds, FAULT_RUN_SECS)
}

/// The session configuration for one fault case (default tiling scheme).
pub fn session_config(
    fs: &FaultScenario,
    rc: RateControlKind,
    seconds: u64,
    seed: u64,
) -> SessionConfig {
    session_config_with_scheme(fs, CompressionScheme::Poi360, rc, seconds, seed)
}

/// The session configuration for one fault case under an explicit tiling
/// scheme — the arena races controllers *and* tile policies through the
/// same invariants.
pub fn session_config_with_scheme(
    fs: &FaultScenario,
    scheme: CompressionScheme,
    rc: RateControlKind,
    seconds: u64,
    seed: u64,
) -> SessionConfig {
    SessionConfig {
        scheme,
        rate_control: rc,
        network: NetworkKind::Cellular(fs.scenario),
        duration: SimDuration::from_secs(seconds),
        seed,
        ..Default::default()
    }
}

/// Mean of a gauge over `[from, to)`, or NaN when the window is empty.
fn mean_between(series: &TimeSeries, from: SimTime, to: SimTime) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for (at, v) in series.iter() {
        if at >= from && at < to {
            sum += v;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Judge the recovery invariants of one finished run.
///
/// Windows, with `start` = first fault onset and `clear` = last fault end:
/// pre-fault is `[start/2, start)`, post-recovery is the back half of
/// `[clear, end)` — roughly 15 RTTs of grace at full scale — and the
/// buffer tail is the final 10% of the run.
pub fn judge(report: &SessionReport, plan: &FaultPlan, seconds: u64, drops: u64) -> FaultVerdict {
    let start = plan.events().iter().map(|e| e.start).min().unwrap_or(SimTime::ZERO);
    let clear = plan.horizon();
    let end = SimTime::ZERO + SimDuration::from_secs(seconds);
    let pre_from = SimTime::from_micros(start.as_micros() / 2);
    let post_from = SimTime::from_micros((clear.as_micros() + end.as_micros()) / 2).min(end);
    let tail_from = SimTime::from_micros(end.as_micros() - end.as_micros() / 10);

    let pre_rate_bps = mean_between(&report.video_rate, pre_from, start);
    let post_rate_bps = mean_between(&report.video_rate, post_from, end);
    // A total radio outage collapses GCC (and FBCC's GCC component) to its
    // floor, and the faithful AIMD ramp recovers at ~8%/s — the slow
    // restoration the paper itself criticizes — so full-outage plans
    // assert recovery *progress* over the post-clear floor rather than
    // restoration to half the pre-fault rate.
    let full_outage = plan.events().iter().any(|e| matches!(e.kind, FaultKind::RadioLinkFailure));
    let rate_recovered = if full_outage {
        // The collapse trails the fault-clear instant (the flushed-queue
        // loss burst lands one feedback cycle later), so the baseline is
        // the post-clear *trough*, not a fixed early window.
        let trough = report
            .video_rate
            .iter()
            .filter(|&(at, _)| at >= clear && at < post_from)
            .map(|(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        let required = 1.0 + 0.2 * (seconds as f64 / FAULT_RUN_SECS as f64);
        trough.is_finite() && post_rate_bps.is_finite() && post_rate_bps >= required * trough
    } else {
        pre_rate_bps.is_finite() && post_rate_bps.is_finite() && post_rate_bps >= 0.5 * pre_rate_bps
    };

    let pre_buffer_bytes = mean_between(&report.fw_buffer, pre_from, start);
    let tail_buffer_bytes = mean_between(&report.fw_buffer, tail_from, end);
    // "Drained" allows settling above the pre-fault mean, but not by much:
    // a stuck queue after the fault clears sits orders of magnitude higher.
    let buffer_drained = report.fw_buffer.is_empty()
        || (tail_buffer_bytes.is_finite()
            && tail_buffer_bytes <= (3.0 * pre_buffer_bytes).max(100_000.0));

    let freeze_ratio = report.freeze_ratio();
    let freeze_bounded = freeze_ratio <= 0.40;

    FaultVerdict {
        pre_rate_bps,
        post_rate_bps,
        rate_recovered,
        pre_buffer_bytes,
        tail_buffer_bytes,
        buffer_drained,
        freeze_ratio,
        freeze_bounded,
        probes_in_order: drops == 0,
    }
}

/// Run one `scenario x rate-control` case and judge it. The recorder's
/// out-of-order drop counter is read back after the run, so pass a fresh
/// recorder (a clone is kept here; `Session::run` consumes the other).
pub fn run_case(
    fs: &FaultScenario,
    rc: RateControlKind,
    seconds: u64,
    seed: u64,
    recorder: Recorder,
) -> FaultOutcome {
    run_case_with_scheme(fs, CompressionScheme::Poi360, rc, seconds, seed, recorder)
}

/// [`run_case`] under an explicit tiling scheme.
pub fn run_case_with_scheme(
    fs: &FaultScenario,
    scheme: CompressionScheme,
    rc: RateControlKind,
    seconds: u64,
    seed: u64,
    recorder: Recorder,
) -> FaultOutcome {
    let plan = scaled_plan(fs, seconds);
    let keep = recorder.clone();
    let report = Session::faulted_traced(
        session_config_with_scheme(fs, scheme, rc, seconds, seed),
        &plan,
        recorder,
    )
    .run();
    let verdict = judge(&report, &plan, seconds, keep.out_of_order_drops());
    FaultOutcome { scenario: fs.name, what: fs.what, rc, report, verdict }
}

/// Run every given preset under FBCC, GCC, and OCC, tracing into one
/// logical JSONL stream (per-run src `"<scenario>.<rc>"`). Returns the
/// outcomes plus the raw JSONL bytes — byte-identical across calls with
/// the same arguments, which is exactly what callers assert.
///
/// The cases fan out across [`crate::runner::run_jobs`]: each case is an
/// independent session with its own seed-derived streams, and it traces
/// into its *own* in-memory sink. Trace records carry no cross-case state
/// (no global sequence numbers, no shared clocks), so concatenating the
/// per-case buffers in case order reproduces the old serial single-sink
/// stream byte for byte, however many worker threads ran.
pub fn run_suite(
    scenarios: &[FaultScenario],
    seconds: u64,
    seed: u64,
) -> (Vec<FaultOutcome>, Vec<u8>) {
    let mut jobs = Vec::new();
    for fs in scenarios {
        for rc in [RateControlKind::Fbcc, RateControlKind::Gcc, RateControlKind::Occ] {
            jobs.push((fs.clone(), rc));
        }
    }
    let results = crate::runner::run_jobs(jobs, |(fs, rc)| {
        let sink = Arc::new(Mutex::new(JsonlSink::to_writer(Vec::new())));
        sink.lock().unwrap().stamp(&RunMeta::current(seed));
        let handle: SinkHandle = sink.clone();
        let src = format!("{}.{}", fs.name, rc.label());
        let recorder = Recorder::to_sink(Arc::clone(&handle), &src);
        let outcome = run_case(&fs, rc, seconds, seed, recorder);
        drop(handle);
        sink.lock().unwrap().flush();
        let Ok(sink) = Arc::try_unwrap(sink) else { panic!("all trace handles dropped") };
        (outcome, sink.into_inner().unwrap().into_inner())
    });
    let mut outcomes = Vec::with_capacity(results.len());
    let mut bytes = Vec::new();
    for (outcome, case_bytes) in results {
        outcomes.push(outcome);
        bytes.extend_from_slice(&case_bytes);
    }
    (outcomes, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_byte_identical_across_reruns() {
        let rlf = FaultScenario::by_name("rlf").expect("preset exists");
        let (a_out, a_bytes) = run_suite(std::slice::from_ref(&rlf), 6, 3);
        let (b_out, b_bytes) = run_suite(std::slice::from_ref(&rlf), 6, 3);
        assert_eq!(a_out.len(), 3, "FBCC, GCC, and OCC");
        assert!(!a_bytes.is_empty(), "trace stream captured");
        assert_eq!(a_bytes, b_bytes, "fault suite reruns must be byte-identical");
        assert_eq!(b_out.len(), 3);
    }

    #[test]
    fn suite_bytes_do_not_depend_on_worker_count() {
        // Same matrix, pinned to one worker vs. several: the concatenated
        // trace stream and the outcome order must not move.
        let rlf = FaultScenario::by_name("rlf").expect("preset exists");
        crate::runner::set_worker_threads(1);
        let (serial_out, serial_bytes) = run_suite(std::slice::from_ref(&rlf), 6, 3);
        crate::runner::set_worker_threads(4);
        let (par_out, par_bytes) = run_suite(std::slice::from_ref(&rlf), 6, 3);
        crate::runner::set_worker_threads(0);
        assert_eq!(serial_bytes, par_bytes, "JSONL stream must be thread-count invariant");
        let labels =
            |o: &[FaultOutcome]| o.iter().map(|c| (c.scenario, c.rc.label())).collect::<Vec<_>>();
        assert_eq!(labels(&serial_out), labels(&par_out));
    }

    #[test]
    fn judge_windows_follow_the_scaled_plan() {
        let fs = FaultScenario::by_name("grant_starve").expect("preset exists");
        let full = scaled_plan(&fs, FAULT_RUN_SECS);
        assert_eq!(full.horizon(), fs.plan.horizon(), "identity at full scale");
        let smoke = scaled_plan(&fs, 6);
        assert_eq!(smoke.horizon().as_micros(), fs.plan.horizon().as_micros() / 4);
    }

    #[test]
    fn verdict_failure_names_match_flags() {
        let v = FaultVerdict {
            pre_rate_bps: 1.0,
            post_rate_bps: 0.1,
            rate_recovered: false,
            pre_buffer_bytes: 0.0,
            tail_buffer_bytes: 0.0,
            buffer_drained: true,
            freeze_ratio: 0.9,
            freeze_bounded: false,
            probes_in_order: true,
        };
        assert!(!v.pass());
        assert_eq!(v.failures(), vec!["rate-recovery", "freeze-bound"]);
    }
}
