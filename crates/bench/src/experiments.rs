//! One generator per paper table/figure.
//!
//! Each `figN` function runs the experiment behind that figure and renders
//! the same rows/series the paper reports, returning the rendered text
//! (and, where useful for tests, structured results). The mapping to paper
//! figures is the experiment index in DESIGN.md §3.

use crate::runner::{run_multicells, run_parallel, run_sessions, ExpConfig};
use poi360_core::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use poi360_core::multicell::{FlowSpec, MultiCellConfig, MultiCellReport};
use poi360_core::report::Aggregate;
use poi360_lte::buffer::PacketLike;
use poi360_lte::cell::background_population_for;
use poi360_lte::scenario::{BackgroundLoad, Scenario};
use poi360_lte::uplink::CellUplink;
use poi360_metrics::dist::{percentile, Cdf};
use poi360_metrics::mos::Mos;
use poi360_metrics::table::{fnum, mbps, pct, Table};
use poi360_sim::time::SimTime;
use poi360_viewport::motion::UserArchetype;

struct Filler(u32);
impl PacketLike for Filler {
    fn wire_bytes(&self) -> u32 {
        self.0
    }
}

fn session_base(exp: &ExpConfig, user: UserArchetype, seed: u64) -> SessionConfig {
    SessionConfig { user, seed, duration: exp.duration(), ..Default::default() }
}

// ---------------------------------------------------------------------
// Fig. 5 — firmware-buffer occupancy vs. uplink TBS throughput
// ---------------------------------------------------------------------

/// The relation between firmware buffer occupancy and per-second TBS
/// (paper Fig. 5): hold the buffer at a fixed level and measure throughput.
pub fn fig5_series(exp: &ExpConfig) -> Vec<(f64, f64)> {
    let levels_kb = [0.5, 1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0, 25.0];
    levels_kb
        .iter()
        .map(|&kb| {
            let mut ul = CellUplink::new(Scenario::quiet().uplink_config(), exp.base_seed);
            let level = (kb * 1_000.0) as u64;
            let mut now = SimTime::ZERO;
            let mut bits = 0u64;
            let secs = exp.duration_secs.clamp(5, 30);
            for _ in 0..secs * 1_000 {
                while ul.buffer_level() < level {
                    ul.enqueue(Filler(1_200), now);
                }
                bits += ul.subframe(now).tbs_bits as u64;
                now += poi360_sim::SUBFRAME;
            }
            (kb, bits as f64 / secs as f64 / 1e6)
        })
        .collect()
}

/// Render Fig. 5.
pub fn fig5(exp: &ExpConfig) -> String {
    let mut t = Table::new(
        "Fig. 5 — Sum UL TBS/s vs firmware buffer occupancy (paper: linear rise, saturation ~4.5-5.5 Mbps by ~15-25 KB)",
        &["Buffer (KB)", "UL TBS/s (Mbps)"],
    );
    for (kb, mbps_v) in fig5_series(exp) {
        t.row(vec![fnum(kb, 1), fnum(mbps_v, 2)]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Fig. 6 — firmware-buffer CDF under stock WebRTC (GCC) rate control
// ---------------------------------------------------------------------

/// Pool firmware-buffer samples from POI360-compressed sessions under GCC.
pub fn fig6_aggregate(exp: &ExpConfig) -> Aggregate {
    run_sessions(exp, "fig6: GCC buffer occupancy", |user, seed| SessionConfig {
        scheme: CompressionScheme::Poi360,
        rate_control: RateControlKind::Gcc,
        network: NetworkKind::Cellular(Scenario::baseline()),
        ..session_base(exp, user, seed)
    })
}

/// Render Fig. 6.
pub fn fig6(exp: &ExpConfig) -> String {
    let agg = fig6_aggregate(exp);
    let kb: Vec<f64> = agg.fw_buffer.iter().map(|b| b / 1e3).collect();
    let cdf = Cdf::new(kb);
    let mut t = Table::new(
        "Fig. 6 — CDF of uplink firmware buffer level under WebRTC/GCC (paper: ~40% of time empty)",
        &["Buffer (KB)", "CDF"],
    );
    for x in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        t.row(vec![fnum(x, 1), fnum(cdf.at(x), 3)]);
    }
    let mut out = t.render();
    out.push_str(&format!("near-empty (<0.5 KB) fraction: {}\n", pct(cdf.at(0.5))));
    out
}

// ---------------------------------------------------------------------
// Table 1 — PSNR → MOS mapping
// ---------------------------------------------------------------------

/// Render Table 1 (the mapping is implemented in `poi360-metrics::mos`).
pub fn table1() -> String {
    let mut t =
        Table::new("Table 1 — PSNR to Mean Opinion Score mapping", &["MOS", "PSNR range (dB)"]);
    t.row(vec!["Excellent".into(), "> 37".into()]);
    t.row(vec!["Good".into(), "31 - 37".into()]);
    t.row(vec!["Fair".into(), "25 - 31".into()]);
    t.row(vec!["Poor".into(), "20 - 25".into()]);
    t.row(vec!["Bad".into(), "< 20".into()]);
    let mut out = t.render();
    // Self-check the implementation against the table.
    for (psnr, expect) in [
        (40.0, Mos::Excellent),
        (34.0, Mos::Good),
        (28.0, Mos::Fair),
        (22.0, Mos::Poor),
        (15.0, Mos::Bad),
    ] {
        assert_eq!(Mos::from_psnr(psnr), expect);
    }
    out.push_str("implementation check: OK\n");
    out
}

// ---------------------------------------------------------------------
// §6.1.1 micro-benchmark sessions (shared by Figs. 11–14)
// ---------------------------------------------------------------------

/// The §6.1.1 compression micro-benchmark: three schemes × two networks,
/// all on GCC transport (the paper isolates compression by fixing the
/// transport to WebRTC's default).
pub struct CompressionBench {
    /// Per-scheme aggregates over the wireline control condition.
    pub wireline: Vec<(CompressionScheme, Aggregate)>,
    /// Per-scheme aggregates over the cellular condition.
    pub cellular: Vec<(CompressionScheme, Aggregate)>,
}

/// Run the §6.1.1 sessions.
pub fn compression_bench(exp: &ExpConfig) -> CompressionBench {
    let run = |scheme: CompressionScheme, network: NetworkKind, tag: &str| {
        run_sessions(exp, tag, |user, seed| SessionConfig {
            scheme,
            rate_control: RateControlKind::Gcc,
            network,
            ..session_base(exp, user, seed)
        })
    };
    let schemes = CompressionScheme::all();
    CompressionBench {
        wireline: schemes
            .iter()
            .map(|&s| (s, run(s, NetworkKind::Wireline, &format!("{}/wireline", s.label()))))
            .collect(),
        cellular: schemes
            .iter()
            .map(|&s| {
                (
                    s,
                    run(
                        s,
                        NetworkKind::Cellular(Scenario::baseline()),
                        &format!("{}/cellular", s.label()),
                    ),
                )
            })
            .collect(),
    }
}

/// Render Fig. 11 (a–d): ROI PSNR and MOS PDFs per scheme and network.
pub fn fig11(bench: &CompressionBench) -> String {
    let mut out = String::new();
    for (net, rows) in [("wireline", &bench.wireline), ("cellular", &bench.cellular)] {
        let mut t = Table::new(
            format!("Fig. 11 — user-perceived ROI quality over {net} (paper cellular: POI360 11-13 dB above baselines)"),
            &["Scheme", "PSNR mean (dB)", "PSNR std", "Bad", "Poor", "Fair", "Good", "EXC"],
        );
        for (scheme, agg) in rows {
            let mos = agg.mos();
            let pdf = mos.pdf();
            t.row(vec![
                scheme.label().into(),
                fnum(agg.mean_psnr_db(), 1),
                fnum(agg.psnr_std_db(), 1),
                pct(pdf[0]),
                pct(pdf[1]),
                pct(pdf[2]),
                pct(pdf[3]),
                pct(pdf[4]),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Render Fig. 12 (a/b): short-term ROI compression-level variation.
pub fn fig12(bench: &CompressionBench) -> String {
    let mut out = String::new();
    for (net, rows) in [("wireline", &bench.wireline), ("cellular", &bench.cellular)] {
        let mut t = Table::new(
            format!("Fig. 12 — ROI compression-level std in 2 s windows over {net} (paper cellular: baselines 5-14x POI360)"),
            &["Scheme", "mean std", "p50", "p90", "p99"],
        );
        for (scheme, agg) in rows {
            t.row(vec![
                scheme.label().into(),
                fnum(agg.mean_level_std(), 2),
                fnum(percentile(&agg.level_stds, 0.5).unwrap_or(0.0), 2),
                fnum(percentile(&agg.level_stds, 0.9).unwrap_or(0.0), 2),
                fnum(percentile(&agg.level_stds, 0.99).unwrap_or(0.0), 2),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Render Fig. 13 (a/b): frame-delay CDFs.
pub fn fig13(bench: &CompressionBench) -> String {
    let mut out = String::new();
    for (net, rows) in [("wireline", &bench.wireline), ("cellular", &bench.cellular)] {
        let mut t = Table::new(
            format!("Fig. 13 — video frame delay over {net} (paper cellular: POI360 median 460 ms, 15% below Conduit)"),
            &["Scheme", "p10 (ms)", "median", "p90", "p99"],
        );
        for (scheme, agg) in rows {
            let d = agg.freeze.delays_ms();
            t.row(vec![
                scheme.label().into(),
                fnum(percentile(d, 0.1).unwrap_or(0.0), 0),
                fnum(percentile(d, 0.5).unwrap_or(0.0), 0),
                fnum(percentile(d, 0.9).unwrap_or(0.0), 0),
                fnum(percentile(d, 0.99).unwrap_or(0.0), 0),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Render Fig. 14 (a/b): freeze ratios.
pub fn fig14(bench: &CompressionBench) -> String {
    let mut out = String::new();
    for (net, rows) in [("wireline", &bench.wireline), ("cellular", &bench.cellular)] {
        let mut t = Table::new(
            format!("Fig. 14 — video freeze ratio over {net} (paper: wireline all <2%; cellular POI360 <3%, baselines 8-17%)"),
            &["Scheme", "Freeze ratio"],
        );
        for (scheme, agg) in rows {
            t.row(vec![scheme.label().into(), pct(agg.freeze_ratio())]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// §6.1.2 FBCC vs GCC (Figs. 15 & 16)
// ---------------------------------------------------------------------

/// The §6.1.2 rate-control micro-benchmark: POI360 compression over FBCC
/// vs. over stock GCC, on the cellular baseline.
pub fn rate_control_bench(exp: &ExpConfig) -> Vec<(RateControlKind, Aggregate)> {
    [RateControlKind::Fbcc, RateControlKind::Gcc]
        .iter()
        .map(|&rc| {
            let agg = run_sessions(exp, rc.label(), |user, seed| SessionConfig {
                scheme: CompressionScheme::Poi360,
                rate_control: rc,
                network: NetworkKind::Cellular(Scenario::baseline()),
                ..session_base(exp, user, seed)
            });
            (rc, agg)
        })
        .collect()
}

/// Render Fig. 15: the (buffer level, UL TBS/s) operating points.
pub fn fig15(rows: &[(RateControlKind, Aggregate)]) -> String {
    let mut out = String::new();
    for (rc, agg) in rows {
        let mut t = Table::new(
            format!("Fig. 15 — operating region of {} (paper: FBCC at the sweet spot, GCC in the low-usage region)", rc.label()),
            &["Buffer (KB)", "p25 TBS (Mbps)", "median TBS", "p75 TBS", "samples"],
        );
        // Bucket the (buffer, rate) scatter like the paper's regions.
        for (lo, hi) in
            [(0.0, 2.0), (2.0, 5.0), (5.0, 10.0), (10.0, 15.0), (15.0, 25.0), (25.0, 1e9)]
        {
            let rates: Vec<f64> = agg
                .buffer_rate_pairs
                .iter()
                .filter(|&&(b, _)| b / 1e3 >= lo && b / 1e3 < hi)
                .map(|&(_, r)| r / 1e6)
                .collect();
            if rates.is_empty() {
                continue;
            }
            let label = if hi > 1e8 { format!(">{lo:.0}") } else { format!("{lo:.0}-{hi:.0}") };
            t.row(vec![
                label,
                fnum(percentile(&rates, 0.25).unwrap_or(0.0), 2),
                fnum(percentile(&rates, 0.5).unwrap_or(0.0), 2),
                fnum(percentile(&rates, 0.75).unwrap_or(0.0), 2),
                rates.len().to_string(),
            ]);
        }
        out.push_str(&t.render());
        let buf_kb: Vec<f64> = agg.fw_buffer.iter().map(|b| b / 1e3).collect();
        out.push_str(&format!(
            "{}: median buffer {} KB, near-empty fraction {}\n\n",
            rc.label(),
            fnum(percentile(&buf_kb, 0.5).unwrap_or(0.0), 1),
            pct(agg.buffer_empty_fraction()),
        ));
    }
    out
}

/// Render Fig. 16 (a/b): throughput/freeze and MOS, FBCC vs GCC.
pub fn fig16(rows: &[(RateControlKind, Aggregate)]) -> String {
    let mut t = Table::new(
        "Fig. 16a — throughput & freeze ratio (paper: both ~3 Mbps; GCC std 57% higher; freeze FBCC 1.6% vs GCC 4.7%)",
        &["Rate control", "Mean tput (Mbps)", "Tput std (Mbps)", "Freeze ratio"],
    );
    for (rc, agg) in rows {
        t.row(vec![
            rc.label().into(),
            mbps(agg.mean_throughput_bps()),
            mbps(agg.throughput_std_bps()),
            pct(agg.freeze_ratio()),
        ]);
    }
    let mut out = t.render();
    out.push('\n');
    let mut t2 = Table::new(
        "Fig. 16b — video quality MOS PDF (paper: FBCC 69% good + 23% excellent; GCC >40% fair)",
        &["Rate control", "Bad", "Poor", "Fair", "Good", "EXC"],
    );
    for (rc, agg) in rows {
        let pdf = agg.mos().pdf();
        t2.row(vec![
            rc.label().into(),
            pct(pdf[0]),
            pct(pdf[1]),
            pct(pdf[2]),
            pct(pdf[3]),
            pct(pdf[4]),
        ]);
    }
    out.push_str(&t2.render());
    out
}

// ---------------------------------------------------------------------
// §6.2 system-level evaluation (Fig. 17)
// ---------------------------------------------------------------------

/// Which §6.2 sweep to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig17Axis {
    /// Fig. 17a/b: background load.
    Load,
    /// Fig. 17c/d: signal strength.
    Signal,
    /// Fig. 17e/f: mobility.
    Speed,
}

/// Run one Fig. 17 sweep of the full POI360 system (adaptive compression +
/// FBCC).
pub fn fig17_bench(exp: &ExpConfig, axis: Fig17Axis) -> Vec<(String, Aggregate)> {
    let scenarios: Vec<Scenario> = match axis {
        Fig17Axis::Load => Scenario::load_sweep().to_vec(),
        Fig17Axis::Signal => Scenario::signal_sweep().to_vec(),
        Fig17Axis::Speed => Scenario::mobility_sweep().to_vec(),
    };
    scenarios
        .into_iter()
        .map(|scenario| {
            let label = scenario.label();
            let agg = run_sessions(exp, &label, |user, seed| SessionConfig {
                scheme: CompressionScheme::Poi360,
                rate_control: RateControlKind::Fbcc,
                network: NetworkKind::Cellular(scenario),
                ..session_base(exp, user, seed)
            });
            (label, agg)
        })
        .collect()
}

/// Render one Fig. 17 panel pair.
pub fn fig17(exp: &ExpConfig, axis: Fig17Axis) -> String {
    let rows = fig17_bench(exp, axis);
    let (title, expect) = match axis {
        Fig17Axis::Load => (
            "Fig. 17a/b — background traffic load",
            "paper: idle ~1% freeze; busy ~4% freeze, -2 dB PSNR",
        ),
        Fig17Axis::Signal => (
            "Fig. 17c/d — signal strength",
            "paper: freeze <3% everywhere; weak signal loses quality (no excellent frames)",
        ),
        Fig17Axis::Speed => (
            "Fig. 17e/f — mobility",
            "paper: 15 mph ~static; 7% freeze at 30 mph, 9% at 50 mph; quality stays good/exc",
        ),
    };
    let mut t = Table::new(
        format!("{title} ({expect})"),
        &["Condition", "PSNR (dB)", "Freeze", "Bad", "Poor", "Fair", "Good", "EXC"],
    );
    for (label, agg) in &rows {
        let pdf = agg.mos().pdf();
        t.row(vec![
            label.clone(),
            fnum(agg.mean_psnr_db(), 1),
            pct(agg.freeze_ratio()),
            pct(pdf[0]),
            pct(pdf[1]),
            pct(pdf[2]),
            pct(pdf[3]),
            pct(pdf[4]),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Ablation (beyond the paper's figures, motivated by §8): ROI prediction
// ---------------------------------------------------------------------

/// §8 ablation: tile-level hit rate of the linear ROI predictor vs.
/// horizon, per user archetype — quantifies "the head position after
/// 120 ms is unpredictable".
pub fn roi_prediction_ablation() -> String {
    use poi360_video::frame::TileGrid;
    use poi360_viewport::motion::{HeadMotion, MotionConfig};
    use poi360_viewport::predictor::LinearPredictor;

    let grid = TileGrid::POI360;
    let horizons_ms = [40u64, 80, 120, 240, 460, 900];
    let mut t = Table::new(
        "Ablation (§8) — linear ROI prediction hit rate vs horizon (paper: unpredictable beyond ~120 ms)",
        &["User", "40ms", "80ms", "120ms", "240ms", "460ms", "900ms"],
    );
    for (k, archetype) in UserArchetype::all().iter().enumerate() {
        let dt = poi360_sim::SimDuration::from_millis(10);
        let mut user = HeadMotion::new(*archetype, MotionConfig::default(), 77 + k as u64);
        let mut pred = LinearPredictor::default();
        let total = 20_000usize;
        let mut rois = Vec::with_capacity(total);
        let mut preds: Vec<Vec<Option<poi360_video::roi::Roi>>> =
            vec![Vec::with_capacity(total); horizons_ms.len()];
        for _ in 0..total {
            user.step(dt);
            pred.observe(user.yaw(), user.pitch(), dt.as_secs_f64());
            rois.push(user.roi(&grid));
            for (h, &ms) in horizons_ms.iter().enumerate() {
                preds[h].push(pred.predict_roi(&grid, ms as f64 / 1e3));
            }
        }
        let mut cells = vec![archetype.label().to_string()];
        for (h, &ms) in horizons_ms.iter().enumerate() {
            let steps = (ms / 10) as usize;
            let mut hit = 0usize;
            let mut n = 0usize;
            for i in 0..total - steps {
                if let Some(p) = &preds[h][i] {
                    n += 1;
                    if p.center == rois[i + steps].center {
                        hit += 1;
                    }
                }
            }
            cells.push(pct(hit as f64 / n.max(1) as f64));
        }
        t.row(cells);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Ablation: fixed modes vs adaptive selection (the §4.2 design choice)
// ---------------------------------------------------------------------

/// Pin POI360 to each of its eight modes and compare against the adaptive
/// selector on the cellular baseline — the ablation justifying adaptive
/// mode switching: no single fixed mode wins on both quality and delay.
pub fn mode_ablation(exp: &ExpConfig) -> String {
    let mut rows: Vec<(CompressionScheme, Aggregate)> = Vec::new();
    for k in [1u8, 3, 5, 8] {
        let scheme = CompressionScheme::FixedMode(k);
        rows.push((
            scheme,
            run_sessions(exp, scheme.label(), |user, seed| SessionConfig {
                scheme,
                rate_control: RateControlKind::Fbcc,
                network: NetworkKind::Cellular(Scenario::baseline()),
                ..session_base(exp, user, seed)
            }),
        ));
    }
    rows.push((
        CompressionScheme::Poi360,
        run_sessions(exp, "adaptive", |user, seed| SessionConfig {
            scheme: CompressionScheme::Poi360,
            rate_control: RateControlKind::Fbcc,
            network: NetworkKind::Cellular(Scenario::baseline()),
            ..session_base(exp, user, seed)
        }),
    ));
    let mut t = Table::new(
        "Ablation (§4.2) — fixed compression modes vs adaptive selection",
        &["Mode", "PSNR (dB)", "PSNR std", "Freeze", "Level std"],
    );
    for (scheme, agg) in &rows {
        t.row(vec![
            scheme.label().into(),
            fnum(agg.mean_psnr_db(), 1),
            fnum(agg.psnr_std_db(), 1),
            pct(agg.freeze_ratio()),
            fnum(agg.mean_level_std(), 2),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Ablation: §8 extensions — predictive compression and edge relaying
// ---------------------------------------------------------------------

/// POI360 vs POI360+linear-ROI-prediction per user archetype: measures the
/// §8 claim that prediction only helps extrapolable motion.
pub fn prediction_policy_ablation(exp: &ExpConfig) -> String {
    let mut t = Table::new(
        "Ablation (§8) — sender-side ROI prediction per user archetype",
        &["User", "POI360 PSNR", "POI360+pred PSNR", "POI360 M (ms)", "+pred M (ms)"],
    );
    for (k, user) in UserArchetype::all().iter().enumerate() {
        let mut vals = Vec::new();
        for scheme in [CompressionScheme::Poi360, CompressionScheme::Poi360Predictive] {
            let mut agg = Aggregate::new(scheme.label());
            for rep in 0..exp.repeats {
                let seed = crate::runner::session_seed(exp.base_seed, k, rep);
                let cfg = SessionConfig {
                    scheme,
                    rate_control: RateControlKind::Fbcc,
                    network: NetworkKind::Cellular(Scenario::baseline()),
                    ..session_base(exp, *user, seed)
                };
                agg.add(&poi360_core::session::Session::new(cfg).run());
            }
            vals.push(agg);
        }
        t.row(vec![
            user.label().into(),
            fnum(vals[0].mean_psnr_db(), 1),
            fnum(vals[1].mean_psnr_db(), 1),
            fnum(poi360_metrics::dist::Summary::of(&vals[0].mismatch_ms).mean, 0),
            fnum(poi360_metrics::dist::Summary::of(&vals[1].mismatch_ms).mean, 0),
        ]);
    }
    t.render()
}

/// Standard cellular path vs mobile-edge relaying (§8's "improving the ROI
/// update responsiveness"): the shortened path should cut the mismatch
/// time M and let the adaptive selector run more aggressive modes.
pub fn edge_relay_ablation(exp: &ExpConfig) -> String {
    let mut t = Table::new(
        "Ablation (§8) — mobile-edge relaying vs Internet path",
        &["Path", "PSNR (dB)", "Median delay (ms)", "Freeze", "Mean M (ms)"],
    );
    for (label, network) in [
        ("internet", NetworkKind::Cellular(Scenario::baseline())),
        ("edge-relay", NetworkKind::CellularEdge(Scenario::baseline())),
    ] {
        let agg = run_sessions(exp, label, |user, seed| SessionConfig {
            scheme: CompressionScheme::Poi360,
            rate_control: RateControlKind::Fbcc,
            network,
            ..session_base(exp, user, seed)
        });
        t.row(vec![
            label.into(),
            fnum(agg.mean_psnr_db(), 1),
            fnum(agg.median_delay_ms(), 0),
            pct(agg.freeze_ratio()),
            fnum(poi360_metrics::dist::Summary::of(&agg.mismatch_ms).mean, 0),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Coexist — N telephony sessions sharing one eNodeB cell (beyond the
// paper: its §3.3 multi-user mechanism run with every UE under control)
// ---------------------------------------------------------------------

fn coexist_flow(rate_control: RateControlKind, idx: usize) -> FlowSpec {
    let users = UserArchetype::all();
    FlowSpec { scheme: CompressionScheme::Poi360, rate_control, user: users[idx % users.len()] }
}

/// The cell compositions the coexist experiment compares.
pub fn coexist_mixes() -> Vec<(&'static str, Vec<FlowSpec>)> {
    let fbcc = |i| coexist_flow(RateControlKind::Fbcc, i);
    let gcc = |i| coexist_flow(RateControlKind::Gcc, i);
    vec![
        ("FBCC x4", (0..4).map(fbcc).collect()),
        ("GCC x4", (0..4).map(gcc).collect()),
        ("mixed 2+2", vec![fbcc(0), fbcc(1), gcc(2), gcc(3)]),
    ]
}

/// Deterministic per-ensemble seed from base seed, mix, and repeat.
fn coexist_seed(base: u64, mix_idx: usize, repeat: u64) -> u64 {
    base ^ ((mix_idx as u64 + 1) << 32) ^ repeat.wrapping_mul(0x9E37_79B9)
}

/// The `exp.repeats` ensemble configs for one mix (seeds depend only on
/// `mix_idx` and the repeat, so batching mixes together cannot move them).
fn coexist_configs(
    exp: &ExpConfig,
    mix_idx: usize,
    flows: Vec<FlowSpec>,
    background_ues: usize,
) -> Vec<MultiCellConfig> {
    (0..exp.repeats)
        .map(|rep| MultiCellConfig {
            flows: flows.clone(),
            background_ues,
            duration: exp.duration(),
            seed: coexist_seed(exp.base_seed, mix_idx, rep),
            ..Default::default()
        })
        .collect()
}

/// Run `exp.repeats` shared-cell ensembles of the given flows over the
/// given background population.
pub fn coexist_bench(
    exp: &ExpConfig,
    mix_idx: usize,
    flows: Vec<FlowSpec>,
    background_ues: usize,
) -> Vec<MultiCellReport> {
    run_multicells(coexist_configs(exp, mix_idx, flows, background_ues))
}

/// Pool the i-th flow across repeats.
fn pool_flow(reports: &[MultiCellReport], i: usize) -> Aggregate {
    let mut agg = Aggregate::new("flow");
    for r in reports {
        agg.add(&r.flows[i]);
    }
    agg
}

fn mean<'a>(
    xs: impl Iterator<Item = &'a MultiCellReport>,
    f: impl Fn(&MultiCellReport) -> f64,
) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for x in xs {
        sum += f(x);
        n += 1;
    }
    sum / n.max(1) as f64
}

/// Render the coexistence experiment: per-flow outcomes and fairness for
/// FBCC-only / GCC-only / mixed cells, an FBCC-only cell-size sweep, and
/// the emergent-vs-scalar load validation.
pub fn coexist(exp: &ExpConfig) -> String {
    let bg_typical = background_population_for(BackgroundLoad::Typical);

    // Batch every mix AND every sweep size into one fan-out: the worker
    // pool sees (mixes + sizes) x repeats jobs at once instead of
    // `repeats` at a time, so wall-clock tracks the slowest job rather
    // than the slowest serial group. Seeds depend only on (mix_idx,
    // repeat), so the reports are byte-identical to per-group runs; the
    // flat result vector is sliced back into groups of `repeats`.
    let mixes = coexist_mixes();
    let sweep_sizes = [2usize, 4, 8];
    let mut configs = Vec::new();
    for (mix_idx, (_, flows)) in mixes.iter().enumerate() {
        configs.extend(coexist_configs(exp, mix_idx, flows.clone(), bg_typical));
    }
    for (k, n) in sweep_sizes.into_iter().enumerate() {
        let flows: Vec<FlowSpec> = (0..n).map(|i| coexist_flow(RateControlKind::Fbcc, i)).collect();
        configs.extend(coexist_configs(exp, 10 + k, flows, bg_typical));
    }
    let all = run_multicells(configs);
    let repeats = exp.repeats.max(1) as usize;
    let mut groups = all.chunks(repeats);

    let mut flows_t = Table::new(
        "Coexist — per-flow outcomes, 4 sessions sharing one cell (typical background population)",
        &["Cell", "Flow", "Tput", "Delay (ms)", "PSNR (dB)", "Freeze"],
    );
    let mut fair_t = Table::new(
        "Coexist — fairness and cell utilization",
        &["Cell", "Jain(tput)", "PRB utilization"],
    );
    for (label, flows) in &mixes {
        let reports = groups.next().expect("one group per mix");
        for (i, flow) in flows.iter().enumerate() {
            let agg = pool_flow(reports, i);
            flows_t.row(vec![
                label.to_string(),
                format!("{i} {}", flow.rate_control.label()),
                mbps(agg.mean_throughput_bps()),
                fnum(agg.median_delay_ms(), 0),
                fnum(agg.mean_psnr_db(), 1),
                pct(agg.freeze_ratio()),
            ]);
        }
        fair_t.row(vec![
            label.to_string(),
            fnum(mean(reports.iter(), MultiCellReport::jain_throughput), 3),
            pct(mean(reports.iter(), |r| r.mean_utilization)),
        ]);
    }

    let mut sweep_t = Table::new(
        "Coexist — FBCC-only cell size sweep (per-flow fair share shrinks, fairness holds)",
        &["N flows", "Per-flow tput", "Jain(tput)", "PRB utilization"],
    );
    for n in sweep_sizes {
        let reports = groups.next().expect("one group per sweep size");
        let mut agg = Aggregate::new("sweep");
        for r in reports {
            for f in &r.flows {
                agg.add(f);
            }
        }
        sweep_t.row(vec![
            n.to_string(),
            mbps(agg.mean_throughput_bps()),
            fnum(mean(reports.iter(), MultiCellReport::jain_throughput), 3),
            pct(mean(reports.iter(), |r| r.mean_utilization)),
        ]);
    }

    let mut out = flows_t.render();
    out.push('\n');
    out.push_str(&fair_t.render());
    out.push('\n');
    out.push_str(&sweep_t.render());
    out.push('\n');
    out.push_str(&coexist_validation(exp));
    out
}

/// Emergent-vs-scalar load validation: one POI360+FBCC session on a cell
/// whose load comes from real background queues must reproduce the same
/// Fig. 17a/b shape (busy clearly worse than idle) as the standalone
/// uplink's calibrated `LoadConfig` scalars.
pub fn coexist_validation(exp: &ExpConfig) -> String {
    let loads = [
        (BackgroundLoad::Idle, Scenario::quiet()),
        (BackgroundLoad::Busy, Scenario::load_sweep()[1]),
    ];
    // Both loads' emergent ensembles go through one fan-out, and both
    // loads' scalar control sessions through another (the old per-load
    // serial loop left the pool idle); seeds depend only on (load,
    // repeat), so outputs match the serial order exactly.
    let mut configs = Vec::new();
    for (load, _) in loads {
        configs.extend(coexist_configs(
            exp,
            20 + load as usize,
            vec![coexist_flow(RateControlKind::Fbcc, 0)],
            background_population_for(load),
        ));
    }
    let emergent = run_multicells(configs);
    let mut session_cfgs = Vec::new();
    for (load, scenario) in loads {
        for rep in 0..exp.repeats {
            session_cfgs.push(SessionConfig {
                scheme: CompressionScheme::Poi360,
                rate_control: RateControlKind::Fbcc,
                network: NetworkKind::Cellular(scenario),
                user: UserArchetype::all()[0],
                duration: exp.duration(),
                seed: coexist_seed(exp.base_seed, 30 + load as usize, rep),
                ..Default::default()
            });
        }
    }
    let scalar = run_parallel(session_cfgs);

    let mut t = Table::new(
        "Coexist — emergent background load vs calibrated scalar (Fig. 17a/b shape)",
        &["Load", "Model", "PSNR (dB)", "Freeze", "Delay (ms)"],
    );
    let repeats = exp.repeats.max(1) as usize;
    for (k, (load, _)) in loads.iter().enumerate() {
        let label = match load {
            BackgroundLoad::Idle => "idle",
            BackgroundLoad::Typical => "typical",
            BackgroundLoad::Busy => "busy",
        };
        // Emergent: a populated shared cell.
        let agg = pool_flow(&emergent[k * repeats..(k + 1) * repeats], 0);
        t.row(vec![
            label.to_string(),
            "emergent cell".into(),
            fnum(agg.mean_psnr_db(), 1),
            pct(agg.freeze_ratio()),
            fnum(agg.median_delay_ms(), 0),
        ]);
        // Scalar: the standalone uplink's calibrated LoadConfig.
        let mut agg = Aggregate::new("scalar");
        for report in &scalar[k * repeats..(k + 1) * repeats] {
            agg.add(report);
        }
        t.row(vec![
            label.to_string(),
            "scalar LoadConfig".into(),
            fnum(agg.mean_psnr_db(), 1),
            pct(agg.freeze_ratio()),
            fnum(agg.median_delay_ms(), 0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig { duration_secs: 8, repeats: 1, base_seed: 2 }
    }

    #[test]
    fn mode_ablation_renders() {
        let s = mode_ablation(&tiny());
        assert!(s.contains("F1(C=1.8)"));
        assert!(s.contains("POI360"));
    }

    #[test]
    fn edge_ablation_renders_both_paths() {
        let s = edge_relay_ablation(&tiny());
        assert!(s.contains("internet"));
        assert!(s.contains("edge-relay"));
    }

    #[test]
    fn fig5_is_monotone_then_flat() {
        let series = fig5_series(&tiny());
        assert_eq!(series.len(), 12);
        // Rising front.
        assert!(series[2].1 > series[0].1);
        assert!(series[6].1 > series[2].1);
        // Saturation: last two levels within 20%.
        let (a, b) = (series[10].1, series[11].1);
        assert!((b - a).abs() / a < 0.2, "{a} {b}");
    }

    #[test]
    fn table1_renders_and_checks() {
        let s = table1();
        assert!(s.contains("Excellent"));
        assert!(s.contains("OK"));
    }

    #[test]
    fn fig17_axes_render() {
        let exp = tiny();
        let s = fig17(&exp, Fig17Axis::Load);
        assert!(s.contains("idle"));
        assert!(s.contains("busy"));
    }

    #[test]
    fn prediction_ablation_renders_all_users() {
        let s = roi_prediction_ablation();
        for u in UserArchetype::all() {
            assert!(s.contains(u.label()), "{s}");
        }
    }

    #[test]
    fn coexist_renders_mixes_sweep_and_validation() {
        let s = coexist(&tiny());
        assert!(s.contains("FBCC x4"));
        assert!(s.contains("GCC x4"));
        assert!(s.contains("mixed 2+2"));
        assert!(s.contains("Jain"));
        assert!(s.contains("emergent cell"));
        assert!(s.contains("scalar LoadConfig"));
    }

    #[test]
    fn coexist_is_deterministic() {
        let exp = ExpConfig { duration_secs: 5, repeats: 1, base_seed: 3 };
        assert_eq!(coexist(&exp), coexist(&exp));
    }
}
