//! Shared harness for the hex-grid mobility runs.
//!
//! Both the `reproduce mobility` subcommand and the handover regression
//! tests drive the same [`MobilityScenario`] presets through the same
//! invariants, defined exactly once here: every convoy flow must hand
//! over at least once, packet conservation must hold exactly across
//! every migration (accepted == delivered + flushed + still queued, for
//! flows and load UEs alike), first-transmission video must never
//! reorder or duplicate, the delivery gap around each handover must stay
//! bounded, and the probe plane must never see an out-of-order sample.
//! A run is a pure function of its seed — interference is published one
//! subframe late and the sharded driver merges everything at fixed epoch
//! barriers — so the JSONL stream is asserted byte-identical across
//! reruns and shard/worker-pool widths.

use poi360_core::multicell::{MultiGrid, MultiGridConfig, MultiGridReport};
use poi360_lte::grid::MobilityKind;
use poi360_lte::scenario::MobilityScenario;
use poi360_sim::time::SimDuration;
use poi360_sim::trace::{JsonlSink, RunMeta, SinkHandle, TraceSink};
use std::sync::{Arc, Mutex};

/// Recommended run length for the named mobility scenarios: a 500 m
/// inter-site convoy at 20 m/s crosses its first cell boundary by
/// ~19 s, so 30 s guarantees one handover per flow with margin.
pub const MOBILITY_RUN_SECS: u64 = 30;

/// Population/geometry scale of one mobility run.
#[derive(Clone, Copy, Debug)]
pub struct MobilityScale {
    /// Run length, seconds.
    pub seconds: u64,
    /// Telephony sessions under test.
    pub flows: usize,
    /// Mobile cross-traffic UEs.
    pub load_ues: usize,
    /// Inter-site distance override (None = preset value).
    pub isd_m: Option<f64>,
    /// Speed override (None = preset value).
    pub speed_mps: Option<f64>,
}

impl MobilityScale {
    /// Full scale: the acceptance-grade 7-cell, 208-UE convoy.
    pub fn full() -> Self {
        MobilityScale {
            seconds: MOBILITY_RUN_SECS,
            flows: 8,
            load_ues: 200,
            isd_m: None,
            speed_mps: None,
        }
    }

    /// CI scale: a compressed lattice (160 m sites, 30 m/s) so every
    /// flow still crosses a boundary inside 8 simulated seconds.
    pub fn smoke() -> Self {
        MobilityScale {
            seconds: 8,
            flows: 4,
            load_ues: 28,
            isd_m: Some(160.0),
            speed_mps: Some(30.0),
        }
    }
}

/// Materialize the grid configuration for one `scenario x scale x seed`.
pub fn grid_config(ms: &MobilityScenario, scale: &MobilityScale, seed: u64) -> MultiGridConfig {
    MultiGridConfig {
        a3: ms.a3,
        rings: ms.rings,
        isd_m: scale.isd_m.unwrap_or(ms.isd_m),
        mobility: ms.kind,
        speed_mps: scale.speed_mps.unwrap_or(ms.speed_mps),
        flows: vec![Default::default(); scale.flows],
        load_ues: scale.load_ues,
        duration: SimDuration::from_secs(scale.seconds),
        seed,
        // Shard width rides the worker-pool resolution (`--threads` /
        // `POI360_THREADS`), so the same knob that fans independent jobs
        // out also shards a single grid — and the thread-invariance
        // checks below double as shard-width-invariance checks.
        shards: crate::runner::worker_threads(),
        ..Default::default()
    }
}

/// Invariant verdicts for one finished mobility run.
#[derive(Clone, Debug)]
pub struct MobilityVerdict {
    /// Flows that experienced at least one handover or RLF.
    pub flows_with_handover: usize,
    /// Every flow handed over (required only when the trajectory
    /// guarantees a boundary crossing — convoy presets).
    pub coverage_ok: bool,
    /// Exact packet conservation held for every flow and load UE.
    pub conserved: bool,
    /// No first-transmission video packet reordered or duplicated.
    pub in_order: bool,
    /// Largest delivery gap around any handover, ms.
    pub max_gap_ms: f64,
    /// Every gap stayed under the interruption bound.
    pub gaps_bounded: bool,
    /// The probe plane never dropped an out-of-order sample.
    pub probes_in_order: bool,
}

/// Largest tolerated delivery gap around a handover, ms. A clean
/// handover interrupts for ~45 ms and an RLF re-establishment for
/// ~240 ms; the bound leaves room for the rate controller to refill an
/// RLF-flushed buffer before the next departure.
pub const GAP_BOUND_MS: f64 = 2_000.0;

impl MobilityVerdict {
    /// Names of every invariant this run violated (empty = pass).
    pub fn failures(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.coverage_ok {
            out.push("handover-coverage");
        }
        if !self.conserved {
            out.push("packet-conservation");
        }
        if !self.in_order {
            out.push("video-order");
        }
        if !self.gaps_bounded {
            out.push("gap-bound");
        }
        if !self.probes_in_order {
            out.push("probe-order");
        }
        out
    }

    /// True when every invariant held.
    pub fn pass(&self) -> bool {
        self.failures().is_empty()
    }
}

/// One completed mobility run: the report plus its verdicts.
#[derive(Clone, Debug)]
pub struct MobilityOutcome {
    /// Preset name (`convoy`, `late_ho`, ...).
    pub scenario: &'static str,
    /// One-line description of the preset.
    pub what: &'static str,
    /// The full grid report.
    pub report: MultiGridReport,
    /// The invariant verdicts.
    pub verdict: MobilityVerdict,
}

/// Does this trajectory family guarantee every flow crosses a cell
/// boundary (making handover coverage a hard invariant)?
pub fn expects_full_coverage(kind: MobilityKind) -> bool {
    matches!(kind, MobilityKind::Convoy)
}

/// Judge the handover invariants of one finished run.
pub fn judge(ms: &MobilityScenario, report: &MultiGridReport) -> MobilityVerdict {
    let flows_with_handover =
        report.flow_stats.iter().filter(|f| f.handovers + f.rlfs >= 1).count();
    let coverage_ok =
        !expects_full_coverage(ms.kind) || flows_with_handover == report.flow_stats.len();
    let conserved =
        report.flow_stats.iter().all(|f| f.conserved()) && report.load_conservation_violations == 0;
    let in_order = report.flow_stats.iter().all(|f| f.seq_violations == 0);
    let max_gap_ms =
        report.flow_stats.iter().flat_map(|f| f.gap_ms.iter().copied()).fold(0.0_f64, f64::max);
    MobilityVerdict {
        flows_with_handover,
        coverage_ok,
        conserved,
        in_order,
        max_gap_ms,
        gaps_bounded: max_gap_ms <= GAP_BOUND_MS,
        probes_in_order: report.probe_drops == 0,
    }
}

/// Run one scenario at one scale and judge it. Returns the outcome plus
/// the raw JSONL probe stream — byte-identical across calls with the
/// same arguments, which is exactly what callers assert.
pub fn run_case(
    ms: &MobilityScenario,
    scale: &MobilityScale,
    seed: u64,
) -> (MobilityOutcome, Vec<u8>) {
    let sink = Arc::new(Mutex::new(JsonlSink::to_writer(Vec::new())));
    sink.lock().unwrap().stamp(&RunMeta::current(seed));
    let handle: SinkHandle = sink.clone();
    let report = MultiGrid::traced(grid_config(ms, scale, seed), handle).run();
    sink.lock().unwrap().flush();
    let Ok(sink) = Arc::try_unwrap(sink) else { panic!("all trace handles dropped") };
    let bytes = sink.into_inner().unwrap().into_inner();
    let verdict = judge(ms, &report);
    (MobilityOutcome { scenario: ms.name, what: ms.what, report, verdict }, bytes)
}

/// Everything one `reproduce mobility` invocation produces: the
/// rendered report text (the golden artifact), the failure count, and
/// the main run's JSONL probe stream.
pub struct MobilityProtocol {
    /// Rendered per-flow table + invariant/determinism lines. This text
    /// is what `tests/golden.rs` pins — it deliberately excludes file
    /// paths and anything else that varies across checkouts.
    pub text: String,
    /// Violated invariants across the whole protocol (0 = pass).
    pub failures: usize,
    /// JSONL probe stream of the main (seed) run.
    pub bytes: Vec<u8>,
}

/// The full mobility protocol for one `scenario x scale x seed`: prove
/// the probe stream byte-identical across worker-pool widths, judge the
/// invariants on a 3-seed matrix, check the seeds actually diverge, and
/// render the per-flow table. Shared verbatim by `reproduce mobility`
/// and the golden test.
pub fn run_protocol(ms: &MobilityScenario, scale: &MobilityScale, seed: u64) -> MobilityProtocol {
    use poi360_metrics::table::Table;

    // Determinism proof: the identical case pinned to one worker and to
    // several must emit byte-identical JSONL streams.
    crate::runner::set_worker_threads(1);
    let (outcome, bytes) = run_case(ms, scale, seed);
    crate::runner::set_worker_threads(4);
    let (_, wide_bytes) = run_case(ms, scale, seed);
    crate::runner::set_worker_threads(0);
    let thread_invariant = bytes == wide_bytes;

    // Seed matrix: the invariants must hold across seeds, and distinct
    // seeds must actually diverge.
    let matrix = run_matrix(ms, scale, &[seed, seed + 1, seed + 2]);
    let seeds_diverge = matrix[0].2 != matrix[1].2 && matrix[1].2 != matrix[2].2;

    let mut failures = 0;
    let r = &outcome.report;
    let mut t = Table::new(
        format!(
            "Hex-grid mobility — `{}`, {}s, {} cells, {} flows + {} loads, seed {seed}",
            ms.name,
            scale.seconds,
            r.cells,
            r.flows.len(),
            r.load_ues
        ),
        &[
            "Flow",
            "HO",
            "RLF",
            "Enq",
            "Delv",
            "Flush",
            "Queued",
            "Max gap ms",
            "PSNR pre",
            "PSNR post",
            "Conserved",
        ],
    );
    for fs in &r.flow_stats {
        let max_gap = fs.gap_ms.iter().copied().fold(0.0_f64, f64::max);
        t.row(vec![
            fs.label.clone(),
            fs.handovers.to_string(),
            fs.rlfs.to_string(),
            fs.enqueued.to_string(),
            fs.delivered.to_string(),
            fs.flushed.to_string(),
            fs.queued_at_end.to_string(),
            format!("{max_gap:.0}"),
            format!("{:.1}", fs.psnr_before_db),
            format!("{:.1}", fs.psnr_after_db),
            if fs.conserved() && fs.seq_violations == 0 { "yes".into() } else { "NO".into() },
        ]);
    }
    let mut text = t.render();
    let v = &outcome.verdict;
    text.push_str(&format!(
        "invariants: {}\n",
        if v.pass() { "pass".to_string() } else { format!("FAIL: {}", v.failures().join(",")) }
    ));
    failures += v.failures().len();
    for (mseed, mo_out, _) in &matrix {
        if !mo_out.verdict.pass() {
            text.push_str(&format!(
                "seed {mseed}: FAIL: {}\n",
                mo_out.verdict.failures().join(",")
            ));
            failures += 1;
        }
    }
    text.push_str(&format!(
        "load UEs: {} handovers, {} RLFs, {} conservation violations\n",
        r.load_handovers, r.load_rlfs, r.load_conservation_violations
    ));
    text.push_str(&format!(
        "thread invariance: {}\n",
        if thread_invariant {
            "byte-identical across worker counts"
        } else {
            "FAIL: streams differ"
        }
    ));
    if !thread_invariant {
        failures += 1;
    }
    text.push_str(&format!(
        "seed matrix: 3 seeds judged, streams {}\n",
        if seeds_diverge { "diverge as expected" } else { "FAIL: did not diverge" }
    ));
    if !seeds_diverge {
        failures += 1;
    }
    MobilityProtocol { text, failures, bytes }
}

/// Run one scenario across several seeds, fanning the independent runs
/// across the worker pool. Results come back in seed order.
pub fn run_matrix(
    ms: &MobilityScenario,
    scale: &MobilityScale,
    seeds: &[u64],
) -> Vec<(u64, MobilityOutcome, Vec<u8>)> {
    let jobs: Vec<u64> = seeds.to_vec();
    let scale = *scale;
    let ms = ms.clone();
    crate::runner::run_jobs(jobs, move |seed| {
        let (outcome, bytes) = run_case(&ms, &scale, seed);
        (seed, outcome, bytes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_convoy_passes_and_is_byte_identical() {
        let ms = MobilityScenario::by_name("convoy").expect("preset exists");
        let (a, a_bytes) = run_case(&ms, &MobilityScale::smoke(), 3);
        assert!(a.verdict.pass(), "failures: {:?}", a.verdict.failures());
        assert_eq!(a.verdict.flows_with_handover, a.report.flow_stats.len());
        let (_, b_bytes) = run_case(&ms, &MobilityScale::smoke(), 3);
        assert_eq!(a_bytes, b_bytes, "mobility reruns must be byte-identical");
    }

    #[test]
    fn matrix_is_thread_count_invariant() {
        let ms = MobilityScenario::by_name("convoy").expect("preset exists");
        let scale = MobilityScale::smoke();
        crate::runner::set_worker_threads(1);
        let serial = run_matrix(&ms, &scale, &[5, 6]);
        crate::runner::set_worker_threads(4);
        let par = run_matrix(&ms, &scale, &[5, 6]);
        crate::runner::set_worker_threads(0);
        assert_eq!(serial.len(), par.len());
        for ((s_seed, _, s_bytes), (p_seed, _, p_bytes)) in serial.iter().zip(par.iter()) {
            assert_eq!(s_seed, p_seed, "seed order preserved");
            assert_eq!(s_bytes, p_bytes, "seed {s_seed} stream moved with thread count");
        }
        assert_ne!(serial[0].2, serial[1].2, "different seeds must diverge");
    }

    #[test]
    fn late_ho_turns_handovers_into_rlfs() {
        let late = MobilityScenario::by_name("late_ho").expect("preset exists");
        let (o, _) = run_case(&late, &MobilityScale::smoke(), 3);
        let rlfs: u64 = o.report.flow_stats.iter().map(|f| f.rlfs).sum();
        let base_rlfs: u64 = {
            let ms = MobilityScenario::by_name("convoy").expect("preset exists");
            let (b, _) = run_case(&ms, &MobilityScale::smoke(), 3);
            b.report.flow_stats.iter().map(|f| f.rlfs).sum()
        };
        assert!(
            rlfs > base_rlfs,
            "conservative A3 must cause more RLFs (late {rlfs} vs base {base_rlfs})"
        );
        assert!(o.verdict.conserved, "RLF flushes still conserve packets exactly");
    }
}
