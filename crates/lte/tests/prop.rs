//! Property-based tests for the LTE substrate.

use poi360_lte::buffer::{FirmwareBuffer, PacketLike};
use poi360_lte::scheduler::{PfScheduler, SchedulerConfig};
use poi360_lte::tbs;
use poi360_lte::uplink::{CellUplink, UplinkConfig};
use poi360_sim::time::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Pkt(u32);
impl PacketLike for Pkt {
    fn wire_bytes(&self) -> u32 {
        self.0
    }
}

proptest! {
    /// Firmware buffer conserves bytes: level + served == accepted, and
    /// serving never fabricates packets.
    #[test]
    fn buffer_conserves_bytes(
        sizes in prop::collection::vec(1u32..5_000, 1..100),
        serves in prop::collection::vec(0u32..10_000, 1..100),
    ) {
        let mut buf = FirmwareBuffer::new(u64::MAX >> 1);
        let mut accepted_bytes = 0u64;
        let mut accepted_count = 0u64;
        for &s in &sizes {
            if buf.enqueue(Pkt(s), SimTime::ZERO) {
                accepted_bytes += s as u64;
                accepted_count += 1;
            }
        }
        let mut served_pkts = 0u64;
        for &s in &serves {
            served_pkts += buf.serve(s).len() as u64;
        }
        prop_assert_eq!(buf.level_bytes() + buf.total_served_bytes(), accepted_bytes);
        prop_assert!(served_pkts <= accepted_count);
    }

    /// Capacity-limited buffer never exceeds its capacity and reports every
    /// rejection.
    #[test]
    fn buffer_respects_capacity(sizes in prop::collection::vec(1u32..5_000, 1..200)) {
        let cap = 20_000u64;
        let mut buf = FirmwareBuffer::new(cap);
        let mut rejected = 0;
        for &s in &sizes {
            if !buf.enqueue(Pkt(s), SimTime::ZERO) {
                rejected += 1;
            }
            prop_assert!(buf.level_bytes() <= cap);
        }
        prop_assert_eq!(buf.dropped(), rejected);
    }

    /// Grants never exceed the physically possible TBS for the share cap,
    /// nor meaningfully exceed the reported backlog.
    #[test]
    fn grants_physically_bounded(backlog in 0u64..200_000, cqi in 0u8..16, load in 0f64..1.0, seed in any::<u64>()) {
        let cfg = SchedulerConfig::default();
        let mut s = PfScheduler::new(cfg, seed);
        let g = s.grant_bits(backlog, cqi, load);
        let ceiling = tbs::tbs_bits(cqi, cfg.max_prbs);
        prop_assert!(g <= ceiling, "grant {g} > ceiling {ceiling}");
        prop_assert!(g as u64 <= backlog * 8 + 256);
    }

    /// The uplink never loses packets silently: departures + buffered +
    /// drops account for every enqueue.
    #[test]
    fn uplink_accounts_for_every_packet(
        seed in any::<u64>(),
        offered in prop::collection::vec(100u32..2_000, 1..60),
    ) {
        let mut ul = CellUplink::new(UplinkConfig::default(), seed);
        let mut now = SimTime::ZERO;
        let mut accepted = 0u64;
        for &bytes in &offered {
            if ul.enqueue(Pkt(bytes), now) {
                accepted += 1;
            }
        }
        let mut departed = 0u64;
        for _ in 0..5_000 {
            departed += ul.subframe(now).departed.len() as u64;
            now = now + poi360_sim::SUBFRAME;
        }
        // 5 s of subframes drains any realistic backlog from this offer.
        prop_assert_eq!(departed, accepted);
        prop_assert_eq!(ul.buffer_level(), 0);
    }

    /// TBS reported per subframe is consistent with served bytes.
    #[test]
    fn tbs_consistent_with_service(seed in any::<u64>()) {
        let mut ul = CellUplink::new(UplinkConfig::default(), seed);
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            while ul.buffer_level() < 20_000 {
                ul.enqueue(Pkt(1_200), now);
            }
            let out = ul.subframe(now);
            // Served bits cannot exceed the TBS grant plus one packet of
            // segmentation slack.
            let served_bits: u64 = out.departed.iter().map(|(p, _)| p.wire_bytes() as u64 * 8).sum();
            prop_assert!(served_bits <= out.tbs_bits as u64 + 1_200 * 8);
            now = now + poi360_sim::SUBFRAME;
        }
    }
}
