//! Property-based tests for the LTE substrate, on the in-repo
//! `poi360_testkit` harness (64+ seeded cases per property).

use poi360_lte::buffer::{FirmwareBuffer, PacketLike};
use poi360_lte::scheduler::{PfScheduler, SchedulerConfig};
use poi360_lte::tbs;
use poi360_lte::uplink::{CellUplink, UplinkConfig};
use poi360_sim::time::SimTime;
use poi360_testkit::{prop_assert, prop_assert_eq, prop_check};

#[derive(Debug, Clone, Copy)]
struct Pkt(u32);
impl PacketLike for Pkt {
    fn wire_bytes(&self) -> u32 {
        self.0
    }
}

/// Firmware buffer conserves bytes: level + served == accepted, and
/// serving never fabricates packets.
#[test]
fn buffer_conserves_bytes() {
    prop_check!(64, |g| {
        let sizes = g.vec_u32(1, 100, 1, 4_999);
        let serves = g.vec_u32(1, 100, 0, 9_999);
        let mut buf = FirmwareBuffer::new(u64::MAX >> 1);
        let mut accepted_bytes = 0u64;
        let mut accepted_count = 0u64;
        for &s in &sizes {
            if buf.enqueue(Pkt(s), SimTime::ZERO) {
                accepted_bytes += s as u64;
                accepted_count += 1;
            }
        }
        let mut served_pkts = 0u64;
        for &s in &serves {
            served_pkts += buf.serve(s).len() as u64;
        }
        prop_assert_eq!(buf.level_bytes() + buf.total_served_bytes(), accepted_bytes);
        prop_assert!(served_pkts <= accepted_count);
        Ok(())
    });
}

/// Capacity-limited buffer never exceeds its capacity and reports every
/// rejection.
#[test]
fn buffer_respects_capacity() {
    prop_check!(64, |g| {
        let sizes = g.vec_u32(1, 200, 1, 4_999);
        let cap = 20_000u64;
        let mut buf = FirmwareBuffer::new(cap);
        let mut rejected = 0;
        for &s in &sizes {
            if !buf.enqueue(Pkt(s), SimTime::ZERO) {
                rejected += 1;
            }
            prop_assert!(buf.level_bytes() <= cap);
        }
        prop_assert_eq!(buf.dropped(), rejected);
        Ok(())
    });
}

/// Grants never exceed the physically possible TBS for the share cap,
/// nor meaningfully exceed the reported backlog.
#[test]
fn grants_physically_bounded() {
    prop_check!(128, |g| {
        let backlog = g.u64_in(0, 199_999);
        let cqi = g.u8_in(0, 15);
        let load = g.f64_in(0.0, 1.0);
        let seed = g.any_u64();
        let cfg = SchedulerConfig::default();
        let mut s = PfScheduler::new(cfg, seed);
        let grant = s.grant_bits(backlog, cqi, load);
        let ceiling = tbs::tbs_bits(cqi, cfg.max_prbs);
        prop_assert!(grant <= ceiling, "grant {grant} > ceiling {ceiling}");
        prop_assert!(grant as u64 <= backlog * 8 + 256);
        Ok(())
    });
}

/// The uplink never loses packets silently: departures + buffered +
/// drops account for every enqueue.
#[test]
fn uplink_accounts_for_every_packet() {
    prop_check!(64, |g| {
        let seed = g.any_u64();
        let offered = g.vec_u32(1, 60, 100, 1_999);
        let mut ul = CellUplink::new(UplinkConfig::default(), seed);
        let mut now = SimTime::ZERO;
        let mut accepted = 0u64;
        for &bytes in &offered {
            if ul.enqueue(Pkt(bytes), now) {
                accepted += 1;
            }
        }
        let mut departed = 0u64;
        for _ in 0..5_000 {
            departed += ul.subframe(now).departed.len() as u64;
            now += poi360_sim::SUBFRAME;
        }
        // 5 s of subframes drains any realistic backlog from this offer.
        prop_assert_eq!(departed, accepted);
        prop_assert_eq!(ul.buffer_level(), 0);
        Ok(())
    });
}

/// TBS reported per subframe is consistent with served bytes.
#[test]
fn tbs_consistent_with_service() {
    prop_check!(64, |g| {
        let mut ul = CellUplink::new(UplinkConfig::default(), g.any_u64());
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            while ul.buffer_level() < 20_000 {
                ul.enqueue(Pkt(1_200), now);
            }
            let out = ul.subframe(now);
            // Served bits cannot exceed the TBS grant plus one packet of
            // segmentation slack.
            let served_bits: u64 =
                out.departed.iter().map(|(p, _)| p.wire_bytes() as u64 * 8).sum();
            prop_assert!(served_bits <= out.tbs_bits as u64 + 1_200 * 8);
            now += poi360_sim::SUBFRAME;
        }
        Ok(())
    });
}
