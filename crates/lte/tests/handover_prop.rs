//! Property-based tests for the hex grid and the A3 handover state
//! machine, on the in-repo `poi360_testkit` harness.

use poi360_lte::grid::{A3Config, A3State, CellId, HexGrid, HoDecision, RadioConfig};
use poi360_sim::time::{SimDuration, SimTime};
use poi360_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Under a monotone RSRP crossing — serving falling, one neighbor rising
/// — the A3 machine executes at most one handover and never hands back
/// (no ping-pong): after the roles swap, the new serving link only gets
/// stronger.
#[test]
fn no_ping_pong_under_monotone_crossing() {
    prop_check!(64, |g| {
        let cfg = A3Config {
            hysteresis_db: g.f64_in(0.5, 6.0),
            time_to_trigger: SimDuration::from_millis(g.u64_in(40, 640)),
            ..A3Config::default()
        };
        // Serving starts above the neighbor and the curves cross once.
        let s0 = g.f64_in(-70.0, -60.0);
        let n0 = s0 - g.f64_in(3.0, 15.0);
        let fall = g.f64_in(0.5, 4.0) / 1_000.0; // dB per ms
        let rise = g.f64_in(0.5, 4.0) / 1_000.0;
        let mut st = A3State::default();
        let mut serving = CellId(0);
        let mut handovers = 0u64;
        // Worst case: a 15 dB gap closing at 1 dB/s crosses at 15 s,
        // then needs up to 6 more seconds to clear hysteresis, plus TTT.
        for ms in 0..25_000u64 {
            let t = ms as f64;
            let (cell0, cell1) = (s0 - fall * t, n0 + rise * t);
            let (s_rsrp, n_rsrp, other) = if serving == CellId(0) {
                (cell0, cell1, CellId(1))
            } else {
                (cell1, cell0, CellId(0))
            };
            // Keep the link in sync so RLF never preempts A3.
            match st.decide(&cfg, SimTime::from_millis(ms), s_rsrp, 20.0, Some((other, n_rsrp))) {
                HoDecision::Stay => {}
                HoDecision::Handover(t) => {
                    handovers += 1;
                    serving = t;
                    st.reset();
                }
                HoDecision::Rlf(_) => {
                    return Err(poi360_testkit::CaseError::fail("unexpected RLF"))
                }
            }
        }
        prop_assert!(handovers <= 1, "monotone crossing produced {handovers} handovers");
        // The crossing is steep and sustained, so the handover must
        // actually have happened.
        prop_assert_eq!(handovers, 1);
        prop_assert_eq!(serving, CellId(1));
        Ok(())
    });
}

/// Driving a straight line across the lattice with pure geometric path
/// loss (no shadowing), the number of handovers + RLFs is bounded by the
/// number of Voronoi boundary crossings along the trajectory.
#[test]
fn handover_count_bounded_by_boundary_crossings() {
    prop_check!(48, |g| {
        let grid = HexGrid::new(g.usize_in(1, 2), g.f64_in(150.0, 600.0));
        let radio = RadioConfig::default();
        let cfg = A3Config::default();
        let extent = grid.extent_m();
        // A chord through the lattice at a random angle and offset.
        let angle = g.f64_in(0.0, std::f64::consts::TAU);
        let (dx, dy) = (angle.cos(), angle.sin());
        let (mut x, mut y) = (
            -extent * dx - dy * g.f64_in(-0.4, 0.4) * extent,
            -extent * dy + dx * g.f64_in(-0.4, 0.4) * extent,
        );
        let speed = g.f64_in(10.0, 40.0) / 1_000.0; // m per ms
        let steps = g.u64_in(5_000, 30_000);

        let mut serving = grid.serving_cell(x, y);
        let mut nearest = serving;
        let mut crossings = 0u64;
        let mut events = 0u64;
        let mut st = A3State::default();
        for ms in 0..steps {
            x += dx * speed;
            y += dy * speed;
            let now_nearest = grid.serving_cell(x, y);
            if now_nearest != nearest {
                crossings += 1;
                nearest = now_nearest;
            }
            // Geometric RSRP only: best neighbor by mean path loss.
            let s_rsrp = radio.mean_rsrp_dbm(grid.distance_m(serving, x, y));
            let best = grid
                .neighbors(serving)
                .map(|c| (c, radio.mean_rsrp_dbm(grid.distance_m(c, x, y))))
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0 .0.cmp(&a.0 .0)));
            match st.decide(&cfg, SimTime::from_millis(ms), s_rsrp, 20.0, best) {
                HoDecision::Stay => {}
                HoDecision::Handover(t) | HoDecision::Rlf(t) => {
                    events += 1;
                    serving = t;
                    st.reset();
                }
            }
        }
        prop_assert!(
            events <= crossings,
            "{events} handovers but only {crossings} boundary crossings"
        );
        Ok(())
    });
}

/// Hex neighborhoods are symmetric: whenever `n` is a lattice neighbor
/// of `c`, `c` is a lattice neighbor of `n` — and no cell neighbors
/// itself or appears twice.
#[test]
fn neighbor_symmetry() {
    prop_check!(64, |g| {
        let grid = HexGrid::new(g.usize_in(1, 4), g.f64_in(50.0, 1_000.0));
        for c in (0..grid.len()).map(CellId) {
            let ns: Vec<CellId> = grid.neighbors(c).collect();
            prop_assert!(!ns.is_empty() && ns.len() <= 6, "cell {c:?} has {} neighbors", ns.len());
            let unique: std::collections::HashSet<_> = ns.iter().map(|n| n.0).collect();
            prop_assert_eq!(unique.len(), ns.len());
            for n in ns {
                prop_assert!(n != c, "{c:?} neighbors itself");
                prop_assert!(
                    grid.neighbors(n).any(|b| b == c),
                    "{c:?} -> {n:?} but not {n:?} -> {c:?}"
                );
            }
        }
        Ok(())
    });
}

/// Cell lookup round-trips: the serving cell at a cell's own center is
/// that cell, and for arbitrary points the lookup agrees with a brute
/// force nearest-center scan.
#[test]
fn cell_lookup_round_trip() {
    prop_check!(64, |g| {
        let grid = HexGrid::new(g.usize_in(1, 3), g.f64_in(100.0, 800.0));
        for c in (0..grid.len()).map(CellId) {
            let (x, y) = grid.center_of(c);
            prop_assert_eq!(grid.serving_cell(x, y), c);
        }
        // Random points inside and well outside the lattice.
        let extent = grid.extent_m();
        for _ in 0..32 {
            let x = g.f64_in(-2.0 * extent, 2.0 * extent);
            let y = g.f64_in(-2.0 * extent, 2.0 * extent);
            let got = grid.serving_cell(x, y);
            let best = (0..grid.len())
                .map(CellId)
                .min_by(|&a, &b| {
                    grid.distance_m(a, x, y)
                        .total_cmp(&grid.distance_m(b, x, y))
                        .then(a.0.cmp(&b.0))
                })
                .expect("non-empty grid");
            let (dg, db) = (grid.distance_m(got, x, y), grid.distance_m(best, x, y));
            // Ties on hex edges may resolve either way; distances must match.
            prop_assert!(
                (dg - db).abs() < 1e-9,
                "lookup {got:?} at {dg} vs nearest {best:?} at {db}"
            );
        }
        Ok(())
    });
}
