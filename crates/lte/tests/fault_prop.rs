//! Property-based tests for fault-plan composition and the access-network
//! injection seams, on the in-repo `poi360_testkit` shrinking harness.
//!
//! Pinned properties: overlapping fault windows compose deterministically
//! (push order never matters), composed values can never leave their
//! physical ranges however wild the input parameters, plan slicing is a
//! partition, time scaling is exact per event, and a `CellUplink` driven
//! by an arbitrary fault plan never produces a negative buffer level,
//! a grant above the physical TBS ceiling, or service during an outage.

use poi360_lte::buffer::PacketLike;
use poi360_lte::tbs;
use poi360_lte::uplink::{CellUplink, UplinkConfig};
use poi360_sim::fault::{FaultKind, FaultPlan};
use poi360_sim::time::{SimDuration, SimTime};
use poi360_testkit::prop::Gen;
use poi360_testkit::{prop_assert, prop_assert_eq, prop_check};

#[derive(Debug, Clone, Copy)]
struct Pkt(u32);
impl PacketLike for Pkt {
    fn wire_bytes(&self) -> u32 {
        self.0
    }
}

/// Draw one fault kind with parameters deliberately allowed to stray out
/// of range — `FaultPlan::push` must clamp them.
fn any_kind(g: &mut Gen) -> FaultKind {
    match g.index(6) {
        0 => FaultKind::RadioLinkFailure,
        1 => FaultKind::DiagStall,
        2 => FaultKind::GrantStarvation { factor: g.f64_in(-0.5, 1.5) },
        3 => FaultKind::FeedbackLoss { loss: g.f64_in(-0.5, 1.5) },
        4 => FaultKind::WirelineSpike {
            extra_delay: SimDuration::from_millis(g.u64_in(0, 400)),
            extra_loss: g.f64_in(-0.5, 1.5),
        },
        _ => FaultKind::FlashCrowd { extra_load: g.f64_in(-0.5, 2.0) },
    }
}

/// Draw a plan of 1..=8 windows with strictly increasing starts (distinct
/// sort keys make event order unique, so plan equality is well-defined).
fn any_plan(g: &mut Gen) -> Vec<(FaultKind, SimTime, SimDuration)> {
    let n = g.usize_in(1, 8);
    let mut start_ms = 0u64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        start_ms += 1 + g.u64_in(0, 2_000);
        out.push((
            any_kind(g),
            SimTime::from_millis(start_ms),
            SimDuration::from_millis(g.u64_in(0, 3_000)),
        ));
    }
    out
}

fn build(windows: &[(FaultKind, SimTime, SimDuration)]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(kind, start, dur) in windows {
        plan.push(kind, start, dur);
    }
    plan
}

/// However overlapping the windows and however wild the parameters, the
/// folded `ActiveFaults` stays inside its physical ranges at every instant.
#[test]
fn composition_never_leaves_physical_range() {
    prop_check!(128, |g| {
        let plan = build(&any_plan(g));
        for _ in 0..32 {
            let now = SimTime::from_millis(g.u64_in(0, 20_000));
            let af = plan.at(now);
            prop_assert!((0.0..=1.0).contains(&af.grant_factor), "grant {}", af.grant_factor);
            prop_assert!((0.0..=1.0).contains(&af.feedback_loss), "fb loss {}", af.feedback_loss);
            prop_assert!(
                (0.0..=1.0).contains(&af.extra_path_loss),
                "path loss {}",
                af.extra_path_loss
            );
            prop_assert!(
                (0.0..=0.95).contains(&af.flash_crowd_load),
                "load {}",
                af.flash_crowd_load
            );
        }
        Ok(())
    });
}

/// A plan is a set of windows: pushing the same windows in any order
/// yields the same plan and the same composition at every instant.
#[test]
fn push_order_never_matters() {
    prop_check!(128, |g| {
        let mut windows = any_plan(g);
        let forward = build(&windows);
        // Fisher–Yates with harness-recorded draws, so shuffles shrink too.
        for i in (1..windows.len()).rev() {
            windows.swap(i, g.index(i + 1));
        }
        let shuffled = build(&windows);
        prop_assert_eq!(&forward, &shuffled);
        for _ in 0..16 {
            let now = SimTime::from_millis(g.u64_in(0, 20_000));
            prop_assert_eq!(forward.at(now), shuffled.at(now));
        }
        Ok(())
    });
}

/// Access and path slices partition the plan: every window lands in
/// exactly one slice, and each slice only ever composes its own fields.
#[test]
fn slices_partition_every_plan() {
    prop_check!(128, |g| {
        let plan = build(&any_plan(g));
        let access = plan.access_slice();
        let path = plan.path_slice();
        prop_assert_eq!(access.events().len() + path.events().len(), plan.events().len());
        prop_assert!(access.events().iter().all(|e| e.kind.is_access()));
        prop_assert!(path.events().iter().all(|e| e.kind.is_path()));
        for _ in 0..16 {
            let now = SimTime::from_millis(g.u64_in(0, 20_000));
            let a = access.at(now);
            let p = path.at(now);
            // Path fields stay healthy in the access slice and vice versa.
            prop_assert_eq!(a.feedback_loss, 0.0);
            prop_assert_eq!(a.extra_path_delay, SimDuration::ZERO);
            prop_assert!(!p.radio_failure && !p.diag_stall);
            prop_assert_eq!(p.grant_factor, 1.0);
            prop_assert_eq!(p.flash_crowd_load, 0.0);
        }
        Ok(())
    });
}

/// Time scaling is exact integer arithmetic per event and preserves the
/// sort order, so a `--smoke` plan is the full plan compressed, not a
/// different plan.
#[test]
fn time_scaling_is_exact_per_event() {
    prop_check!(128, |g| {
        let plan = build(&any_plan(g));
        let num = g.u64_in(1, 10);
        let den = g.u64_in(1, 10);
        let scaled = plan.time_scaled(num, den);
        prop_assert_eq!(scaled.events().len(), plan.events().len());
        for (orig, s) in plan.events().iter().zip(scaled.events()) {
            prop_assert_eq!(s.kind, orig.kind);
            prop_assert_eq!(s.start.as_micros(), orig.start.as_micros() * num / den);
            prop_assert_eq!(s.duration.as_micros(), orig.duration.as_micros() * num / den);
        }
        for pair in scaled.events().windows(2) {
            prop_assert!(
                (pair[0].start, pair[0].end()) <= (pair[1].start, pair[1].end()),
                "scaled plan stays sorted"
            );
        }
        Ok(())
    });
}

/// An uplink driven by an arbitrary fault plan keeps its physical
/// invariants every subframe: the buffer never exceeds capacity (and the
/// unsigned accounting never underflows), the grant never exceeds the
/// CQI-15 TBS ceiling, and an injected radio link failure really does
/// silence the link.
#[test]
fn uplink_invariants_hold_under_arbitrary_plans() {
    prop_check!(48, |g| {
        let windows = any_plan(g);
        let plan = build(&windows);
        let cfg = UplinkConfig::default();
        let ceiling = tbs::tbs_bits(15, cfg.scheduler.max_prbs);
        let mut ul = CellUplink::new(cfg, g.any_u64());
        ul.set_fault_plan(plan.clone());
        let mut now = SimTime::ZERO;
        for _ in 0..3_000 {
            if g.chance(0.4) {
                ul.enqueue(Pkt(g.u32_in(100, 1_400)), now);
            }
            let out = ul.subframe(now);
            prop_assert!(
                ul.buffer_level() <= cfg.fw_capacity_bytes,
                "buffer {} over capacity",
                ul.buffer_level()
            );
            prop_assert!(out.tbs_bits <= ceiling, "tbs {} > ceiling {ceiling}", out.tbs_bits);
            if plan.at(now).radio_failure {
                prop_assert_eq!(out.tbs_bits, 0);
                prop_assert!(out.departed.is_empty(), "departures during radio link failure");
            }
            now += poi360_sim::SUBFRAME;
        }
        Ok(())
    });
}
