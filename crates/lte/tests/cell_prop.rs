//! Property-based tests for the shared multi-UE cell scheduler.
//!
//! Two invariants the PF allocator must hold under *any* mix of UEs:
//! PRB conservation (grants never exceed cell capacity in any subframe)
//! and work conservation (a lone backlogged UE on an otherwise idle cell
//! is served at least as fast as the standalone single-UE grant model
//! would serve it).

use poi360_lte::buffer::PacketLike;
use poi360_lte::cell::{Cell, CellConfig, UeId};
use poi360_lte::channel::ChannelConfig;
use poi360_lte::scheduler::{PfScheduler, SchedulerConfig};
use poi360_sim::time::SimTime;
use poi360_sim::SUBFRAME;
use poi360_testkit::{prop_assert, prop_check};

#[derive(Debug)]
struct Pkt(u32);
impl PacketLike for Pkt {
    fn wire_bytes(&self) -> u32 {
        self.0
    }
}

/// PRB conservation: whatever the cell size, per-UE cap, channel mix, and
/// population, the sum of grants in a subframe never exceeds capacity,
/// and no foreground UE ever exceeds its per-UE cap.
#[test]
fn prb_allocation_conserves_capacity() {
    prop_check!(48, |g| {
        let total_prbs = g.u32_in(8, 50);
        let cfg = CellConfig {
            total_prbs,
            max_prbs_per_ue: g.u32_in(1, total_prbs),
            bsr_delay_subframes: g.usize_in(1, 10),
            harq_fail_prob: g.f64_in(0.0, 0.3),
            ..Default::default()
        };
        let mut cell = Cell::new(cfg, g.any_u64());
        let fg_count = g.usize_in(1, 3);
        for k in 0..fg_count {
            let ch = ChannelConfig {
                rss_dbm: g.f64_in(-105.0, -70.0),
                speed_mph: g.f64_in(0.0, 30.0),
                ..Default::default()
            };
            cell.attach_foreground(&format!("fg.{k}"), ch);
        }
        cell.attach_background_population(g.usize_in(0, 10));

        let top_up = g.u64_in(2_000, 60_000);
        let mut now = SimTime::ZERO;
        for _ in 0..300 {
            for k in 0..fg_count {
                while cell.buffer_level(UeId(k)) < top_up {
                    cell.enqueue(UeId(k), Pkt(1_200), now);
                }
            }
            let out = cell.subframe(now);
            prop_assert!(
                out.prbs_granted <= cfg.total_prbs,
                "granted {} of {} PRBs",
                out.prbs_granted,
                cfg.total_prbs
            );
            let fg_sum: u32 = out.prbs_per_ue.iter().sum();
            prop_assert!(fg_sum <= out.prbs_granted, "fg {} > total {}", fg_sum, out.prbs_granted);
            for (k, &p) in out.prbs_per_ue.iter().enumerate() {
                prop_assert!(p <= cfg.max_prbs_per_ue, "UE {k} got {p} PRBs over cap");
            }
            now += SUBFRAME;
        }
        Ok(())
    });
}

/// Work conservation: a lone backlogged UE on an idle cell (HARQ losses
/// disabled, static strong channel) must be served at least as fast as
/// the standalone per-UE grant model saturates in an idle cell — the cell
/// has no one else to spend its PRBs on, so its 25-PRB cap strictly
/// dominates the standalone ~8-PRB fair share.
#[test]
fn lone_backlogged_ue_is_work_conserving() {
    prop_check!(24, |g| {
        let cfg = CellConfig { harq_fail_prob: 0.0, ..Default::default() };
        let mut cell = Cell::new(cfg, g.any_u64());
        let ch = ChannelConfig { shadow_std_db: 0.0, fading_std_db: 0.0, ..Default::default() };
        let ue = cell.attach_foreground("fg.0", ch);

        let standalone = PfScheduler::new(SchedulerConfig::default(), 0);
        let floor_bits_per_sf = standalone.saturation_bits_per_subframe(15, 0.0);

        let mut now = SimTime::ZERO;
        let mut served_bits = 0u64;
        let measure_sf = 2_000u64;
        // Warmup covers the BSR pipeline delay before service starts.
        for sf in 0..measure_sf + 50 {
            while cell.buffer_level(ue) < 40_000 {
                cell.enqueue(ue, Pkt(1_200), now);
            }
            let out = cell.subframe(now);
            if sf >= 50 {
                served_bits += out.per_ue[0].tbs_bits as u64;
            }
            now += SUBFRAME;
        }
        let mean_bits_per_sf = served_bits as f64 / measure_sf as f64;
        prop_assert!(
            mean_bits_per_sf >= floor_bits_per_sf,
            "lone UE served {mean_bits_per_sf:.0} bits/sf < standalone floor {floor_bits_per_sf:.0}"
        );
        Ok(())
    });
}
