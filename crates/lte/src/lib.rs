//! LTE uplink substrate for the POI360 reproduction.
//!
//! Substitutes for the commercial LTE network + LG Nexus 5 modem the paper
//! measures. The model is built around the two properties POI360's FBCC
//! exploits (paper §3.3, Fig. 5):
//!
//! 1. **Buffer-coupled service rate.** Under proportional-fair uplink
//!    scheduling, the eNodeB's grant to a UE grows with the backlog the UE
//!    reports (BSR) and saturates at the UE's fair share of cell capacity.
//!    An emptier firmware buffer therefore means a *slower* uplink — the
//!    under-utilization GCC falls into (Fig. 6) and the "sweet spot" FBCC
//!    steers toward (Fig. 15).
//! 2. **A per-subframe diagnostic plane.** Commodity phones expose the
//!    firmware buffer level and per-subframe transport block size (TBS)
//!    through the diag interface (MobileInsight); the prototype reads them
//!    in 40 ms batches. [`diag::DiagInterface`] reproduces that cadence.
//!
//! Module map:
//! * [`tbs`] — CQI/MCS/TBS tables (3GPP TS 36.213 shapes).
//! * [`channel`] — RSS → SINR with shadowing, fast fading, mobility,
//!   and handover outages.
//! * [`buffer`] — the UE firmware (modem) buffer with RLC-style byte
//!   segmentation.
//! * [`scheduler`] — the eNodeB proportional-fair uplink grant model.
//! * [`uplink`] — the composed per-subframe uplink: channel + scheduler +
//!   buffer + HARQ.
//! * [`diag`] — the 40 ms diagnostic report stream.
//! * [`scenario`] — presets for the paper's §6.2 field conditions
//!   (background load, signal strength, mobility).
//! * [`cell`] — a shared multi-UE eNodeB: one PF PRB allocation per
//!   subframe across N attached UEs, with emergent background load.
//! * [`grid`] — the network above a cell: hex eNodeB lattice, ground
//!   mobility, path-loss radio map with neighbor interference, and A3
//!   handover.

pub mod buffer;
pub mod cell;
pub mod channel;
pub mod diag;
pub mod grid;
pub mod scenario;
pub mod scheduler;
pub mod tbs;
pub mod uplink;

pub use buffer::FirmwareBuffer;
pub use cell::{Cell, CellConfig, CellSubframe, UeId};
pub use channel::{Channel, ChannelConfig};
pub use diag::{DiagInterface, DiagReport, DiagSample};
pub use scenario::{BackgroundLoad, Mobility, Scenario, SignalStrength};
pub use scheduler::{PfScheduler, SchedulerConfig};
pub use uplink::{CellUplink, SubframeOutcome, UplinkConfig};
