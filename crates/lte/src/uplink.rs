//! The composed per-subframe LTE uplink: channel + cell load + PF grants +
//! firmware buffer + diag feed.
//!
//! [`CellUplink`] is the object the telephony session drives once per 1 ms
//! subframe. It owns the UE firmware buffer; the transport pacer enqueues
//! RTP packets into it, and each subframe the scheduler serves a grant out
//! of it. Departed packets then ride the rest of the end-to-end path
//! (modeled in `poi360-net`).

use crate::buffer::{FirmwareBuffer, PacketLike};
use crate::channel::{Channel, ChannelConfig};
use crate::diag::{DiagInterface, DiagReport, DiagSample};
use crate::scheduler::{PfScheduler, SchedulerConfig};
use poi360_sim::fault::{FaultPlan, FaultTimeline};
use poi360_sim::process::{MarkovOnOff, OrnsteinUhlenbeck};
use poi360_sim::rng::SimRng;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::Recorder;
use std::collections::VecDeque;

/// Competing-cell-load model configuration.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Mean competing load in `[0, 1)` (fraction of cell UL resources).
    pub mean: f64,
    /// Stationary std of the slow load drift.
    pub std: f64,
    /// Extra load added during bursts (0 disables bursts).
    pub burst_extra: f64,
    /// Mean burst duration.
    pub burst_on: SimDuration,
    /// Mean gap between bursts.
    pub burst_off: SimDuration,
}

impl LoadConfig {
    /// The paper's "early morning, most users off campus" condition.
    pub fn idle() -> Self {
        LoadConfig {
            mean: 0.10,
            std: 0.05,
            burst_extra: 0.0,
            burst_on: SimDuration::from_secs(1),
            burst_off: SimDuration::from_secs(9),
        }
    }

    /// An ordinary daytime cell: moderate, fluctuating competing load.
    /// Used for the paper's §6.1 micro-benchmarks, which ran on a live
    /// campus network at unspecified hours.
    pub fn typical() -> Self {
        LoadConfig {
            mean: 0.35,
            std: 0.12,
            burst_extra: 0.25,
            burst_on: SimDuration::from_millis(1_500),
            burst_off: SimDuration::from_secs(4),
        }
    }

    /// The paper's "noon just after class" condition.
    pub fn busy() -> Self {
        LoadConfig {
            mean: 0.45,
            std: 0.10,
            burst_extra: 0.20,
            burst_on: SimDuration::from_secs(2),
            burst_off: SimDuration::from_secs(6),
        }
    }
}

/// Evolving competing load.
#[derive(Clone, Debug)]
struct CellLoad {
    cfg: LoadConfig,
    drift: OrnsteinUhlenbeck,
    bursts: Option<MarkovOnOff>,
    rng: SimRng,
}

impl CellLoad {
    fn new(cfg: LoadConfig, seed: u64) -> Self {
        let mut rng = SimRng::stream(seed, "lte.load");
        let bursts = if cfg.burst_extra > 0.0 {
            Some(MarkovOnOff::new(cfg.burst_on, cfg.burst_off, false, &mut rng))
        } else {
            None
        };
        CellLoad {
            drift: OrnsteinUhlenbeck::with_stationary(cfg.mean, cfg.std, 5.0),
            bursts,
            cfg,
            rng,
        }
    }

    fn subframe(&mut self) -> f64 {
        let mut load = self.drift.step(poi360_sim::SUBFRAME, &mut self.rng);
        if let Some(b) = &mut self.bursts {
            if b.step(poi360_sim::SUBFRAME, &mut self.rng) {
                load += self.cfg.burst_extra;
            }
        }
        load.clamp(0.0, 0.95)
    }
}

/// Full uplink configuration.
#[derive(Clone, Copy, Debug)]
pub struct UplinkConfig {
    /// Radio channel model.
    pub channel: ChannelConfig,
    /// Grant model.
    pub scheduler: SchedulerConfig,
    /// Competing cell load.
    pub load: LoadConfig,
    /// Firmware buffer capacity in bytes.
    pub fw_capacity_bytes: u64,
    /// Diag report period.
    pub diag_period: SimDuration,
}

impl Default for UplinkConfig {
    fn default() -> Self {
        UplinkConfig {
            channel: ChannelConfig::default(),
            scheduler: SchedulerConfig::default(),
            load: LoadConfig::idle(),
            fw_capacity_bytes: 512 * 1024,
            diag_period: DiagInterface::DEFAULT_PERIOD,
        }
    }
}

/// Everything that happened on the uplink in one subframe.
pub struct SubframeOutcome<T> {
    /// Packets whose last byte was served this subframe, with their
    /// firmware-buffer enqueue time.
    pub departed: Vec<(T, SimTime)>,
    /// TBS served this subframe (bits).
    pub tbs_bits: u32,
    /// Firmware buffer level at the *start* of the subframe (what the
    /// chipset logs).
    pub buffer_bytes: u64,
    /// CQI this subframe.
    pub cqi: u8,
    /// Competing load this subframe.
    pub load: f64,
    /// Whether a handover outage suppressed the grant.
    pub in_outage: bool,
    /// Diag batch, if this subframe closed a 40 ms epoch.
    pub diag: Option<DiagReport>,
}

/// The UE-side uplink machine.
pub struct CellUplink<T> {
    cfg: UplinkConfig,
    channel: Channel,
    scheduler: PfScheduler,
    load: CellLoad,
    fw: FirmwareBuffer<T>,
    diag: DiagInterface,
    /// Ring of recent buffer levels so grants see a BSR-delayed backlog.
    bsr_history: VecDeque<u64>,
    /// Outage state of the previous subframe, for handover edge detection.
    was_in_outage: bool,
    /// Access-network fault plan (radio / diag / grant / flash crowd).
    faults: FaultTimeline,
    /// Frozen `(buffer_bytes, tbs_bits)` while a diag stall is active.
    stale_diag: Option<(u64, u32)>,
    /// Whether an injected radio link failure was active last subframe,
    /// for the re-establishment flush on its trailing edge.
    was_rlf: bool,
    /// Departed-packet vector shells returned via `recycle_departed`,
    /// reused so steady-state subframes do not allocate.
    departed_pool: Vec<Vec<(T, SimTime)>>,
    recorder: Recorder,
}

impl<T: PacketLike> CellUplink<T> {
    /// Build an uplink from config and seed.
    pub fn new(cfg: UplinkConfig, seed: u64) -> Self {
        let bsr_delay = cfg.scheduler.bsr_delay_subframes.max(1);
        CellUplink {
            channel: Channel::new(cfg.channel, seed),
            scheduler: PfScheduler::new(cfg.scheduler, seed ^ 0x5eed),
            load: CellLoad::new(cfg.load, seed ^ 0x10ad),
            fw: FirmwareBuffer::new(cfg.fw_capacity_bytes),
            diag: DiagInterface::new(cfg.diag_period),
            bsr_history: VecDeque::with_capacity(bsr_delay + 1),
            was_in_outage: false,
            faults: FaultTimeline::default(),
            stale_diag: None,
            was_rlf: false,
            departed_pool: Vec::new(),
            recorder: Recorder::null(),
            cfg,
        }
    }

    /// Return a consumed outcome's departed-vector shell (emptied) so the
    /// next subframe reuses its capacity instead of allocating.
    pub fn recycle_departed(&mut self, mut departed: Vec<(T, SimTime)>) {
        departed.clear();
        if self.departed_pool.len() < 4 {
            self.departed_pool.push(departed);
        }
    }

    /// Return a consumed diag report's sample storage for epoch reuse.
    pub fn recycle_diag(&mut self, report: DiagReport) {
        self.diag.recycle(report);
    }

    /// Attach the session's probe recorder.
    pub fn set_recorder(&mut self, rec: &Recorder) {
        self.recorder = rec.clone();
    }

    /// Attach the access-network slice of a fault plan. Path-level kinds in
    /// `plan` (feedback loss, wireline spikes) are ignored here — sessions
    /// apply those at the pipe seam — so passing a full plan is harmless
    /// but slicing first avoids duplicate `fault.*` transition events.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultTimeline::new(plan.access_slice());
    }

    /// Configuration in use.
    pub fn config(&self) -> &UplinkConfig {
        &self.cfg
    }

    /// Offer a packet to the firmware buffer. Returns false on overflow
    /// drop.
    pub fn enqueue(&mut self, item: T, now: SimTime) -> bool {
        self.fw.enqueue(item, now)
    }

    /// Current firmware buffer level, bytes.
    pub fn buffer_level(&self) -> u64 {
        self.fw.level_bytes()
    }

    /// Packets dropped at the firmware buffer tail.
    pub fn dropped(&self) -> u64 {
        self.fw.dropped()
    }

    /// Long-run saturation throughput under the configured channel/load
    /// means — handy for tests and for sizing workloads.
    pub fn nominal_capacity_bps(&self) -> f64 {
        let cqi = crate::tbs::sinr_to_cqi(self.cfg.channel.mean_sinr_db());
        self.scheduler.saturation_bits_per_subframe(cqi, self.cfg.load.mean) * 1000.0
    }

    /// Advance one subframe: sample channel and load, compute the grant,
    /// serve the firmware buffer, and feed the diag interface.
    pub fn subframe(&mut self, now: SimTime) -> SubframeOutcome<T> {
        let buffer_at_start = self.fw.level_bytes();

        // BSR pipeline: the eNodeB sees the level from `bsr_delay` ago.
        self.bsr_history.push_back(buffer_at_start);
        let delay = self.cfg.scheduler.bsr_delay_subframes.max(1);
        let reported = if self.bsr_history.len() > delay {
            self.bsr_history.pop_front().expect("non-empty after push")
        } else {
            0 // no BSR has reached the eNodeB yet
        };

        let af = self.faults.advance(now, &self.recorder);
        let ch = self.channel.subframe(now);
        let load = (self.load.subframe() + af.flash_crowd_load).clamp(0.0, 0.95);

        // A handover moves the UE to a new serving cell that has no BSR
        // state yet: the backlog must be re-reported from scratch. An
        // injected radio link failure has the same effect.
        let in_outage = ch.in_outage || af.radio_failure;
        if in_outage && !self.was_in_outage {
            self.bsr_history.clear();
        }
        self.was_in_outage = in_outage;

        // When an injected radio link failure clears, RRC re-establishment
        // flushes the RLC/firmware buffer and resets BSR state: queued
        // packets are lost, not delivered seconds late. (Natural handover
        // outages keep the buffer — the UE stays attached.)
        if self.was_rlf && !af.radio_failure {
            self.fw.flush();
            self.bsr_history.clear();
        }
        self.was_rlf = af.radio_failure;

        let grant_bits = if in_outage {
            0
        } else {
            // Smooth MCS adaptation: capacity follows the SINR continuously
            // rather than jumping at CQI band edges.
            let eff = crate::tbs::smooth_efficiency(ch.sinr_db);
            let base = self.scheduler.grant_bits_eff(reported, eff, load);
            // Grant starvation scales the grant the scheduler would have
            // issued; factor 1.0 (no fault) leaves it untouched.
            (base as f64 * af.grant_factor) as u32
        };
        let serve_bytes = grant_bits / 8;
        let mut departed = self.departed_pool.pop().unwrap_or_default();
        self.fw.serve_into(serve_bytes, &mut departed);
        let served_bits =
            departed.iter().map(|(p, _)| p.wire_bytes()).sum::<u32>().saturating_mul(8);
        // TBS reflects the grant actually used: bounded by both the grant
        // and what was in the buffer.
        let tbs_bits =
            grant_bits.min(served_bits.max(grant_bits.min((buffer_at_start * 8) as u32)));

        // A diag stall freezes what the chipset *logs* (FBCC sees stale
        // repeated samples) while the link itself keeps moving packets.
        let (log_buffer, log_tbs) = if af.diag_stall {
            *self.stale_diag.get_or_insert((buffer_at_start, tbs_bits))
        } else {
            self.stale_diag = None;
            (buffer_at_start, tbs_bits)
        };
        let diag =
            self.diag.record(DiagSample { at: now, buffer_bytes: log_buffer, tbs_bits: log_tbs });

        // Sink-only per-subframe probes: a branch each with no sink.
        if tbs_bits > 0 {
            self.recorder.event("cell.tbs_bits", now, tbs_bits as f64);
        }
        if diag.is_some() {
            self.recorder.event("cell.load", now, load);
        }

        SubframeOutcome {
            departed,
            tbs_bits,
            buffer_bytes: buffer_at_start,
            cqi: ch.cqi,
            load,
            in_outage,
            diag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Pkt(u32);
    impl PacketLike for Pkt {
        fn wire_bytes(&self) -> u32 {
            self.0
        }
    }

    /// Keep the buffer topped up at `level` bytes and measure throughput.
    fn throughput_at_level(level: u64, cfg: UplinkConfig, seed: u64, secs: u64) -> f64 {
        let mut ul = CellUplink::new(cfg, seed);
        let mut now = SimTime::ZERO;
        let mut served_bits = 0u64;
        for _ in 0..secs * 1000 {
            while ul.buffer_level() < level {
                ul.enqueue(Pkt(1_200), now);
            }
            let out = ul.subframe(now);
            served_bits += out.tbs_bits as u64;
            now += poi360_sim::SUBFRAME;
        }
        served_bits as f64 / secs as f64
    }

    #[test]
    fn fig5_shape_linear_then_saturating() {
        let cfg = UplinkConfig::default();
        let r2 = throughput_at_level(2_000, cfg, 1, 20);
        let r5 = throughput_at_level(5_000, cfg, 1, 20);
        let r10 = throughput_at_level(10_000, cfg, 1, 20);
        let r20 = throughput_at_level(20_000, cfg, 1, 20);
        let r40 = throughput_at_level(40_000, cfg, 1, 20);
        assert!(r2 < r5 && r5 < r10 && r10 < r20, "{r2} {r5} {r10} {r20}");
        // Saturation: 20 KB -> 40 KB gains under 15 %.
        assert!((r40 - r20) / r20 < 0.15, "r20 {r20} r40 {r40}");
        // Absolute scale: the paper's Fig. 5 saturates around 4–6 Mbps.
        assert!((3.0e6..6.5e6).contains(&r40), "saturation {r40}");
    }

    #[test]
    fn empty_buffer_serves_nothing() {
        let mut ul = CellUplink::<Pkt>::new(UplinkConfig::default(), 2);
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            let out = ul.subframe(now);
            assert_eq!(out.tbs_bits, 0);
            assert!(out.departed.is_empty());
            now += poi360_sim::SUBFRAME;
        }
    }

    #[test]
    fn bsr_delay_defers_first_grant() {
        let mut ul = CellUplink::new(UplinkConfig::default(), 3);
        let mut now = SimTime::ZERO;
        ul.enqueue(Pkt(50_000), now);
        let mut first_service = None;
        for sf in 0..50u64 {
            let out = ul.subframe(now);
            if out.tbs_bits > 0 && first_service.is_none() {
                first_service = Some(sf);
            }
            now += poi360_sim::SUBFRAME;
        }
        let first = first_service.expect("eventually served");
        assert!(
            first >= UplinkConfig::default().scheduler.bsr_delay_subframes as u64,
            "served at subframe {first}, before the BSR could have arrived"
        );
    }

    #[test]
    fn diag_reports_arrive_every_40ms() {
        let mut ul = CellUplink::<Pkt>::new(UplinkConfig::default(), 4);
        let mut now = SimTime::ZERO;
        let mut reports = 0;
        for _ in 0..400 {
            if ul.subframe(now).diag.is_some() {
                reports += 1;
            }
            now += poi360_sim::SUBFRAME;
        }
        assert_eq!(reports, 10);
    }

    #[test]
    fn busy_cell_is_slower() {
        let idle = throughput_at_level(30_000, UplinkConfig::default(), 5, 20);
        let busy_cfg = UplinkConfig { load: LoadConfig::busy(), ..Default::default() };
        let busy = throughput_at_level(30_000, busy_cfg, 5, 20);
        assert!(busy < idle * 0.8, "busy {busy} idle {idle}");
    }

    #[test]
    fn weak_signal_is_slower() {
        let strong = throughput_at_level(30_000, UplinkConfig::default(), 6, 20);
        let weak_cfg = UplinkConfig {
            channel: ChannelConfig { rss_dbm: -115.0, ..Default::default() },
            ..Default::default()
        };
        let weak = throughput_at_level(30_000, weak_cfg, 6, 20);
        assert!(weak < strong * 0.4, "weak {weak} strong {strong}");
        assert!(weak > 100e3, "weak link must still carry something: {weak}");
    }

    #[test]
    fn packets_depart_in_order_with_enqueue_times() {
        let mut ul = CellUplink::new(UplinkConfig::default(), 7);
        let mut now = SimTime::ZERO;
        for k in 0..20u32 {
            ul.enqueue(Pkt(1_000 + k), now);
        }
        let mut sizes = Vec::new();
        for _ in 0..2_000 {
            let out = ul.subframe(now);
            sizes.extend(out.departed.iter().map(|(p, _)| p.0));
            now += poi360_sim::SUBFRAME;
        }
        assert_eq!(sizes, (0..20u32).map(|k| 1_000 + k).collect::<Vec<_>>());
    }

    #[test]
    fn radio_link_failure_zeroes_tbs_for_the_window() {
        use poi360_sim::fault::{FaultKind, FaultPlan};
        let mut ul = CellUplink::new(UplinkConfig::default(), 9);
        ul.set_fault_plan(FaultPlan::new().with(
            FaultKind::RadioLinkFailure,
            SimTime::from_millis(200),
            SimDuration::from_millis(100),
        ));
        let mut now = SimTime::ZERO;
        for sf in 0..600u64 {
            while ul.buffer_level() < 30_000 {
                ul.enqueue(Pkt(1_200), now);
            }
            let out = ul.subframe(now);
            if (200..300).contains(&sf) {
                assert_eq!(out.tbs_bits, 0, "TBS must be zero during the RLF at sf {sf}");
                assert!(out.in_outage);
            }
            now += poi360_sim::SUBFRAME;
        }
    }

    #[test]
    fn diag_stall_freezes_logged_samples_not_the_link() {
        use poi360_sim::fault::{FaultKind, FaultPlan};
        let mut ul = CellUplink::new(UplinkConfig::default(), 10);
        ul.set_fault_plan(FaultPlan::new().with(
            FaultKind::DiagStall,
            SimTime::from_millis(200),
            SimDuration::from_millis(120),
        ));
        let mut now = SimTime::ZERO;
        let mut stalled_samples = Vec::new();
        let mut served_during_stall = 0u64;
        for sf in 0..600u64 {
            while ul.buffer_level() < 30_000 {
                ul.enqueue(Pkt(1_200), now);
            }
            let out = ul.subframe(now);
            if (200..320).contains(&sf) {
                served_during_stall += out.tbs_bits as u64;
            }
            if let Some(r) = out.diag {
                stalled_samples.extend(
                    r.samples
                        .iter()
                        .filter(|s| (200..320).contains(&s.at.as_millis()))
                        .map(|s| (s.buffer_bytes, s.tbs_bits)),
                );
            }
            now += poi360_sim::SUBFRAME;
        }
        assert!(!stalled_samples.is_empty());
        assert!(
            stalled_samples.iter().all(|&s| s == stalled_samples[0]),
            "diag samples must be frozen during the stall"
        );
        assert!(served_during_stall > 0, "the link itself keeps serving during a diag stall");
    }

    #[test]
    fn grant_starvation_scales_throughput() {
        use poi360_sim::fault::{FaultKind, FaultPlan};
        let full = throughput_at_level(30_000, UplinkConfig::default(), 11, 10);
        let mut ul = CellUplink::new(UplinkConfig::default(), 11);
        ul.set_fault_plan(FaultPlan::new().with(
            FaultKind::GrantStarvation { factor: 0.25 },
            SimTime::ZERO,
            SimDuration::from_secs(10),
        ));
        let mut now = SimTime::ZERO;
        let mut served_bits = 0u64;
        for _ in 0..10_000 {
            while ul.buffer_level() < 30_000 {
                ul.enqueue(Pkt(1_200), now);
            }
            served_bits += ul.subframe(now).tbs_bits as u64;
            now += poi360_sim::SUBFRAME;
        }
        let starved = served_bits as f64 / 10.0;
        assert!(starved < full * 0.5, "starved {starved} full {full}");
        assert!(starved > 0.0);
    }

    #[test]
    fn empty_fault_plan_is_byte_identical() {
        use poi360_sim::fault::FaultPlan;
        let run = |with_plan: bool| {
            let mut ul = CellUplink::new(UplinkConfig::default(), 12);
            if with_plan {
                ul.set_fault_plan(FaultPlan::new());
            }
            let mut now = SimTime::ZERO;
            let mut trace = Vec::new();
            for _ in 0..2_000 {
                while ul.buffer_level() < 20_000 {
                    ul.enqueue(Pkt(1_200), now);
                }
                let out = ul.subframe(now);
                trace.push((out.tbs_bits, out.buffer_bytes, out.cqi, out.in_outage));
                now += poi360_sim::SUBFRAME;
            }
            trace
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn nominal_capacity_is_positive_and_sane() {
        let ul = CellUplink::<Pkt>::new(UplinkConfig::default(), 8);
        let cap = ul.nominal_capacity_bps();
        assert!((2.0e6..7.0e6).contains(&cap), "capacity {cap}");
    }
}
