//! The phone's diagnostic interface (MobileInsight-style, paper §5).
//!
//! The modem chipset logs the uplink firmware-buffer level and the granted
//! TBS for *every 1 ms subframe* (paper §4.1 cites per-subframe extraction),
//! and the prototype's log decoder delivers those records to the
//! application in **40 ms batches** (§5: "obtains the LTE uplink TBS and
//! the uplink firmware buffer level for every 40ms"). FBCC consumes the
//! per-subframe samples inside each batch: the congestion test (Eq. 3)
//! scans K = 10 consecutive subframe-level buffer increases, and the RTP
//! controller (Eq. 7) acts once per 40 ms epoch.

use poi360_sim::time::{SimDuration, SimTime};

/// One per-subframe diagnostic record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiagSample {
    /// Subframe start time.
    pub at: SimTime,
    /// Firmware buffer occupancy at the start of the subframe, bytes.
    pub buffer_bytes: u64,
    /// Transport block size granted/served this subframe, bits.
    pub tbs_bits: u32,
}

/// A 40 ms batch of diagnostic samples.
#[derive(Clone, Debug)]
pub struct DiagReport {
    /// Delivery time of the batch (end of the reporting epoch).
    pub delivered_at: SimTime,
    /// The subframe records of the epoch, oldest first.
    pub samples: Vec<DiagSample>,
}

impl DiagReport {
    /// Sum of TBS bits over the batch.
    pub fn total_tbs_bits(&self) -> u64 {
        self.samples.iter().map(|s| s.tbs_bits as u64).sum()
    }

    /// Mean PHY throughput over the batch, bits/s.
    pub fn mean_phy_rate_bps(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.total_tbs_bits() as f64 / (self.samples.len() as f64 * 1e-3)
    }

    /// Buffer level at the end of the epoch, bytes.
    pub fn last_buffer_bytes(&self) -> u64 {
        self.samples.last().map_or(0, |s| s.buffer_bytes)
    }
}

/// Collects per-subframe samples and emits one report per period.
#[derive(Clone, Debug)]
pub struct DiagInterface {
    period: SimDuration,
    pending: Vec<DiagSample>,
    epoch_start: SimTime,
    // Sample vector returned by a consumer via `recycle`, reused for the
    // next epoch so steady-state reporting does not allocate.
    spare: Option<Vec<DiagSample>>,
}

impl DiagInterface {
    /// The report period of the paper's test device.
    pub const DEFAULT_PERIOD: SimDuration = SimDuration::from_millis(40);

    /// Create an interface with the given report period.
    pub fn new(period: SimDuration) -> Self {
        assert!(!period.is_zero());
        DiagInterface {
            period,
            pending: Vec::with_capacity(64),
            epoch_start: SimTime::ZERO,
            spare: None,
        }
    }

    /// Report period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Record one subframe; returns a full report when the epoch closes.
    pub fn record(&mut self, sample: DiagSample) -> Option<DiagReport> {
        self.pending.push(sample);
        let elapsed = sample.at.saturating_since(self.epoch_start) + poi360_sim::SUBFRAME;
        if elapsed >= self.period {
            let delivered_at = sample.at + poi360_sim::SUBFRAME;
            let next = self.spare.take().unwrap_or_default();
            let samples = std::mem::replace(&mut self.pending, next);
            self.epoch_start = delivered_at;
            Some(DiagReport { delivered_at, samples })
        } else {
            None
        }
    }

    /// Return a consumed report's sample storage for reuse by the next
    /// epoch. Consumers that drop reports instead simply fall back to a
    /// fresh allocation per epoch.
    pub fn recycle(&mut self, report: DiagReport) {
        let mut samples = report.samples;
        samples.clear();
        self.spare = Some(samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ms: u64, buf: u64, tbs: u32) -> DiagSample {
        DiagSample { at: SimTime::from_millis(ms), buffer_bytes: buf, tbs_bits: tbs }
    }

    #[test]
    fn emits_every_forty_subframes() {
        let mut d = DiagInterface::new(DiagInterface::DEFAULT_PERIOD);
        let mut reports = Vec::new();
        for ms in 0..200 {
            if let Some(r) = d.record(sample(ms, ms, 100)) {
                reports.push(r);
            }
        }
        assert_eq!(reports.len(), 5);
        for r in &reports {
            assert_eq!(r.samples.len(), 40);
        }
        assert_eq!(reports[0].delivered_at, SimTime::from_millis(40));
        assert_eq!(reports[1].delivered_at, SimTime::from_millis(80));
    }

    #[test]
    fn samples_ordered_and_complete() {
        let mut d = DiagInterface::new(DiagInterface::DEFAULT_PERIOD);
        let mut got = Vec::new();
        for ms in 0..120 {
            if let Some(r) = d.record(sample(ms, 0, 0)) {
                got.extend(r.samples.iter().map(|s| s.at.as_millis()));
            }
        }
        assert_eq!(got, (0..120).collect::<Vec<_>>());
    }

    #[test]
    fn report_aggregates() {
        let mut d = DiagInterface::new(SimDuration::from_millis(4));
        let mut r = None;
        for ms in 0..4 {
            r = d.record(sample(ms, 10 + ms, 1_000)).or(r);
        }
        let r = r.expect("one report");
        assert_eq!(r.total_tbs_bits(), 4_000);
        assert_eq!(r.last_buffer_bytes(), 13);
        // 4000 bits over 4 ms = 1 Mbps.
        assert!((r.mean_phy_rate_bps() - 1.0e6).abs() < 1.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = DiagReport { delivered_at: SimTime::ZERO, samples: vec![] };
        assert_eq!(r.mean_phy_rate_bps(), 0.0);
        assert_eq!(r.last_buffer_bytes(), 0);
    }
}
