//! Field-test scenario presets (paper §6.2).
//!
//! The paper's system-level evaluation varies three independent conditions:
//!
//! * **Background traffic load** — early-morning idle campus vs. busy noon
//!   (Fig. 17a/b),
//! * **Signal strength** — parking garage (−115 dBm) / shadowed lot
//!   (−82 dBm) / open lot (−73 dBm) (Fig. 17c/d),
//! * **Mobility** — 15 / 30 / 50 mph driving (Fig. 17e/f); the paper notes
//!   the highway route enjoys *better* RSS (≈ −60 dBm) thanks to fewer
//!   blocking buildings.
//!
//! [`Scenario`] composes those axes into an [`UplinkConfig`].

use crate as poi360_lte;
use crate::channel::ChannelConfig;
use crate::uplink::{LoadConfig, UplinkConfig};

/// Competing-traffic condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackgroundLoad {
    /// Early morning, idle channel.
    Idle,
    /// Ordinary daytime cell (the §6.1 micro-benchmark condition).
    Typical,
    /// Noon after class, busy channel.
    Busy,
}

/// Received-signal-strength tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SignalStrength {
    /// Concrete parking garage, −115 dBm.
    Weak,
    /// Outdoor lot shadowed by a tall building, −82 dBm.
    Moderate,
    /// Open lot, −73 dBm.
    Strong,
    /// Highway route, −60 dBm (used by the mobility experiments).
    Highway,
}

impl SignalStrength {
    /// The RSS value the paper reports for this tier.
    pub fn rss_dbm(&self) -> f64 {
        match self {
            SignalStrength::Weak => -115.0,
            SignalStrength::Moderate => -82.0,
            SignalStrength::Strong => -73.0,
            SignalStrength::Highway => -60.0,
        }
    }

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SignalStrength::Weak => "weak (-115dBm)",
            SignalStrength::Moderate => "moderate (-82dBm)",
            SignalStrength::Strong => "strong (-73dBm)",
            SignalStrength::Highway => "highway (-60dBm)",
        }
    }
}

/// Mobility tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mobility {
    /// Stationary experiments.
    Static,
    /// Residential-area slow driving.
    Mph15,
    /// Urban driving.
    Mph30,
    /// Highway driving.
    Mph50,
}

impl Mobility {
    /// Speed in mph.
    pub fn mph(&self) -> f64 {
        match self {
            Mobility::Static => 0.0,
            Mobility::Mph15 => 15.0,
            Mobility::Mph30 => 30.0,
            Mobility::Mph50 => 50.0,
        }
    }

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Mobility::Static => "static",
            Mobility::Mph15 => "15mph",
            Mobility::Mph30 => "30mph",
            Mobility::Mph50 => "50mph",
        }
    }
}

/// A complete field condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Competing cell traffic.
    pub load: BackgroundLoad,
    /// RSS tier.
    pub signal: SignalStrength,
    /// UE mobility.
    pub mobility: Mobility,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario::baseline()
    }
}

impl Scenario {
    /// The micro-benchmark condition: static, strong signal, idle cell.
    pub fn baseline() -> Self {
        Scenario {
            load: BackgroundLoad::Typical,
            signal: SignalStrength::Strong,
            mobility: Mobility::Static,
        }
    }

    /// A quiet cell with strong signal: the most benign condition.
    pub fn quiet() -> Self {
        Scenario {
            load: BackgroundLoad::Idle,
            signal: SignalStrength::Strong,
            mobility: Mobility::Static,
        }
    }

    /// Fig. 17a/b conditions: static strong-signal location, varying load.
    pub fn load_sweep() -> [Scenario; 2] {
        [
            Scenario { load: BackgroundLoad::Idle, ..Scenario::quiet() },
            Scenario { load: BackgroundLoad::Busy, ..Scenario::quiet() },
        ]
    }

    /// Fig. 17c/d conditions: idle weekend cell, varying RSS.
    pub fn signal_sweep() -> [Scenario; 3] {
        [
            Scenario { signal: SignalStrength::Weak, ..Scenario::quiet() },
            Scenario { signal: SignalStrength::Moderate, ..Scenario::quiet() },
            Scenario { signal: SignalStrength::Strong, ..Scenario::quiet() },
        ]
    }

    /// Fig. 17e/f conditions: driving at three speeds; the route has
    /// highway-grade RSS as the paper observes.
    pub fn mobility_sweep() -> [Scenario; 3] {
        let drive = Scenario {
            load: BackgroundLoad::Idle,
            signal: SignalStrength::Highway,
            mobility: Mobility::Static,
        };
        [
            Scenario { mobility: Mobility::Mph15, ..drive },
            Scenario { mobility: Mobility::Mph30, ..drive },
            Scenario { mobility: Mobility::Mph50, ..drive },
        ]
    }

    /// Materialize the uplink configuration for this scenario.
    pub fn uplink_config(&self) -> UplinkConfig {
        // The paper's weak-signal site is a concrete parking garage with a
        // *stable* low RSS ("as long as the RSS does not fluctuate,
        // POI360's rate control can always converge"): deep-indoor static
        // links see little shadowing drift or Doppler.
        let (shadow_std, fading_std) = if self.signal == SignalStrength::Weak {
            (1.0, 1.0)
        } else {
            let d = ChannelConfig::default();
            (d.shadow_std_db, d.fading_std_db)
        };
        // A weekend garage cell is nearly empty: PF compensation can hand a
        // deep-fade UE far more PRBs than its fair share on a loaded cell.
        let scheduler = if self.signal == SignalStrength::Weak {
            poi360_lte::scheduler::SchedulerConfig { max_prbs: 40, ..Default::default() }
        } else {
            Default::default()
        };
        UplinkConfig {
            scheduler,
            channel: ChannelConfig {
                rss_dbm: self.signal.rss_dbm(),
                speed_mph: self.mobility.mph(),
                shadow_std_db: shadow_std,
                fading_std_db: fading_std,
            },
            load: match self.load {
                BackgroundLoad::Idle => LoadConfig::idle(),
                BackgroundLoad::Typical => LoadConfig::typical(),
                BackgroundLoad::Busy => LoadConfig::busy(),
            },
            ..UplinkConfig::default()
        }
    }

    /// Label used in reports.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            match self.load {
                BackgroundLoad::Idle => "idle",
                BackgroundLoad::Typical => "typical",
                BackgroundLoad::Busy => "busy",
            },
            self.signal.label(),
            self.mobility.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::PacketLike;
    use crate::uplink::CellUplink;

    struct Pkt;
    impl PacketLike for Pkt {
        fn wire_bytes(&self) -> u32 {
            1_200
        }
    }

    fn capacity(s: Scenario) -> f64 {
        CellUplink::<Pkt>::new(s.uplink_config(), 1).nominal_capacity_bps()
    }

    #[test]
    fn signal_sweep_orders_capacity() {
        let [weak, moderate, strong] = Scenario::signal_sweep();
        assert!(capacity(weak) < capacity(moderate));
        assert!(capacity(moderate) <= capacity(strong) * 1.05);
    }

    #[test]
    fn busy_cell_cuts_capacity() {
        let [idle, busy] = Scenario::load_sweep();
        assert!(capacity(busy) < capacity(idle) * 0.8);
    }

    #[test]
    fn mobility_sweep_keeps_highway_rss() {
        for s in Scenario::mobility_sweep() {
            assert_eq!(s.signal, SignalStrength::Highway);
            assert!(s.mobility.mph() > 0.0);
        }
    }

    #[test]
    fn baseline_capacity_realistic() {
        let c = capacity(Scenario::baseline());
        assert!((2.0e6..7.0e6).contains(&c), "baseline capacity {c}");
    }

    #[test]
    fn uplink_config_wires_the_knobs() {
        let s = Scenario {
            load: BackgroundLoad::Busy,
            signal: SignalStrength::Weak,
            mobility: Mobility::Mph30,
        };
        let cfg = s.uplink_config();
        assert_eq!(cfg.channel.rss_dbm, -115.0);
        assert_eq!(cfg.channel.speed_mph, 30.0);
        assert!(cfg.load.burst_extra > 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels = std::collections::HashSet::new();
        for s in Scenario::load_sweep()
            .into_iter()
            .chain(Scenario::signal_sweep())
            .chain(Scenario::mobility_sweep())
        {
            labels.insert(s.label());
        }
        // load_sweep's idle condition and signal_sweep's strong condition
        // are the same baseline scenario, so 8 entries give 7 labels.
        assert_eq!(labels.len(), 7);
    }
}
