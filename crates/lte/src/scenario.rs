//! Field-test scenario presets (paper §6.2).
//!
//! The paper's system-level evaluation varies three independent conditions:
//!
//! * **Background traffic load** — early-morning idle campus vs. busy noon
//!   (Fig. 17a/b),
//! * **Signal strength** — parking garage (−115 dBm) / shadowed lot
//!   (−82 dBm) / open lot (−73 dBm) (Fig. 17c/d),
//! * **Mobility** — 15 / 30 / 50 mph driving (Fig. 17e/f); the paper notes
//!   the highway route enjoys *better* RSS (≈ −60 dBm) thanks to fewer
//!   blocking buildings.
//!
//! [`Scenario`] composes those axes into an [`UplinkConfig`].

use crate as poi360_lte;
use crate::channel::ChannelConfig;
use crate::grid::{A3Config, MobilityKind};
use crate::uplink::{LoadConfig, UplinkConfig};
use poi360_sim::fault::{FaultKind, FaultPlan};
use poi360_sim::time::{SimDuration, SimTime};

/// Competing-traffic condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackgroundLoad {
    /// Early morning, idle channel.
    Idle,
    /// Ordinary daytime cell (the §6.1 micro-benchmark condition).
    Typical,
    /// Noon after class, busy channel.
    Busy,
}

/// Received-signal-strength tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SignalStrength {
    /// Concrete parking garage, −115 dBm.
    Weak,
    /// Outdoor lot shadowed by a tall building, −82 dBm.
    Moderate,
    /// Open lot, −73 dBm.
    Strong,
    /// Highway route, −60 dBm (used by the mobility experiments).
    Highway,
}

impl SignalStrength {
    /// The RSS value the paper reports for this tier.
    pub fn rss_dbm(&self) -> f64 {
        match self {
            SignalStrength::Weak => -115.0,
            SignalStrength::Moderate => -82.0,
            SignalStrength::Strong => -73.0,
            SignalStrength::Highway => -60.0,
        }
    }

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SignalStrength::Weak => "weak (-115dBm)",
            SignalStrength::Moderate => "moderate (-82dBm)",
            SignalStrength::Strong => "strong (-73dBm)",
            SignalStrength::Highway => "highway (-60dBm)",
        }
    }
}

/// Mobility tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mobility {
    /// Stationary experiments.
    Static,
    /// Residential-area slow driving.
    Mph15,
    /// Urban driving.
    Mph30,
    /// Highway driving.
    Mph50,
}

impl Mobility {
    /// Speed in mph.
    pub fn mph(&self) -> f64 {
        match self {
            Mobility::Static => 0.0,
            Mobility::Mph15 => 15.0,
            Mobility::Mph30 => 30.0,
            Mobility::Mph50 => 50.0,
        }
    }

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Mobility::Static => "static",
            Mobility::Mph15 => "15mph",
            Mobility::Mph30 => "30mph",
            Mobility::Mph50 => "50mph",
        }
    }
}

/// A complete field condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Competing cell traffic.
    pub load: BackgroundLoad,
    /// RSS tier.
    pub signal: SignalStrength,
    /// UE mobility.
    pub mobility: Mobility,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario::baseline()
    }
}

impl Scenario {
    /// The micro-benchmark condition: static, strong signal, idle cell.
    pub fn baseline() -> Self {
        Scenario {
            load: BackgroundLoad::Typical,
            signal: SignalStrength::Strong,
            mobility: Mobility::Static,
        }
    }

    /// A quiet cell with strong signal: the most benign condition.
    pub fn quiet() -> Self {
        Scenario {
            load: BackgroundLoad::Idle,
            signal: SignalStrength::Strong,
            mobility: Mobility::Static,
        }
    }

    /// Fig. 17a/b conditions: static strong-signal location, varying load.
    pub fn load_sweep() -> [Scenario; 2] {
        [
            Scenario { load: BackgroundLoad::Idle, ..Scenario::quiet() },
            Scenario { load: BackgroundLoad::Busy, ..Scenario::quiet() },
        ]
    }

    /// Fig. 17c/d conditions: idle weekend cell, varying RSS.
    pub fn signal_sweep() -> [Scenario; 3] {
        [
            Scenario { signal: SignalStrength::Weak, ..Scenario::quiet() },
            Scenario { signal: SignalStrength::Moderate, ..Scenario::quiet() },
            Scenario { signal: SignalStrength::Strong, ..Scenario::quiet() },
        ]
    }

    /// Fig. 17e/f conditions: driving at three speeds; the route has
    /// highway-grade RSS as the paper observes.
    pub fn mobility_sweep() -> [Scenario; 3] {
        let drive = Scenario {
            load: BackgroundLoad::Idle,
            signal: SignalStrength::Highway,
            mobility: Mobility::Static,
        };
        [
            Scenario { mobility: Mobility::Mph15, ..drive },
            Scenario { mobility: Mobility::Mph30, ..drive },
            Scenario { mobility: Mobility::Mph50, ..drive },
        ]
    }

    /// Materialize the uplink configuration for this scenario.
    pub fn uplink_config(&self) -> UplinkConfig {
        // The paper's weak-signal site is a concrete parking garage with a
        // *stable* low RSS ("as long as the RSS does not fluctuate,
        // POI360's rate control can always converge"): deep-indoor static
        // links see little shadowing drift or Doppler.
        let (shadow_std, fading_std) = if self.signal == SignalStrength::Weak {
            (1.0, 1.0)
        } else {
            let d = ChannelConfig::default();
            (d.shadow_std_db, d.fading_std_db)
        };
        // A weekend garage cell is nearly empty: PF compensation can hand a
        // deep-fade UE far more PRBs than its fair share on a loaded cell.
        let scheduler = if self.signal == SignalStrength::Weak {
            poi360_lte::scheduler::SchedulerConfig { max_prbs: 40, ..Default::default() }
        } else {
            Default::default()
        };
        UplinkConfig {
            scheduler,
            channel: ChannelConfig {
                rss_dbm: self.signal.rss_dbm(),
                speed_mph: self.mobility.mph(),
                shadow_std_db: shadow_std,
                fading_std_db: fading_std,
            },
            load: match self.load {
                BackgroundLoad::Idle => LoadConfig::idle(),
                BackgroundLoad::Typical => LoadConfig::typical(),
                BackgroundLoad::Busy => LoadConfig::busy(),
            },
            ..UplinkConfig::default()
        }
    }

    /// Label used in reports.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            match self.load {
                BackgroundLoad::Idle => "idle",
                BackgroundLoad::Typical => "typical",
                BackgroundLoad::Busy => "busy",
            },
            self.signal.label(),
            self.mobility.label()
        )
    }
}

/// When every named fault scenario injects its (first) fault.
pub const FAULT_AT: SimTime = SimTime::from_secs(10);

/// Recommended run length for the named fault scenarios: the fault clears
/// by ~13 s, leaving >10 s of recovery to assert on.
pub const FAULT_RUN_SECS: u64 = 24;

/// A named robustness condition: a field [`Scenario`] plus a [`FaultPlan`]
/// injected into it. These presets are the vocabulary shared by
/// `tests/faults.rs`, `reproduce faults`, and EXPERIMENTS.md — each models
/// one §4.3-style way the uplink actually breaks.
#[derive(Clone, Debug)]
pub struct FaultScenario {
    /// Stable name (CLI argument, test name, report row).
    pub name: &'static str,
    /// One-line description for tables and docs.
    pub what: &'static str,
    /// The field condition the fault is injected into.
    pub scenario: Scenario,
    /// The faults themselves.
    pub plan: FaultPlan,
}

impl FaultScenario {
    /// All named fault scenarios, in presentation order. Every
    /// [`FaultKind`] appears in at least one preset.
    pub fn all() -> Vec<FaultScenario> {
        let quiet = Scenario::quiet();
        let s = SimDuration::from_secs;
        vec![
            FaultScenario {
                name: "rlf",
                what: "radio link failure: TBS->0 for 2s",
                scenario: quiet,
                plan: FaultPlan::new().with(FaultKind::RadioLinkFailure, FAULT_AT, s(2)),
            },
            FaultScenario {
                name: "diag_freeze",
                what: "diag stall: FBCC sees frozen B(t) for 2.5s",
                scenario: quiet,
                plan: FaultPlan::new().with(
                    FaultKind::DiagStall,
                    FAULT_AT,
                    SimDuration::from_millis(2_500),
                ),
            },
            FaultScenario {
                name: "grant_starve",
                what: "scheduler serves 20% of normal grants for 3s",
                scenario: quiet,
                plan: FaultPlan::new().with(
                    FaultKind::GrantStarvation { factor: 0.2 },
                    FAULT_AT,
                    s(3),
                ),
            },
            FaultScenario {
                name: "roi_blackout",
                what: "95% ROI/RTCP feedback loss for 3s",
                scenario: quiet,
                plan: FaultPlan::new().with(FaultKind::FeedbackLoss { loss: 0.95 }, FAULT_AT, s(3)),
            },
            FaultScenario {
                name: "wireline_spike",
                what: "downstream +150ms delay, +5% loss for 3s",
                scenario: quiet,
                plan: FaultPlan::new().with(
                    FaultKind::WirelineSpike {
                        extra_delay: SimDuration::from_millis(150),
                        extra_loss: 0.05,
                    },
                    FAULT_AT,
                    s(3),
                ),
            },
            FaultScenario {
                name: "flash_crowd",
                what: "background flash crowd adds 0.6 load for 3s",
                scenario: quiet,
                plan: FaultPlan::new().with(
                    FaultKind::FlashCrowd { extra_load: 0.6 },
                    FAULT_AT,
                    s(3),
                ),
            },
            FaultScenario {
                name: "stacked",
                what: "flash crowd + feedback loss, then an RLF on top",
                scenario: quiet,
                plan: FaultPlan::new()
                    .with(FaultKind::FlashCrowd { extra_load: 0.4 }, FAULT_AT, s(3))
                    .with(FaultKind::FeedbackLoss { loss: 0.5 }, FAULT_AT, s(3))
                    .with(
                        FaultKind::RadioLinkFailure,
                        FAULT_AT + SimDuration::from_millis(1_000),
                        SimDuration::from_millis(800),
                    ),
            },
        ]
    }

    /// Look a preset up by name.
    pub fn by_name(name: &str) -> Option<FaultScenario> {
        FaultScenario::all().into_iter().find(|f| f.name == name)
    }
}

/// A named hex-grid mobility condition: trajectory family, speed,
/// lattice geometry, and handover tuning. These presets are the
/// vocabulary shared by `reproduce mobility`, the handover tests, and
/// EXPERIMENTS.md — the grid driver in `poi360-core` materializes them
/// into a full run configuration.
#[derive(Clone, Debug)]
pub struct MobilityScenario {
    /// Stable name (CLI argument, test name, report row).
    pub name: &'static str,
    /// One-line description for tables and docs.
    pub what: &'static str,
    /// Trajectory family.
    pub kind: MobilityKind,
    /// Ground speed, m/s.
    pub speed_mps: f64,
    /// Hex rings around the center cell (1 = 7 cells).
    pub rings: usize,
    /// Inter-site distance, meters.
    pub isd_m: f64,
    /// A3 handover + RLF tuning.
    pub a3: A3Config,
}

impl MobilityScenario {
    /// All named mobility scenarios, in presentation order.
    pub fn all() -> Vec<MobilityScenario> {
        vec![
            MobilityScenario {
                name: "convoy",
                what: "lane of UEs drives straight across the lattice",
                kind: MobilityKind::Convoy,
                speed_mps: 20.0,
                rings: 1,
                isd_m: 500.0,
                a3: A3Config::default(),
            },
            MobilityScenario {
                name: "waypoint",
                what: "random-waypoint roaming with dwell pauses",
                kind: MobilityKind::Waypoint,
                speed_mps: 15.0,
                rings: 1,
                isd_m: 500.0,
                a3: A3Config::default(),
            },
            MobilityScenario {
                name: "flash_crowd",
                what: "everyone converges on the center cell and parks",
                kind: MobilityKind::FlashCrowd,
                speed_mps: 15.0,
                rings: 1,
                isd_m: 500.0,
                a3: A3Config::default(),
            },
            MobilityScenario {
                name: "late_ho",
                what: "over-conservative A3 (14dB/640ms): handovers turn into RLFs",
                kind: MobilityKind::Convoy,
                speed_mps: 20.0,
                rings: 1,
                isd_m: 500.0,
                a3: A3Config {
                    hysteresis_db: 14.0,
                    time_to_trigger: SimDuration::from_millis(640),
                    ..A3Config::default()
                },
            },
        ]
    }

    /// Look a preset up by name.
    pub fn by_name(name: &str) -> Option<MobilityScenario> {
        MobilityScenario::all().into_iter().find(|m| m.name == name)
    }
}

/// One row of the unified preset registry.
#[derive(Clone, Copy, Debug)]
pub struct PresetInfo {
    /// Which experiment family the preset belongs to.
    pub family: &'static str,
    /// Preset name (what the CLI accepts).
    pub name: &'static str,
    /// One-line description.
    pub what: &'static str,
}

/// Every named preset across experiment families, in presentation
/// order: fault scenarios first, then mobility scenarios. `reproduce
/// --list` and unknown-preset errors both read from here so the valid
/// set can never drift from what the code accepts.
pub fn preset_registry() -> Vec<PresetInfo> {
    let mut out = Vec::new();
    for f in FaultScenario::all() {
        out.push(PresetInfo { family: "fault", name: f.name, what: f.what });
    }
    for m in MobilityScenario::all() {
        out.push(PresetInfo { family: "mobility", name: m.name, what: m.what });
    }
    out
}

/// Error text for an unknown preset that names the valid set for the
/// family, e.g. `unknown mobility scenario "x" (expected one of:
/// convoy, waypoint, ...)`.
pub fn unknown_preset_error(family: &str, got: &str) -> String {
    let valid: Vec<&str> =
        preset_registry().into_iter().filter(|p| p.family == family).map(|p| p.name).collect();
    unknown_scenario_error(family, got, &valid)
}

/// The shared wording for an unknown named scenario. Families whose
/// presets live outside this crate (the study registry in
/// `poi360-analyse`) format their errors through this so the phrasing
/// never drifts between families.
pub fn unknown_scenario_error(family: &str, got: &str, valid: &[&str]) -> String {
    format!("unknown {family} scenario \"{got}\" (expected one of: {})", valid.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::PacketLike;
    use crate::uplink::CellUplink;

    struct Pkt;
    impl PacketLike for Pkt {
        fn wire_bytes(&self) -> u32 {
            1_200
        }
    }

    fn capacity(s: Scenario) -> f64 {
        CellUplink::<Pkt>::new(s.uplink_config(), 1).nominal_capacity_bps()
    }

    #[test]
    fn signal_sweep_orders_capacity() {
        let [weak, moderate, strong] = Scenario::signal_sweep();
        assert!(capacity(weak) < capacity(moderate));
        assert!(capacity(moderate) <= capacity(strong) * 1.05);
    }

    #[test]
    fn busy_cell_cuts_capacity() {
        let [idle, busy] = Scenario::load_sweep();
        assert!(capacity(busy) < capacity(idle) * 0.8);
    }

    #[test]
    fn mobility_sweep_keeps_highway_rss() {
        for s in Scenario::mobility_sweep() {
            assert_eq!(s.signal, SignalStrength::Highway);
            assert!(s.mobility.mph() > 0.0);
        }
    }

    #[test]
    fn baseline_capacity_realistic() {
        let c = capacity(Scenario::baseline());
        assert!((2.0e6..7.0e6).contains(&c), "baseline capacity {c}");
    }

    #[test]
    fn uplink_config_wires_the_knobs() {
        let s = Scenario {
            load: BackgroundLoad::Busy,
            signal: SignalStrength::Weak,
            mobility: Mobility::Mph30,
        };
        let cfg = s.uplink_config();
        assert_eq!(cfg.channel.rss_dbm, -115.0);
        assert_eq!(cfg.channel.speed_mph, 30.0);
        assert!(cfg.load.burst_extra > 0.0);
    }

    #[test]
    fn fault_scenarios_cover_every_kind_with_unique_names() {
        let all = FaultScenario::all();
        assert!(all.len() >= 6, "at least 6 named fault scenarios");
        let names: std::collections::HashSet<_> = all.iter().map(|f| f.name).collect();
        assert_eq!(names.len(), all.len(), "names are unique");
        let probes: std::collections::HashSet<_> =
            all.iter().flat_map(|f| f.plan.events().iter().map(|e| e.kind.probe_name())).collect();
        assert_eq!(probes.len(), 6, "every FaultKind appears: {probes:?}");
        for f in &all {
            assert!(!f.plan.is_empty());
            assert!(
                f.plan.horizon() < SimTime::from_secs(FAULT_RUN_SECS) - SimDuration::from_secs(8),
                "{}: fault must clear with >=8s of recovery left",
                f.name
            );
            assert_eq!(FaultScenario::by_name(f.name).map(|g| g.what), Some(f.what));
        }
        assert!(FaultScenario::by_name("no_such").is_none());
    }

    #[test]
    fn preset_registry_unifies_families_with_unique_names() {
        let reg = preset_registry();
        assert_eq!(
            reg.len(),
            FaultScenario::all().len() + MobilityScenario::all().len(),
            "registry covers both families"
        );
        let keys: std::collections::HashSet<_> = reg.iter().map(|p| (p.family, p.name)).collect();
        assert_eq!(keys.len(), reg.len(), "(family, name) pairs are unique");
        for p in &reg {
            match p.family {
                "fault" => assert!(FaultScenario::by_name(p.name).is_some()),
                "mobility" => assert!(MobilityScenario::by_name(p.name).is_some()),
                other => panic!("unexpected family {other}"),
            }
        }
        assert!(MobilityScenario::by_name("no_such").is_none());
    }

    #[test]
    fn unknown_preset_error_names_the_valid_set() {
        let e = unknown_preset_error("mobility", "bogus");
        assert!(e.contains("\"bogus\""), "{e}");
        for m in MobilityScenario::all() {
            assert!(e.contains(m.name), "{e} missing {}", m.name);
        }
        assert!(!e.contains("diag_freeze"), "fault presets don't leak into mobility errors");
        let e = unknown_preset_error("fault", "bogus");
        assert!(e.contains("rlf") && e.contains("stacked"), "{e}");
    }

    #[test]
    fn late_ho_preset_is_meaningfully_conservative() {
        let late = MobilityScenario::by_name("late_ho").unwrap();
        let base = A3Config::default();
        assert!(late.a3.hysteresis_db > base.hysteresis_db + 5.0);
        assert!(late.a3.time_to_trigger > base.time_to_trigger);
        assert_eq!(late.a3.rlf_timer, base.rlf_timer, "RLF detection unchanged");
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels = std::collections::HashSet::new();
        for s in Scenario::load_sweep()
            .into_iter()
            .chain(Scenario::signal_sweep())
            .chain(Scenario::mobility_sweep())
        {
            labels.insert(s.label());
        }
        // load_sweep's idle condition and signal_sweep's strong condition
        // are the same baseline scenario, so 8 entries give 7 labels.
        assert_eq!(labels.len(), 7);
    }
}
