//! The UE firmware (modem) buffer.
//!
//! RTP packets handed to the modem queue here until uplink grants drain
//! them. The RLC layer segments packets into whatever the per-subframe
//! grant carries, so service is byte-granular: a packet *departs* on the
//! subframe its last byte is transmitted. The buffer level in bytes is the
//! `B(t)` that POI360's FBCC reads through the diag interface.

use poi360_sim::time::SimTime;
use std::collections::VecDeque;

/// Anything with a wire size can ride the uplink.
pub trait PacketLike {
    /// Size on the wire in bytes.
    fn wire_bytes(&self) -> u32;
}

struct Queued<T> {
    item: T,
    remaining: u32,
    enqueued_at: SimTime,
}

/// The firmware buffer: FIFO of packets with byte-granular service.
pub struct FirmwareBuffer<T> {
    queue: VecDeque<Queued<T>>,
    level_bytes: u64,
    capacity_bytes: u64,
    dropped: u64,
    flushed: u64,
    total_enqueued: u64,
    total_served_bytes: u64,
}

impl<T: PacketLike> FirmwareBuffer<T> {
    /// Create a buffer with the given byte capacity. Modem buffers are
    /// large (hundreds of KB) — overflow indicates severe congestion.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0);
        FirmwareBuffer {
            queue: VecDeque::new(),
            level_bytes: 0,
            capacity_bytes,
            dropped: 0,
            flushed: 0,
            total_enqueued: 0,
            total_served_bytes: 0,
        }
    }

    /// Current occupancy in bytes — the FBCC `B(t)`.
    pub fn level_bytes(&self) -> u64 {
        self.level_bytes
    }

    /// Number of queued packets (possibly including one partially sent).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Packets dropped at the tail due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets discarded by [`FirmwareBuffer::flush`] (a subset of
    /// [`FirmwareBuffer::dropped`]). Flushed packets *were* accepted, so
    /// exact conservation holds:
    /// `total_enqueued == delivered + flushed + len`.
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// Total packets ever accepted.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// Total bytes ever served.
    pub fn total_served_bytes(&self) -> u64 {
        self.total_served_bytes
    }

    /// Queueing delay of the head packet relative to `now`, if any.
    pub fn head_wait(&self, now: SimTime) -> Option<poi360_sim::SimDuration> {
        self.queue.front().map(|q| now.saturating_since(q.enqueued_at))
    }

    /// Discard everything queued, counting each packet as dropped. This
    /// is what RRC re-establishment does to the RLC buffer after a radio
    /// link failure: queued data is lost, not delivered seconds late.
    /// Returns the number of packets discarded.
    pub fn flush(&mut self) -> u64 {
        let n = self.queue.len() as u64;
        self.queue.clear();
        self.level_bytes = 0;
        self.dropped += n;
        self.flushed += n;
        n
    }

    /// Undo any partial service of the head packet: after a handover the
    /// RLC context does not transfer, so a packet caught mid-segmentation
    /// is retransmitted in full at the target cell. Restores the head's
    /// remaining bytes (and the buffer level) to the packet's wire size;
    /// `total_served_bytes` stays monotone — those bytes really were
    /// sent, just wasted.
    pub fn restart_head(&mut self) {
        if let Some(head) = self.queue.front_mut() {
            let undo = head.item.wire_bytes() - head.remaining;
            head.remaining = head.item.wire_bytes();
            self.level_bytes += undo as u64;
        }
    }

    /// Offer a packet; drop-tail on overflow. Returns `true` if accepted.
    pub fn enqueue(&mut self, item: T, now: SimTime) -> bool {
        let bytes = item.wire_bytes() as u64;
        if self.level_bytes + bytes > self.capacity_bytes {
            self.dropped += 1;
            return false;
        }
        self.level_bytes += bytes;
        self.total_enqueued += 1;
        self.queue.push_back(Queued { remaining: item.wire_bytes(), item, enqueued_at: now });
        true
    }

    /// Serve up to `budget_bytes` from the head of the queue; returns the
    /// packets whose final byte was transmitted this service, with their
    /// original enqueue time.
    pub fn serve(&mut self, budget_bytes: u32) -> Vec<(T, SimTime)> {
        let mut done = Vec::new();
        self.serve_into(budget_bytes, &mut done);
        done
    }

    /// Like [`FirmwareBuffer::serve`], but appends departures into a
    /// caller-owned buffer so the per-subframe hot path reuses capacity.
    pub fn serve_into(&mut self, mut budget_bytes: u32, done: &mut Vec<(T, SimTime)>) {
        while budget_bytes > 0 {
            let Some(head) = self.queue.front_mut() else { break };
            let take = head.remaining.min(budget_bytes);
            head.remaining -= take;
            budget_bytes -= take;
            self.level_bytes -= take as u64;
            self.total_served_bytes += take as u64;
            if head.remaining == 0 {
                let q = self.queue.pop_front().expect("head exists");
                done.push((q.item, q.enqueued_at));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Pkt(u32);
    impl PacketLike for Pkt {
        fn wire_bytes(&self) -> u32 {
            self.0
        }
    }

    #[test]
    fn level_tracks_enqueue_and_serve() {
        let mut b = FirmwareBuffer::new(10_000);
        assert!(b.enqueue(Pkt(1_200), SimTime::ZERO));
        assert!(b.enqueue(Pkt(800), SimTime::ZERO));
        assert_eq!(b.level_bytes(), 2_000);
        let done = b.serve(500);
        assert!(done.is_empty(), "partial service completes nothing");
        assert_eq!(b.level_bytes(), 1_500);
        let done = b.serve(700);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, Pkt(1_200));
        assert_eq!(b.level_bytes(), 800);
    }

    #[test]
    fn serve_more_than_queued_empties() {
        let mut b = FirmwareBuffer::new(10_000);
        b.enqueue(Pkt(100), SimTime::ZERO);
        b.enqueue(Pkt(200), SimTime::ZERO);
        let done = b.serve(10_000);
        assert_eq!(done.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.level_bytes(), 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut b = FirmwareBuffer::new(100_000);
        for k in 1..=10u32 {
            b.enqueue(Pkt(k * 10), SimTime::from_millis(k as u64));
        }
        let done = b.serve(10 * 11 * 5); // exactly the total
        let sizes: Vec<u32> = done.iter().map(|(p, _)| p.0).collect();
        assert_eq!(sizes, (1..=10).map(|k| k * 10).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_drops_tail() {
        let mut b = FirmwareBuffer::new(1_000);
        assert!(b.enqueue(Pkt(900), SimTime::ZERO));
        assert!(!b.enqueue(Pkt(200), SimTime::ZERO));
        assert_eq!(b.dropped(), 1);
        assert_eq!(b.level_bytes(), 900);
        assert!(b.enqueue(Pkt(100), SimTime::ZERO), "exact fit accepted");
    }

    #[test]
    fn enqueue_times_survive_service() {
        let mut b = FirmwareBuffer::new(10_000);
        let t = SimTime::from_millis(42);
        b.enqueue(Pkt(300), t);
        let done = b.serve(300);
        assert_eq!(done[0].1, t);
    }

    #[test]
    fn served_bytes_accumulate() {
        let mut b = FirmwareBuffer::new(10_000);
        b.enqueue(Pkt(1_000), SimTime::ZERO);
        b.serve(400);
        b.serve(600);
        assert_eq!(b.total_served_bytes(), 1_000);
        assert_eq!(b.total_enqueued(), 1);
    }

    #[test]
    fn flush_counts_separately_from_overflow() {
        let mut b = FirmwareBuffer::new(1_000);
        assert!(b.enqueue(Pkt(900), SimTime::ZERO));
        assert!(!b.enqueue(Pkt(200), SimTime::ZERO)); // overflow
        assert_eq!(b.flush(), 1);
        assert_eq!(b.flushed(), 1);
        assert_eq!(b.dropped(), 2, "flush drops count toward dropped too");
        // Conservation: accepted == delivered + flushed + queued.
        assert_eq!(b.total_enqueued(), b.flushed() + b.len() as u64);
    }

    #[test]
    fn restart_head_rewinds_partial_service() {
        let mut b = FirmwareBuffer::new(10_000);
        b.enqueue(Pkt(1_000), SimTime::ZERO);
        b.enqueue(Pkt(500), SimTime::ZERO);
        assert!(b.serve(400).is_empty());
        assert_eq!(b.level_bytes(), 1_100);
        b.restart_head();
        assert_eq!(b.level_bytes(), 1_500, "head restored to full size");
        assert_eq!(b.total_served_bytes(), 400, "wasted bytes stay counted");
        // The full packet must now be re-served before it departs.
        assert!(b.serve(999).is_empty());
        assert_eq!(b.serve(1).len(), 1);
        // Idempotent on an unserved head and harmless when empty.
        b.restart_head();
        assert_eq!(b.level_bytes(), 500);
        b.serve(10_000);
        b.restart_head();
        assert!(b.is_empty());
    }

    #[test]
    fn head_wait_reports_queueing_delay() {
        let mut b = FirmwareBuffer::new(10_000);
        assert!(b.head_wait(SimTime::ZERO).is_none());
        b.enqueue(Pkt(100), SimTime::from_millis(10));
        let wait = b.head_wait(SimTime::from_millis(35)).unwrap();
        assert_eq!(wait.as_millis(), 25);
    }
}
