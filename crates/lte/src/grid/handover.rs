//! A3-event handover and radio-link-failure detection.
//!
//! The 3GPP A3 event fires when a neighbor's RSRP exceeds the serving
//! cell's by a hysteresis margin *sustained* for the time-to-trigger
//! (TTT); the hysteresis suppresses ping-pong at cell edges and the TTT
//! filters fast fading. A handover that triggers too late — hysteresis
//! or TTT tuned so the UE falls out of coverage first — becomes a radio
//! link failure: the serving SINR sits below `Q_out` for the RLF timer
//! and the UE re-establishes on the best cell with its firmware buffer
//! flushed ([`crate::buffer::FirmwareBuffer::flush`]), exactly the RRC
//! re-establishment flow the fault plane's RLF injection exercises.
//!
//! [`A3State::decide`] is a pure per-subframe state machine over
//! measured RSRP/SINR, so the property suite can drive it with synthetic
//! monotone crossings and prove hysteresis honors its contract.

use super::hex::CellId;
use poi360_sim::time::{SimDuration, SimTime};

/// A3 + RLF parameters.
#[derive(Clone, Copy, Debug)]
pub struct A3Config {
    /// Neighbor must beat serving by this margin, dB.
    pub hysteresis_db: f64,
    /// ... sustained this long before the handover executes.
    pub time_to_trigger: SimDuration,
    /// Serving SINR below this is "out of sync" (Q_out), dB.
    pub rlf_qout_db: f64,
    /// Out-of-sync sustained this long declares radio link failure.
    pub rlf_timer: SimDuration,
    /// Data interruption of a successful handover (detach → attach).
    pub interruption: SimDuration,
    /// Data interruption of an RLF re-establishment (cell search + RRC).
    pub reestablish_time: SimDuration,
}

impl Default for A3Config {
    fn default() -> Self {
        A3Config {
            hysteresis_db: 3.0,
            time_to_trigger: SimDuration::from_millis(160),
            rlf_qout_db: -8.0,
            rlf_timer: SimDuration::from_millis(200),
            interruption: SimDuration::from_millis(45),
            reestablish_time: SimDuration::from_millis(240),
        }
    }
}

/// What the state machine wants done this subframe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HoDecision {
    /// Stay on the serving cell.
    Stay,
    /// Execute a handover to the target (A3 fired and TTT expired).
    Handover(CellId),
    /// Radio link failure: flush and re-establish on the target.
    Rlf(CellId),
}

/// Per-UE A3/RLF timers.
#[derive(Clone, Copy, Debug, Default)]
pub struct A3State {
    /// The neighbor currently beating serving + hysteresis, with the
    /// time the condition became (and stayed) true.
    entered: Option<(CellId, SimTime)>,
    /// When the serving SINR first dropped below Q_out, if still below.
    out_of_sync_since: Option<SimTime>,
}

impl A3State {
    /// Reset both timers (called after any cell change).
    pub fn reset(&mut self) {
        self.entered = None;
        self.out_of_sync_since = None;
    }

    /// Advance one measurement period. `best_neighbor` is the strongest
    /// non-serving cell and its RSRP; `serving_rsrp_dbm` / `sinr_db` are
    /// the serving-cell measurements. RLF wins over A3: a link that is
    /// already out of sync past the timer cannot execute a clean
    /// handover any more.
    pub fn decide(
        &mut self,
        cfg: &A3Config,
        now: SimTime,
        serving_rsrp_dbm: f64,
        sinr_db: f64,
        best_neighbor: Option<(CellId, f64)>,
    ) -> HoDecision {
        // RLF timer.
        if sinr_db < cfg.rlf_qout_db {
            let since = *self.out_of_sync_since.get_or_insert(now);
            if now.saturating_since(since) >= cfg.rlf_timer {
                if let Some((target, _)) = best_neighbor {
                    self.reset();
                    return HoDecision::Rlf(target);
                }
            }
        } else {
            self.out_of_sync_since = None;
        }

        // A3 entry/exit + TTT. The measurement report that executes the
        // handover needs a working uplink: while the serving link is out
        // of sync the TTT may run, but the handover cannot fire — that is
        // precisely the "late handover becomes RLF" failure mode.
        let candidate = best_neighbor
            .filter(|&(_, rsrp)| rsrp > serving_rsrp_dbm + cfg.hysteresis_db)
            .map(|(cell, _)| cell);
        match (candidate, self.entered) {
            (Some(cell), Some((held, since))) if cell == held => {
                if sinr_db >= cfg.rlf_qout_db && now.saturating_since(since) >= cfg.time_to_trigger
                {
                    self.reset();
                    return HoDecision::Handover(cell);
                }
            }
            (Some(cell), _) => self.entered = Some((cell, now)),
            (None, _) => self.entered = None,
        }
        HoDecision::Stay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_sim::SUBFRAME;

    fn cfg() -> A3Config {
        A3Config::default()
    }

    #[test]
    fn a3_requires_sustained_margin() {
        let c = cfg();
        let mut st = A3State::default();
        let mut now = SimTime::ZERO;
        let target = CellId(1);
        // Margin met but not sustained: one blip, then back under.
        assert_eq!(st.decide(&c, now, -80.0, 10.0, Some((target, -75.0))), HoDecision::Stay);
        now += SUBFRAME;
        assert_eq!(st.decide(&c, now, -80.0, 10.0, Some((target, -81.0))), HoDecision::Stay);
        // Sustained for TTT: fires exactly once the timer expires.
        let mut fired = None;
        let start = now;
        for _ in 0..500 {
            now += SUBFRAME;
            if let HoDecision::Handover(t) = st.decide(&c, now, -80.0, 10.0, Some((target, -75.0)))
            {
                fired = Some((t, now));
                break;
            }
        }
        let (t, at) = fired.expect("A3 fires under a sustained margin");
        assert_eq!(t, target);
        assert!(at.saturating_since(start) >= c.time_to_trigger);
    }

    #[test]
    fn hysteresis_blocks_sub_margin_neighbors() {
        let c = cfg();
        let mut st = A3State::default();
        let mut now = SimTime::ZERO;
        for _ in 0..2_000 {
            // Neighbor consistently better, but within the hysteresis.
            let d = st.decide(&c, now, -80.0, 10.0, Some((CellId(2), -78.0)));
            assert_eq!(d, HoDecision::Stay);
            now += SUBFRAME;
        }
    }

    #[test]
    fn rlf_fires_after_sustained_outage_and_beats_a3() {
        let c = cfg();
        let mut st = A3State::default();
        let mut now = SimTime::ZERO;
        let mut rlf_at = None;
        for _ in 0..2_000 {
            // Deep outage *and* a strong neighbor: the stale link fails
            // before the clean handover completes.
            match st.decide(&c, now, -110.0, -12.0, Some((CellId(3), -70.0))) {
                HoDecision::Rlf(t) => {
                    assert_eq!(t, CellId(3));
                    rlf_at = Some(now);
                    break;
                }
                HoDecision::Handover(_) => panic!("RLF must win over A3 here"),
                HoDecision::Stay => {}
            }
            now += SUBFRAME;
        }
        let at = rlf_at.expect("RLF declared");
        assert!(at.saturating_since(SimTime::ZERO) >= c.rlf_timer);
    }

    #[test]
    fn recovering_sinr_clears_the_rlf_timer() {
        let c = cfg();
        let mut st = A3State::default();
        let mut now = SimTime::ZERO;
        for k in 0..2_000u64 {
            // SINR dips below Q_out for 100 ms out of every 300 ms —
            // never long enough for the 200 ms timer.
            let sinr = if k % 300 < 100 { -12.0 } else { 5.0 };
            let d = st.decide(&c, now, -90.0, sinr, Some((CellId(1), -95.0)));
            assert_eq!(d, HoDecision::Stay, "at {k} ms");
            now += SUBFRAME;
        }
    }
}
