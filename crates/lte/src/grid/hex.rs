//! Hexagonal eNodeB lattice geometry.
//!
//! Cells sit on a pointy-side-up hex lattice in axial coordinates
//! `(q, r)`: cell centers are `x = isd·(q + r/2)`, `y = isd·(√3/2)·r`,
//! so adjacent centers are exactly one inter-site distance (ISD) apart
//! and each cell's coverage area is the Voronoi region of its center —
//! a regular hexagon. A grid is the center cell plus `rings` full rings
//! around it (`rings = 1` is the classical 7-cell cluster), enumerated
//! in a deterministic spiral so [`CellId`] assignment never depends on
//! construction order.

/// Index of a cell within a [`HexGrid`] (spiral order, center = 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub usize);

/// The six axial neighbor offsets, in spiral-walk order.
const AXIAL_DIRS: [(i32, i32); 6] = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)];

/// A hex lattice of eNodeB sites.
#[derive(Clone, Debug)]
pub struct HexGrid {
    isd_m: f64,
    /// Axial coordinates in spiral enumeration order.
    axial: Vec<(i32, i32)>,
}

impl HexGrid {
    /// Build the center cell plus `rings` full rings at the given
    /// inter-site distance. `rings = 0` is a single isolated cell.
    pub fn new(rings: usize, isd_m: f64) -> Self {
        assert!(isd_m > 0.0, "inter-site distance must be positive");
        let mut axial = vec![(0, 0)];
        for ring in 1..=rings as i32 {
            // Spiral walk: start `ring` steps along +q·(-1,1)… the usual
            // construction starts at direction 4 scaled by the ring.
            let (mut q, mut r) = (-ring, ring);
            for &(dq, dr) in &AXIAL_DIRS {
                for _ in 0..ring {
                    axial.push((q, r));
                    q += dq;
                    r += dr;
                }
            }
        }
        HexGrid { isd_m, axial }
    }

    /// Number of cells: `1 + 3·rings·(rings+1)`.
    pub fn len(&self) -> usize {
        self.axial.len()
    }

    /// True for a zero-cell grid (never constructed by [`HexGrid::new`]).
    pub fn is_empty(&self) -> bool {
        self.axial.is_empty()
    }

    /// Inter-site distance in meters.
    pub fn isd_m(&self) -> f64 {
        self.isd_m
    }

    /// All cell ids in spiral order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..self.axial.len()).map(CellId)
    }

    /// Axial coordinates of a cell.
    pub fn axial_of(&self, cell: CellId) -> (i32, i32) {
        self.axial[cell.0]
    }

    /// Cartesian center of a cell, meters.
    pub fn center_of(&self, cell: CellId) -> (f64, f64) {
        let (q, r) = self.axial[cell.0];
        let x = self.isd_m * (q as f64 + r as f64 / 2.0);
        let y = self.isd_m * (3.0f64.sqrt() / 2.0) * r as f64;
        (x, y)
    }

    /// The lattice cell holding `(x, y)`, if that cell is in the grid.
    fn lattice_cell(&self, x: f64, y: f64) -> Option<CellId> {
        // Invert the center map to fractional axial, then cube-round:
        // rounding to the nearest lattice point in cube coordinates is
        // exactly the Voronoi (nearest-center) assignment for this
        // lattice.
        let rf = y / (self.isd_m * 3.0f64.sqrt() / 2.0);
        let qf = x / self.isd_m - rf / 2.0;
        let (q, r) = cube_round(qf, rf);
        self.axial.iter().position(|&a| a == (q, r)).map(CellId)
    }

    /// Serving cell for a position: the nearest site in the grid. Inside
    /// the lattice this is the cube-rounded hex lookup (no distance
    /// computations); positions beyond the outer ring fall back to a
    /// nearest-center scan so the lookup is total. Neither path
    /// allocates.
    pub fn serving_cell(&self, x: f64, y: f64) -> CellId {
        if let Some(c) = self.lattice_cell(x, y) {
            return c;
        }
        self.cells()
            .min_by(|&a, &b| {
                self.distance_sq(a, x, y).total_cmp(&self.distance_sq(b, x, y)).then(a.0.cmp(&b.0))
            })
            .expect("grid has at least one cell")
    }

    /// Squared distance from a cell's center to a position.
    pub fn distance_sq(&self, cell: CellId, x: f64, y: f64) -> f64 {
        let (cx, cy) = self.center_of(cell);
        (x - cx) * (x - cx) + (y - cy) * (y - cy)
    }

    /// Distance from a cell's center to a position, meters.
    pub fn distance_m(&self, cell: CellId, x: f64, y: f64) -> f64 {
        self.distance_sq(cell, x, y).sqrt()
    }

    /// The in-grid lattice neighbors of a cell (≤ 6), in direction order.
    pub fn neighbors(&self, cell: CellId) -> impl Iterator<Item = CellId> + '_ {
        let (q, r) = self.axial[cell.0];
        AXIAL_DIRS.iter().filter_map(move |&(dq, dr)| {
            self.axial.iter().position(|&a| a == (q + dq, r + dr)).map(CellId)
        })
    }

    /// Half-width of the grid's bounding region: the distance from the
    /// origin to the outermost cell center plus one cell radius. Mobility
    /// models use it to keep trajectories in coverage.
    pub fn extent_m(&self) -> f64 {
        let outer =
            self.cells().map(|c| self.distance_sq(c, 0.0, 0.0)).fold(0.0f64, f64::max).sqrt();
        outer + self.isd_m / 2.0
    }
}

/// Round fractional axial coordinates to the nearest lattice point via
/// cube coordinates (`x + y + z = 0`), fixing the axis with the largest
/// rounding error.
fn cube_round(qf: f64, rf: f64) -> (i32, i32) {
    let sf = -qf - rf;
    let (mut q, mut r, s) = (qf.round(), rf.round(), sf.round());
    let (dq, dr, ds) = ((q - qf).abs(), (r - rf).abs(), (s - sf).abs());
    if dq > dr && dq > ds {
        q = -r - s;
    } else if dr > ds {
        r = -q - s;
    }
    (q as i32, r as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_counts_follow_the_centered_hex_numbers() {
        for (rings, n) in [(0usize, 1usize), (1, 7), (2, 19), (3, 37)] {
            assert_eq!(HexGrid::new(rings, 500.0).len(), n, "rings {rings}");
        }
    }

    #[test]
    fn adjacent_centers_are_one_isd_apart() {
        let g = HexGrid::new(2, 400.0);
        for c in g.cells() {
            for n in g.neighbors(c) {
                let (x, y) = g.center_of(n);
                let d = g.distance_m(c, x, y);
                assert!((d - 400.0).abs() < 1e-6, "{c:?}->{n:?} at {d}");
            }
        }
    }

    #[test]
    fn centers_map_back_to_their_cell() {
        let g = HexGrid::new(2, 500.0);
        for c in g.cells() {
            let (x, y) = g.center_of(c);
            assert_eq!(g.serving_cell(x, y), c);
        }
    }

    #[test]
    fn lookup_is_nearest_center() {
        let g = HexGrid::new(1, 300.0);
        // Deterministic scatter over the grid, including points outside.
        for k in 0..500 {
            let x = ((k * 37) % 1_400) as f64 - 700.0;
            let y = ((k * 61) % 1_400) as f64 - 700.0;
            let got = g.serving_cell(x, y);
            let best = g
                .cells()
                .min_by(|&a, &b| g.distance_sq(a, x, y).total_cmp(&g.distance_sq(b, x, y)))
                .unwrap();
            let (dg, db) = (g.distance_sq(got, x, y), g.distance_sq(best, x, y));
            assert!((dg - db).abs() < 1e-6, "({x},{y}): got {got:?} best {best:?}");
        }
    }

    #[test]
    fn center_cell_has_six_neighbors_edge_cells_fewer() {
        let g = HexGrid::new(1, 500.0);
        assert_eq!(g.neighbors(CellId(0)).count(), 6);
        for c in g.cells().skip(1) {
            assert_eq!(g.neighbors(c).count(), 3, "{c:?}");
        }
    }

    #[test]
    fn extent_covers_every_center() {
        let g = HexGrid::new(2, 500.0);
        for c in g.cells() {
            let (x, y) = g.center_of(c);
            assert!((x * x + y * y).sqrt() <= g.extent_m());
        }
    }
}
