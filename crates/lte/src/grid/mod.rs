//! The network layer above a single cell: eNodeB geometry, UE mobility,
//! radio-map path loss with neighbor-cell interference, and A3 handover.
//!
//! The paper's field study was pinned to whatever commercial cell the
//! instrumented phone happened to camp on; this module builds the
//! multi-cell world those experiments could not control. A [`hex::HexGrid`]
//! places eNodeBs, [`mobility::GroundMotion`] drives UEs across cell
//! boundaries, [`RadioMap`] turns positions into per-UE SINR/CQI with
//! distance + shadowing path loss and previous-subframe neighbor-cell
//! activity as interference, and [`handover::A3State`] decides when a UE
//! detaches from its serving [`crate::cell::Cell`] and re-attaches on the
//! target (its firmware buffer travels with it; a late handover becomes an
//! RLF that flushes the buffer through the same RRC re-establishment path
//! the fault plane exercises).
//!
//! Everything here is deterministic: each UE's shadowing and trajectory
//! come from streams keyed by the UE's *name*, and interference uses the
//! previous subframe's published cell activity, so a lockstep multi-cell
//! run is a pure function of its master seed regardless of attach order
//! or thread count.

pub mod handover;
pub mod hex;
pub mod mobility;

pub use handover::{A3Config, A3State, HoDecision};
pub use hex::{CellId, HexGrid};
pub use mobility::{GroundMotion, MobilityKind};

use crate::channel::ChannelState;
use crate::tbs;
use poi360_sim::process::OrnsteinUhlenbeck;
use poi360_sim::rng::SimRng;
use poi360_sim::time::SimDuration;

/// Path-loss / interference model parameters.
///
/// Log-distance path loss `PL(d) = pl0 + 10·n·log10(max(d, d0)/d0)` with
/// per-(UE, cell) log-normal shadowing, calibrated so a UE near a site
/// sees the paper's strong-signal tier (CQI 15) and a cell-edge UE on a
/// half-loaded grid lands in the moderate tier.
#[derive(Clone, Copy, Debug)]
pub struct RadioConfig {
    /// eNodeB reference transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance, dB.
    pub pl0_db: f64,
    /// Reference distance, meters.
    pub d0_m: f64,
    /// Path-loss exponent.
    pub exponent: f64,
    /// Thermal noise floor, dBm.
    pub noise_dbm: f64,
    /// Shadowing stationary std, dB.
    pub shadow_std_db: f64,
    /// Shadowing correlation time, seconds.
    pub shadow_tau_secs: f64,
    /// SINR below which the UE cannot hold uplink sync (grants stop).
    pub outage_sinr_db: f64,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            tx_power_dbm: 10.0,
            pl0_db: 70.0,
            d0_m: 25.0,
            exponent: 3.0,
            noise_dbm: -100.0,
            shadow_std_db: 3.0,
            shadow_tau_secs: 8.0,
            outage_sinr_db: -6.0,
        }
    }
}

impl RadioConfig {
    /// Deterministic (shadowing-free) RSRP at distance `d_m`, dBm.
    pub fn mean_rsrp_dbm(&self, d_m: f64) -> f64 {
        let d = d_m.max(self.d0_m);
        self.tx_power_dbm - self.pl0_db - 10.0 * self.exponent * (d / self.d0_m).log10()
    }
}

/// Handle to a UE registered with a [`RadioMap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RadioUe(usize);

/// One subframe's radio measurements for a UE.
#[derive(Clone, Copy, Debug)]
pub struct RadioObservation {
    /// Serving-cell RSRP, dBm (with shadowing).
    pub serving_rsrp_dbm: f64,
    /// Strongest non-serving cell and its RSRP, dBm.
    pub best_neighbor: Option<(CellId, f64)>,
    /// Serving SINR with neighbor-cell interference, dB.
    pub sinr_db: f64,
}

impl RadioObservation {
    /// The [`ChannelState`] a cell should schedule this UE with.
    /// `forced_outage` covers handover/re-establishment interruption.
    pub fn channel_state(&self, cfg: &RadioConfig, forced_outage: bool) -> ChannelState {
        ChannelState {
            sinr_db: self.sinr_db,
            cqi: tbs::sinr_to_cqi(self.sinr_db),
            in_outage: forced_outage || self.sinr_db < cfg.outage_sinr_db,
        }
    }
}

/// Per-(UE, cell) radio state: path loss from the grid geometry plus an
/// independent Ornstein–Uhlenbeck shadowing track toward every site.
pub struct RadioMap {
    cfg: RadioConfig,
    grid: HexGrid,
    /// UE-major `[ue * n_cells + cell]` shadowing processes.
    shadows: Vec<OrnsteinUhlenbeck>,
    /// One RNG per UE (keyed by name) driving all its shadowing tracks.
    rngs: Vec<SimRng>,
    /// Per-call RSRP staging, reused so steady state never allocates.
    rsrp_scratch: Vec<f64>,
}

impl RadioMap {
    /// Build an empty map over the grid.
    pub fn new(cfg: RadioConfig, grid: HexGrid) -> Self {
        let n = grid.len();
        RadioMap { cfg, grid, shadows: Vec::new(), rngs: Vec::new(), rsrp_scratch: vec![0.0; n] }
    }

    /// Model parameters in use.
    pub fn config(&self) -> &RadioConfig {
        &self.cfg
    }

    /// The grid geometry this map covers.
    pub fn grid(&self) -> &HexGrid {
        &self.grid
    }

    /// Register a UE. All its shadowing randomness derives from
    /// `master_seed` and `name`, so registration order is irrelevant.
    pub fn register_ue(&mut self, master_seed: u64, name: &str) -> RadioUe {
        let mut rng = SimRng::stream(master_seed, &format!("grid.shadow.{name}"));
        for _ in 0..self.grid.len() {
            let mut ou = OrnsteinUhlenbeck::with_stationary(
                0.0,
                self.cfg.shadow_std_db,
                self.cfg.shadow_tau_secs,
            );
            // Start each track at a stationary draw, not at zero, so the
            // first seconds of a run are not artificially shadow-free.
            ou.set_value(rng.normal(0.0, self.cfg.shadow_std_db));
            self.shadows.push(ou);
        }
        self.rngs.push(rng);
        RadioUe(self.rngs.len() - 1)
    }

    /// Advance one UE's shadowing by `dt` and measure the radio at
    /// `(x, y)`. `activity` is each cell's previous-subframe PRB
    /// utilization in `[0, 1]`, which scales its interference
    /// contribution; `serving` selects whose signal is the numerator.
    pub fn observe(
        &mut self,
        ue: RadioUe,
        dt: SimDuration,
        x: f64,
        y: f64,
        serving: CellId,
        activity: &[f64],
    ) -> RadioObservation {
        let n = self.grid.len();
        debug_assert_eq!(activity.len(), n);
        let rng = &mut self.rngs[ue.0];
        for c in 0..n {
            let shadow = self.shadows[ue.0 * n + c].step(dt, rng);
            let d = self.grid.distance_m(CellId(c), x, y);
            self.rsrp_scratch[c] = self.cfg.mean_rsrp_dbm(d) + shadow;
        }

        let serving_rsrp_dbm = self.rsrp_scratch[serving.0];
        let mut best_neighbor: Option<(CellId, f64)> = None;
        let mut interference_mw = 0.0;
        for (c, &rsrp) in self.rsrp_scratch.iter().enumerate() {
            if c == serving.0 {
                continue;
            }
            // Reciprocity proxy for uplink inter-cell interference: the
            // louder a neighbor site sounds to this UE and the busier
            // that cell was last subframe, the more its uplink traffic
            // degrades this UE's grants.
            interference_mw += dbm_to_mw(rsrp) * activity[c].clamp(0.0, 1.0);
            if best_neighbor.is_none_or(|(_, b)| rsrp > b) {
                best_neighbor = Some((CellId(c), rsrp));
            }
        }
        let denom_mw = dbm_to_mw(self.cfg.noise_dbm) + interference_mw;
        let sinr_db = serving_rsrp_dbm - mw_to_dbm(denom_mw);
        RadioObservation { serving_rsrp_dbm, best_neighbor, sinr_db }
    }
}

fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_sim::SUBFRAME;

    fn map() -> RadioMap {
        RadioMap::new(RadioConfig::default(), HexGrid::new(1, 500.0))
    }

    #[test]
    fn near_site_is_top_cqi_far_site_is_not() {
        let mut m = map();
        let ue = m.register_ue(1, "ue.0");
        let idle = vec![0.0; 7];
        let near = m.observe(ue, SUBFRAME, 30.0, 0.0, CellId(0), &idle);
        assert!(near.sinr_db > 20.0, "near-site SINR {}", near.sinr_db);
        assert_eq!(near.channel_state(m.config(), false).cqi, 15);
        let far = m.observe(ue, SUBFRAME, 420.0, 0.0, CellId(0), &idle);
        assert!(far.sinr_db < near.sinr_db - 10.0, "far {} near {}", far.sinr_db, near.sinr_db);
    }

    #[test]
    fn busy_neighbors_depress_sinr() {
        let mut m = map();
        let ue = m.register_ue(2, "ue.0");
        // Cell edge between site 0 (origin) and its +x neighbor.
        let (x, y) = (250.0, 0.0);
        let quiet = m.observe(ue, SUBFRAME, x, y, CellId(0), &[0.0; 7]);
        let busy = m.observe(ue, SUBFRAME, x, y, CellId(0), &[0.8; 7]);
        assert!(
            busy.sinr_db < quiet.sinr_db - 3.0,
            "busy {} quiet {}",
            busy.sinr_db,
            quiet.sinr_db
        );
    }

    #[test]
    fn best_neighbor_tracks_geometry() {
        let cfg = RadioConfig { shadow_std_db: 0.0, ..RadioConfig::default() };
        let mut m0 = RadioMap::new(cfg, HexGrid::new(1, 500.0));
        let ue = m0.register_ue(3, "ue.0");
        let obs = m0.observe(ue, SUBFRAME, 350.0, 0.0, CellId(0), &[0.2; 7]);
        // The +x neighbor's center is at (500, 0): 150 m away vs 350 m.
        let (target, rsrp) = obs.best_neighbor.expect("six neighbors exist");
        let (cx, cy) = m0.grid().center_of(target);
        assert_eq!((cx, cy), (500.0, 0.0));
        assert!(rsrp > obs.serving_rsrp_dbm);
    }

    #[test]
    fn registration_order_does_not_change_a_ue_track() {
        let run = |names: &[&str]| {
            let mut m = map();
            let ues: Vec<RadioUe> = names.iter().map(|n| m.register_ue(7, n)).collect();
            let target = ues[names.iter().position(|&n| n == "ue.x").unwrap()];
            let act = vec![0.3; 7];
            (0..2_000)
                .map(|_| m.observe(target, SUBFRAME, 200.0, 50.0, CellId(0), &act).sinr_db)
                .collect::<Vec<f64>>()
        };
        let a = run(&["ue.x", "ue.y", "ue.z"]);
        let b = run(&["ue.z", "ue.y", "ue.x"]);
        assert_eq!(a, b, "a UE's shadowing must be keyed by name, not index");
    }
}
