//! Ground mobility over the hex grid.
//!
//! The viewport crate models *head* motion as a behaviour enum over an
//! acceleration-limited integrator; this module is the same idea at
//! street scale: each UE owns a [`GroundMotion`] that integrates a 2-D
//! position at a behaviour-specific velocity, with all randomness drawn
//! from the UE's own named stream so the population is order-independent
//! (attach order and population size never change an individual
//! trajectory).
//!
//! Three behaviours cover the scenarios the paper could not measure:
//!
//! * [`MobilityKind::Convoy`] — the whole population drives a common
//!   heading at a common speed (staggered starting positions), crossing
//!   cell boundaries together: the repeated-handover stress case.
//! * [`MobilityKind::Waypoint`] — classic random-waypoint inside the
//!   grid's coverage disc: uncorrelated individual mobility.
//! * [`MobilityKind::FlashCrowd`] — everyone converges from the rim
//!   toward a rendezvous cell and parks there: mobility that *ends* in
//!   the load concentration the fault plane's flash crowd injects
//!   directly.

use super::hex::HexGrid;
use poi360_sim::rng::SimRng;
use poi360_sim::time::SimDuration;

/// Which trajectory family a scenario uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MobilityKind {
    /// Common heading, common speed, staggered starts along the route.
    Convoy,
    /// Random waypoints inside the grid's coverage disc.
    Waypoint,
    /// Converge on a rendezvous point, then park.
    FlashCrowd,
}

/// Behaviour-specific state.
#[derive(Clone, Debug)]
enum Behaviour {
    /// Fixed velocity, meters/second per axis.
    Convoy { vx: f64, vy: f64 },
    /// Current leg toward `(tx, ty)`; a new target is drawn uniformly
    /// from the `roam`-radius disc on arrival.
    Waypoint { tx: f64, ty: f64, pause_left: SimDuration, roam: f64 },
    /// Head toward `(tx, ty)` and stop within one step of it.
    FlashCrowd { tx: f64, ty: f64 },
}

/// One UE's trajectory integrator.
#[derive(Clone, Debug)]
pub struct GroundMotion {
    x: f64,
    y: f64,
    speed_mps: f64,
    behaviour: Behaviour,
    rng: SimRng,
}

impl GroundMotion {
    /// Build UE `index` of `count` for the given behaviour. All draws
    /// come from a stream keyed by `master_seed` and the UE's name, so
    /// trajectories are independent of population size and attach order.
    pub fn new(
        kind: MobilityKind,
        grid: &HexGrid,
        speed_mps: f64,
        master_seed: u64,
        name: &str,
        index: usize,
        count: usize,
    ) -> Self {
        let mut rng = SimRng::stream(master_seed, &format!("grid.motion.{name}"));
        let isd = grid.isd_m();
        let extent = grid.extent_m();
        match kind {
            MobilityKind::Convoy => {
                // The convoy drives the +x axis through the row of cell
                // centers at y = 0; boundaries sit at odd multiples of
                // isd/2. Starts are staggered across [-1.25, -0.55]·isd
                // (all inside the q = -1 cell) so every vehicle crosses
                // at least one boundary early in the run, plus a small
                // lane jitter so UEs are not radio-identical.
                let frac = if count <= 1 { 0.5 } else { index as f64 / (count - 1) as f64 };
                let x = -isd * (1.25 - 0.70 * frac);
                let y = rng.uniform_range(-0.08, 0.08) * isd;
                GroundMotion {
                    x,
                    y,
                    speed_mps,
                    behaviour: Behaviour::Convoy { vx: speed_mps, vy: 0.0 },
                    rng,
                }
            }
            MobilityKind::Waypoint => {
                let roam = extent * 0.9;
                let (x, y) = uniform_in_disc(&mut rng, roam);
                let (tx, ty) = uniform_in_disc(&mut rng, roam);
                GroundMotion {
                    x,
                    y,
                    speed_mps,
                    behaviour: Behaviour::Waypoint { tx, ty, pause_left: SimDuration::ZERO, roam },
                    rng,
                }
            }
            MobilityKind::FlashCrowd => {
                // Start near the rim, converge on the center cell.
                let angle = rng.uniform_range(0.0, std::f64::consts::TAU);
                let radius = extent * rng.uniform_range(0.55, 0.95);
                let (tx, ty) = uniform_in_disc(&mut rng, isd * 0.25);
                GroundMotion {
                    x: radius * angle.cos(),
                    y: radius * angle.sin(),
                    speed_mps,
                    behaviour: Behaviour::FlashCrowd { tx, ty },
                    rng,
                }
            }
        }
    }

    /// Current position, meters.
    pub fn position(&self) -> (f64, f64) {
        (self.x, self.y)
    }

    /// Advance the trajectory by `dt` and return the new position.
    pub fn step(&mut self, dt: SimDuration) -> (f64, f64) {
        let dt_s = dt.as_secs_f64();
        match &mut self.behaviour {
            Behaviour::Convoy { vx, vy } => {
                self.x += *vx * dt_s;
                self.y += *vy * dt_s;
            }
            Behaviour::Waypoint { tx, ty, pause_left, roam } => {
                if !pause_left.is_zero() {
                    *pause_left = pause_left.saturating_sub(dt);
                } else {
                    let (dx, dy) = (*tx - self.x, *ty - self.y);
                    let dist = (dx * dx + dy * dy).sqrt();
                    let hop = self.speed_mps * dt_s;
                    if dist <= hop {
                        self.x = *tx;
                        self.y = *ty;
                        // Arrived: dwell, then pick the next waypoint.
                        *pause_left = SimDuration::from_secs_f64(self.rng.uniform_range(0.5, 3.0));
                        let (nx, ny) = uniform_in_disc(&mut self.rng, *roam);
                        *tx = nx;
                        *ty = ny;
                    } else {
                        self.x += dx / dist * hop;
                        self.y += dy / dist * hop;
                    }
                }
            }
            Behaviour::FlashCrowd { tx, ty } => {
                let (dx, dy) = (*tx - self.x, *ty - self.y);
                let dist = (dx * dx + dy * dy).sqrt();
                let hop = self.speed_mps * dt_s;
                if dist > hop {
                    self.x += dx / dist * hop;
                    self.y += dy / dist * hop;
                } else {
                    self.x = *tx;
                    self.y = *ty;
                }
            }
        }
        (self.x, self.y)
    }
}

/// Uniform draw from a disc of the given radius around the origin.
fn uniform_in_disc(rng: &mut SimRng, radius: f64) -> (f64, f64) {
    let angle = rng.uniform_range(0.0, std::f64::consts::TAU);
    let r = radius * rng.uniform().sqrt();
    (r * angle.cos(), r * angle.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> HexGrid {
        HexGrid::new(1, 500.0)
    }

    fn run(kind: MobilityKind, seed: u64, steps: usize) -> Vec<(f64, f64)> {
        let g = grid();
        let mut m = GroundMotion::new(kind, &g, 20.0, seed, "ue.0", 0, 8);
        (0..steps).map(|_| m.step(SimDuration::from_millis(100))).collect()
    }

    #[test]
    fn trajectories_are_deterministic_per_name() {
        for kind in [MobilityKind::Convoy, MobilityKind::Waypoint, MobilityKind::FlashCrowd] {
            assert_eq!(run(kind, 9, 500), run(kind, 9, 500));
        }
    }

    #[test]
    fn convoy_crosses_the_first_boundary() {
        let g = grid();
        let mut m = GroundMotion::new(MobilityKind::Convoy, &g, 20.0, 1, "ue.3", 3, 8);
        let start = g.serving_cell(m.position().0, m.position().1);
        let mut crossed = false;
        for _ in 0..30_000 {
            let (x, y) = m.step(poi360_sim::SUBFRAME);
            if g.serving_cell(x, y) != start {
                crossed = true;
                break;
            }
        }
        assert!(crossed, "a convoy vehicle must leave its starting cell within 30s");
    }

    #[test]
    fn waypoint_stays_in_coverage() {
        let g = grid();
        let extent = g.extent_m();
        let mut m = GroundMotion::new(MobilityKind::Waypoint, &g, 15.0, 2, "ue.1", 1, 4);
        for _ in 0..60_000 {
            let (x, y) = m.step(poi360_sim::SUBFRAME);
            let r = (x * x + y * y).sqrt();
            assert!(r <= extent * 1.05, "wandered to {r} (extent {extent})");
        }
    }

    #[test]
    fn flash_crowd_converges_and_parks() {
        let g = grid();
        let mut m = GroundMotion::new(MobilityKind::FlashCrowd, &g, 20.0, 3, "ue.2", 2, 16);
        let mut last = (0.0, 0.0);
        for _ in 0..120_000 {
            last = m.step(poi360_sim::SUBFRAME);
        }
        let r = (last.0 * last.0 + last.1 * last.1).sqrt();
        assert!(r <= g.isd_m() * 0.3, "crowd member ended {r} m from the rendezvous");
        // Parked: a further step moves nothing.
        let next = m.step(poi360_sim::SUBFRAME);
        assert_eq!(next, last);
    }
}
