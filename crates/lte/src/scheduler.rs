//! eNodeB proportional-fair uplink grant model.
//!
//! What FBCC exploits is not the PF algorithm in full generality but its
//! observable consequence at the UE (paper §3.3, Fig. 5): *the uplink
//! service rate grows with the UE's reported backlog and saturates at the
//! UE's fair share of cell capacity*. The grant model reproduces exactly
//! that:
//!
//! ```text
//! grant_bits = cap_bits(cqi, share_prbs) · B / (B + B_half)
//! ```
//!
//! * `share_prbs` is the UE's PF share of PRBs — reduced when competing
//!   cell load is high, and boosted for poor-channel UEs (PF equalizes
//!   long-term *rates*, so it hands more PRBs to slow channels).
//! * The saturating factor `B/(B+B_half)` models backlog-weighted PRB
//!   allocation: small reported backlogs earn proportionally small grants
//!   (the eNodeB spends PRBs where queues are), which is the linear region
//!   of Fig. 5; large backlogs saturate at the fair share.
//! * A 10 % initial-transmission HARQ failure rate wastes the occasional
//!   grant, as on a real 10 %-BLER operating point.

use crate::tbs;
use poi360_sim::rng::SimRng;

/// Scheduler model parameters.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// PF share of PRBs for this UE at top CQI in an idle cell.
    pub ue_base_prbs: f64,
    /// Cap on PF compensation for poor channels.
    pub max_prbs: u32,
    /// Backlog at which the grant reaches half its saturation value
    /// (bytes). Sets the slope of the Fig. 5 linear region.
    pub backlog_half_bytes: f64,
    /// Delay between the buffer level existing and the eNodeB knowing it
    /// (BSR/SR reporting latency), in subframes.
    pub bsr_delay_subframes: usize,
    /// Probability an initial HARQ transmission fails and the grant is
    /// wasted (re-served later).
    pub harq_fail_prob: f64,
    /// Fraction of the UE's PRB share lost when the cell is fully loaded.
    pub load_prb_penalty: f64,
    /// Per-subframe multiplicative jitter half-width on the share
    /// (scheduler decisions are noisy: other UEs' traffic is bursty).
    pub share_jitter: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            ue_base_prbs: 8.0,
            max_prbs: 25,
            backlog_half_bytes: 4_000.0,
            bsr_delay_subframes: 6,
            harq_fail_prob: 0.10,
            load_prb_penalty: 0.7,
            share_jitter: 0.15,
        }
    }
}

/// The grant engine.
#[derive(Clone, Debug)]
pub struct PfScheduler {
    cfg: SchedulerConfig,
    rng: SimRng,
}

impl PfScheduler {
    /// Create a scheduler.
    pub fn new(cfg: SchedulerConfig, seed: u64) -> Self {
        PfScheduler { cfg, rng: SimRng::stream(seed, "lte.scheduler") }
    }

    /// Configuration in use.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// The UE's PRB share this subframe given channel and cell load.
    fn share_prbs(&mut self, eff: f64, load_frac: f64) -> f64 {
        if eff <= 0.0 {
            return 0.0;
        }
        // PF long-term rate equalization: poor channels get more PRBs,
        // sub-linearly (sqrt) so capacity still degrades with channel.
        let pf_boost = (tbs::cqi_efficiency(tbs::MAX_CQI) / eff).sqrt();
        let jitter = 1.0 + self.rng.uniform_range(-self.cfg.share_jitter, self.cfg.share_jitter);
        let share = self.cfg.ue_base_prbs
            * pf_boost
            * jitter
            * (1.0 - self.cfg.load_prb_penalty * load_frac.clamp(0.0, 1.0));
        share.clamp(0.0, self.cfg.max_prbs as f64)
    }

    /// Grant for this subframe, in bits actually served (0 on HARQ loss).
    ///
    /// `reported_backlog_bytes` is the BSR-delayed buffer level the eNodeB
    /// believes; `load_frac` the competing cell load in `[0, 1]`.
    pub fn grant_bits(&mut self, reported_backlog_bytes: u64, cqi: u8, load_frac: f64) -> u32 {
        self.grant_bits_eff(reported_backlog_bytes, tbs::cqi_efficiency(cqi), load_frac)
    }

    /// Like [`PfScheduler::grant_bits`] but taking a smooth spectral
    /// efficiency (bits/RE) directly — what the uplink uses, fed from
    /// [`tbs::smooth_efficiency`].
    pub fn grant_bits_eff(&mut self, reported_backlog_bytes: u64, eff: f64, load_frac: f64) -> u32 {
        if eff <= 0.0 || reported_backlog_bytes == 0 {
            return 0;
        }
        let share = self.share_prbs(eff, load_frac);
        let cap_bits = eff * tbs::DATA_RE_PER_PRB * share;
        let b = reported_backlog_bytes as f64;
        // PF weighs backlog in queue *time*, not bytes: the half-saturation
        // backlog scales with the UE's own service rate, so a slow link
        // saturates its share from a proportionally smaller queue (and the
        // mandatory standing-queue *delay* is rate-independent).
        let nominal_cap = tbs::bits_per_prb(tbs::MAX_CQI) * self.cfg.ue_base_prbs;
        let half = (self.cfg.backlog_half_bytes * (cap_bits / nominal_cap).min(2.0)).max(250.0);
        let factor = b / (b + half);
        // Never grant (much) beyond the reported backlog.
        let grant = (cap_bits * factor).min(b * 8.0 + 256.0);
        if self.rng.chance(self.cfg.harq_fail_prob) {
            return 0; // initial transmission lost; retransmission reuses a later grant
        }
        grant.floor() as u32
    }

    /// The saturation throughput (bits per subframe) at the given channel
    /// and load, i.e. the asymptote of the Fig. 5 curve.
    pub fn saturation_bits_per_subframe(&self, cqi: u8, load_frac: f64) -> f64 {
        if cqi == 0 {
            return 0.0;
        }
        let pf_boost = (tbs::cqi_efficiency(tbs::MAX_CQI) / tbs::cqi_efficiency(cqi)).sqrt();
        let share = (self.cfg.ue_base_prbs
            * pf_boost
            * (1.0 - self.cfg.load_prb_penalty * load_frac.clamp(0.0, 1.0)))
        .clamp(0.0, self.cfg.max_prbs as f64);
        tbs::bits_per_prb(cqi) * share * (1.0 - self.cfg.harq_fail_prob)
    }

    /// Reference to the share-jitter-free rate ceiling at a given smooth
    /// efficiency (for tests).
    pub fn nominal_cap_bits_eff(&self, eff: f64, load_frac: f64) -> f64 {
        if eff <= 0.0 {
            return 0.0;
        }
        let pf_boost = (tbs::cqi_efficiency(tbs::MAX_CQI) / eff).sqrt();
        let share = (self.cfg.ue_base_prbs
            * pf_boost
            * (1.0 - self.cfg.load_prb_penalty * load_frac.clamp(0.0, 1.0)))
        .clamp(0.0, self.cfg.max_prbs as f64);
        eff * tbs::DATA_RE_PER_PRB * share * (1.0 - self.cfg.harq_fail_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_grant(backlog: u64, cqi: u8, load: f64, seed: u64) -> f64 {
        let mut s = PfScheduler::new(SchedulerConfig::default(), seed);
        let n = 20_000;
        (0..n).map(|_| s.grant_bits(backlog, cqi, load) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn zero_backlog_zero_grant() {
        let mut s = PfScheduler::new(SchedulerConfig::default(), 1);
        assert_eq!(s.grant_bits(0, 15, 0.0), 0);
    }

    #[test]
    fn zero_cqi_zero_grant() {
        let mut s = PfScheduler::new(SchedulerConfig::default(), 2);
        assert_eq!(s.grant_bits(10_000, 0, 0.0), 0);
    }

    #[test]
    fn grant_grows_with_backlog_then_saturates() {
        // The Fig. 5 shape: monotone growth, saturating.
        let g2 = mean_grant(2_000, 15, 0.15, 3);
        let g8 = mean_grant(8_000, 15, 0.15, 3);
        let g15 = mean_grant(15_000, 15, 0.15, 3);
        let g40 = mean_grant(40_000, 15, 0.15, 3);
        let g80 = mean_grant(80_000, 15, 0.15, 3);
        assert!(g2 < g8 && g8 < g15 && g15 < g40, "{g2} {g8} {g15} {g40}");
        // Saturation: doubling a large backlog gains little.
        assert!((g80 - g40) / g40 < 0.12, "g40 {g40} g80 {g80}");
    }

    #[test]
    fn saturation_rate_in_papers_ballpark() {
        // Fig. 5's y-axis tops out around 5–6 Mbps.
        let s = PfScheduler::new(SchedulerConfig::default(), 4);
        let sat_mbps = s.saturation_bits_per_subframe(15, 0.15) * 1000.0 / 1e6;
        assert!((3.0..6.5).contains(&sat_mbps), "saturation {sat_mbps} Mbps");
    }

    #[test]
    fn empirical_matches_analytic_saturation() {
        let s = PfScheduler::new(SchedulerConfig::default(), 5);
        let analytic = s.saturation_bits_per_subframe(15, 0.0);
        let measured = mean_grant(500_000, 15, 0.0, 5);
        assert!((measured / analytic - 1.0).abs() < 0.1, "measured {measured} analytic {analytic}");
    }

    #[test]
    fn load_reduces_grants() {
        let idle = mean_grant(20_000, 15, 0.1, 6);
        let busy = mean_grant(20_000, 15, 0.7, 6);
        assert!(busy < idle * 0.75, "busy {busy} idle {idle}");
    }

    #[test]
    fn pf_compensates_weak_channels_partially() {
        let strong = mean_grant(50_000, 15, 0.15, 7);
        let weak = mean_grant(50_000, 2, 0.15, 7);
        // Weak channel is slower…
        assert!(weak < strong * 0.5, "weak {weak} strong {strong}");
        // …but not proportionally to raw spectral efficiency (PF boost):
        let eff_ratio = tbs::cqi_efficiency(2) / tbs::cqi_efficiency(15);
        assert!(weak / strong > eff_ratio * 1.5, "PF boost missing");
    }

    #[test]
    fn harq_costs_about_its_probability() {
        let cfg = SchedulerConfig { harq_fail_prob: 0.0, ..Default::default() };
        let mut s0 = PfScheduler::new(cfg, 8);
        let n = 20_000;
        let no_harq: f64 =
            (0..n).map(|_| s0.grant_bits(50_000, 15, 0.15) as f64).sum::<f64>() / n as f64;
        let with_harq = mean_grant(50_000, 15, 0.15, 8);
        let ratio = with_harq / no_harq;
        assert!((ratio - 0.9).abs() < 0.04, "HARQ ratio {ratio}");
    }

    #[test]
    fn grant_never_wildly_exceeds_backlog() {
        let mut s = PfScheduler::new(SchedulerConfig::default(), 9);
        for _ in 0..1_000 {
            let g = s.grant_bits(100, 15, 0.0);
            assert!(g <= 100 * 8 + 256, "grant {g} for 100-byte backlog");
        }
    }
}
