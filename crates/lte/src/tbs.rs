//! CQI / MCS / transport-block-size tables.
//!
//! Shapes follow 3GPP TS 36.213: the CQI table maps SINR to one of 15
//! modulation-and-coding operating points with spectral efficiencies from
//! 0.1523 to 5.5547 bit/s/Hz; a physical resource block (PRB) carries
//! 12 subcarriers × 14 OFDM symbols per 1 ms subframe, of which ~75 % remain
//! after reference signals and L1/L2 control overhead.

/// Highest CQI index.
pub const MAX_CQI: u8 = 15;

/// Resource elements usable for data per PRB per subframe
/// (12 subcarriers × 14 symbols × 75 % after overhead).
pub const DATA_RE_PER_PRB: f64 = 12.0 * 14.0 * 0.75;

/// Spectral efficiency (bits per resource element) for each CQI, from the
/// 36.213 CQI table. Index 0 = out of range (no transmission).
const CQI_EFFICIENCY: [f64; 16] = [
    0.0, 0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766, 1.9141, 2.4063, 2.7305, 3.3223,
    3.9023, 4.5234, 5.1152, 5.5547,
];

/// SINR (dB) thresholds at which each CQI becomes usable (10 % BLER
/// operating points, standard link-level fit: CQI ≈ (SINR + 6.7) / 1.9).
const CQI_SINR_THRESHOLDS: [f64; 16] = [
    f64::NEG_INFINITY,
    -6.7,
    -4.8,
    -2.9,
    -1.0,
    0.9,
    2.8,
    4.7,
    6.6,
    8.5,
    10.4,
    12.3,
    14.2,
    16.1,
    18.0,
    19.9,
];

/// Map an SINR to the highest CQI whose threshold it clears.
pub fn sinr_to_cqi(sinr_db: f64) -> u8 {
    let mut cqi = 0u8;
    for (k, &thr) in CQI_SINR_THRESHOLDS.iter().enumerate() {
        if sinr_db >= thr {
            cqi = k as u8;
        }
    }
    cqi
}

/// Spectral efficiency (bits per RE) of a CQI.
pub fn cqi_efficiency(cqi: u8) -> f64 {
    CQI_EFFICIENCY[(cqi as usize).min(15)]
}

/// Data bits one PRB carries in one subframe at the given CQI.
pub fn bits_per_prb(cqi: u8) -> f64 {
    cqi_efficiency(cqi) * DATA_RE_PER_PRB
}

/// Transport block size (bits) for a grant of `prbs` PRBs at `cqi`.
pub fn tbs_bits(cqi: u8, prbs: u32) -> u32 {
    (bits_per_prb(cqi) * prbs as f64).floor() as u32
}

/// Smooth spectral efficiency for an SINR: piecewise-linear interpolation
/// between the CQI operating points. Real link adaptation picks among ~29
/// MCS levels plus power control, so the achievable efficiency is far
/// smoother than the 15-step CQI table; using the raw table makes capacity
/// jump by tens of percent at band edges, which no real scheduler does.
pub fn smooth_efficiency(sinr_db: f64) -> f64 {
    if sinr_db < CQI_SINR_THRESHOLDS[1] {
        return 0.0;
    }
    if sinr_db >= CQI_SINR_THRESHOLDS[15] {
        return CQI_EFFICIENCY[15];
    }
    for k in 1..15 {
        let (lo, hi) = (CQI_SINR_THRESHOLDS[k], CQI_SINR_THRESHOLDS[k + 1]);
        if sinr_db < hi {
            let frac = (sinr_db - lo) / (hi - lo);
            return CQI_EFFICIENCY[k] + frac * (CQI_EFFICIENCY[k + 1] - CQI_EFFICIENCY[k]);
        }
    }
    CQI_EFFICIENCY[15]
}

/// PRBs needed to move `bytes` at `cqi` (zero CQI needs "infinite" PRBs;
/// callers treat `u32::MAX` as unservable).
pub fn prbs_for_bytes(cqi: u8, bytes: u32) -> u32 {
    let per_prb = bits_per_prb(cqi);
    if per_prb <= 0.0 {
        return u32::MAX;
    }
    ((bytes as f64 * 8.0) / per_prb).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cqi_monotone_in_sinr() {
        let mut last = 0;
        for s in -10..30 {
            let cqi = sinr_to_cqi(s as f64);
            assert!(cqi >= last, "sinr {s}: cqi {cqi} < {last}");
            last = cqi;
        }
    }

    #[test]
    fn extremes() {
        assert_eq!(sinr_to_cqi(-20.0), 0);
        assert_eq!(sinr_to_cqi(-6.0), 1);
        assert_eq!(sinr_to_cqi(25.0), 15);
    }

    #[test]
    fn efficiency_monotone() {
        for c in 1..=15u8 {
            assert!(cqi_efficiency(c) > cqi_efficiency(c - 1));
        }
        assert_eq!(cqi_efficiency(0), 0.0);
        assert!((cqi_efficiency(15) - 5.5547).abs() < 1e-9);
    }

    #[test]
    fn tbs_scales_with_prbs() {
        assert_eq!(tbs_bits(15, 0), 0);
        let one = tbs_bits(15, 1);
        let ten = tbs_bits(15, 10);
        assert!((ten as f64 - 10.0 * one as f64).abs() <= 10.0);
        // CQI 15, 1 PRB ≈ 5.5547 * 126 ≈ 700 bits.
        assert!((one as i64 - 699).abs() <= 2, "one-PRB TBS {one}");
    }

    #[test]
    fn prbs_for_bytes_inverts_tbs() {
        for cqi in [1u8, 5, 10, 15] {
            for bytes in [100u32, 1_500, 40_000] {
                let prbs = prbs_for_bytes(cqi, bytes);
                assert!(tbs_bits(cqi, prbs) >= bytes * 8, "cqi {cqi} bytes {bytes}");
                if prbs > 1 {
                    assert!(tbs_bits(cqi, prbs - 1) < bytes * 8);
                }
            }
        }
    }

    #[test]
    fn smooth_efficiency_interpolates() {
        // Continuous, monotone, and anchored at the CQI operating points.
        let mut last = 0.0;
        for k in 0..400 {
            let sinr = -10.0 + k as f64 * 0.1;
            let e = smooth_efficiency(sinr);
            assert!(e >= last - 1e-12, "sinr {sinr}");
            last = e;
        }
        assert_eq!(smooth_efficiency(-20.0), 0.0);
        assert!((smooth_efficiency(25.0) - 5.5547).abs() < 1e-9);
        // At each threshold the interpolant lands on that CQI's efficiency.
        assert!((smooth_efficiency(-4.8) - 0.2344).abs() < 1e-9);
        assert!((smooth_efficiency(-2.9) - 0.3770).abs() < 1e-9);
        // Midway between thresholds it sits between the two table values.
        let mid = smooth_efficiency(-3.85);
        assert!(mid > 0.2344 && mid < 0.3770, "mid {mid}");
    }

    #[test]
    fn cqi_zero_is_unservable() {
        assert_eq!(prbs_for_bytes(0, 1), u32::MAX);
        assert_eq!(tbs_bits(0, 100), 0);
    }

    #[test]
    fn realistic_cell_capacity() {
        // 50-PRB (10 MHz) uplink at CQI 15 ≈ 35 Mbit/s — sanity of the table.
        let per_sf = tbs_bits(15, 50);
        let mbps = per_sf as f64 * 1000.0 / 1e6;
        assert!((30.0..40.0).contains(&mbps), "cell capacity {mbps} Mbps");
    }
}
