//! Background-UE traffic generators for the shared cell.
//!
//! In the standalone uplink, competing traffic is a sampled scalar
//! (`LoadConfig`). In the shared cell it is *emergent*: a population of
//! background UEs runs on/off sources into their own uplink queues and
//! competes for PRBs through the same proportional-fair allocator the
//! foreground sessions use. A background UE is deliberately minimal — a
//! byte backlog, not packets — because nothing downstream ever sees its
//! traffic; only the PRBs it occupies matter.

use poi360_sim::process::MarkovOnOff;
use poi360_sim::rng::SimRng;
use poi360_sim::time::SimDuration;

/// One background source: Markov on/off with a constant on-rate.
#[derive(Clone, Copy, Debug)]
pub struct BackgroundTrafficConfig {
    /// Offered rate while the source is on, bits/s.
    pub on_rate_bps: f64,
    /// Mean on-period duration.
    pub mean_on: SimDuration,
    /// Mean off-period duration.
    pub mean_off: SimDuration,
    /// Queue cap; arrivals beyond it are dropped (the UE's app backs off).
    pub backlog_cap_bytes: u64,
}

impl Default for BackgroundTrafficConfig {
    fn default() -> Self {
        BackgroundTrafficConfig {
            on_rate_bps: 1.5e6,
            mean_on: SimDuration::from_millis(1_500),
            mean_off: SimDuration::from_millis(3_500),
            backlog_cap_bytes: 256 * 1024,
        }
    }
}

impl BackgroundTrafficConfig {
    /// Long-run offered load in bits/s (`on_rate × duty cycle`).
    pub fn mean_offered_bps(&self) -> f64 {
        let on = self.mean_on.as_secs_f64();
        let off = self.mean_off.as_secs_f64();
        self.on_rate_bps * on / (on + off)
    }
}

/// The evolving source. Owns its RNG so two sources never share draws.
#[derive(Clone, Debug)]
pub struct BackgroundTraffic {
    cfg: BackgroundTrafficConfig,
    onoff: MarkovOnOff,
    rng: SimRng,
    /// Sub-byte remainder carried between subframes.
    frac_bytes: f64,
}

impl BackgroundTraffic {
    /// Create a source from its config and a UE-specific seed.
    pub fn new(cfg: BackgroundTrafficConfig, seed: u64) -> Self {
        let mut rng = SimRng::stream(seed, "cell.bg.traffic");
        let onoff = MarkovOnOff::new(cfg.mean_on, cfg.mean_off, false, &mut rng);
        BackgroundTraffic { cfg, onoff, rng, frac_bytes: 0.0 }
    }

    /// Configuration in use.
    pub fn config(&self) -> &BackgroundTrafficConfig {
        &self.cfg
    }

    /// Advance one subframe; returns the bytes offered to the UE queue.
    pub fn subframe(&mut self) -> u64 {
        if !self.onoff.step(poi360_sim::SUBFRAME, &mut self.rng) {
            return 0;
        }
        self.frac_bytes += self.cfg.on_rate_bps / 8.0 * poi360_sim::SUBFRAME.as_secs_f64();
        let whole = self.frac_bytes.floor();
        self.frac_bytes -= whole;
        whole as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_run_rate_matches_duty_cycle() {
        let cfg = BackgroundTrafficConfig::default();
        let mut t = BackgroundTraffic::new(cfg, 7);
        let secs = 120u64;
        let total: u64 = (0..secs * 1000).map(|_| t.subframe()).sum();
        let measured_bps = total as f64 * 8.0 / secs as f64;
        let expect = cfg.mean_offered_bps();
        assert!(
            (measured_bps / expect - 1.0).abs() < 0.25,
            "measured {measured_bps} expected {expect}"
        );
    }

    #[test]
    fn off_periods_generate_nothing() {
        let mut t = BackgroundTraffic::new(BackgroundTrafficConfig::default(), 3);
        let per_sf: Vec<u64> = (0..20_000).map(|_| t.subframe()).collect();
        assert!(per_sf.contains(&0), "source never idles");
        assert!(per_sf.iter().any(|&b| b > 0), "source never transmits");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..5_000)
            .scan(BackgroundTraffic::new(Default::default(), 9), |t, _| Some(t.subframe()))
            .collect();
        let b: Vec<u64> = (0..5_000)
            .scan(BackgroundTraffic::new(Default::default(), 9), |t, _| Some(t.subframe()))
            .collect();
        assert_eq!(a, b);
    }
}
