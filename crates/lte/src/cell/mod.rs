//! A shared eNodeB uplink cell serving many concurrent UEs.
//!
//! The standalone [`crate::uplink::CellUplink`] models *one* UE against a
//! stochastic competing-load scalar. This module is the multi-user
//! counterpart: a single [`Cell`] owns N attached UEs — each with its own
//! [`Channel`], BSR reporting pipeline, HARQ process, and uplink queue —
//! and every 1 ms subframe runs one proportional-fair PRB allocation
//! across all of them. Cell load is *emergent*: background UEs run on/off
//! traffic sources into real queues and compete for the same PRBs the
//! foreground (telephony) UEs want, so "busy cell" is produced by queues,
//! not sampled from a distribution.
//!
//! Scheduling follows textbook PF: each backlogged UE is weighted by
//! `instantaneous rate / EWMA throughput`, PRBs are split proportionally
//! to weight subject to a per-UE cap (integerized by largest remainder),
//! and the EWMA is updated from what each UE actually served. The
//! per-UE grant mechanics (BSR delay, outage BSR reset, HARQ initial-loss,
//! TBS accounting) mirror the standalone uplink so a session sees the
//! same contract either way.
//!
//! Determinism: every UE derives its RNG streams from the cell seed and
//! the UE's *name* (via [`SimRng::stream`]), and background UEs are kept
//! sorted by name. Attaching the same set of UEs in any order therefore
//! produces byte-identical results, and adding UE j never perturbs UE i's
//! channel or HARQ draws.

pub mod background;

use crate::buffer::{FirmwareBuffer, PacketLike};
use crate::channel::{Channel, ChannelConfig, ChannelState};
use crate::diag::{DiagInterface, DiagReport, DiagSample};
use crate::scenario::BackgroundLoad;
use crate::tbs;
use crate::uplink::SubframeOutcome;
use background::{BackgroundTraffic, BackgroundTrafficConfig};
use poi360_sim::fault::{FaultPlan, FaultTimeline};
use poi360_sim::rng::SimRng;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::Recorder;
use std::collections::VecDeque;

/// Cell-wide scheduler parameters.
#[derive(Clone, Copy, Debug)]
pub struct CellConfig {
    /// Uplink PRBs available per subframe (50 = 10 MHz LTE).
    pub total_prbs: u32,
    /// Per-UE PRB cap per subframe (single-cluster UL allocation limit).
    pub max_prbs_per_ue: u32,
    /// Subframes between a buffer level existing and the eNodeB seeing it.
    pub bsr_delay_subframes: usize,
    /// Probability an initial HARQ transmission is lost (grant wasted).
    pub harq_fail_prob: f64,
    /// PF throughput-EWMA time constant, in subframes.
    pub pf_time_constant_subframes: f64,
    /// Foreground firmware-buffer capacity, bytes.
    pub fw_capacity_bytes: u64,
    /// Diag report period for foreground UEs.
    pub diag_period: SimDuration,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig {
            total_prbs: 50,
            max_prbs_per_ue: 25,
            bsr_delay_subframes: 6,
            harq_fail_prob: 0.10,
            pf_time_constant_subframes: 500.0,
            fw_capacity_bytes: 512 * 1024,
            diag_period: DiagInterface::DEFAULT_PERIOD,
        }
    }
}

/// Handle to a foreground UE attached to a [`Cell`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UeId(pub usize);

/// Per-UE radio + reporting state shared by foreground and background UEs.
#[derive(Debug)]
struct UeLink {
    name: String,
    channel: Channel,
    harq: SimRng,
    /// Ring of recent queue levels; the eNodeB sees a delayed entry.
    bsr: VecDeque<u64>,
    was_in_outage: bool,
    /// PF throughput EWMA, bits per subframe.
    avg_bits_per_sf: f64,
    /// This subframe's channel state (refreshed in phase A).
    cqi: u8,
    eff: f64,
    in_outage: bool,
    /// This subframe's BSR-delayed reported backlog, bytes.
    reported: u64,
}

impl UeLink {
    fn new(cell_seed: u64, name: &str, ch_cfg: ChannelConfig) -> Self {
        let channel_seed = SimRng::stream(cell_seed, &format!("cell.{name}.channel")).next_u64();
        let harq = SimRng::stream(cell_seed, &format!("cell.{name}.harq"));
        UeLink {
            name: name.to_string(),
            channel: Channel::new(ch_cfg, channel_seed),
            harq,
            bsr: VecDeque::new(),
            was_in_outage: false,
            avg_bits_per_sf: 0.0,
            cqi: 0,
            eff: 0.0,
            in_outage: false,
            reported: 0,
        }
    }

    /// Phase A: advance channel + BSR pipeline given the current queue
    /// level. When `radio` is `Some`, the grid's radio map dictates the
    /// channel verdict and the internal [`Channel`] is *not* stepped (no
    /// RNG draws), so grid-driven runs stay deterministic regardless of
    /// how long a UE has been attached.
    fn observe(
        &mut self,
        queue_bytes: u64,
        bsr_delay: usize,
        now: SimTime,
        radio: Option<ChannelState>,
    ) {
        self.bsr.push_back(queue_bytes);
        self.reported = if self.bsr.len() > bsr_delay.max(1) {
            self.bsr.pop_front().expect("non-empty after push")
        } else {
            0
        };
        let ch = match radio {
            Some(state) => state,
            None => self.channel.subframe(now),
        };
        // A handover moves the UE to a serving cell with no BSR state yet.
        if ch.in_outage && !self.was_in_outage {
            self.bsr.clear();
            self.reported = 0;
        }
        self.was_in_outage = ch.in_outage;
        self.cqi = ch.cqi;
        self.eff = tbs::smooth_efficiency(ch.sinr_db);
        self.in_outage = ch.in_outage;
    }

    /// PF weight this subframe: achievable rate over smoothed throughput.
    fn pf_weight(&self) -> f64 {
        self.eff * tbs::DATA_RE_PER_PRB / self.avg_bits_per_sf.max(100.0)
    }

    fn update_avg(&mut self, served_bits: u32, alpha: f64) {
        self.avg_bits_per_sf += alpha * (served_bits as f64 - self.avg_bits_per_sf);
    }
}

/// A foreground UE: a real firmware buffer fed by a telephony session.
struct ForegroundUe<T> {
    link: UeLink,
    fw: FirmwareBuffer<T>,
    diag: DiagInterface,
    /// Frozen `(buffer_bytes, tbs_bits)` while a diag stall is active.
    stale_diag: Option<(u64, u32)>,
    /// Externally supplied channel verdict for the next subframe
    /// ([`Cell::set_foreground_radio`]); consumed in phase A.
    radio: Option<ChannelState>,
}

/// A foreground UE detached from one cell, in transit to another: the
/// firmware buffer (with every queued packet) and diag interface travel;
/// the radio link is rebuilt from the target cell's seed on re-attach.
pub struct MigratedUe<T> {
    name: String,
    fw: FirmwareBuffer<T>,
    diag: DiagInterface,
}

impl<T: PacketLike> MigratedUe<T> {
    /// The UE's name (keys its RNG streams on the target cell too).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rewind any partial service of the head packet: the RLC context
    /// does not survive the handover, so a packet caught mid-segmentation
    /// retransmits in full at the target cell.
    pub fn restart_head(&mut self) {
        self.fw.restart_head();
    }

    /// RRC re-establishment after a radio link failure: everything
    /// queued is lost. Returns the number of packets flushed.
    pub fn flush(&mut self) -> u64 {
        self.fw.flush()
    }
}

/// A background UE: an on/off byte backlog that competes for PRBs.
struct BackgroundUe {
    link: UeLink,
    traffic: BackgroundTraffic,
    backlog_bytes: u64,
}

/// Which UE a scheduling candidate refers to.
#[derive(Clone, Copy)]
enum Slot {
    Fg(usize),
    Bg(usize),
}

/// One backlogged UE's claim in this subframe's allocation.
struct Candidate {
    slot: Slot,
    eff: f64,
    reported: u64,
    cap_prbs: u32,
    weight: f64,
    prbs: u32,
}

/// Reusable working buffers for [`allocate_prbs`]: the active-index,
/// still-active, proportional-share, and largest-remainder order vectors
/// keep their capacity across subframes.
#[derive(Default)]
struct AllocScratch {
    active: Vec<usize>,
    still_active: Vec<usize>,
    shares: Vec<f64>,
    order: Vec<usize>,
}

/// Per-subframe working memory owned by the cell (DESIGN.md §10): every
/// vector here is cleared — never dropped — between ticks, so the
/// steady-state scheduler loop reuses capacity instead of allocating.
/// The `*_pool` / `spare_*` fields hold shells handed back through
/// [`Cell::recycle`] and friends; callers that never recycle simply fall
/// back to the pre-scratch allocation behaviour.
struct Scratch<T> {
    /// Foreground firmware-buffer levels at subframe start.
    fg_levels: Vec<u64>,
    /// This subframe's PF candidate list.
    cands: Vec<Candidate>,
    /// Per-foreground TBS staging.
    per_ue_tbs: Vec<u32>,
    /// Per-foreground departed-packet staging; slots are moved into the
    /// outcomes each tick and replenished from `departed_pool`.
    per_ue_departed: Vec<Vec<(T, SimTime)>>,
    /// Which fg/bg UEs were scheduled (for the PF-average decay pass).
    sched_fg: Vec<bool>,
    sched_bg: Vec<bool>,
    /// Allocator working buffers.
    alloc: AllocScratch,
    /// Emptied departed vectors returned via recycling.
    departed_pool: Vec<Vec<(T, SimTime)>>,
    /// Emptied `CellSubframe` shells returned via [`Cell::recycle`].
    spare_per_ue: Vec<Vec<SubframeOutcome<T>>>,
    spare_prbs: Vec<Vec<u32>>,
}

impl<T> Default for Scratch<T> {
    fn default() -> Self {
        Scratch {
            fg_levels: Vec::new(),
            cands: Vec::new(),
            per_ue_tbs: Vec::new(),
            per_ue_departed: Vec::new(),
            sched_fg: Vec::new(),
            sched_bg: Vec::new(),
            alloc: AllocScratch::default(),
            departed_pool: Vec::new(),
            spare_per_ue: Vec::new(),
            spare_prbs: Vec::new(),
        }
    }
}

/// Everything the cell did in one subframe.
pub struct CellSubframe<T> {
    /// Per-foreground-UE outcomes, indexed by [`UeId`].
    pub per_ue: Vec<SubframeOutcome<T>>,
    /// PRBs granted to each foreground UE this subframe, indexed by
    /// [`UeId`].
    pub prbs_per_ue: Vec<u32>,
    /// Total PRBs granted (foreground + background) this subframe.
    pub prbs_granted: u32,
    /// Sum of background-UE queue backlogs after service, bytes.
    pub bg_backlog_bytes: u64,
}

/// The shared eNodeB uplink.
pub struct Cell<T> {
    cfg: CellConfig,
    seed: u64,
    /// Foreground slots, indexed by [`UeId`]. A slot goes `None` when its
    /// UE hands over to another cell ([`Cell::detach_foreground`]) and is
    /// reused by the next arrival, so UeIds of resident UEs stay stable.
    fg: Vec<Option<ForegroundUe<T>>>,
    bg: Vec<BackgroundUe>,
    subframes: u64,
    prbs_granted_total: u64,
    /// Access-network fault plan, applied to every foreground UE.
    faults: FaultTimeline,
    /// Whether an injected radio link failure was active last subframe,
    /// for the re-establishment flush on its trailing edge.
    was_rlf: bool,
    /// Reusable per-subframe working memory.
    scratch: Scratch<T>,
    recorder: Recorder,
}

impl<T: PacketLike> Cell<T> {
    /// Create an empty cell.
    pub fn new(cfg: CellConfig, seed: u64) -> Self {
        Cell {
            cfg,
            seed,
            fg: Vec::new(),
            bg: Vec::new(),
            subframes: 0,
            prbs_granted_total: 0,
            faults: FaultTimeline::default(),
            was_rlf: false,
            scratch: Scratch::default(),
            recorder: Recorder::null(),
        }
    }

    /// Attach the access-network slice of a fault plan. Faults apply to the
    /// cell's *foreground* UEs (the telephony sessions under test): radio
    /// link failure forces them into outage, grant starvation scales their
    /// grants, diag stalls freeze their logged samples, and a flash crowd
    /// removes a fraction of the cell's PRBs as if a sudden background
    /// population claimed them. Transition events are emitted on the cell's
    /// recorder.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultTimeline::new(plan.access_slice());
    }

    /// Attach the cell's probe recorder (scheduler-level probes; per-UE
    /// signals are traced by each UE's session recorder).
    pub fn set_recorder(&mut self, rec: &Recorder) {
        self.recorder = rec.clone();
    }

    /// Configuration in use.
    pub fn config(&self) -> &CellConfig {
        &self.cfg
    }

    /// Attach a foreground (session-driven) UE. Names must be unique
    /// within the cell; they key the UE's RNG streams.
    pub fn attach_foreground(&mut self, name: &str, ch_cfg: ChannelConfig) -> UeId {
        self.assert_unique(name);
        self.place_foreground(ForegroundUe {
            link: UeLink::new(self.seed, name, ch_cfg),
            fw: FirmwareBuffer::new(self.cfg.fw_capacity_bytes),
            diag: DiagInterface::new(self.cfg.diag_period),
            stale_diag: None,
            radio: None,
        })
    }

    fn assert_unique(&self, name: &str) {
        assert!(
            self.fg.iter().flatten().all(|u| u.link.name != name)
                && self.bg.iter().all(|u| u.link.name != name),
            "duplicate UE name {name:?}"
        );
    }

    /// Fill the lowest vacant slot (deterministic) or grow the vector.
    fn place_foreground(&mut self, ue: ForegroundUe<T>) -> UeId {
        match self.fg.iter().position(Option::is_none) {
            Some(k) => {
                self.fg[k] = Some(ue);
                UeId(k)
            }
            None => {
                self.fg.push(Some(ue));
                UeId(self.fg.len() - 1)
            }
        }
    }

    /// Detach a foreground UE for handover: its firmware buffer and diag
    /// interface leave with it, its slot opens for reuse, and its radio
    /// link (channel, HARQ, BSR pipeline, PF average) dies with the
    /// serving-cell context, exactly as X2 handover rebuilds MAC state.
    pub fn detach_foreground(&mut self, ue: UeId) -> MigratedUe<T> {
        let u = self.fg[ue.0].take().expect("detach of an occupied slot");
        MigratedUe { name: u.link.name, fw: u.fw, diag: u.diag }
    }

    /// Re-attach a migrated UE. The target cell builds a fresh radio link
    /// keyed by the *same* UE name and its own seed; the firmware buffer
    /// arrives with whatever survived the handover.
    pub fn attach_migrated(&mut self, mu: MigratedUe<T>, ch_cfg: ChannelConfig) -> UeId {
        self.assert_unique(&mu.name);
        let link = UeLink::new(self.seed, &mu.name, ch_cfg);
        self.place_foreground(ForegroundUe {
            link,
            fw: mu.fw,
            diag: mu.diag,
            stale_diag: None,
            radio: None,
        })
    }

    /// Dictate a foreground UE's channel verdict for the next subframe.
    /// While a grid drives a UE this is called every subframe; the UE's
    /// internal stochastic channel is then never stepped.
    pub fn set_foreground_radio(&mut self, ue: UeId, state: ChannelState) {
        self.fg[ue.0].as_mut().expect("occupied slot").radio = Some(state);
    }

    /// Per-UE RRC re-establishment (grid RLF path): flush the firmware
    /// buffer and BSR state of one UE. Returns the packets flushed.
    pub fn flush_foreground(&mut self, ue: UeId) -> u64 {
        let u = self.fg[ue.0].as_mut().expect("occupied slot");
        u.link.bsr.clear();
        u.link.reported = 0;
        u.fw.flush()
    }

    /// Read access to a foreground UE's firmware buffer (conservation
    /// accounting: `total_enqueued`, `flushed`, `len`).
    pub fn firmware(&self, ue: UeId) -> &FirmwareBuffer<T> {
        &self.fg[ue.0].as_ref().expect("occupied slot").fw
    }

    /// Attach one background UE. Its traffic profile and channel are drawn
    /// from a stream keyed by `name`, and background UEs are kept sorted
    /// by name so attach order never affects results.
    pub fn attach_background(&mut self, name: &str) {
        self.assert_unique(name);
        let mut profile = SimRng::stream(self.seed, &format!("cell.{name}.profile"));
        let traffic_cfg = BackgroundTrafficConfig {
            on_rate_bps: profile.uniform_range(0.4e6, 2.4e6),
            mean_on: SimDuration::from_secs_f64(profile.uniform_range(0.5, 3.0)),
            mean_off: SimDuration::from_secs_f64(profile.uniform_range(1.0, 6.0)),
            ..Default::default()
        };
        let ch_cfg =
            ChannelConfig { rss_dbm: profile.uniform_range(-100.0, -70.0), ..Default::default() };
        let traffic_seed = profile.next_u64();
        let ue = BackgroundUe {
            link: UeLink::new(self.seed, name, ch_cfg),
            traffic: BackgroundTraffic::new(traffic_cfg, traffic_seed),
            backlog_bytes: 0,
        };
        let at = self
            .bg
            .binary_search_by(|u| u.link.name.as_str().cmp(name))
            .expect_err("name is unique");
        self.bg.insert(at, ue);
    }

    /// Attach `count` background UEs named `bg.000`, `bg.001`, …
    pub fn attach_background_population(&mut self, count: usize) {
        let start = self.bg.len();
        for k in start..start + count {
            self.attach_background(&format!("bg.{k:03}"));
        }
    }

    /// Number of foreground UEs currently resident (occupied slots).
    pub fn foreground_count(&self) -> usize {
        self.fg.iter().flatten().count()
    }

    /// Number of background UEs attached.
    pub fn background_count(&self) -> usize {
        self.bg.len()
    }

    /// Offer a packet to a foreground UE's firmware buffer. Returns false
    /// on overflow drop.
    pub fn enqueue(&mut self, ue: UeId, item: T, now: SimTime) -> bool {
        self.fg[ue.0].as_mut().expect("occupied slot").fw.enqueue(item, now)
    }

    /// A foreground UE's firmware-buffer level, bytes.
    pub fn buffer_level(&self, ue: UeId) -> u64 {
        self.fg[ue.0].as_ref().expect("occupied slot").fw.level_bytes()
    }

    /// Packets dropped at a foreground UE's firmware-buffer tail.
    pub fn dropped(&self, ue: UeId) -> u64 {
        self.fg[ue.0].as_ref().expect("occupied slot").fw.dropped()
    }

    /// Mean fraction of PRBs granted per subframe so far.
    pub fn mean_utilization(&self) -> f64 {
        if self.subframes == 0 {
            return 0.0;
        }
        self.prbs_granted_total as f64 / (self.subframes * self.cfg.total_prbs as u64) as f64
    }

    /// Advance the whole cell one subframe: refresh every UE's channel and
    /// BSR, run one PF PRB allocation, serve the granted UEs, and return
    /// the per-foreground-UE outcomes.
    pub fn subframe(&mut self, now: SimTime) -> CellSubframe<T> {
        let bsr_delay = self.cfg.bsr_delay_subframes;
        let af = self.faults.advance(now, &self.recorder);

        // Trailing edge of an injected radio link failure: RRC
        // re-establishment flushes every foreground UE's firmware buffer
        // and BSR state — queued packets are lost, not delivered seconds
        // late.
        if self.was_rlf && !af.radio_failure {
            for u in self.fg.iter_mut().flatten() {
                u.fw.flush();
                u.link.bsr.clear();
                u.link.reported = 0;
            }
        }
        self.was_rlf = af.radio_failure;

        // Phase A: observe. Foreground first (UeId order), then background
        // (name order); each UE touches only its own RNG streams.
        self.scratch.fg_levels.clear();
        self.scratch
            .fg_levels
            .extend(self.fg.iter().map(|s| s.as_ref().map_or(0, |u| u.fw.level_bytes())));
        for (slot, &level) in self.fg.iter_mut().zip(&self.scratch.fg_levels) {
            let Some(u) = slot else { continue };
            let radio = u.radio.take();
            u.link.observe(level, bsr_delay, now, radio);
            // An injected radio link failure overrides the channel verdict:
            // the serving eNodeB is gone, so no BSR state survives either.
            if af.radio_failure {
                u.link.bsr.clear();
                u.link.reported = 0;
                u.link.in_outage = true;
                u.link.was_in_outage = true;
            }
        }
        for u in &mut self.bg {
            let arrived = u.traffic.subframe();
            let cap = u.traffic.config().backlog_cap_bytes;
            u.backlog_bytes = (u.backlog_bytes + arrived).min(cap);
            u.link.observe(u.backlog_bytes, bsr_delay, now, None);
        }

        // Phase B: gather candidates and allocate PRBs.
        let max_prbs_per_ue = self.cfg.max_prbs_per_ue;
        self.scratch.cands.clear();
        for (k, slot) in self.fg.iter().enumerate() {
            let Some(u) = slot else { continue };
            self.scratch.cands.extend(candidate(Slot::Fg(k), &u.link, max_prbs_per_ue));
        }
        for (k, u) in self.bg.iter().enumerate() {
            self.scratch.cands.extend(candidate(Slot::Bg(k), &u.link, max_prbs_per_ue));
        }
        // A flash crowd claims a fraction of the cell's PRBs before the PF
        // allocator runs, exactly as a sudden background population would.
        let effective_prbs = (self.cfg.total_prbs as f64 * (1.0 - af.flash_crowd_load)) as u32;
        allocate_prbs(effective_prbs, &mut self.scratch.cands, &mut self.scratch.alloc);

        // Phase C: serve grants, apply HARQ, update PF averages.
        let alpha = 1.0 / self.cfg.pf_time_constant_subframes.max(1.0);
        let prbs_granted: u32 = self.scratch.cands.iter().map(|c| c.prbs).sum();
        let n_fg = self.fg.len();
        let mut per_ue_prbs = self.scratch.spare_prbs.pop().unwrap_or_default();
        per_ue_prbs.clear();
        per_ue_prbs.resize(n_fg, 0);
        self.scratch.per_ue_tbs.clear();
        self.scratch.per_ue_tbs.resize(n_fg, 0);
        self.scratch.per_ue_departed.clear();
        for _ in 0..n_fg {
            self.scratch.per_ue_departed.push(self.scratch.departed_pool.pop().unwrap_or_default());
        }
        for c in &self.scratch.cands {
            if c.prbs == 0 {
                continue;
            }
            let grant_bits =
                (c.prbs as f64 * c.eff * tbs::DATA_RE_PER_PRB).min(c.reported as f64 * 8.0 + 256.0);
            let mut grant_bits = grant_bits.floor() as u32;
            // Grant starvation scales only the foreground (session) UEs.
            if matches!(c.slot, Slot::Fg(_)) && af.grant_factor < 1.0 {
                grant_bits = (grant_bits as f64 * af.grant_factor) as u32;
            }
            let link = match c.slot {
                Slot::Fg(k) => &mut self.fg[k].as_mut().expect("candidate slot occupied").link,
                Slot::Bg(k) => &mut self.bg[k].link,
            };
            // Initial HARQ loss wastes the grant; the PRBs stay consumed.
            let lost = grant_bits > 0 && link.harq.chance(self.cfg.harq_fail_prob);
            let tbs_bits = match c.slot {
                Slot::Fg(k) => {
                    per_ue_prbs[k] = c.prbs;
                    if lost {
                        0
                    } else {
                        let buffer_at_start = self.scratch.fg_levels[k];
                        let departed = &mut self.scratch.per_ue_departed[k];
                        let fw = &mut self.fg[k].as_mut().expect("candidate slot occupied").fw;
                        fw.serve_into(grant_bits / 8, departed);
                        let served_bits = departed
                            .iter()
                            .map(|(p, _)| p.wire_bytes())
                            .sum::<u32>()
                            .saturating_mul(8);
                        grant_bits
                            .min(served_bits.max(grant_bits.min((buffer_at_start * 8) as u32)))
                    }
                }
                Slot::Bg(k) => {
                    if lost {
                        0
                    } else {
                        let u = &mut self.bg[k];
                        let served = (grant_bits as u64 / 8).min(u.backlog_bytes);
                        u.backlog_bytes -= served;
                        (served * 8).min(grant_bits as u64) as u32
                    }
                }
            };
            if let Slot::Fg(k) = c.slot {
                self.scratch.per_ue_tbs[k] = tbs_bits;
            }
            let link = match c.slot {
                Slot::Fg(k) => &mut self.fg[k].as_mut().expect("candidate slot occupied").link,
                Slot::Bg(k) => &mut self.bg[k].link,
            };
            link.update_avg(tbs_bits, alpha);
        }
        // UEs that got nothing still decay their PF average.
        self.scratch.sched_fg.clear();
        self.scratch.sched_fg.resize(self.fg.len(), false);
        self.scratch.sched_bg.clear();
        self.scratch.sched_bg.resize(self.bg.len(), false);
        for c in &self.scratch.cands {
            if c.prbs > 0 {
                match c.slot {
                    Slot::Fg(k) => self.scratch.sched_fg[k] = true,
                    Slot::Bg(k) => self.scratch.sched_bg[k] = true,
                }
            }
        }
        for (u, &hit) in self.bg.iter_mut().zip(&self.scratch.sched_bg) {
            if !hit {
                u.link.update_avg(0, alpha);
            }
        }
        for (slot, &hit) in self.fg.iter_mut().zip(&self.scratch.sched_fg) {
            if let Some(u) = slot {
                if !hit {
                    u.link.update_avg(0, alpha);
                }
            }
        }

        self.subframes += 1;
        self.prbs_granted_total += prbs_granted as u64;
        self.recorder.event("cell.prb_grant", now, prbs_granted as f64);

        // Phase D: assemble foreground outcomes. The per-UE `load` is the
        // fraction of PRBs everyone *else* consumed — the shared-cell
        // analogue of the standalone competing-load scalar.
        let total = self.cfg.total_prbs as f64;
        // PRBs the flash crowd claimed count as load everyone else sees.
        let crowd_prbs = self.cfg.total_prbs - effective_prbs;
        let mut per_ue = self.scratch.spare_per_ue.pop().unwrap_or_default();
        per_ue.clear();
        per_ue.reserve(self.fg.len());
        for (k, slot) in self.fg.iter_mut().enumerate() {
            let Some(u) = slot else {
                // Vacant slot (its UE handed over away): a zeroed outcome
                // keeps `per_ue` indexed by UeId.
                per_ue.push(SubframeOutcome {
                    departed: std::mem::take(&mut self.scratch.per_ue_departed[k]),
                    tbs_bits: 0,
                    buffer_bytes: 0,
                    cqi: 0,
                    load: (prbs_granted + crowd_prbs) as f64 / total,
                    in_outage: true,
                    diag: None,
                });
                continue;
            };
            let buffer_bytes = self.scratch.fg_levels[k];
            let tbs_bits = self.scratch.per_ue_tbs[k];
            // A diag stall freezes what the chipset logs for this UE while
            // the link itself keeps moving packets.
            let (log_buffer, log_tbs) = if af.diag_stall {
                *u.stale_diag.get_or_insert((buffer_bytes, tbs_bits))
            } else {
                u.stale_diag = None;
                (buffer_bytes, tbs_bits)
            };
            let diag =
                u.diag.record(DiagSample { at: now, buffer_bytes: log_buffer, tbs_bits: log_tbs });
            per_ue.push(SubframeOutcome {
                departed: std::mem::take(&mut self.scratch.per_ue_departed[k]),
                tbs_bits,
                buffer_bytes,
                cqi: u.link.cqi,
                load: (prbs_granted + crowd_prbs - per_ue_prbs[k]) as f64 / total,
                in_outage: u.link.in_outage,
                diag,
            });
        }
        let bg_backlog_bytes = self.bg.iter().map(|u| u.backlog_bytes).sum();
        CellSubframe { per_ue, prbs_per_ue: per_ue_prbs, prbs_granted, bg_backlog_bytes }
    }

    /// Return a consumed [`CellSubframe`] so the next tick reuses its
    /// buffers. Any outcomes still inside are drained: their departed
    /// vectors go back to the departed pool and their diag reports back
    /// to the owning UE's diag interface. Callers that hand outcomes to
    /// sessions first (draining `per_ue`) still recycle the shells.
    pub fn recycle(&mut self, out: CellSubframe<T>) {
        let CellSubframe { mut per_ue, mut prbs_per_ue, .. } = out;
        for (k, outcome) in per_ue.drain(..).enumerate() {
            let SubframeOutcome { departed, diag, .. } = outcome;
            self.recycle_departed(departed);
            if let Some(report) = diag {
                self.recycle_diag(UeId(k), report);
            }
        }
        self.scratch.spare_per_ue.push(per_ue);
        prbs_per_ue.clear();
        self.scratch.spare_prbs.push(prbs_per_ue);
    }

    /// Return an emptied (or consumed) departed-packet vector for reuse
    /// by the next subframe's service phase.
    pub fn recycle_departed(&mut self, mut departed: Vec<(T, SimTime)>) {
        departed.clear();
        self.scratch.departed_pool.push(departed);
    }

    /// Return a consumed diag report's sample storage to the UE that
    /// produced it, for reuse by its next 40 ms epoch.
    pub fn recycle_diag(&mut self, ue: UeId, report: DiagReport) {
        if let Some(u) = self.fg.get_mut(ue.0).and_then(Option::as_mut) {
            u.diag.recycle(report);
        }
    }
}

/// Background population sizes calibrated so the emergent mean PRB
/// utilization lands near the standalone [`crate::uplink::LoadConfig`]
/// presets *including* their burst duty cycle (idle ≈ 0.10,
/// typical ≈ 0.42, busy ≈ 0.50).
pub fn background_population_for(load: BackgroundLoad) -> usize {
    match load {
        BackgroundLoad::Idle => 3,
        BackgroundLoad::Typical => 11,
        BackgroundLoad::Busy => 14,
    }
}

/// Build a scheduling candidate for a backlogged, in-coverage UE.
fn candidate(slot: Slot, link: &UeLink, max_prbs_per_ue: u32) -> Option<Candidate> {
    if link.in_outage || link.reported == 0 || link.eff <= 0.0 {
        return None;
    }
    // PRBs needed to clear the reported backlog this subframe; granting
    // more would be wasted, so it caps the UE's claim.
    let want_bits = link.reported as f64 * 8.0 + 256.0;
    let cap = (want_bits / (link.eff * tbs::DATA_RE_PER_PRB)).ceil() as u32;
    Some(Candidate {
        slot,
        eff: link.eff,
        reported: link.reported,
        cap_prbs: cap.clamp(1, max_prbs_per_ue),
        weight: link.pf_weight(),
        prbs: 0,
    })
}

/// Split `total` PRBs across candidates proportionally to PF weight,
/// subject to per-candidate caps: candidates whose proportional share
/// meets their cap take exactly the cap and drop out (their surplus is
/// redistributed), then the rest are integerized by largest remainder.
///
/// All working storage lives in `scratch` so steady-state allocation
/// rounds reuse capacity; [`allocate_prbs_reference`] is the
/// convenience form that owns a throwaway scratch. The remainder sort's
/// comparator is a strict total order (index tie-break), so
/// `sort_unstable_by` is deterministic and scratch reuse cannot change
/// the grants — the property test pins reused-scratch against
/// fresh-scratch, and a hardcoded table pins the grants themselves.
fn allocate_prbs(total: u32, cands: &mut [Candidate], scratch: &mut AllocScratch) {
    let AllocScratch { active, still_active, shares, order } = scratch;
    active.clear();
    active.extend(0..cands.len());
    let mut remaining = total;
    loop {
        if remaining == 0 || active.is_empty() {
            return;
        }
        let wsum: f64 = active.iter().map(|&i| cands[i].weight).sum();
        if wsum <= 0.0 {
            return;
        }
        let mut capped_prbs = 0u32;
        still_active.clear();
        for &i in active.iter() {
            let share = remaining as f64 * cands[i].weight / wsum;
            if share >= cands[i].cap_prbs as f64 {
                cands[i].prbs = cands[i].cap_prbs;
                capped_prbs += cands[i].cap_prbs;
            } else {
                still_active.push(i);
            }
        }
        if capped_prbs > 0 {
            // Sum of caps taken is bounded by the sum of their shares,
            // which is at most `remaining`.
            remaining -= capped_prbs;
            std::mem::swap(active, still_active);
            continue;
        }
        // No one capped: integerize the proportional shares.
        shares.clear();
        shares.extend(active.iter().map(|&i| remaining as f64 * cands[i].weight / wsum));
        let mut assigned = 0u32;
        for (k, &i) in active.iter().enumerate() {
            cands[i].prbs = shares[k].floor() as u32;
            assigned += cands[i].prbs;
        }
        let mut leftover = remaining - assigned;
        order.clear();
        order.extend(0..active.len());
        order.sort_unstable_by(|&a, &b| {
            let fa = shares[a] - shares[a].floor();
            let fb = shares[b] - shares[b].floor();
            fb.total_cmp(&fa).then(active[a].cmp(&active[b]))
        });
        for &k in order.iter() {
            if leftover == 0 {
                break;
            }
            let i = active[k];
            if cands[i].prbs < cands[i].cap_prbs {
                cands[i].prbs += 1;
                leftover -= 1;
            }
        }
        return;
    }
}

/// [`allocate_prbs`] with a throwaway [`AllocScratch`]: one algorithm,
/// two entry points. The ~70-line fresh-`Vec` copy that used to live here
/// drifted from being a true oracle the moment the scratch version became
/// canonical; the differential test now pins reused-scratch against this
/// fresh-scratch wrapper, and `pf_split_grants_are_pinned` pins the
/// resulting grants against hand-computed values.
#[cfg(test)]
fn allocate_prbs_reference(total: u32, cands: &mut [Candidate]) {
    allocate_prbs(total, cands, &mut AllocScratch::default());
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_sim::SUBFRAME;

    #[derive(Debug)]
    struct Pkt(u32);
    impl PacketLike for Pkt {
        fn wire_bytes(&self) -> u32 {
            self.0
        }
    }

    fn strong_channel() -> ChannelConfig {
        ChannelConfig { shadow_std_db: 0.0, fading_std_db: 0.0, ..Default::default() }
    }

    /// Run `secs` seconds keeping each foreground UE's buffer topped up to
    /// `level` bytes; return per-UE mean throughput (bits/s).
    fn saturated_throughputs(cell: &mut Cell<Pkt>, level: u64, secs: u64) -> Vec<f64> {
        let n = cell.foreground_count();
        let mut served = vec![0u64; n];
        let mut now = SimTime::ZERO;
        for _ in 0..secs * 1000 {
            for k in 0..n {
                while cell.buffer_level(UeId(k)) < level {
                    cell.enqueue(UeId(k), Pkt(1_200), now);
                }
            }
            let out = cell.subframe(now);
            for (tally, ue) in served.iter_mut().zip(&out.per_ue) {
                *tally += ue.tbs_bits as u64;
            }
            now += SUBFRAME;
        }
        served.iter().map(|&b| b as f64 / secs as f64).collect()
    }

    #[test]
    fn lone_ue_gets_served() {
        let mut cell = Cell::new(CellConfig::default(), 1);
        cell.attach_foreground("fg.0", strong_channel());
        let tput = saturated_throughputs(&mut cell, 40_000, 10)[0];
        // 25-PRB cap at good CQI is well above the standalone 8-PRB share.
        assert!(tput > 5.0e6, "lone UE throughput {tput}");
    }

    #[test]
    fn equal_ues_split_equally() {
        let mut cell = Cell::new(CellConfig::default(), 2);
        cell.attach_foreground("fg.0", strong_channel());
        cell.attach_foreground("fg.1", strong_channel());
        let t = saturated_throughputs(&mut cell, 40_000, 20);
        let ratio = t[0] / t[1];
        assert!((0.9..1.1).contains(&ratio), "split {t:?}");
    }

    #[test]
    fn prbs_never_exceed_capacity() {
        let mut cell = Cell::new(CellConfig::default(), 3);
        for k in 0..4 {
            cell.attach_foreground(&format!("fg.{k}"), ChannelConfig::default());
        }
        cell.attach_background_population(10);
        let mut now = SimTime::ZERO;
        for _ in 0..5_000 {
            for k in 0..4 {
                while cell.buffer_level(UeId(k)) < 30_000 {
                    cell.enqueue(UeId(k), Pkt(1_200), now);
                }
            }
            let out = cell.subframe(now);
            assert!(out.prbs_granted <= cell.config().total_prbs);
            now += SUBFRAME;
        }
    }

    #[test]
    fn background_population_loads_the_cell() {
        let mut cell = Cell::<Pkt>::new(CellConfig::default(), 4);
        cell.attach_background_population(background_population_for(BackgroundLoad::Busy));
        let mut now = SimTime::ZERO;
        for _ in 0..60_000 {
            cell.subframe(now);
            now += SUBFRAME;
        }
        let util = cell.mean_utilization();
        assert!((0.30..0.60).contains(&util), "busy-cell utilization {util}");
    }

    #[test]
    fn same_seed_same_trace() {
        let run = || {
            let mut cell = Cell::new(CellConfig::default(), 5);
            cell.attach_foreground("fg.0", ChannelConfig::default());
            cell.attach_background_population(6);
            let mut now = SimTime::ZERO;
            let mut trace = Vec::new();
            for _ in 0..3_000 {
                while cell.buffer_level(UeId(0)) < 20_000 {
                    cell.enqueue(UeId(0), Pkt(1_200), now);
                }
                let out = cell.subframe(now);
                trace.push((out.per_ue[0].tbs_bits, out.prbs_granted));
                now += SUBFRAME;
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cell_faults_starve_and_fail_foreground_ues() {
        use poi360_sim::fault::{FaultKind, FaultPlan};
        let mut cell = Cell::new(CellConfig::default(), 7);
        cell.attach_foreground("fg.0", strong_channel());
        cell.set_fault_plan(
            FaultPlan::new()
                .with(
                    FaultKind::RadioLinkFailure,
                    SimTime::from_millis(1_000),
                    SimDuration::from_millis(300),
                )
                .with(
                    FaultKind::FlashCrowd { extra_load: 0.9 },
                    SimTime::from_millis(2_000),
                    SimDuration::from_millis(500),
                ),
        );
        let mut now = SimTime::ZERO;
        let mut healthy_bits = 0u64;
        let mut crowd_bits = 0u64;
        for sf in 0..3_000u64 {
            while cell.buffer_level(UeId(0)) < 30_000 {
                cell.enqueue(UeId(0), Pkt(1_200), now);
            }
            let out = cell.subframe(now);
            let ue = &out.per_ue[0];
            match sf {
                1_000..=1_299 => {
                    assert_eq!(ue.tbs_bits, 0, "RLF must zero TBS at sf {sf}");
                    assert!(ue.in_outage);
                }
                2_000..=2_499 => {
                    crowd_bits += ue.tbs_bits as u64;
                    assert!(ue.load > 0.85, "crowd load visible: {}", ue.load);
                }
                0..=999 => healthy_bits += ue.tbs_bits as u64,
                _ => {}
            }
            now += SUBFRAME;
        }
        // 90 % of the PRBs gone leaves well under half the healthy rate.
        let healthy_rate = healthy_bits as f64 / 1_000.0;
        let crowd_rate = crowd_bits as f64 / 500.0;
        assert!(crowd_rate < healthy_rate * 0.5, "crowd {crowd_rate} healthy {healthy_rate}");
    }

    #[test]
    fn cell_empty_fault_plan_is_byte_identical() {
        use poi360_sim::fault::FaultPlan;
        let run = |with_plan: bool| {
            let mut cell = Cell::new(CellConfig::default(), 8);
            cell.attach_foreground("fg.0", ChannelConfig::default());
            cell.attach_background_population(4);
            if with_plan {
                cell.set_fault_plan(FaultPlan::new());
            }
            let mut now = SimTime::ZERO;
            let mut trace = Vec::new();
            for _ in 0..2_000 {
                while cell.buffer_level(UeId(0)) < 20_000 {
                    cell.enqueue(UeId(0), Pkt(1_200), now);
                }
                let out = cell.subframe(now);
                trace.push((out.per_ue[0].tbs_bits, out.prbs_granted));
                now += SUBFRAME;
            }
            trace
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn scratch_allocator_matches_fresh_allocation_reference() {
        use poi360_testkit::prop::Gen;
        use poi360_testkit::{prop_assert_eq, prop_check};
        // One scratch reused across every generated case, differentially
        // against a fresh scratch per case: stale contents from earlier
        // (differently-sized) rounds must never leak into a later
        // allocation.
        let mut scratch = AllocScratch::default();
        prop_check!(256, |g: &mut Gen| {
            let n = g.usize_in(0, 48);
            let total = g.u32_in(0, 120);
            let draw = |g: &mut Gen, k: usize| Candidate {
                slot: Slot::Fg(k),
                eff: g.f64_in(0.05, 6.0),
                reported: g.u64_in(0, 200_000),
                cap_prbs: g.u32_in(1, 32),
                weight: g.f64_in(0.0, 40.0),
                prbs: g.u32_in(0, 7), // stale garbage the allocator must overwrite
            };
            let mut with_scratch: Vec<Candidate> = (0..n).map(|k| draw(g, k)).collect();
            let mut reference: Vec<Candidate> = with_scratch
                .iter()
                .map(|c| Candidate {
                    slot: c.slot,
                    eff: c.eff,
                    reported: c.reported,
                    cap_prbs: c.cap_prbs,
                    weight: c.weight,
                    prbs: c.prbs,
                })
                .collect();
            allocate_prbs(total, &mut with_scratch, &mut scratch);
            allocate_prbs_reference(total, &mut reference);
            for (a, b) in with_scratch.iter().zip(&reference) {
                prop_assert_eq!(a.prbs, b.prbs);
            }
            Ok(())
        });
    }

    #[test]
    fn pf_split_grants_are_pinned() {
        // Hand-computed grant tables: with the fresh-`Vec` oracle gone
        // (allocate_prbs_reference now delegates), this pins the actual
        // arithmetic — proportional split, cap-and-redistribute, largest
        // remainder with index tie-break — against fixed values.
        let cand = |k: usize, weight: f64, cap_prbs: u32| Candidate {
            slot: Slot::Fg(k),
            eff: 1.0,
            reported: 10_000,
            cap_prbs,
            weight,
            prbs: 0,
        };
        let grants = |total: u32, mut cands: Vec<Candidate>| -> Vec<u32> {
            allocate_prbs(total, &mut cands, &mut AllocScratch::default());
            cands.iter().map(|c| c.prbs).collect()
        };
        // Equal weights, equal fractions: leftover goes to lower indices.
        assert_eq!(
            grants(10, vec![cand(0, 1.0, 32), cand(1, 1.0, 32), cand(2, 1.0, 32)]),
            [4, 3, 3]
        );
        // A cap binds: the heavy UE takes exactly its cap, the surplus is
        // re-split 3:1 over the others (7.5 and 2.5; the tie-free
        // fraction sends the leftover PRB to the heavier one).
        assert_eq!(
            grants(12, vec![cand(0, 6.0, 2), cand(1, 3.0, 32), cand(2, 1.0, 32)]),
            [2, 8, 2]
        );
        // Largest remainder without ties: 40/7 = 5.71 beats 16/7 = 2.29.
        assert_eq!(grants(8, vec![cand(0, 5.0, 32), cand(1, 2.0, 32)]), [6, 2]);
        // Proportional share exactly equal to the cap still counts as
        // capped (share >= cap), leaving a clean re-split for the rest.
        assert_eq!(grants(10, vec![cand(0, 1.0, 5), cand(1, 1.0, 8)]), [5, 5]);
        // Degenerate inputs: nothing to grant, or nobody schedulable.
        assert_eq!(grants(0, vec![cand(0, 1.0, 32)]), [0]);
        assert_eq!(grants(5, vec![cand(0, 0.0, 32), cand(1, 0.0, 32)]), [0, 0]);
    }

    #[test]
    fn recycled_subframes_are_byte_identical() {
        // The same run with and without recycling must produce the same
        // trace: scratch reuse may only change *where* buffers live.
        let run = |recycle: bool| {
            let mut cell = Cell::new(CellConfig::default(), 11);
            cell.attach_foreground("fg.0", ChannelConfig::default());
            cell.attach_background_population(6);
            let mut now = SimTime::ZERO;
            let mut trace = Vec::new();
            for _ in 0..3_000 {
                while cell.buffer_level(UeId(0)) < 20_000 {
                    cell.enqueue(UeId(0), Pkt(1_200), now);
                }
                let out = cell.subframe(now);
                trace.push((
                    out.per_ue[0].tbs_bits,
                    out.per_ue[0].departed.len(),
                    out.prbs_granted,
                    out.bg_backlog_bytes,
                ));
                if recycle {
                    cell.recycle(out);
                }
                now += SUBFRAME;
            }
            trace
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn attach_order_does_not_change_foreground_results() {
        let run = |names: &[&str]| {
            let mut cell = Cell::new(CellConfig::default(), 6);
            cell.attach_foreground("fg.0", strong_channel());
            for name in names {
                cell.attach_background(name);
            }
            let mut now = SimTime::ZERO;
            let mut trace = Vec::new();
            for _ in 0..3_000 {
                while cell.buffer_level(UeId(0)) < 20_000 {
                    cell.enqueue(UeId(0), Pkt(1_200), now);
                }
                trace.push(cell.subframe(now).per_ue[0].tbs_bits);
                now += SUBFRAME;
            }
            trace
        };
        let forward = run(&["bg.a", "bg.b", "bg.c"]);
        let reversed = run(&["bg.c", "bg.b", "bg.a"]);
        assert_eq!(forward, reversed);
    }
}
