//! Radio channel model: RSS → SINR with shadowing, fast fading, mobility,
//! and handover outages.
//!
//! The paper evaluates three received-signal-strength tiers (−115 / −82 /
//! −73 dBm, §6.2) and three driving speeds (15 / 30 / 50 mph). The channel
//! model maps those knobs onto a per-subframe SINR:
//!
//! * **Mean SINR** is an affine map of RSS calibrated so the paper's tiers
//!   land at CQI ≈ 2 / 12 / 15.
//! * **Shadowing** is a log-normal (Gaussian-in-dB) Ornstein–Uhlenbeck
//!   process whose time constant shrinks with speed (the environment
//!   decorrelates faster when driving).
//! * **Fast fading** is a second, faster OU process in dB whose std and
//!   rate grow with Doppler (speed).
//! * **Handover outages**: while driving, cell changes interrupt uplink
//!   grants for 150–300 ms at a rate proportional to speed.

use poi360_sim::process::OrnsteinUhlenbeck;
use poi360_sim::rng::SimRng;
use poi360_sim::time::{SimDuration, SimTime};

/// Channel configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChannelConfig {
    /// Mean received signal strength in dBm.
    pub rss_dbm: f64,
    /// UE speed in mph (0 = static).
    pub speed_mph: f64,
    /// Shadowing stationary std in dB.
    pub shadow_std_db: f64,
    /// Fast-fading std in dB at walking speed; grows mildly with Doppler.
    pub fading_std_db: f64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        // The paper's "strong signal, static" baseline condition.
        ChannelConfig { rss_dbm: -73.0, speed_mph: 0.0, shadow_std_db: 2.5, fading_std_db: 2.0 }
    }
}

impl ChannelConfig {
    /// Mean SINR for the configured RSS: affine fit anchored at the paper's
    /// tiers (−73 dBm → ≈22 dB → CQI 15; −82 → ≈17 dB → CQI ~12;
    /// −115 → ≈ −3 dB → CQI ~2).
    pub fn mean_sinr_db(&self) -> f64 {
        (self.rss_dbm + 110.0) * 0.6
    }

    /// Shadowing correlation time: ~20 s static, shrinking with speed.
    fn shadow_tau_secs(&self) -> f64 {
        if self.speed_mph <= 1.0 {
            20.0
        } else {
            (60.0 / self.speed_mph).clamp(1.0, 20.0)
        }
    }

    /// Fading correlation time from Doppler: coherence ≈ 423/f_D ms at
    /// 2 GHz; static users still see ~200 ms scatter motion.
    fn fading_tau_secs(&self) -> f64 {
        if self.speed_mph <= 0.5 {
            0.2
        } else {
            let v_mps = self.speed_mph * 0.44704;
            let doppler_hz = v_mps / 0.15; // λ ≈ 15 cm at 2 GHz
            (0.423 / doppler_hz).clamp(0.002, 0.2)
        }
    }

    /// Mean time between handovers while moving (cell radius ~400 m).
    fn handover_mean_interval_secs(&self) -> Option<f64> {
        if self.speed_mph <= 1.0 {
            None
        } else {
            let v_mps = self.speed_mph * 0.44704;
            Some(400.0 / v_mps)
        }
    }
}

/// Per-subframe channel state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelState {
    /// Instantaneous SINR in dB.
    pub sinr_db: f64,
    /// CQI the UE would report.
    pub cqi: u8,
    /// True while a handover outage suppresses uplink grants.
    pub in_outage: bool,
}

/// The evolving channel.
#[derive(Clone, Debug)]
pub struct Channel {
    cfg: ChannelConfig,
    shadow: OrnsteinUhlenbeck,
    fading: OrnsteinUhlenbeck,
    rng: SimRng,
    outage_until: SimTime,
    next_handover: SimTime,
}

impl Channel {
    /// Create a channel, deriving all randomness from `seed`.
    pub fn new(cfg: ChannelConfig, seed: u64) -> Self {
        let mut rng = SimRng::stream(seed, "lte.channel");
        let fading_std = cfg.fading_std_db * (1.0 + (cfg.speed_mph / 50.0) * 0.5);
        let shadow =
            OrnsteinUhlenbeck::with_stationary(0.0, cfg.shadow_std_db, cfg.shadow_tau_secs());
        let fading = OrnsteinUhlenbeck::with_stationary(0.0, fading_std, cfg.fading_tau_secs());
        let next_handover = match cfg.handover_mean_interval_secs() {
            Some(mean) => SimTime::ZERO + SimDuration::from_secs_f64(rng.exponential(mean)),
            None => SimTime::MAX,
        };
        Channel { cfg, shadow, fading, rng, outage_until: SimTime::ZERO, next_handover }
    }

    /// Configuration in use.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Advance one subframe and sample the channel.
    pub fn subframe(&mut self, now: SimTime) -> ChannelState {
        let dt = poi360_sim::SUBFRAME;
        let shadow = self.shadow.step(dt, &mut self.rng);
        let fading = self.fading.step(dt, &mut self.rng);

        // Handover management.
        if now >= self.next_handover {
            let outage = SimDuration::from_millis(self.rng.int_range(250, 450) as u64);
            self.outage_until = now + outage;
            // Re-draw shadowing after the cell change: new serving cell.
            self.shadow.set_value(self.rng.normal(0.0, self.cfg.shadow_std_db));
            let mean = self
                .cfg
                .handover_mean_interval_secs()
                .expect("handover scheduled implies mobility");
            self.next_handover =
                now + SimDuration::from_secs_f64(self.rng.exponential(mean).max(1.0));
        }
        let in_outage = now < self.outage_until;

        let sinr_db = self.cfg.mean_sinr_db() + shadow + fading;
        ChannelState { sinr_db, cqi: crate::tbs::sinr_to_cqi(sinr_db), in_outage }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: ChannelConfig, seed: u64, secs: u64) -> Vec<ChannelState> {
        let mut ch = Channel::new(cfg, seed);
        let mut now = SimTime::ZERO;
        let mut out = Vec::new();
        for _ in 0..secs * 1000 {
            out.push(ch.subframe(now));
            now += poi360_sim::SUBFRAME;
        }
        out
    }

    #[test]
    fn strong_signal_mostly_top_cqi() {
        let states = run(ChannelConfig::default(), 1, 30);
        let mean_cqi = states.iter().map(|s| s.cqi as f64).sum::<f64>() / states.len() as f64;
        assert!(mean_cqi > 13.0, "mean CQI {mean_cqi}");
    }

    #[test]
    fn weak_signal_bottom_cqi() {
        let cfg = ChannelConfig { rss_dbm: -115.0, ..Default::default() };
        let states = run(cfg, 2, 30);
        let mean_cqi = states.iter().map(|s| s.cqi as f64).sum::<f64>() / states.len() as f64;
        assert!(mean_cqi < 4.0, "mean CQI {mean_cqi}");
    }

    #[test]
    fn moderate_signal_in_between() {
        let cfg = ChannelConfig { rss_dbm: -82.0, ..Default::default() };
        let states = run(cfg, 3, 30);
        let mean_cqi = states.iter().map(|s| s.cqi as f64).sum::<f64>() / states.len() as f64;
        assert!((8.0..14.5).contains(&mean_cqi), "mean CQI {mean_cqi}");
    }

    #[test]
    fn static_channel_has_no_outages() {
        let states = run(ChannelConfig::default(), 4, 60);
        assert!(states.iter().all(|s| !s.in_outage));
    }

    #[test]
    fn driving_channel_has_handover_outages() {
        let cfg = ChannelConfig { speed_mph: 50.0, ..Default::default() };
        let states = run(cfg, 5, 120);
        let outage_frac =
            states.iter().filter(|s| s.in_outage).count() as f64 / states.len() as f64;
        assert!(outage_frac > 0.0005, "outage fraction {outage_frac}");
        assert!(outage_frac < 0.08, "outage fraction {outage_frac}");
    }

    #[test]
    fn faster_driving_fades_harder() {
        let measure = |mph: f64, seed| -> f64 {
            let cfg = ChannelConfig { speed_mph: mph, ..Default::default() };
            let states = run(cfg, seed, 60);
            let vals: Vec<f64> = states.iter().map(|s| s.sinr_db).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            // Mean absolute subframe-to-subframe change: captures fading *rate*.
            let _ = mean;
            vals.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (vals.len() - 1) as f64
        };
        let slow = measure(15.0, 6);
        let fast = measure(50.0, 7);
        assert!(fast > slow * 1.2, "fast {fast} slow {slow}");
    }

    #[test]
    fn sinr_mean_tracks_rss() {
        for (rss, lo, hi) in [(-73.0, 19.0, 26.0), (-82.0, 13.5, 20.5), (-115.0, -7.0, 1.0)] {
            let cfg = ChannelConfig { rss_dbm: rss, ..Default::default() };
            let states = run(cfg, 8, 60);
            let mean = states.iter().map(|s| s.sinr_db).sum::<f64>() / states.len() as f64;
            assert!((lo..hi).contains(&mean), "rss {rss}: mean sinr {mean}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(ChannelConfig::default(), 9, 5);
        let b = run(ChannelConfig::default(), 9, 5);
        assert_eq!(a, b);
    }
}
