//! OCC-style physical-layer-assisted congestion control (PAPERS.md).
//!
//! Where FBCC infers congestion from the *trend* of the firmware buffer
//! and otherwise defers to GCC's delay-gradient rate, OCC drives the
//! encoding rate directly from the PHY observables the diag plane already
//! exposes: the per-subframe transport-block size (the eNodeB's grant,
//! i.e. what the scheduler actually awards this UE) and the firmware
//! buffer level (the modem's BSR view of backlog). The controller keeps a
//! capacity estimate `Ĉ` and requests a fixed headroom fraction of it:
//!
//! * **Saturated link** (backlog in nearly every subframe): the granted
//!   rate *is* the share of cell capacity this UE can get, so `Ĉ` tracks
//!   the report's TBS rate through a short EWMA.
//! * **Unsaturated link**: the grant reflects demand, not capacity —
//!   there is no downward evidence — so `Ĉ` probes multiplicatively
//!   upward instead of collapsing onto its own sending rate. (A healthy
//!   pacer leaves backlog in well over half the subframes, which is why
//!   the saturation test sits near 1, not at a majority.)
//! * **Backlog relief**: a firmware buffer far above the relief level
//!   scales the requested rate down proportionally, draining the queue
//!   without corrupting the capacity estimate itself.
//!
//! **Frozen-diag safety.** A diag-read stall repeats the last logged
//! `(buffer, TBS)` pair verbatim while the radio keeps serving
//! (`FaultKind::DiagStall`). A report whose samples are all one identical
//! pair, twice in a row, carries no fresh information — OCC *holds* `Ĉ`
//! (no EWMA update, no probe) until live samples resume, so a stalled
//! modem never reads as capacity. The all-zero pair is deliberately NOT
//! exempt: an actively-paced session cannot log a whole epoch of
//! `(0, 0)` subframes on a live link (bytes handed to the modem either
//! sit in the buffer or show up as served TBS), so repeated constant
//! zeros are a stall signature too — a stall that happens to latch onto
//! a momentarily-empty subframe must still hold, not probe. A lightly
//! loaded but live link always mixes zero and non-zero samples within an
//! epoch, which keeps it probeable.

use poi360_lte::diag::DiagReport;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::Recorder;

/// OCC tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct OccConfig {
    /// Fraction of the capacity estimate the encoder is asked to fill.
    pub headroom: f64,
    /// EWMA time constant of the capacity estimate on a busy link.
    pub rate_tau: SimDuration,
    /// Multiplicative upward probe rate on an idle link, per second.
    pub probe_per_s: f64,
    /// Fraction of a report's samples that must show a non-empty buffer
    /// for the link to count as *saturated* — only then is the grant rate
    /// a capacity observation. This must sit near 1: a healthy pacer
    /// leaves backlog in well over half the subframes, and tracking the
    /// served rate of an unsaturated link would just echo our own sending
    /// rate back as "capacity" (self-throttling).
    pub busy_fraction: f64,
    /// Firmware-buffer level beyond which the requested rate is scaled
    /// down to drain backlog, bytes.
    pub relief_bytes: u64,
    /// Lower bound on the video rate, bps.
    pub min_rate_bps: f64,
    /// Upper bound on the video rate, bps.
    pub max_rate_bps: f64,
    /// Pacer multiple over the video rate (burst headroom).
    pub rtp_multiple: f64,
}

impl Default for OccConfig {
    fn default() -> Self {
        OccConfig {
            headroom: 0.85,
            rate_tau: SimDuration::from_millis(1_500),
            probe_per_s: 0.08,
            busy_fraction: 0.9,
            relief_bytes: 60_000,
            min_rate_bps: 100_000.0,
            max_rate_bps: 30.0e6,
            rtp_multiple: 1.5,
        }
    }
}

/// The OCC engine: capacity tracking plus the stall hold.
#[derive(Clone, Debug)]
pub struct Occ {
    cfg: OccConfig,
    /// Capacity estimate `Ĉ`, bps.
    capacity_bps: f64,
    /// Last delivered backlog reading, bytes.
    backlog_bytes: u64,
    /// The constant `(buffer, tbs)` pair of the previous report, if that
    /// report was constant — one half of the stall signature.
    prev_constant: Option<(u64, u32)>,
    /// Whether the estimate is currently held by the stall detector.
    frozen: bool,
    /// Completed stall episodes (diagnostics).
    stall_holds: u64,
    /// Whether the backlog currently exceeds the relief level.
    congested: bool,
    /// Backlog-congestion episodes so far.
    detections: u64,
    recorder: Recorder,
}

/// The constant `(buffer, tbs)` pair of a report whose samples are all
/// identical, if any.
fn constant_pair(report: &DiagReport) -> Option<(u64, u32)> {
    let first = report.samples.first()?;
    let pair = (first.buffer_bytes, first.tbs_bits);
    report.samples.iter().all(|s| (s.buffer_bytes, s.tbs_bits) == pair).then_some(pair)
}

impl Occ {
    /// Create an OCC engine whose first request equals `start_rate_bps`.
    pub fn new(start_rate_bps: f64, cfg: OccConfig) -> Self {
        Occ {
            capacity_bps: (start_rate_bps / cfg.headroom)
                .clamp(cfg.min_rate_bps / cfg.headroom, cfg.max_rate_bps),
            backlog_bytes: 0,
            prev_constant: None,
            frozen: false,
            stall_holds: 0,
            congested: false,
            detections: 0,
            recorder: Recorder::null(),
            cfg,
        }
    }

    /// Attach the session's probe recorder.
    pub fn set_recorder(&mut self, rec: &Recorder) {
        self.recorder = rec.clone();
    }

    /// The current capacity estimate `Ĉ`, bps.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Whether the stall detector is currently holding the estimate.
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// Completed stall-hold episodes.
    pub fn stall_holds(&self) -> u64 {
        self.stall_holds
    }

    /// Backlog-congestion episodes (the relief scaler engaging).
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Feed one diag batch.
    pub fn on_diag(&mut self, report: &DiagReport, now: SimTime) {
        if report.samples.is_empty() {
            return;
        }
        // Stall signature: two consecutive reports constant at the same
        // pair — all-zero included, since a paced session cannot log a
        // whole epoch of (0, 0) on a live link. The radio may well be
        // serving (a diag stall freezes only what the chipset logs), so
        // neither the frozen TBS nor the frozen backlog may reach the
        // controller state.
        let constant = constant_pair(report);
        let stalled = match (constant, self.prev_constant) {
            (Some(pair), Some(prev)) => pair == prev,
            _ => false,
        };
        self.prev_constant = constant;
        if stalled {
            if !self.frozen {
                self.frozen = true;
                self.stall_holds += 1;
                self.recorder.count("occ.stall_hold", now, 1);
            }
            self.recorder.event("occ.capacity_bps", now, self.capacity_bps);
            return;
        }
        self.frozen = false;

        let span_s = report.samples.len() as f64 * poi360_sim::SUBFRAME.as_secs_f64();
        let busy = report.samples.iter().filter(|s| s.buffer_bytes > 0).count() as f64
            / report.samples.len() as f64;
        if busy >= self.cfg.busy_fraction {
            // Saturated link (backlog in nearly every subframe): the grant
            // rate is the capacity share.
            let grant_bps = report.total_tbs_bits() as f64 / span_s;
            let alpha = (span_s / self.cfg.rate_tau.as_secs_f64()).min(1.0);
            self.capacity_bps += alpha * (grant_bps - self.capacity_bps);
        } else {
            // Underutilized link: no downward evidence; probe upward.
            self.capacity_bps *= 1.0 + self.cfg.probe_per_s * span_s;
        }
        self.capacity_bps = self
            .capacity_bps
            .clamp(self.cfg.min_rate_bps / self.cfg.headroom, self.cfg.max_rate_bps);
        self.backlog_bytes = report.last_buffer_bytes();

        let congested_now = self.backlog_bytes > self.cfg.relief_bytes;
        if congested_now && !self.congested {
            self.detections += 1;
            self.recorder.count("occ.congestion", now, 1);
        }
        self.congested = congested_now;
        self.recorder.event("occ.capacity_bps", now, self.capacity_bps);
    }

    /// Encoding bitrate: a headroom fraction of `Ĉ`, scaled down in
    /// proportion to any backlog beyond the relief level, clamped to the
    /// configured bounds.
    pub fn video_rate_bps(&self) -> f64 {
        let relief = if self.backlog_bytes > self.cfg.relief_bytes {
            self.cfg.relief_bytes as f64 / self.backlog_bytes as f64
        } else {
            1.0
        };
        (self.cfg.headroom * self.capacity_bps * relief)
            .clamp(self.cfg.min_rate_bps, self.cfg.max_rate_bps)
    }

    /// Pacer drain rate: a fixed burst multiple of the video rate.
    pub fn rtp_rate_bps(&self) -> f64 {
        self.cfg.rtp_multiple * self.video_rate_bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_lte::diag::DiagSample;

    fn report(start_ms: u64, buffers: &[u64], tbs: u32) -> DiagReport {
        DiagReport {
            delivered_at: SimTime::from_millis(start_ms + buffers.len() as u64),
            samples: buffers
                .iter()
                .enumerate()
                .map(|(k, &b)| DiagSample {
                    at: SimTime::from_millis(start_ms + k as u64),
                    buffer_bytes: b,
                    tbs_bits: tbs,
                })
                .collect(),
        }
    }

    /// Busy buffers that vary subframe to subframe (live traffic).
    fn busy(base: u64) -> Vec<u64> {
        (0..40).map(|k| base + (k % 3) * 400).collect()
    }

    /// Warm the estimate onto a 3.5 Mbps granted link (6 s ≈ 4 τ).
    fn warmed() -> Occ {
        let mut o = Occ::new(1.0e6, OccConfig::default());
        for epoch in 0..150u64 {
            o.on_diag(
                &report(epoch * 40, &busy(8_000), 3_500),
                SimTime::from_millis(epoch * 40 + 40),
            );
        }
        o
    }

    #[test]
    fn busy_link_converges_to_grant_rate() {
        let o = warmed();
        // 3500 bits per 1 ms subframe = 3.5 Mbps.
        assert!((o.capacity_bps() - 3.5e6).abs() < 0.2e6, "cap {}", o.capacity_bps());
        let v = o.video_rate_bps();
        assert!((v - 0.85 * o.capacity_bps()).abs() < 1.0, "video {v}");
    }

    #[test]
    fn idle_link_probes_upward() {
        let mut o = Occ::new(2.0e6, OccConfig::default());
        let before = o.capacity_bps();
        // Mostly-empty buffers: only 4 of 40 subframes backlogged.
        let buffers: Vec<u64> = (0..40).map(|k| if k % 10 == 0 { 1_200 } else { 0 }).collect();
        for epoch in 0..25u64 {
            o.on_diag(&report(epoch * 40, &buffers, 500), SimTime::from_millis(epoch * 40 + 40));
        }
        assert!(
            o.capacity_bps() > 1.05 * before,
            "idle probe must grow the estimate: {} -> {}",
            before,
            o.capacity_bps()
        );
    }

    #[test]
    fn backlog_scales_the_request_down_without_touching_capacity() {
        let mut o = warmed();
        let cap = o.capacity_bps();
        let free = o.video_rate_bps();
        o.on_diag(&report(5_000, &busy(240_000), 3_500), SimTime::from_millis(5_040));
        assert!((o.capacity_bps() - cap).abs() < 0.1e6, "estimate poisoned by backlog");
        assert!(o.video_rate_bps() < 0.5 * free, "relief scaler must engage");
        assert_eq!(o.detections(), 1);
        // Backlog drains: the request recovers with the next report.
        o.on_diag(&report(5_040, &busy(8_000), 3_500), SimTime::from_millis(5_080));
        assert!(o.video_rate_bps() > 0.8 * free);
        assert_eq!(o.detections(), 1, "one episode, one detection");
    }

    #[test]
    fn frozen_pair_holds_the_estimate() {
        let mut o = warmed();
        let cap = o.capacity_bps();
        // A diag stall repeats one (buffer, tbs) pair verbatim. The first
        // constant report is ambiguous; from the second on OCC holds.
        for epoch in 0..30u64 {
            o.on_diag(
                &report(10_000 + epoch * 40, &[20_000; 40], 6_000),
                SimTime::from_millis(10_040 + epoch * 40),
            );
        }
        assert!(o.frozen());
        assert_eq!(o.stall_holds(), 1);
        let drift = (o.capacity_bps() - cap).abs() / cap;
        // Only the single ambiguous first report may move the estimate.
        assert!(drift < 0.05, "stalled diag moved Ĉ by {:.1}%", drift * 100.0);
    }

    #[test]
    fn live_samples_resume_tracking_after_a_stall() {
        let mut o = warmed();
        for epoch in 0..10u64 {
            o.on_diag(
                &report(10_000 + epoch * 40, &[20_000; 40], 6_000),
                SimTime::from_millis(10_040 + epoch * 40),
            );
        }
        assert!(o.frozen());
        for epoch in 0..150u64 {
            o.on_diag(
                &report(11_000 + epoch * 40, &busy(8_000), 2_000),
                SimTime::from_millis(11_040 + epoch * 40),
            );
        }
        assert!(!o.frozen());
        assert!((o.capacity_bps() - 2.0e6).abs() < 0.2e6, "cap {}", o.capacity_bps());
        assert_eq!(o.stall_holds(), 1);
    }

    #[test]
    fn all_zero_reports_hold_like_any_frozen_pair() {
        // A whole epoch of (0, 0) subframes is impossible on a live link
        // while the pacer is pushing bytes, so repeated constant zeros
        // are a stall signature, not an idle link.
        let mut o = Occ::new(2.0e6, OccConfig::default());
        let before = o.capacity_bps();
        for epoch in 0..10u64 {
            o.on_diag(&report(epoch * 40, &[0; 40], 0), SimTime::from_millis(epoch * 40 + 40));
        }
        assert!(o.frozen(), "repeated constant zeros carry no information");
        // Only the single ambiguous first report may probe.
        assert!((o.capacity_bps() - before) / before < 0.005, "stalled zeros must not probe");
    }

    #[test]
    fn lightly_loaded_live_link_keeps_probing() {
        // Mixed zero/non-zero samples within each epoch — a live link —
        // must never trip the stall detector even at identical epochs.
        let mut o = Occ::new(2.0e6, OccConfig::default());
        let before = o.capacity_bps();
        let buffers: Vec<u64> = (0..40).map(|k| if k == 7 { 1_200 } else { 0 }).collect();
        for epoch in 0..25u64 {
            o.on_diag(&report(epoch * 40, &buffers, 300), SimTime::from_millis(epoch * 40 + 40));
        }
        assert!(!o.frozen());
        assert!(o.capacity_bps() > 1.05 * before, "live link must keep probing");
    }

    #[test]
    fn rates_respect_bounds() {
        let cfg = OccConfig::default();
        let mut o = Occ::new(50.0e6, cfg);
        assert!(o.video_rate_bps() <= cfg.max_rate_bps);
        // Outage: zero grants, huge backlog.
        for epoch in 0..200u64 {
            o.on_diag(
                &report(epoch * 40, &busy(1_000_000), 0),
                SimTime::from_millis(epoch * 40 + 40),
            );
        }
        assert!(o.video_rate_bps() >= cfg.min_rate_bps);
        assert!(o.rtp_rate_bps() >= o.video_rate_bps());
    }

    #[test]
    fn outage_collapses_then_recovers() {
        let mut o = warmed();
        let pre = o.video_rate_bps();
        for epoch in 0..50u64 {
            o.on_diag(
                &report(5_000 + epoch * 40, &busy(400_000), 0),
                SimTime::from_millis(5_040 + epoch * 40),
            );
        }
        let trough = o.video_rate_bps();
        assert!(trough < 0.2 * pre, "outage must collapse the request: {trough}");
        for epoch in 0..120u64 {
            o.on_diag(
                &report(8_000 + epoch * 40, &busy(8_000), 3_500),
                SimTime::from_millis(8_040 + epoch * 40),
            );
        }
        let post = o.video_rate_bps();
        assert!(post >= 1.2 * trough, "post {post} vs trough {trough}");
        assert!(post >= 0.9 * pre, "post {post} vs pre {pre}");
    }
}
