//! Benchmark compression schemes (paper §6.1.1).
//!
//! * **Conduit** [1 in the paper's references]: crops the ROI region out of
//!   the panorama and streams it at full quality; to avoid blank regions
//!   the paper still ships the rest "with the lowest possible quality" —
//!   exactly two levels. Very light traffic, but brutally sensitive to ROI
//!   change: one tile of mismatch puts floor-quality content in the fovea.
//! * **Pyramid encoding** [7]: Facebook's offline 360° layout, a fixed
//!   smooth falloff from the ROI center. Handles ROI drift gracefully but
//!   retains most of the panorama's payload, overloading a cellular uplink.
//!
//! Both are *rigid*: they never react to network conditions, which is the
//! paper's central criticism.

use crate::policy::CompressionPolicy;
use poi360_video::compression::{CompressionMatrix, CompressionMode};
use poi360_video::frame::TileGrid;
use poi360_video::roi::Roi;

/// Conduit: two-level ROI crop.
#[derive(Clone, Debug)]
pub struct ConduitCompression {
    mode: CompressionMode,
}

impl ConduitCompression {
    /// Floor level for non-ROI tiles — "the lowest possible quality".
    pub const FLOOR_LEVEL: f64 = 48.0;

    /// Create the policy: 3×3 ROI region preserved, floor elsewhere.
    pub fn new() -> Self {
        ConduitCompression { mode: CompressionMode::two_level(1, 1, Self::FLOOR_LEVEL) }
    }
}

impl Default for ConduitCompression {
    fn default() -> Self {
        Self::new()
    }
}

impl CompressionPolicy for ConduitCompression {
    fn name(&self) -> &'static str {
        "Conduit"
    }

    fn matrix(&mut self, grid: &TileGrid, sender_roi: &Roi) -> CompressionMatrix {
        self.mode.matrix(grid, sender_roi.center)
    }
}

/// Pyramid encoding: fixed smooth geometric falloff.
#[derive(Clone, Debug)]
pub struct PyramidCompression {
    mode: CompressionMode,
}

impl PyramidCompression {
    /// The fixed falloff constant. 1.2 gives the smooth, conservative
    /// distribution the paper describes (quality spread across the frame,
    /// ~43 % of the raw payload retained — heavy for an LTE uplink).
    pub const C: f64 = 1.2;

    /// Create the policy.
    pub fn new() -> Self {
        PyramidCompression { mode: CompressionMode::geometric(Self::C) }
    }
}

impl Default for PyramidCompression {
    fn default() -> Self {
        Self::new()
    }
}

impl CompressionPolicy for PyramidCompression {
    fn name(&self) -> &'static str {
        "Pyramid"
    }

    fn matrix(&mut self, grid: &TileGrid, sender_roi: &Roi) -> CompressionMatrix {
        self.mode.matrix(grid, sender_roi.center)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_video::compression::L_MIN;
    use poi360_video::frame::TilePos;

    fn grid() -> TileGrid {
        TileGrid::POI360
    }

    #[test]
    fn conduit_has_two_levels() {
        let mut c = ConduitCompression::new();
        let m = c.matrix(&grid(), &Roi::at_tile(&grid(), TilePos::new(6, 4)));
        let distinct: std::collections::BTreeSet<u64> =
            m.levels().iter().map(|l| l.to_bits()).collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn conduit_preserves_fov_region() {
        let mut c = ConduitCompression::new();
        let g = grid();
        let roi = Roi::at_tile(&g, TilePos::new(6, 4));
        let m = c.matrix(&g, &roi);
        for t in roi.fov_tiles(&g, 1, 1) {
            assert_eq!(m.level(t), L_MIN);
        }
        assert_eq!(m.level(TilePos::new(0, 0)), ConduitCompression::FLOOR_LEVEL);
    }

    #[test]
    fn conduit_is_very_light() {
        let mut c = ConduitCompression::new();
        let g = grid();
        let m = c.matrix(&g, &Roi::at_tile(&g, TilePos::new(6, 4)));
        // 9 full tiles + 87 floor tiles ≈ 11 % of the raw payload.
        assert!(m.load_factor() < 0.15, "load {}", m.load_factor());
    }

    #[test]
    fn pyramid_is_smooth_and_heavy() {
        let mut p = PyramidCompression::new();
        let g = grid();
        let m = p.matrix(&g, &Roi::at_tile(&g, TilePos::new(6, 4)));
        // Smooth: neighbour level ratio is exactly C.
        let l0 = m.level(TilePos::new(6, 4));
        let l1 = m.level(TilePos::new(7, 4));
        assert!((l1 / l0 - PyramidCompression::C).abs() < 1e-9);
        // Heavy: retains ~40 % of the raw payload — too much for a ~4.5 Mbps
        // uplink when raw is 12.65 Mbps.
        assert!(m.load_factor() > 0.35, "load {}", m.load_factor());
    }

    #[test]
    fn pyramid_gentler_than_conduit_on_mismatch() {
        // One tile of ROI error: Pyramid shows level C, Conduit shows the
        // floor for part of the FoV region.
        let g = grid();
        let sender = Roi::at_tile(&g, TilePos::new(6, 4));
        let mut conduit = ConduitCompression::new();
        let mut pyramid = PyramidCompression::new();
        let mc = conduit.matrix(&g, &sender);
        let mp = pyramid.matrix(&g, &sender);
        // Viewer drifted two tiles right: gaze at (8,4).
        let gaze = TilePos::new(8, 4);
        assert_eq!(mc.level(gaze), ConduitCompression::FLOOR_LEVEL);
        assert!((mp.level(gaze) - PyramidCompression::C.powi(2)).abs() < 1e-9);
    }

    #[test]
    fn baselines_ignore_feedback() {
        use poi360_sim::time::{SimDuration, SimTime};
        let g = grid();
        let roi = Roi::at_tile(&g, TilePos::new(6, 4));
        let mut c = ConduitCompression::new();
        let before = c.matrix(&g, &roi);
        c.on_mismatch_feedback(SimTime::ZERO, SimDuration::from_secs(5));
        assert_eq!(c.matrix(&g, &roi), before);
        assert_eq!(c.mode_index(), None);
    }
}
