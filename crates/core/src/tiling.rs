//! Related-work tiling policies: Pano weighting and Ghosh tile-rate
//! allocation layered on POI360's adaptive mode selector.
//!
//! Both policies keep the paper's machinery intact — the ROI-mismatch
//! monitor still picks one of the K = 8 modes, and the resulting matrix is
//! then *modulated* by a per-tile quality-sensitivity map
//! (`video::perceptual`) before it reaches the encoder:
//!
//! * [`PanoCompression`] divides each level by the tile's normalized
//!   sensitivity weight — quality migrates toward tiles the viewer
//!   actually perceives.
//! * [`GhoshCompression`] re-splits the mode's payload budget across
//!   tiles in proportion to `share × sensitivity` — the optimizer view of
//!   the same idea, conserving the mode's overall budget.
//!
//! Under a uniform sensitivity map both reduce to the plain POI360
//! policy, which is how the tile-allocator tests anchor them.

use crate::adaptive::AdaptiveCompression;
use crate::policy::CompressionPolicy;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::Recorder;
use poi360_video::compression::CompressionMatrix;
use poi360_video::frame::TileGrid;
use poi360_video::perceptual::{ghosh_matrix, weighted_matrix, SensitivityMap};
use poi360_video::roi::Roi;

/// Pano-style sensitivity weighting over the adaptive mode selector.
pub struct PanoCompression {
    base: AdaptiveCompression,
}

impl PanoCompression {
    /// Adaptive POI360 modes with Pano sensitivity modulation.
    pub fn new() -> Self {
        PanoCompression { base: AdaptiveCompression::new() }
    }
}

impl Default for PanoCompression {
    fn default() -> Self {
        PanoCompression::new()
    }
}

impl CompressionPolicy for PanoCompression {
    fn name(&self) -> &'static str {
        "Pano"
    }

    fn set_recorder(&mut self, rec: &Recorder) {
        self.base.set_recorder(rec);
    }

    fn matrix(&mut self, grid: &TileGrid, sender_roi: &Roi) -> CompressionMatrix {
        let m = self.base.matrix(grid, sender_roi);
        let sens = SensitivityMap::pano(grid, sender_roi.center);
        weighted_matrix(&m, &sens)
    }

    fn on_mismatch_feedback(&mut self, now: SimTime, m: SimDuration) {
        self.base.on_mismatch_feedback(now, m);
    }

    fn on_roi_feedback(&mut self, now: SimTime, roi: &Roi) {
        self.base.on_roi_feedback(now, roi);
    }

    fn mode_index(&self) -> Option<usize> {
        self.base.mode_index()
    }
}

/// Ghosh-style tile-rate optimization over the adaptive mode selector.
pub struct GhoshCompression {
    base: AdaptiveCompression,
}

impl GhoshCompression {
    /// Adaptive POI360 modes with Ghosh budget re-allocation.
    pub fn new() -> Self {
        GhoshCompression { base: AdaptiveCompression::new() }
    }
}

impl Default for GhoshCompression {
    fn default() -> Self {
        GhoshCompression::new()
    }
}

impl CompressionPolicy for GhoshCompression {
    fn name(&self) -> &'static str {
        "Ghosh"
    }

    fn set_recorder(&mut self, rec: &Recorder) {
        self.base.set_recorder(rec);
    }

    fn matrix(&mut self, grid: &TileGrid, sender_roi: &Roi) -> CompressionMatrix {
        let m = self.base.matrix(grid, sender_roi);
        let sens = SensitivityMap::pano(grid, sender_roi.center);
        ghosh_matrix(&m, &sens)
    }

    fn on_mismatch_feedback(&mut self, now: SimTime, m: SimDuration) {
        self.base.on_mismatch_feedback(now, m);
    }

    fn on_roi_feedback(&mut self, now: SimTime, roi: &Roi) {
        self.base.on_roi_feedback(now, roi);
    }

    fn mode_index(&self) -> Option<usize> {
        self.base.mode_index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_video::compression::L_MIN;
    use poi360_video::frame::TilePos;

    fn grid() -> TileGrid {
        TileGrid::POI360
    }

    #[test]
    fn pano_preserves_the_gaze_tile_and_reshapes_the_periphery() {
        let g = grid();
        let roi = Roi::at_tile(&g, TilePos::new(6, 4));
        let mut plain = AdaptiveCompression::new();
        let mut pano = PanoCompression::new();
        let base = plain.matrix(&g, &roi);
        let m = pano.matrix(&g, &roi);
        assert_eq!(m.level(roi.center), L_MIN);
        // Same mode underneath...
        assert_eq!(pano.mode_index(), plain.mode_index());
        // ...but the matrices differ off-center.
        assert_ne!(m.levels(), base.levels());
        assert!(m.levels().iter().all(|&l| l >= L_MIN));
    }

    #[test]
    fn ghosh_conserves_the_mode_budget_approximately() {
        let g = grid();
        let roi = Roi::at_tile(&g, TilePos::new(2, 2));
        let mut plain = AdaptiveCompression::new();
        let mut ghosh = GhoshCompression::new();
        let base = plain.matrix(&g, &roi);
        let m = ghosh.matrix(&g, &roi);
        // L_MIN flooring can only *drop* payload, never add it.
        assert!(m.load_factor() <= base.load_factor() * 1.001);
        assert!(m.load_factor() >= base.load_factor() * 0.80, "budget lost: {}", m.load_factor());
    }

    #[test]
    fn both_policies_follow_mode_feedback() {
        let g = grid();
        let roi = Roi::front(&g);
        for policy in [
            &mut PanoCompression::new() as &mut dyn CompressionPolicy,
            &mut GhoshCompression::new(),
        ] {
            assert_eq!(policy.mode_index(), Some(2));
            // Sustained high mismatch drives the selector conservative.
            for k in 0..40u64 {
                policy.on_mismatch_feedback(SimTime::from_secs(k), SimDuration::from_millis(1_500));
            }
            let _ = policy.matrix(&g, &roi);
            assert!(policy.mode_index().unwrap() > 2, "{:?}", policy.mode_index());
        }
    }
}
