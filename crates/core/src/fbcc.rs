//! Firmware-Buffer-aware Congestion Control (paper §4.3).
//!
//! FBCC consumes the diag reports (40 ms batches of per-subframe firmware
//! buffer level `B` and TBS) and controls two rates:
//!
//! **Encoding bitrate `R_v` (§4.3.1).** Uplink congestion is declared
//! (Eq. 3) when `B` has increased for `K = 10` consecutive chipset reports
//! *and* `B(t)` exceeds its long-term average `Γ(t)`. Eq. 3's `Δt` is "the
//! report interval of firmware buffer occupancy from the phone's chipset",
//! which §4.3.2 gives as `D_p = 40 ms` on the test device — so the
//! consecutive-increase test runs on the 40 ms report sequence (where
//! sustained congestion shows as monotone growth), not on raw 1 ms
//! subframe samples (where packet-level granularity makes `B` sawtooth
//! even under heavy overload). On detection at `t*`,
//! `R_v` is pinned to the instantaneous PHY throughput — the windowed TBS
//! sum (Eq. 4), which on a saturated uplink *is* the available bandwidth
//! (Eq. 5) — for `2·RTT` (Eq. 6), preventing the double back-off that would
//! follow when GCC's own (one-RTT-late) decrease arrives. Outside that
//! window `R_v = R_gcc`, which also covers congestion elsewhere on the path.
//!
//! **RTP sending rate `R_rtp` (§4.3.2).** Every 40 ms epoch `D_p`, the
//! controller steers the firmware buffer toward the "sweet spot" `B*` —
//! high enough that the proportional-fair scheduler keeps granting at the
//! saturation rate, low enough to stay clear of congestion — via Eq. 7:
//! `R_rtp += (B* − B)/D_p`. `B*` is learned online from the observed
//! (buffer level → TBS rate) relation, i.e. from the device's own Fig. 5
//! curve.

use poi360_lte::diag::DiagReport;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::Recorder;
use std::collections::VecDeque;

/// FBCC tuning parameters (paper values where given).
#[derive(Clone, Copy, Debug)]
pub struct FbccConfig {
    /// Consecutive buffer increases required by Eq. 3 ("a small K = 10").
    pub k_consecutive: usize,
    /// Averaging window for the TBS sum of Eq. 4.
    pub tbs_window: SimDuration,
    /// Time constant of the long-term buffer average Γ(t).
    pub gamma_tau: SimDuration,
    /// How long `R_v` stays pinned after detection, in RTTs (Eq. 6 uses 2).
    pub hold_rtts: u32,
    /// Initial sweet-spot buffer target until the learner has data, bytes.
    pub initial_bstar: u64,
    /// Bounds for the learned B*.
    pub bstar_min: u64,
    /// Upper bound for the learned B*.
    pub bstar_max: u64,
    /// How often the B* learner re-fits.
    pub bstar_refit_every: SimDuration,
}

impl Default for FbccConfig {
    fn default() -> Self {
        FbccConfig {
            k_consecutive: 10,
            tbs_window: SimDuration::from_millis(200),
            gamma_tau: SimDuration::from_secs(20),
            hold_rtts: 2,
            initial_bstar: 10_000,
            bstar_min: 4_000,
            bstar_max: 20_000,
            bstar_refit_every: SimDuration::from_secs(5),
        }
    }
}

/// Online learner of the sweet-spot buffer level `B*`.
///
/// Buckets 40 ms epochs by buffer level and tracks the mean TBS rate per
/// bucket; `B*` is the smallest bucket whose mean rate reaches ≥ 85 % of
/// the best observed rate — the knee of the device's Fig. 5 curve.
#[derive(Clone, Debug)]
struct BstarLearner {
    bucket_width: u64,
    sums: Vec<f64>,
    counts: Vec<u64>,
    bstar: u64,
    last_fit: SimTime,
}

impl BstarLearner {
    const BUCKETS: usize = 24;

    fn new(initial: u64) -> Self {
        BstarLearner {
            bucket_width: 2_000,
            sums: vec![0.0; Self::BUCKETS],
            counts: vec![0; Self::BUCKETS],
            bstar: initial,
            last_fit: SimTime::ZERO,
        }
    }

    fn observe(&mut self, buffer_bytes: u64, phy_rate_bps: f64) {
        let idx = ((buffer_bytes / self.bucket_width) as usize).min(Self::BUCKETS - 1);
        self.sums[idx] += phy_rate_bps;
        self.counts[idx] += 1;
    }

    fn refit(&mut self, now: SimTime, cfg: &FbccConfig) {
        if now.saturating_since(self.last_fit) < cfg.bstar_refit_every {
            return;
        }
        self.last_fit = now;
        let means: Vec<Option<f64>> = self
            .sums
            .iter()
            .zip(&self.counts)
            .map(|(&s, &c)| if c >= 10 { Some(s / c as f64) } else { None })
            .collect();
        let Some(best) = means
            .iter()
            .flatten()
            .cloned()
            .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.max(v))))
        else {
            return;
        };
        if best <= 0.0 {
            return;
        }
        for (idx, mean) in means.iter().enumerate() {
            if let Some(m) = mean {
                if *m >= 0.85 * best {
                    let center = (idx as u64) * self.bucket_width + self.bucket_width / 2;
                    self.bstar = center.clamp(cfg.bstar_min, cfg.bstar_max);
                    return;
                }
            }
        }
    }
}

/// The FBCC engine.
#[derive(Clone, Debug)]
pub struct Fbcc {
    cfg: FbccConfig,
    /// Recent buffer samples at report (40 ms) granularity.
    recent: VecDeque<u64>,
    /// Recent buffer samples at fine (4 ms) granularity: catches severe
    /// overload within a single report batch.
    recent_fine: VecDeque<u64>,
    /// Long-term average buffer level Γ(t), bytes.
    gamma: f64,
    gamma_initialized: bool,
    /// Sliding TBS window for Eq. 4, (subframe time, bits).
    tbs: VecDeque<(SimTime, u32)>,
    /// Congestion hold state: expiry of the Eq. 6 window. While active,
    /// `R_v` *tracks* the windowed PHY rate (the paper's Eq. 6 evaluates
    /// the TBS sum at time t, so the pin follows the live bandwidth).
    hold_until: Option<SimTime>,
    /// RTP sweet-spot rate component (Eq. 7), bps.
    rtp_component: f64,
    learner: BstarLearner,
    detections: u64,
    recorder: Recorder,
}

impl Fbcc {
    /// Create an FBCC engine.
    pub fn new(cfg: FbccConfig) -> Self {
        Fbcc {
            recent: VecDeque::with_capacity(cfg.k_consecutive + 1),
            recent_fine: VecDeque::with_capacity(cfg.k_consecutive + 1),
            gamma: 0.0,
            gamma_initialized: false,
            tbs: VecDeque::new(),
            hold_until: None,
            rtp_component: 1.0e6,
            learner: BstarLearner::new(cfg.initial_bstar),
            detections: 0,
            recorder: Recorder::null(),
            cfg,
        }
    }

    /// Attach the session's probe recorder.
    pub fn set_recorder(&mut self, rec: &Recorder) {
        self.recorder = rec.clone();
    }

    /// Long-term average buffer level Γ(t), bytes.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The learned sweet-spot buffer level B*, bytes.
    pub fn bstar(&self) -> u64 {
        self.learner.bstar
    }

    /// Total uplink congestion detections so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Whether the Eq. 6 hold window is currently active.
    pub fn holding(&self, now: SimTime) -> bool {
        self.hold_until.is_some_and(|until| now < until)
    }

    /// Windowed PHY throughput (Eq. 4), bps.
    pub fn phy_rate_bps(&self, now: SimTime) -> f64 {
        let cutoff_len = self.cfg.tbs_window;
        let bits: u64 = self
            .tbs
            .iter()
            .filter(|&&(t, _)| now.saturating_since(t) <= cutoff_len)
            .map(|&(_, b)| b as u64)
            .sum();
        bits as f64 / cutoff_len.as_secs_f64()
    }

    /// Feed one diag batch. `rtt` is the current smoothed RTT (for the
    /// Eq. 6 hold window). Returns `true` if a congestion was detected in
    /// this batch.
    pub fn on_diag(&mut self, report: &DiagReport, rtt: SimDuration, now: SimTime) -> bool {
        let mut detected = false;
        for s in &report.samples {
            // Γ(t): slow EWMA over per-subframe samples.
            let alpha = poi360_sim::SUBFRAME.as_secs_f64() / self.cfg.gamma_tau.as_secs_f64();
            if self.gamma_initialized {
                self.gamma += alpha * (s.buffer_bytes as f64 - self.gamma);
            } else {
                self.gamma = s.buffer_bytes as f64;
                self.gamma_initialized = true;
            }
            // Eq. 4 window.
            self.tbs.push_back((s.at, s.tbs_bits));
        }
        // Trim the TBS window.
        while let Some(&(t, _)) = self.tbs.front() {
            if now.saturating_since(t) > self.cfg.tbs_window {
                self.tbs.pop_front();
            } else {
                break;
            }
        }

        // Eq. 3 evidence, two scales:
        // fine 4 ms bins (severe overload fires within ~44 ms)…
        let mut fine_fired = false;
        for bin in report.samples.chunks(4) {
            if bin.is_empty() {
                continue;
            }
            let mean = bin.iter().map(|s| s.buffer_bytes).sum::<u64>() / bin.len() as u64;
            self.recent_fine.push_back(mean);
            if self.recent_fine.len() > self.cfg.k_consecutive + 1 {
                self.recent_fine.pop_front();
            }
            let inc = self.recent_fine.len() == self.cfg.k_consecutive + 1
                && self.recent_fine.iter().zip(self.recent_fine.iter().skip(1)).all(|(a, b)| b > a);
            if inc && (mean as f64) > self.gamma {
                fine_fired = true;
            }
        }
        // …and report (Δt = 40 ms) means for mild sustained drift.
        let epoch_mean = if report.samples.is_empty() {
            0
        } else {
            report.samples.iter().map(|s| s.buffer_bytes).sum::<u64>() / report.samples.len() as u64
        };
        self.recent.push_back(epoch_mean);
        if self.recent.len() > self.cfg.k_consecutive + 1 {
            self.recent.pop_front();
        }
        let increasing = self.recent.len() == self.cfg.k_consecutive + 1
            && self.recent.iter().zip(self.recent.iter().skip(1)).all(|(a, b)| b > a);
        let above_gamma = (epoch_mean as f64) > self.gamma;

        if (fine_fired || (increasing && above_gamma)) && !self.holding(now) {
            // Congestion at t*: pin R_v to the live windowed PHY rate for
            // the next 2 RTTs.
            if self.phy_rate_bps(now) > 0.0 {
                let hold_for =
                    SimDuration::from_micros(rtt.as_micros() * self.cfg.hold_rtts as u64);
                self.hold_until = Some(now + hold_for);
                self.detections += 1;
                detected = true;
                self.recorder.count("fbcc.congestion_detected", now, 1);
                // Restart evidence collection: one detection per event.
                self.recent.clear();
                self.recent_fine.clear();
            }
        }

        // Learner + Eq. 7, once per epoch.
        let epoch_rate = report.mean_phy_rate_bps();
        let b_now = report.last_buffer_bytes();
        if epoch_rate > 0.0 || b_now > 0 {
            self.learner.observe(b_now, epoch_rate);
        }
        self.learner.refit(now, &self.cfg);

        let dp = SimDuration::from_micros(
            (report.samples.len() as u64).max(1) * poi360_sim::SUBFRAME.as_micros(),
        );
        let bstar = self.learner.bstar as f64;
        let delta_bps = (bstar - b_now as f64) * 8.0 / dp.as_secs_f64();
        self.rtp_component = (self.rtp_component + delta_bps).clamp(100_000.0, 30.0e6);

        // Per-epoch controller state, sink-only (one branch with no sink).
        self.recorder.event("fbcc.gamma_bytes", now, self.gamma);
        self.recorder.event("fbcc.bstar_bytes", now, bstar);
        self.recorder.event("fbcc.rtp_component_bps", now, self.rtp_component);

        detected
    }

    /// Encoding bitrate `R_v` (Eq. 6): the *live* windowed PHY rate during
    /// the hold window (the saturated uplink's current bandwidth, Eq. 5),
    /// the legacy GCC rate otherwise.
    pub fn video_rate_bps(&self, now: SimTime, gcc_rate_bps: f64) -> f64 {
        if self.holding(now) {
            let phy = self.phy_rate_bps(now);
            if phy > 0.0 {
                return phy.min(gcc_rate_bps.max(phy * 0.5));
            }
        }
        gcc_rate_bps
    }

    /// RTP sending rate `R_rtp` (Eq. 7): never below the encoding rate
    /// plus burst headroom (keyframes and intra-refresh bursts must be able
    /// to drain out of the application buffer), pushed above that to keep
    /// the firmware buffer at `B*`.
    pub fn rtp_rate_bps(&self, now: SimTime, gcc_rate_bps: f64) -> f64 {
        self.rtp_component.max(1.25 * self.video_rate_bps(now, gcc_rate_bps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_lte::diag::DiagSample;

    fn report(start_ms: u64, buffers: &[u64], tbs: u32) -> DiagReport {
        let samples: Vec<DiagSample> = buffers
            .iter()
            .enumerate()
            .map(|(k, &b)| DiagSample {
                at: SimTime::from_millis(start_ms + k as u64),
                buffer_bytes: b,
                tbs_bits: tbs,
            })
            .collect();
        DiagReport { delivered_at: SimTime::from_millis(start_ms + buffers.len() as u64), samples }
    }

    const RTT: SimDuration = SimDuration::from_millis(100);

    /// Warm up Γ with a steady moderate buffer.
    fn warmed() -> Fbcc {
        let mut f = Fbcc::new(FbccConfig::default());
        for epoch in 0..25u64 {
            let r = report(epoch * 40, &[5_000; 40], 3_000);
            f.on_diag(&r, RTT, SimTime::from_millis(epoch * 40 + 40));
        }
        f
    }

    #[test]
    fn steady_buffer_never_detects() {
        let f = warmed();
        assert_eq!(f.detections(), 0);
        assert!(!f.holding(SimTime::from_secs(1)));
    }

    #[test]
    fn monotone_growth_above_gamma_detects() {
        let mut f = warmed();
        // Buffer ramps 6k -> 45k over one epoch: strictly increasing and
        // soon above Γ (~5k).
        let buffers: Vec<u64> = (0..40).map(|k| 6_000 + k * 1_000).collect();
        let detected = f.on_diag(&report(1_000, &buffers, 3_500), RTT, SimTime::from_millis(1_040));
        assert!(detected);
        assert_eq!(f.detections(), 1);
        assert!(f.holding(SimTime::from_millis(1_050)));
    }

    #[test]
    fn growth_below_gamma_does_not_detect() {
        let mut f = Fbcc::new(FbccConfig::default());
        // Γ warms up around 50k.
        for epoch in 0..25u64 {
            f.on_diag(
                &report(epoch * 40, &[50_000; 40], 3_000),
                RTT,
                SimTime::from_millis(epoch * 40 + 40),
            );
        }
        // A small ramp well below Γ: not congestion (Eq. 3's second clause).
        let buffers: Vec<u64> = (0..40).map(|k| 1_000 + k * 100).collect();
        let detected = f.on_diag(&report(1_000, &buffers, 3_000), RTT, SimTime::from_millis(1_040));
        assert!(!detected);
    }

    #[test]
    fn non_monotone_growth_does_not_detect() {
        let mut f = warmed();
        // Sawtooth above Γ but never K consecutive increases.
        let buffers: Vec<u64> = (0..40).map(|k| 20_000 + (k % 5) * 1_000).collect();
        let detected = f.on_diag(&report(1_000, &buffers, 3_000), RTT, SimTime::from_millis(1_040));
        assert!(!detected);
    }

    #[test]
    fn video_rate_pins_to_phy_rate_during_hold() {
        let mut f = warmed();
        let buffers: Vec<u64> = (0..40).map(|k| 6_000 + k * 1_000).collect();
        // 3500 bits per subframe = 3.5 Mbps.
        f.on_diag(&report(1_000, &buffers, 3_500), RTT, SimTime::from_millis(1_040));
        let gcc = 8.0e6;
        let pinned = f.video_rate_bps(SimTime::from_millis(1_050), gcc);
        assert!(pinned < 4.0e6, "pinned {pinned}");
        assert!((pinned - 3.5e6).abs() < 0.7e6, "pinned {pinned} should be near PHY rate");
    }

    #[test]
    fn hold_expires_after_two_rtts() {
        let mut f = warmed();
        let buffers: Vec<u64> = (0..40).map(|k| 6_000 + k * 1_000).collect();
        f.on_diag(&report(1_000, &buffers, 3_500), RTT, SimTime::from_millis(1_040));
        // Detection occurs somewhere inside the epoch; 2 RTT = 200 ms later
        // the hold must have lapsed.
        assert!(f.holding(SimTime::from_millis(1_100)));
        assert!(!f.holding(SimTime::from_millis(1_300)));
        let gcc = 8.0e6;
        assert_eq!(f.video_rate_bps(SimTime::from_millis(1_300), gcc), gcc);
    }

    #[test]
    fn eq7_pushes_rtp_rate_when_buffer_low() {
        let mut f = warmed();
        let before = f.rtp_component;
        // Empty buffer epochs: controller should raise the RTP rate.
        for epoch in 0..5u64 {
            f.on_diag(
                &report(2_000 + epoch * 40, &[0; 40], 0),
                RTT,
                SimTime::from_millis(2_040 + epoch * 40),
            );
        }
        assert!(f.rtp_component > before, "{} -> {}", before, f.rtp_component);
    }

    #[test]
    fn eq7_relaxes_rtp_rate_when_buffer_high() {
        let mut f = warmed();
        for epoch in 0..5u64 {
            f.on_diag(
                &report(2_000 + epoch * 40, &[60_000; 40], 3_000),
                RTT,
                SimTime::from_millis(2_040 + epoch * 40),
            );
        }
        let gcc = 1.0e6;
        // rtp component fell, but the floor at 1.25·R_v keeps the app
        // buffer draining (with burst headroom).
        assert_eq!(f.rtp_rate_bps(SimTime::from_secs(3), gcc), 1.25 * gcc);
    }

    #[test]
    fn bstar_learner_finds_the_knee() {
        let mut f = Fbcc::new(FbccConfig::default());
        // Emulate the Fig. 5 curve: rate saturates at ~3.5 Mbps beyond ~12 kB.
        let mut now_ms = 0u64;
        for _ in 0..200u64 {
            for &(b, tbs) in &[
                (1_000u64, 600u32),
                (5_000, 1_800),
                (9_000, 2_800),
                (13_000, 3_400),
                (17_000, 3_500),
                (25_000, 3_550),
            ] {
                let r = report(now_ms, &vec![b; 40], tbs);
                now_ms += 40;
                f.on_diag(&r, RTT, SimTime::from_millis(now_ms));
            }
        }
        let bstar = f.bstar();
        assert!((11_000..=16_000).contains(&bstar), "B* should sit at the knee: {bstar}");
    }

    #[test]
    fn phy_rate_windows_correctly() {
        let mut f = Fbcc::new(FbccConfig::default());
        // 200 ms of 3000-bit subframes = 3 Mbps.
        for epoch in 0..5u64 {
            f.on_diag(
                &report(epoch * 40, &[5_000; 40], 3_000),
                RTT,
                SimTime::from_millis(epoch * 40 + 40),
            );
        }
        let rate = f.phy_rate_bps(SimTime::from_millis(200));
        assert!((rate - 3.0e6).abs() < 0.2e6, "rate {rate}");
    }

    #[test]
    fn no_double_detection_within_hold() {
        let mut f = warmed();
        let buffers: Vec<u64> = (0..40).map(|k| 6_000 + k * 1_500).collect();
        f.on_diag(&report(1_000, &buffers, 3_500), RTT, SimTime::from_millis(1_040));
        assert_eq!(f.detections(), 1);
        // Still growing during the hold: no second detection.
        let buffers2: Vec<u64> = (0..40).map(|k| 70_000 + k * 1_500).collect();
        f.on_diag(&report(1_040, &buffers2, 3_500), RTT, SimTime::from_millis(1_080));
        assert_eq!(f.detections(), 1);
    }

    /// A diag-read stall repeats the last sample verbatim. Eq. 3 requires
    /// K *strictly* increasing samples, so a frozen B(t) — however far
    /// above Γ — must never read as congestion, at either evidence scale.
    #[test]
    fn frozen_diag_samples_never_detect() {
        let mut f = warmed();
        // 30 epochs (1.2 s) of the identical sample, 12x above Γ (~5k).
        for epoch in 0..30u64 {
            let detected = f.on_diag(
                &report(1_000 + epoch * 40, &[60_000; 40], 3_500),
                RTT,
                SimTime::from_millis(1_040 + epoch * 40),
            );
            assert!(!detected, "frozen sample read as congestion at epoch {epoch}");
        }
        assert_eq!(f.detections(), 0);
        assert!(!f.holding(SimTime::from_millis(2_240)));
    }

    /// The stall must not poison the evidence window either: once live
    /// samples resume and genuinely grow, detection fires again.
    #[test]
    fn detection_recovers_after_frozen_stall() {
        let mut f = warmed();
        for epoch in 0..30u64 {
            f.on_diag(
                &report(1_000 + epoch * 40, &[20_000; 40], 3_500),
                RTT,
                SimTime::from_millis(1_040 + epoch * 40),
            );
        }
        assert_eq!(f.detections(), 0);
        // Stall clears and the buffer really ramps: congestion detected.
        let buffers: Vec<u64> = (0..40).map(|k| 22_000 + k * 1_500).collect();
        let detected = f.on_diag(&report(2_200, &buffers, 3_500), RTT, SimTime::from_millis(2_240));
        assert!(detected, "real growth after a stall must still detect");
        assert_eq!(f.detections(), 1);
    }
}
