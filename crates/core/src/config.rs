//! Session and experiment configuration.

use poi360_lte::scenario::Scenario;
use poi360_sim::time::SimDuration;
use poi360_video::encoder::EncoderConfig;
use poi360_viewport::motion::UserArchetype;

/// Which spatial compression scheme the sender runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompressionScheme {
    /// POI360's adaptive compression (§4.2).
    Poi360,
    /// Conduit baseline: two-level ROI crop.
    Conduit,
    /// Pyramid baseline: fixed smooth falloff.
    Pyramid,
    /// §8 extension: POI360 with sender-side linear ROI prediction.
    Poi360Predictive,
    /// Ablation: POI360 pinned to one of its eight modes (1 = most
    /// aggressive, 8 = most conservative), adaptation disabled.
    FixedMode(u8),
    /// Related work: POI360's mode selector modulated by Pano-style
    /// per-tile quality-sensitivity weights (`video::perceptual`).
    Pano,
    /// Related work: Ghosh-style per-tile bitrate optimization over the
    /// mode selector's budget (`video::perceptual`).
    Ghosh,
}

impl CompressionScheme {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            CompressionScheme::Poi360 => "POI360",
            CompressionScheme::Conduit => "Conduit",
            CompressionScheme::Pyramid => "Pyramid",
            CompressionScheme::Poi360Predictive => "POI360+pred",
            CompressionScheme::FixedMode(1) => "F1(C=1.8)",
            CompressionScheme::FixedMode(2) => "F2(C=1.7)",
            CompressionScheme::FixedMode(3) => "F3(C=1.6)",
            CompressionScheme::FixedMode(4) => "F4(C=1.5)",
            CompressionScheme::FixedMode(5) => "F5(C=1.4)",
            CompressionScheme::FixedMode(6) => "F6(C=1.3)",
            CompressionScheme::FixedMode(7) => "F7(C=1.2)",
            CompressionScheme::FixedMode(_) => "F8(C=1.1)",
            CompressionScheme::Pano => "Pano",
            CompressionScheme::Ghosh => "Ghosh",
        }
    }

    /// The three schemes the paper compares.
    pub fn all() -> [CompressionScheme; 3] {
        [CompressionScheme::Poi360, CompressionScheme::Conduit, CompressionScheme::Pyramid]
    }
}

/// Which rate control the sender runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RateControlKind {
    /// WebRTC's stock Google Congestion Control.
    Gcc,
    /// POI360's firmware-buffer-aware control on top of GCC.
    Fbcc,
    /// Related work: OCC-style PHY-assisted control driven entirely by
    /// the diag plane's grant/backlog observables.
    Occ,
}

impl RateControlKind {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            RateControlKind::Gcc => "GCC",
            RateControlKind::Fbcc => "FBCC",
            RateControlKind::Occ => "OCC",
        }
    }
}

/// Which access network carries the session uplink.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetworkKind {
    /// LTE cellular uplink under a field scenario.
    Cellular(Scenario),
    /// §8 extension: cellular uplink with mobile-edge relaying — traffic
    /// turns around at the edge base station instead of crossing the
    /// Internet, shortening both the media and the feedback path.
    CellularEdge(Scenario),
    /// Campus wireline (the paper's control condition).
    Wireline,
}

impl NetworkKind {
    /// Label used in reports.
    pub fn label(&self) -> String {
        match self {
            NetworkKind::Cellular(s) => format!("cellular[{}]", s.label()),
            NetworkKind::CellularEdge(s) => format!("edge-cellular[{}]", s.label()),
            NetworkKind::Wireline => "wireline".to_string(),
        }
    }
}

/// Full configuration of one telephony session.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Spatial compression scheme.
    pub scheme: CompressionScheme,
    /// Rate control.
    pub rate_control: RateControlKind,
    /// Access network.
    pub network: NetworkKind,
    /// Viewer behaviour.
    pub user: UserArchetype,
    /// Session length.
    pub duration: SimDuration,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Encoder parameters.
    pub encoder: EncoderConfig,
    /// Initial encoding bitrate before any feedback, bps.
    pub start_rate_bps: f64,
    /// Fixed processing latency outside the network: camera capture,
    /// canvas composition, VP8 encode, decode, WebGL render, display —
    /// the browser-pipeline cost the paper's end-to-end numbers include.
    pub pipeline_delay: SimDuration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            scheme: CompressionScheme::Poi360,
            rate_control: RateControlKind::Fbcc,
            network: NetworkKind::Cellular(Scenario::baseline()),
            user: UserArchetype::EventDriven,
            duration: SimDuration::from_secs(60),
            seed: 1,
            encoder: EncoderConfig::default(),
            start_rate_bps: 1.0e6,
            pipeline_delay: SimDuration::from_millis(240),
        }
    }
}

impl SessionConfig {
    /// Compact label for reports.
    pub fn label(&self) -> String {
        format!(
            "{}+{} over {} ({} user, {:.0}s, seed {})",
            self.scheme.label(),
            self.rate_control.label(),
            self.network.label(),
            self.user.label(),
            self.duration.as_secs_f64(),
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        let cfg = SessionConfig::default();
        let label = cfg.label();
        assert!(label.contains("POI360"));
        assert!(label.contains("FBCC"));
        assert!(label.contains("cellular"));
    }

    #[test]
    fn all_schemes_enumerated() {
        let labels: Vec<&str> = CompressionScheme::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["POI360", "Conduit", "Pyramid"]);
    }

    #[test]
    fn wireline_label() {
        assert_eq!(NetworkKind::Wireline.label(), "wireline");
    }
}
