//! POI360 core: the paper's contribution.
//!
//! * [`adaptive`] — adaptive spatial compression (§4.2): the client-side
//!   ROI-mismatch-time monitor (Eq. 2) and the sender-side compression-mode
//!   selector over the K = 8 pre-defined modes.
//! * [`baselines`] — the benchmark compression schemes the paper compares
//!   against (§6.1.1): Conduit (ROI crop, two levels) and Pyramid encoding
//!   (fixed smooth falloff).
//! * [`policy`] — the `CompressionPolicy` trait both implement.
//! * [`fbcc`] — Firmware-Buffer-aware Congestion Control (§4.3):
//!   uplink congestion detection from diag reports (Eq. 3), PHY bandwidth
//!   estimation (Eq. 4), the encoding-bitrate rule (Eq. 6), and the RTP
//!   sweet-spot controller (Eq. 7) with its learned target buffer level.
//! * [`rate`] — the `RateController` trait with FBCC and plain-GCC
//!   implementations.
//! * [`session`] — the full telephony session: sender pipeline (compression
//!   → encoder → packetizer → pacer → uplink), network path, client pipeline
//!   (reassembly → render → measurement), and all feedback loops, driven one
//!   LTE subframe at a time.
//! * [`multicell`] — lockstep drivers for M sessions sharing one
//!   multi-UE eNodeB cell (coexistence experiments) and for sessions
//!   moving across a hex grid of cells with A3 handover (mobility
//!   experiments).
//! * [`config`] — session/experiment configuration.
//! * [`report`] — per-session measurement record and cross-session
//!   aggregation.

pub mod adaptive;
pub mod baselines;
pub mod config;
pub mod fbcc;
pub mod multicell;
pub mod occ;
pub mod policy;
pub mod predictive;
pub mod rate;
pub mod report;
pub mod session;
pub mod tiling;

pub use adaptive::{AdaptiveCompression, RoiMismatchMonitor};
pub use baselines::{ConduitCompression, PyramidCompression};
pub use config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
pub use fbcc::{Fbcc, FbccConfig};
pub use multicell::{
    FlowGridStats, FlowSpec, MultiCell, MultiCellConfig, MultiCellReport, MultiGrid,
    MultiGridConfig, MultiGridReport,
};
pub use occ::{Occ, OccConfig};
pub use policy::CompressionPolicy;
pub use predictive::PredictiveCompression;
pub use rate::RateController;
pub use report::SessionReport;
pub use session::Session;
pub use tiling::{GhoshCompression, PanoCompression};
