//! Adaptive spatial compression (paper §4.2).
//!
//! Two halves:
//!
//! * [`RoiMismatchMonitor`] runs at the **client**: it measures the ROI
//!   mismatch time `M` — how long the sender and client hold inconsistent
//!   ROI knowledge — purely from observables (Eq. 2): the compression level
//!   the received frame assigns to the tile the user is actually looking
//!   at, and the one-way frame delay `d_v`. Frame-level measurements are
//!   averaged over a sliding window and fed back every frame interval.
//!
//! * [`AdaptiveCompression`] runs at the **sender**: it keeps the latest
//!   averaged `M` and picks one of the K = 8 pre-defined modes,
//!   `i_m = clamp(⌈M / 200 ms⌉, 1, 8)`, over `C ∈ {1.8, 1.7, …, 1.1}` —
//!   aggressive when ROI updates are swift, conservative (smooth falloff)
//!   when they are sluggish.
//!
//! *Paper-typo note (recorded in DESIGN.md §6):* the paper prints
//! `i_m = max(8, ⌈M/200ms⌉)`, which always evaluates to ≥ 8 and would pin
//! the scheme to its most conservative mode, contradicting the surrounding
//! text ("under swift ROI update, the sender can aggressively compress").
//! The clamp above is the evident intent.

use crate::policy::CompressionPolicy;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::Recorder;
use poi360_video::compression::{CompressionMatrix, CompressionMode, L_MIN};
use poi360_video::encoder::EncodedFrame;
use poi360_video::frame::TileGrid;
use poi360_video::roi::Roi;
use std::collections::VecDeque;

/// Mode-selection granularity: one mode step per 200 ms of mismatch.
pub const MODE_STEP: SimDuration = SimDuration::from_millis(200);

/// Client-side ROI mismatch measurement (paper Eq. 2).
#[derive(Clone, Debug)]
pub struct RoiMismatchMonitor {
    /// Frame-level `M` samples in the sliding window.
    window: VecDeque<(SimTime, SimDuration)>,
    window_len: SimDuration,
    /// When the current (not yet quality-converged) ROI change began.
    change_started: Option<SimTime>,
    last_center: Option<poi360_video::frame::TilePos>,
}

impl RoiMismatchMonitor {
    /// Create a monitor with a 1 s averaging window.
    pub fn new() -> Self {
        RoiMismatchMonitor {
            window: VecDeque::new(),
            window_len: SimDuration::from_secs(1),
            change_started: None,
            last_center: None,
        }
    }

    /// Notify that the viewer's ROI center tile moved (call whenever the
    /// client-side ROI is updated, i.e. at sensor rate).
    pub fn on_roi_update(&mut self, now: SimTime, roi: &Roi) {
        if let Some(last) = self.last_center {
            if last != roi.center {
                // Paper: "the client starts counting the time on detecting
                // the ROI change at time t0". Consecutive changes keep the
                // earliest unconverged t0 — inconsistency has persisted
                // since then.
                self.change_started.get_or_insert(now);
            }
        }
        self.last_center = Some(roi.center);
    }

    /// Process a rendered frame: returns this frame's `M` measurement.
    ///
    /// `dv` is the one-way video frame delay (from the embedded timestamp);
    /// `frame` carries the sender's compression matrix; `client_roi` is the
    /// viewer's ROI at render time.
    pub fn on_frame(
        &mut self,
        now: SimTime,
        frame: &EncodedFrame,
        client_roi: &Roi,
        dv: SimDuration,
    ) -> SimDuration {
        let level_at_gaze = frame.matrix.level(client_roi.center);
        let converged = (level_at_gaze - L_MIN).abs() < 1e-9;
        let m = if converged {
            // Quality already highest where the user looks: the only lower
            // bound on update latency is the frame delay itself.
            self.change_started = None;
            dv
        } else {
            let t0 = *self.change_started.get_or_insert(now);
            now.saturating_since(t0).max(dv)
        };
        self.window.push_back((now, m));
        while let Some(&(t, _)) = self.window.front() {
            if now.saturating_since(t) > self.window_len {
                self.window.pop_front();
            } else {
                break;
            }
        }
        m
    }

    /// The sliding-window average `M` to feed back, if any frames were seen.
    pub fn average(&self) -> Option<SimDuration> {
        if self.window.is_empty() {
            return None;
        }
        let sum: u64 = self.window.iter().map(|&(_, m)| m.as_micros()).sum();
        Some(SimDuration::from_micros(sum / self.window.len() as u64))
    }
}

impl Default for RoiMismatchMonitor {
    fn default() -> Self {
        Self::new()
    }
}

/// Sender-side adaptive mode selection.
#[derive(Clone, Debug)]
pub struct AdaptiveCompression {
    modes: Vec<CompressionMode>,
    /// Smoothed mismatch estimate driving mode selection.
    m_smooth: SimDuration,
    current: usize, // 0-based index into modes
    /// Earliest time the next mode switch is allowed. Every switch
    /// re-levels the whole panorama and costs an intra-refresh burst, so
    /// the selector holds a mode for a minimum dwell.
    next_switch_at: SimTime,
    recorder: Recorder,
}

impl AdaptiveCompression {
    /// Create the policy with the paper's 8 modes, starting mid-range.
    pub fn new() -> Self {
        AdaptiveCompression {
            modes: CompressionMode::poi360_modes(),
            m_smooth: SimDuration::from_millis(400),
            current: 1, // start at F2 until feedback arrives
            next_switch_at: SimTime::ZERO,
            recorder: Recorder::null(),
        }
    }

    /// Ablation constructor: pin the policy to mode `F_k` (1-based) and
    /// disable adaptation by pushing the next allowed switch to infinity.
    pub fn fixed_mode(k: u8) -> Self {
        let mut a = AdaptiveCompression::new();
        a.current = (k.clamp(1, 8) - 1) as usize;
        a.next_switch_at = SimTime::MAX;
        a
    }

    /// The aggressiveness constant C of the active mode.
    pub fn active_c(&self) -> f64 {
        match self.modes[self.current].falloff {
            poi360_video::compression::Falloff::Geometric { c } => c,
            poi360_video::compression::Falloff::ProtectedGeometric { c, .. } => c,
            _ => unreachable!("POI360 modes are geometric"),
        }
    }
}

impl Default for AdaptiveCompression {
    fn default() -> Self {
        Self::new()
    }
}

impl CompressionPolicy for AdaptiveCompression {
    fn name(&self) -> &'static str {
        "POI360"
    }

    fn set_recorder(&mut self, rec: &Recorder) {
        self.recorder = rec.clone();
    }

    fn matrix(&mut self, grid: &TileGrid, sender_roi: &Roi) -> CompressionMatrix {
        self.modes[self.current].matrix(grid, sender_roi.center)
    }

    fn on_mismatch_feedback(&mut self, now: SimTime, m: SimDuration) {
        // Light smoothing so a single outlier frame does not flap the mode.
        let alpha = 0.3;
        let smoothed =
            self.m_smooth.as_micros() as f64 * (1.0 - alpha) + m.as_micros() as f64 * alpha;
        self.m_smooth = SimDuration::from_micros(smoothed as u64);

        // i_m = clamp(ceil(M / 200 ms), 1, 8); modes[0] = F1 (C=1.8).
        let steps = self.m_smooth.as_micros().div_ceil(MODE_STEP.as_micros()).max(1);
        let target = (steps.min(self.modes.len() as u64) - 1) as usize;
        if target != self.current && now >= self.next_switch_at {
            self.current = target;
            self.next_switch_at = now + SimDuration::from_secs(2);
            self.recorder.count("video.mode_switch", now, 1);
            self.recorder.event("video.mode_index", now, (self.current + 1) as f64);
        }
    }

    fn mode_index(&self) -> Option<usize> {
        Some(self.current + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_video::content::ContentModel;
    use poi360_video::encoder::{Encoder, EncoderConfig};
    use poi360_video::frame::TilePos;

    fn grid() -> TileGrid {
        TileGrid::POI360
    }

    fn frame_with_matrix(center: TilePos, c: f64) -> EncodedFrame {
        let mut enc = Encoder::new(EncoderConfig::default(), 1);
        let content = ContentModel::new(grid(), 1);
        let roi = Roi::at_tile(&grid(), center);
        let matrix = CompressionMode::geometric(c).matrix(&grid(), center);
        enc.encode(SimTime::ZERO, roi, &matrix, &content, 3.0e6)
    }

    #[test]
    fn converged_frames_report_dv() {
        let mut mon = RoiMismatchMonitor::new();
        let roi = Roi::at_tile(&grid(), TilePos::new(6, 4));
        mon.on_roi_update(SimTime::ZERO, &roi);
        let frame = frame_with_matrix(TilePos::new(6, 4), 1.4);
        let dv = SimDuration::from_millis(120);
        let m = mon.on_frame(SimTime::from_millis(100), &frame, &roi, dv);
        assert_eq!(m, dv);
    }

    #[test]
    fn mismatch_counts_from_change_until_convergence() {
        let mut mon = RoiMismatchMonitor::new();
        let g = grid();
        let old = Roi::at_tile(&g, TilePos::new(6, 4));
        let new = Roi::at_tile(&g, TilePos::new(9, 4));
        mon.on_roi_update(SimTime::from_millis(0), &old);
        // User moves at t=100 ms.
        mon.on_roi_update(SimTime::from_millis(100), &new);
        let dv = SimDuration::from_millis(80);
        // Frames still compressed for the old ROI keep arriving.
        let stale = frame_with_matrix(TilePos::new(6, 4), 1.4);
        // 50 ms after the change, the elapsed mismatch is still below dv,
        // so Eq. 2's max() returns dv.
        let m1 = mon.on_frame(SimTime::from_millis(150), &stale, &new, dv);
        assert_eq!(m1, dv);
        let m2 = mon.on_frame(SimTime::from_millis(400), &stale, &new, dv);
        assert_eq!(m2, SimDuration::from_millis(300));
        // Sender catches up: frame centered on the new ROI.
        let fresh = frame_with_matrix(TilePos::new(9, 4), 1.4);
        let m3 = mon.on_frame(SimTime::from_millis(450), &fresh, &new, dv);
        assert_eq!(m3, dv, "converged measurement falls back to dv");
    }

    #[test]
    fn mismatch_never_below_dv() {
        let mut mon = RoiMismatchMonitor::new();
        let g = grid();
        let old = Roi::at_tile(&g, TilePos::new(2, 2));
        let new = Roi::at_tile(&g, TilePos::new(8, 5));
        mon.on_roi_update(SimTime::ZERO, &old);
        mon.on_roi_update(SimTime::from_millis(10), &new);
        let stale = frame_with_matrix(TilePos::new(2, 2), 1.4);
        let dv = SimDuration::from_millis(200);
        let m = mon.on_frame(SimTime::from_millis(20), &stale, &new, dv);
        assert_eq!(m, dv, "Eq. 2 takes max(t - t0, dv)");
    }

    #[test]
    fn average_window_slides() {
        let mut mon = RoiMismatchMonitor::new();
        let g = grid();
        let roi = Roi::at_tile(&g, TilePos::new(6, 4));
        mon.on_roi_update(SimTime::ZERO, &roi);
        let frame = frame_with_matrix(TilePos::new(6, 4), 1.4);
        for k in 0..50u64 {
            mon.on_frame(
                SimTime::from_millis(k * 28),
                &frame,
                &roi,
                SimDuration::from_millis(100 + k),
            );
        }
        let avg = mon.average().expect("has samples");
        // Window holds only the last ~36 frames (1 s), so the average is
        // pulled toward the later (larger) dv values.
        assert!(avg > SimDuration::from_millis(120), "avg {avg:?}");
    }

    /// Feed `m` repeatedly while advancing time past the switch dwell.
    fn converge(a: &mut AdaptiveCompression, start: SimTime, m_ms: u64) -> SimTime {
        let mut now = start;
        for _ in 0..200 {
            a.on_mismatch_feedback(now, SimDuration::from_millis(m_ms));
            now += SimDuration::from_millis(100);
        }
        now
    }

    #[test]
    fn mode_selection_follows_m() {
        let mut a = AdaptiveCompression::new();
        // Swift updates: converge the smoothing with repeated feedback.
        let now = converge(&mut a, SimTime::ZERO, 100);
        assert_eq!(a.mode_index(), Some(1));
        assert!((a.active_c() - 1.8).abs() < 1e-9);
        // Sluggish updates: most conservative mode.
        let now = converge(&mut a, now, 2_500);
        assert_eq!(a.mode_index(), Some(8));
        assert!((a.active_c() - 1.1).abs() < 1e-9);
        // Mid-range.
        converge(&mut a, now, 900);
        assert_eq!(a.mode_index(), Some(5));
    }

    #[test]
    fn smoothing_rejects_single_outliers() {
        let mut a = AdaptiveCompression::new();
        let now = converge(&mut a, SimTime::ZERO, 100);
        let before = a.mode_index();
        a.on_mismatch_feedback(now + SimDuration::from_secs(10), SimDuration::from_millis(3_000));
        // One outlier moves the smoothed M but must not jump to mode 8.
        assert!(a.mode_index().unwrap() <= before.unwrap() + 5);
        assert_ne!(a.mode_index(), Some(8));
    }

    #[test]
    fn mode_switches_respect_dwell() {
        let mut a = AdaptiveCompression::new();
        let now = converge(&mut a, SimTime::ZERO, 100);
        assert_eq!(a.mode_index(), Some(1));
        // A sudden M jump switches once, then holds for the dwell.
        a.on_mismatch_feedback(now, SimDuration::from_millis(2_500));
        let after_first = a.mode_index().unwrap();
        a.on_mismatch_feedback(
            now + SimDuration::from_millis(100),
            SimDuration::from_millis(2_500),
        );
        assert_eq!(a.mode_index(), Some(after_first), "second switch must wait out the dwell");
    }

    #[test]
    fn matrix_centers_on_sender_roi() {
        let mut a = AdaptiveCompression::new();
        let g = grid();
        let roi = Roi::at_tile(&g, TilePos::new(3, 2));
        let m = a.matrix(&g, &roi);
        assert_eq!(m.roi_center, TilePos::new(3, 2));
        assert_eq!(m.level(TilePos::new(3, 2)), L_MIN);
    }

    #[test]
    fn policy_name() {
        assert_eq!(AdaptiveCompression::new().name(), "POI360");
    }
}
