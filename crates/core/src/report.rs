//! Per-session measurement record and cross-session aggregation.
//!
//! A [`SessionReport`] is everything the paper's figures need from one
//! session; [`Aggregate`] pools reports across users/repetitions the way
//! §6 aggregates its 5-user × 10-repetition runs.

use poi360_metrics::dist::Summary;
use poi360_metrics::freeze::FreezeStats;
use poi360_metrics::mos::MosPdf;
use poi360_sim::json::{JsonObject, ToJson};
use poi360_sim::series::TimeSeries;
use poi360_sim::time::SimDuration;

/// Everything measured in one session.
#[derive(Clone, Debug, Default)]
pub struct SessionReport {
    /// Session label (scheme, rate control, network, user, seed).
    pub label: String,
    /// Frames the encoder produced.
    pub frames_sent: u64,
    /// Frames fully delivered to the viewer.
    pub frames_delivered: u64,
    /// Frames abandoned (never displayable).
    pub frames_lost: u64,
    /// Per-frame delivery delays and freeze bookkeeping.
    pub freeze: FreezeStats,
    /// Per-delivered-frame user-perceived ROI PSNR (dB), staleness included.
    pub roi_psnr_db: Vec<f64>,
    /// Displayed compression level at the viewer's gaze tile, per frame.
    pub roi_level: TimeSeries,
    /// Client-measured ROI mismatch time M (ms), per frame.
    pub mismatch_ms: TimeSeries,
    /// Firmware buffer level (bytes) per diag epoch (cellular only).
    pub fw_buffer: TimeSeries,
    /// PHY throughput (bps) per diag epoch (cellular only).
    pub phy_rate: TimeSeries,
    /// Encoder target rate R_v (bps), per frame.
    pub video_rate: TimeSeries,
    /// Pacer rate R_rtp (bps), per frame.
    pub rtp_rate: TimeSeries,
    /// Received video throughput (bps), per second.
    pub throughput: TimeSeries,
    /// Uplink congestion detections (FBCC only).
    pub uplink_detections: u64,
    /// Packets dropped at the firmware buffer / link.
    pub packets_dropped: u64,
}

impl SessionReport {
    /// Mean ROI PSNR over delivered frames.
    pub fn mean_psnr_db(&self) -> f64 {
        Summary::of(&self.roi_psnr_db).mean
    }

    /// PSNR standard deviation.
    pub fn psnr_std_db(&self) -> f64 {
        Summary::of(&self.roi_psnr_db).std
    }

    /// MOS PDF over delivered frames.
    pub fn mos(&self) -> MosPdf {
        MosPdf::from_psnrs(self.roi_psnr_db.iter().copied())
    }

    /// Freeze ratio (lost frames count as frozen).
    pub fn freeze_ratio(&self) -> f64 {
        self.freeze.freeze_ratio().unwrap_or(0.0)
    }

    /// Median delivered frame delay in ms.
    pub fn median_delay_ms(&self) -> f64 {
        self.freeze.median_delay_ms().unwrap_or(0.0)
    }

    /// Mean received throughput in bps.
    pub fn mean_throughput_bps(&self) -> f64 {
        self.throughput.mean().unwrap_or(0.0)
    }

    /// Throughput standard deviation in bps.
    pub fn throughput_std_bps(&self) -> f64 {
        self.throughput.std().unwrap_or(0.0)
    }

    /// Short-term ROI compression-level variation: the std of the displayed
    /// level over 2 s sliding windows (paper Fig. 12).
    pub fn roi_level_sliding_std(&self) -> Vec<f64> {
        self.roi_level.sliding_window_std(SimDuration::from_secs(2), SimDuration::from_millis(500))
    }
}

impl ToJson for SessionReport {
    /// Serializes the complete per-session record, field for field, in a
    /// fixed order — two runs of the same seed must produce byte-identical
    /// JSON (asserted by `tests/determinism.rs`).
    fn write_json(&self, out: &mut String) {
        JsonObject::new()
            .field("label", &self.label)
            .field("frames_sent", &self.frames_sent)
            .field("frames_delivered", &self.frames_delivered)
            .field("frames_lost", &self.frames_lost)
            .field("freeze", &self.freeze)
            .field("roi_psnr_db", &self.roi_psnr_db)
            .field("roi_level", &self.roi_level)
            .field("mismatch_ms", &self.mismatch_ms)
            .field("fw_buffer", &self.fw_buffer)
            .field("phy_rate", &self.phy_rate)
            .field("video_rate", &self.video_rate)
            .field("rtp_rate", &self.rtp_rate)
            .field("throughput", &self.throughput)
            .field("uplink_detections", &self.uplink_detections)
            .field("packets_dropped", &self.packets_dropped)
            .write(out);
    }
}

/// Pooled statistics across sessions (users × repetitions).
#[derive(Clone, Debug, Default)]
pub struct Aggregate {
    /// Condition label.
    pub label: String,
    /// Session reports pooled into this aggregate.
    pub sessions: usize,
    /// All per-frame ROI PSNRs.
    pub roi_psnr_db: Vec<f64>,
    /// All per-frame delays.
    pub freeze: FreezeStats,
    /// All sliding-window level stds (Fig. 12 samples).
    pub level_stds: Vec<f64>,
    /// All per-frame M values (ms).
    pub mismatch_ms: Vec<f64>,
    /// All fw-buffer samples (bytes).
    pub fw_buffer: Vec<f64>,
    /// All (buffer, phy rate) pairs per diag epoch.
    pub buffer_rate_pairs: Vec<(f64, f64)>,
    /// Per-session mean throughputs.
    pub session_throughputs: Vec<f64>,
    /// Pooled per-second throughput samples.
    pub throughput_samples: Vec<f64>,
}

impl Aggregate {
    /// Start an aggregate with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Aggregate { label: label.into(), ..Default::default() }
    }

    /// Fold one session in.
    pub fn add(&mut self, report: &SessionReport) {
        self.sessions += 1;
        self.roi_psnr_db.extend_from_slice(&report.roi_psnr_db);
        self.freeze.merge(&report.freeze);
        self.level_stds.extend(report.roi_level_sliding_std());
        self.mismatch_ms.extend(report.mismatch_ms.values());
        self.fw_buffer.extend(report.fw_buffer.values());
        let rates = report.phy_rate.values();
        for (k, b) in report.fw_buffer.values().iter().enumerate() {
            if let Some(r) = rates.get(k) {
                self.buffer_rate_pairs.push((*b, *r));
            }
        }
        self.session_throughputs.push(report.mean_throughput_bps());
        self.throughput_samples.extend(report.throughput.values());
    }

    /// Mean ROI PSNR.
    pub fn mean_psnr_db(&self) -> f64 {
        Summary::of(&self.roi_psnr_db).mean
    }

    /// ROI PSNR std.
    pub fn psnr_std_db(&self) -> f64 {
        Summary::of(&self.roi_psnr_db).std
    }

    /// Pooled MOS PDF.
    pub fn mos(&self) -> MosPdf {
        MosPdf::from_psnrs(self.roi_psnr_db.iter().copied())
    }

    /// Pooled freeze ratio.
    pub fn freeze_ratio(&self) -> f64 {
        self.freeze.freeze_ratio().unwrap_or(0.0)
    }

    /// Pooled median frame delay (ms).
    pub fn median_delay_ms(&self) -> f64 {
        self.freeze.median_delay_ms().unwrap_or(0.0)
    }

    /// Mean of the Fig. 12 level-std samples.
    pub fn mean_level_std(&self) -> f64 {
        Summary::of(&self.level_stds).mean
    }

    /// Mean throughput across sessions (bps).
    pub fn mean_throughput_bps(&self) -> f64 {
        Summary::of(&self.session_throughputs).mean
    }

    /// Std of the pooled per-second throughput samples (bps).
    pub fn throughput_std_bps(&self) -> f64 {
        Summary::of(&self.throughput_samples).std
    }

    /// Fraction of fw-buffer samples at (near) zero — paper Fig. 6's
    /// headline number.
    pub fn buffer_empty_fraction(&self) -> f64 {
        if self.fw_buffer.is_empty() {
            return 0.0;
        }
        self.fw_buffer.iter().filter(|&&b| b < 1.0).count() as f64 / self.fw_buffer.len() as f64
    }
}

impl ToJson for Aggregate {
    /// Serializes the headline reductions rather than the raw pools: the
    /// bench runner wants comparable condition-level numbers, not megabytes
    /// of per-frame samples.
    fn write_json(&self, out: &mut String) {
        JsonObject::new()
            .field("label", &self.label)
            .field("sessions", &self.sessions)
            .field("frames", &self.roi_psnr_db.len())
            .field("mean_psnr_db", &self.mean_psnr_db())
            .field("psnr_std_db", &self.psnr_std_db())
            .field("freeze_ratio", &self.freeze_ratio())
            .field("median_delay_ms", &self.median_delay_ms())
            .field("mean_level_std", &self.mean_level_std())
            .field("mean_throughput_bps", &self.mean_throughput_bps())
            .field("throughput_std_bps", &self.throughput_std_bps())
            .field("buffer_empty_fraction", &self.buffer_empty_fraction())
            .field("mos_counts", &self.mos())
            .write(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_sim::time::SimTime;

    fn toy_report(psnrs: &[f64]) -> SessionReport {
        let mut r = SessionReport { label: "toy".into(), ..Default::default() };
        r.roi_psnr_db = psnrs.to_vec();
        for (k, _) in psnrs.iter().enumerate() {
            r.freeze.record(SimDuration::from_millis(100 + k as u64));
            r.roi_level.push(SimTime::from_millis(k as u64 * 28), 1.0);
            r.throughput.push(SimTime::from_secs(k as u64), 3.0e6);
        }
        r
    }

    #[test]
    fn report_reductions() {
        let r = toy_report(&[40.0, 35.0, 30.0]);
        assert!((r.mean_psnr_db() - 35.0).abs() < 1e-9);
        assert_eq!(r.freeze_ratio(), 0.0);
        assert_eq!(r.median_delay_ms(), 101.0);
        assert!((r.mean_throughput_bps() - 3.0e6).abs() < 1.0);
        let mos = r.mos();
        assert_eq!(mos.total(), 3);
    }

    #[test]
    fn aggregate_pools_sessions() {
        let mut agg = Aggregate::new("pool");
        agg.add(&toy_report(&[40.0, 40.0]));
        agg.add(&toy_report(&[20.0, 20.0]));
        assert_eq!(agg.sessions, 2);
        assert_eq!(agg.roi_psnr_db.len(), 4);
        assert!((agg.mean_psnr_db() - 30.0).abs() < 1e-9);
        assert_eq!(agg.freeze.delivered(), 4);
    }

    #[test]
    fn empty_aggregate_is_safe() {
        let agg = Aggregate::new("empty");
        assert_eq!(agg.mean_psnr_db(), 0.0);
        assert_eq!(agg.freeze_ratio(), 0.0);
        assert_eq!(agg.buffer_empty_fraction(), 0.0);
    }

    #[test]
    fn buffer_empty_fraction_counts_zeros() {
        let mut agg = Aggregate::new("buf");
        let mut r = SessionReport::default();
        for (k, v) in [0.0, 0.0, 5_000.0, 9_000.0].iter().enumerate() {
            r.fw_buffer.push(SimTime::from_millis(k as u64 * 40), *v);
            r.phy_rate.push(SimTime::from_millis(k as u64 * 40), 1e6);
        }
        agg.add(&r);
        assert_eq!(agg.buffer_empty_fraction(), 0.5);
        assert_eq!(agg.buffer_rate_pairs.len(), 4);
    }
}
