//! Lockstep driver for M telephony sessions sharing one eNodeB cell.
//!
//! The paper could only put *one* instrumented phone in a commercial
//! cell; everything else in the cell was uncontrolled. [`MultiCell`] is
//! the controlled version of that experiment: M foreground sessions (each
//! a full [`Session`] with its own encoder, rate control, and viewer) are
//! attached to a single [`Cell`] alongside a population of background
//! UEs, and the whole ensemble advances one 1 ms subframe at a time —
//! every session runs its sender/pacer phases, the cell runs one
//! proportional-fair allocation across all UEs, and every session then
//! absorbs its own slice of the grant. The entire run is a deterministic
//! function of one master seed.
//!
//! [`MultiGrid`] scales the same lockstep discipline to a hex lattice of
//! cells with ground mobility: each subframe moves every UE, refreshes
//! its radio observation (path loss + shadowing + neighbor-cell
//! interference), runs the A3/RLF decision, migrates firmware buffers
//! across cells on handover, and then lets every cell run its own PF
//! allocation. Interference couples cells through the *previous*
//! subframe's published PRB activity, so cells can be stepped in any
//! order — including in parallel. The grid driver exploits exactly that:
//! every cell's per-subframe work is bundled into a `Send` [`CellWork`]
//! arena entry, stepped **in place** each epoch: up to
//! `MultiGridConfig::shards` threads from the process-wide persistent
//! pool ([`poi360_sim::workers`]) claim cell indices from a shared atomic
//! counter and advance the bundles behind their per-cell mutexes, with
//! all cross-cell effects (handover migrations, interference publication,
//! trace merging) confined to the serial barrier in fixed cell-id order.
//! Nothing moves and nothing allocates on the parallel path — a dispatch
//! is one generation-counter wakeup, so per-subframe cost is within a
//! small constant of the serial loop. Output is byte-identical at any
//! shard width.

use crate::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use crate::report::SessionReport;
use crate::session::Session;
use poi360_lte::cell::background::{BackgroundTraffic, BackgroundTrafficConfig};
use poi360_lte::cell::{Cell, CellConfig, UeId};
use poi360_lte::channel::ChannelConfig;
use poi360_lte::grid::{
    A3Config, A3State, CellId, GroundMotion, HexGrid, HoDecision, MobilityKind, RadioConfig,
    RadioMap, RadioUe,
};
use poi360_lte::scenario::BackgroundLoad;
use poi360_net::packet::{FlowKind, Packet};
use poi360_sim::fault::FaultPlan;
use poi360_sim::json::{JsonObject, ToJson};
use poi360_sim::rng::SimRng;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::trace::{BufferSink, SinkHandle};
use poi360_sim::Recorder;
use poi360_video::roi::Roi;
use poi360_viewport::motion::UserArchetype;
use std::sync::{Arc, Mutex};

/// One foreground session's knobs within a shared cell.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Spatial compression scheme.
    pub scheme: CompressionScheme,
    /// Rate control.
    pub rate_control: RateControlKind,
    /// Viewer behaviour.
    pub user: UserArchetype,
}

impl Default for FlowSpec {
    fn default() -> Self {
        FlowSpec {
            scheme: CompressionScheme::Poi360,
            rate_control: RateControlKind::Fbcc,
            user: UserArchetype::EventDriven,
        }
    }
}

impl FlowSpec {
    /// A POI360 flow with the given rate control.
    pub fn with_rate_control(rate_control: RateControlKind) -> Self {
        FlowSpec { rate_control, ..Default::default() }
    }
}

/// Configuration of a shared-cell run.
#[derive(Clone, Debug)]
pub struct MultiCellConfig {
    /// Cell-wide scheduler parameters.
    pub cell: CellConfig,
    /// Radio config applied to every foreground UE.
    pub channel: ChannelConfig,
    /// Background UE population size (emergent competing load).
    pub background_ues: usize,
    /// The foreground sessions.
    pub flows: Vec<FlowSpec>,
    /// Run length.
    pub duration: SimDuration,
    /// Master seed; the cell and every flow derive named streams from it.
    pub seed: u64,
    /// Initial encoding bitrate for every flow, bps.
    pub start_rate_bps: f64,
    /// Fault plan: access-level kinds are applied by the shared cell (to
    /// every foreground UE at once), path-level kinds by each session's
    /// pipes. Empty by default — a no-op.
    pub faults: FaultPlan,
}

impl Default for MultiCellConfig {
    fn default() -> Self {
        MultiCellConfig {
            cell: CellConfig::default(),
            channel: ChannelConfig::default(),
            background_ues: poi360_lte::cell::background_population_for(BackgroundLoad::Typical),
            flows: vec![FlowSpec::default(); 2],
            duration: SimDuration::from_secs(60),
            seed: 1,
            start_rate_bps: 1.0e6,
            faults: FaultPlan::new(),
        }
    }
}

/// Results of a shared-cell run.
#[derive(Clone, Debug)]
pub struct MultiCellReport {
    /// Per-flow session reports, in flow order.
    pub flows: Vec<SessionReport>,
    /// Mean fraction of cell PRBs granted per subframe over the run.
    pub mean_utilization: f64,
}

impl MultiCellReport {
    /// Jain's fairness index over the flows' mean throughputs.
    pub fn jain_throughput(&self) -> f64 {
        let rates: Vec<f64> = self.flows.iter().map(|f| f.mean_throughput_bps()).collect();
        poi360_metrics::fairness::jain_index(&rates)
    }
}

impl ToJson for MultiCellReport {
    fn write_json(&self, out: &mut String) {
        JsonObject::new()
            .field("mean_utilization", &self.mean_utilization)
            .field("jain_throughput", &self.jain_throughput())
            .field("flows", &self.flows)
            .write(out);
    }
}

/// The driver itself. Owns the cell directly (no shared handles): each
/// subframe it lends the cell mutably into every session's driver hooks.
pub struct MultiCell {
    cfg: MultiCellConfig,
    cell: Cell<Packet>,
    sessions: Vec<Session>,
    now: SimTime,
    /// Per-step ROI staging, reused across subframes.
    rois: Vec<Roi>,
}

impl MultiCell {
    /// Build the cell, attach every flow and the background population.
    pub fn new(cfg: MultiCellConfig) -> Self {
        MultiCell::build(cfg, None)
    }

    /// Like [`MultiCell::new`], but every flow and the cell scheduler write
    /// trace records to `sink`. Flow `k` records under source `fg.{k:02}`
    /// (matching its UE label) and the scheduler under `cell`, so a single
    /// JSONL stream can be split back out per emitter.
    pub fn traced(cfg: MultiCellConfig, sink: SinkHandle) -> Self {
        MultiCell::build(cfg, Some(sink))
    }

    fn build(cfg: MultiCellConfig, sink: Option<SinkHandle>) -> Self {
        assert!(!cfg.flows.is_empty(), "a MultiCell needs at least one flow");
        let cell_seed = SimRng::stream(cfg.seed, "multicell.cell").next_u64();
        let mut cell = Cell::new(cfg.cell, cell_seed);
        if let Some(sink) = &sink {
            let rec = Recorder::to_sink(Arc::clone(sink), "cell");
            cell.set_recorder(&rec);
        }
        if !cfg.faults.is_empty() {
            cell.set_fault_plan(cfg.faults.clone());
        }
        let mut sessions = Vec::with_capacity(cfg.flows.len());
        for (k, flow) in cfg.flows.iter().enumerate() {
            let label = format!("fg.{k:02}");
            let ue = cell.attach_foreground(&label, cfg.channel);
            debug_assert_eq!(ue, UeId(k));
            let flow_seed = SimRng::stream(cfg.seed, &format!("multicell.flow.{k}")).next_u64();
            let session_cfg = SessionConfig {
                scheme: flow.scheme,
                rate_control: flow.rate_control,
                user: flow.user,
                duration: cfg.duration,
                seed: flow_seed,
                network: NetworkKind::Cellular(poi360_lte::scenario::Scenario::baseline()),
                start_rate_bps: cfg.start_rate_bps,
                ..Default::default()
            };
            let recorder = match &sink {
                Some(sink) => Recorder::to_sink(Arc::clone(sink), &label),
                None => Recorder::null(),
            };
            let mut session = Session::with_shared_cell_traced(session_cfg, ue, recorder);
            if !cfg.faults.is_empty() {
                // Only the path slice applies here; the cell owns the
                // access slice for all its UEs at once.
                session.set_fault_plan(&cfg.faults);
            }
            sessions.push(session);
        }
        cell.attach_background_population(cfg.background_ues);
        MultiCell { cfg, cell, sessions, now: SimTime::ZERO, rois: Vec::new() }
    }

    /// Configuration in use.
    pub fn config(&self) -> &MultiCellConfig {
        &self.cfg
    }

    /// Advance every session and the cell by exactly one subframe.
    pub fn step(&mut self) {
        let now = self.now;
        self.rois.clear();
        for s in &mut self.sessions {
            let roi = s.multi_begin(&mut self.cell);
            self.rois.push(roi);
        }
        let mut out = self.cell.subframe(now);
        for ((session, outcome), roi) in
            self.sessions.iter_mut().zip(out.per_ue.drain(..)).zip(self.rois.iter())
        {
            session.multi_complete(outcome, roi, &mut self.cell);
        }
        // The outcomes went to the sessions (which recycle their departed
        // vectors and diag reports themselves); hand the emptied shells
        // back to the cell.
        self.cell.recycle(out);
        self.now += poi360_sim::SUBFRAME;
    }

    /// Run to completion and collect per-flow reports.
    pub fn run(mut self) -> MultiCellReport {
        let end = SimTime::ZERO + self.cfg.duration;
        while self.now < end {
            self.step();
        }
        let mean_utilization = self.cell.mean_utilization();
        for (k, session) in self.sessions.iter_mut().enumerate() {
            session.set_shared_dropped(self.cell.dropped(UeId(k)));
        }
        MultiCellReport {
            flows: self.sessions.into_iter().map(Session::into_report).collect(),
            mean_utilization,
        }
    }
}

// =====================================================================
// Multi-cell grid driver: mobility + A3 handover over a hex lattice
// =====================================================================

/// Configuration of a hex-grid mobility run ([`MultiGrid`]).
#[derive(Clone, Debug)]
pub struct MultiGridConfig {
    /// Scheduler parameters for every cell.
    pub cell: CellConfig,
    /// Nominal channel config handed to each attach. Grid UEs get their
    /// channel verdict from the radio map every subframe, so this
    /// internal channel is never stepped — it only shapes construction.
    pub channel: ChannelConfig,
    /// Path-loss / shadowing / interference model.
    pub radio: RadioConfig,
    /// A3 handover + RLF parameters.
    pub a3: A3Config,
    /// Hex rings around the center cell (1 = the 7-cell cluster).
    pub rings: usize,
    /// Inter-site distance, meters.
    pub isd_m: f64,
    /// Trajectory family for every mobile UE.
    pub mobility: MobilityKind,
    /// Ground speed, m/s.
    pub speed_mps: f64,
    /// The telephony sessions under test (all mobile).
    pub flows: Vec<FlowSpec>,
    /// Mobile cross-traffic UEs (real queues of [`FlowKind::Cross`]
    /// packets that hand over just like the flows).
    pub load_ues: usize,
    /// Stationary background UEs attached to every cell (they keep
    /// neighbor cells busy, which is what makes interference bite).
    pub static_bg_per_cell: usize,
    /// Run length.
    pub duration: SimDuration,
    /// Master seed: every cell, flow, trajectory, and shadowing track
    /// derives a named stream from it.
    pub seed: u64,
    /// Initial encoding bitrate for every flow, bps.
    pub start_rate_bps: f64,
    /// Worker shards for the epoch-lockstep executor: cells are advanced
    /// by this many threads between subframe barriers. `1` (the default)
    /// runs fully serial on the caller's thread. Output is byte-identical
    /// at every width — shards only change wall-clock time.
    pub shards: usize,
}

impl Default for MultiGridConfig {
    fn default() -> Self {
        MultiGridConfig {
            cell: CellConfig::default(),
            channel: ChannelConfig::default(),
            radio: RadioConfig::default(),
            a3: A3Config::default(),
            rings: 1,
            isd_m: 500.0,
            mobility: MobilityKind::Convoy,
            speed_mps: 20.0,
            flows: vec![FlowSpec::default(); 4],
            load_ues: 60,
            static_bg_per_cell: 5,
            duration: SimDuration::from_secs(30),
            seed: 1,
            start_rate_bps: 1.0e6,
            shards: 1,
        }
    }
}

/// Mobility/handover accounting for one flow over a grid run.
#[derive(Clone, Debug)]
pub struct FlowGridStats {
    /// Flow label (`fg.{k:02}`).
    pub label: String,
    /// Clean A3 handovers executed.
    pub handovers: u64,
    /// Radio link failures (late handovers).
    pub rlfs: u64,
    /// Packets accepted into the (traveling) firmware buffer.
    pub enqueued: u64,
    /// Packets whose last byte was transmitted (any serving cell).
    pub delivered: u64,
    /// Packets discarded by RLF re-establishment flushes.
    pub flushed: u64,
    /// Packets still queued when the run ended.
    pub queued_at_end: u64,
    /// First-transmission video packets that arrived out of order or
    /// duplicated across a handover (must be 0: the buffer is FIFO and
    /// travels whole).
    pub seq_violations: u64,
    /// When each handover/RLF executed, ms.
    pub ho_at_ms: Vec<u64>,
    /// Delivery gap around each handover/RLF: from the event to the
    /// first packet served at the target cell, ms.
    pub gap_ms: Vec<f64>,
    /// Mean displayed ROI PSNR in the 1 s windows before all handovers
    /// (0.0 when no sample landed in a window).
    pub psnr_before_db: f64,
    /// ... and in the 1 s windows after.
    pub psnr_after_db: f64,
}

impl FlowGridStats {
    /// Exact packet conservation: everything accepted was delivered,
    /// explicitly flushed, or is still queued.
    pub fn conserved(&self) -> bool {
        self.enqueued == self.delivered + self.flushed + self.queued_at_end
    }
}

impl ToJson for FlowGridStats {
    fn write_json(&self, out: &mut String) {
        JsonObject::new()
            .field("label", &self.label.as_str())
            .field("handovers", &(self.handovers as f64))
            .field("rlfs", &(self.rlfs as f64))
            .field("enqueued", &(self.enqueued as f64))
            .field("delivered", &(self.delivered as f64))
            .field("flushed", &(self.flushed as f64))
            .field("queued_at_end", &(self.queued_at_end as f64))
            .field("seq_violations", &(self.seq_violations as f64))
            .field("conserved", &self.conserved())
            .field("psnr_before_db", &self.psnr_before_db)
            .field("psnr_after_db", &self.psnr_after_db)
            .write(out);
    }
}

/// Results of a grid mobility run.
#[derive(Clone, Debug)]
pub struct MultiGridReport {
    /// Per-flow session reports, in flow order.
    pub flows: Vec<SessionReport>,
    /// Per-flow handover/conservation stats, in flow order.
    pub flow_stats: Vec<FlowGridStats>,
    /// Number of cells in the lattice.
    pub cells: usize,
    /// Mobile cross-traffic UEs.
    pub load_ues: usize,
    /// Handovers executed by load UEs.
    pub load_handovers: u64,
    /// RLFs suffered by load UEs.
    pub load_rlfs: u64,
    /// Load UEs whose buffers failed exact conservation (must be 0).
    pub load_conservation_violations: u64,
    /// Mean PRB utilization across all cells.
    pub mean_utilization: f64,
    /// Out-of-order gauge samples dropped across all recorders (must
    /// be 0: the lockstep loop emits probes in time order).
    pub probe_drops: u64,
}

impl ToJson for MultiGridReport {
    fn write_json(&self, out: &mut String) {
        JsonObject::new()
            .field("cells", &(self.cells as f64))
            .field("load_ues", &(self.load_ues as f64))
            .field("load_handovers", &(self.load_handovers as f64))
            .field("load_rlfs", &(self.load_rlfs as f64))
            .field("load_conservation_violations", &(self.load_conservation_violations as f64))
            .field("mean_utilization", &self.mean_utilization)
            .field("probe_drops", &(self.probe_drops as f64))
            .field("flow_stats", &self.flow_stats)
            .field("flows", &self.flows)
            .write(out);
    }
}

/// Which grid UE owns a cell's foreground slot right now.
#[derive(Clone, Copy)]
enum SlotOwner {
    FlowUe(usize),
    LoadUe(usize),
    Vacant,
}

/// Mobility/handover state of one grid UE (flow or load).
struct MobileUe {
    motion: GroundMotion,
    radio: RadioUe,
    a3: A3State,
    serving: CellId,
    slot: UeId,
    /// Data interruption window after a handover / re-establishment.
    outage_until: SimTime,
    handovers: u64,
    rlfs: u64,
}

/// Cross-traffic source state of one load UE.
struct LoadSource {
    traffic: BackgroundTraffic,
    carry_bytes: u64,
    next_seq: u64,
    delivered: u64,
}

/// Per-flow delivery accounting the driver keeps outside the session.
#[derive(Default)]
struct FlowTally {
    delivered: u64,
    last_video_seq: Option<u64>,
    seq_violations: u64,
    ho_at: Vec<SimTime>,
    gaps_ms: Vec<f64>,
    /// A handover happened and no packet has departed since.
    pending_gap_from: Option<SimTime>,
}

/// A session riding a cell for one epoch: the flow index, the session
/// itself, and the driver's delivery tally (which travels with it so the
/// shard can update both without touching driver state).
struct FlowSlot {
    k: usize,
    session: Session,
    tally: FlowTally,
}

/// A load UE's traffic source riding a cell for one epoch.
struct LoadSlot {
    j: usize,
    slot: UeId,
    source: LoadSource,
}

/// One cell's arena entry: the cell plus everything needed to advance it
/// one subframe without touching any other cell. Entirely owned data, so
/// a bundle can be advanced by any worker thread (`CellWork` is `Send`);
/// the executor steps bundles **in place** behind per-cell mutexes rather
/// than moving them, and all staging vectors (`owners`, `flows`, `loads`,
/// `rois`) are recycled across subframes — drained, never dropped — so an
/// epoch allocates nothing in the bundle. The serial barrier moves
/// sessions/loads in and out between epochs as UEs hand over.
struct CellWork {
    id: usize,
    cell: Cell<Packet>,
    /// Slot-owner map, indexed like the cell's `per_ue`.
    owners: Vec<SlotOwner>,
    /// Sessions served by this cell this epoch, ascending flow index.
    flows: Vec<FlowSlot>,
    /// Load sources served by this cell this epoch, ascending load index.
    loads: Vec<LoadSlot>,
    /// Per-epoch ROI staging, index-aligned with `flows`.
    rois: Vec<Roi>,
    /// This subframe's PRB utilization, published at the barrier.
    activity: f64,
}

impl CellWork {
    /// Phases 2+3 for this cell: sources enqueue, one PF allocation,
    /// outcomes route back to their owners. Pure function of the bundle's
    /// own state — runs on any thread.
    fn run(&mut self, now: SimTime, total_prbs: f64) {
        // Phase 2: sources. Sessions run their sender pipeline (enqueue
        // into this cell); load UEs turn accrued bytes into cross packets.
        self.rois.clear();
        for f in &mut self.flows {
            self.rois.push(f.session.multi_begin(&mut self.cell));
        }
        for l in &mut self.loads {
            l.source.carry_bytes += l.source.traffic.subframe();
            while l.source.carry_bytes >= LOAD_PACKET_BYTES {
                l.source.carry_bytes -= LOAD_PACKET_BYTES;
                let pkt = Packet::cross(l.source.next_seq, LOAD_PACKET_BYTES as u32, now);
                l.source.next_seq += 1;
                self.cell.enqueue(l.slot, pkt, now);
            }
        }

        // Phase 3: one PF allocation; outcomes route back to their
        // owners; utilization is staged for the barrier to publish as the
        // next subframe's interference activity.
        let mut out = self.cell.subframe(now);
        self.activity = out.prbs_granted as f64 / total_prbs;
        for (slot_idx, outcome) in out.per_ue.drain(..).enumerate() {
            match self.owners[slot_idx] {
                SlotOwner::FlowUe(k) => {
                    let fi = self
                        .flows
                        .iter()
                        .position(|f| f.k == k)
                        .expect("flow rides its serving cell");
                    let f = &mut self.flows[fi];
                    for (pkt, _) in &outcome.departed {
                        f.tally.delivered += 1;
                        if pkt.flow == FlowKind::Video && !pkt.retransmit {
                            if let Some(prev) = f.tally.last_video_seq {
                                if pkt.seq <= prev {
                                    f.tally.seq_violations += 1;
                                }
                            }
                            f.tally.last_video_seq =
                                Some(f.tally.last_video_seq.map_or(pkt.seq, |p| p.max(pkt.seq)));
                        }
                    }
                    if !outcome.departed.is_empty() {
                        if let Some(from) = f.tally.pending_gap_from.take() {
                            f.tally.gaps_ms.push(now.saturating_since(from).as_secs_f64() * 1e3);
                        }
                    }
                    f.session.multi_complete(outcome, &self.rois[fi], &mut self.cell);
                }
                SlotOwner::LoadUe(j) => {
                    let l = self
                        .loads
                        .iter_mut()
                        .find(|l| l.j == j)
                        .expect("load rides its serving cell");
                    l.source.delivered += outcome.departed.len() as u64;
                    self.cell.recycle_departed(outcome.departed);
                    if let Some(report) = outcome.diag {
                        self.cell.recycle_diag(UeId(slot_idx), report);
                    }
                }
                SlotOwner::Vacant => {
                    self.cell.recycle_departed(outcome.departed);
                    if let Some(report) = outcome.diag {
                        self.cell.recycle_diag(UeId(slot_idx), report);
                    }
                }
            }
        }
        self.cell.recycle(out);
    }
}

/// Per-emitter staging buffers for a traced grid run. Every recorder in
/// the grid writes into its own [`BufferSink`] (never the real sink), and
/// the serial barrier drains them into the real sink in canonical order —
/// cells ascending, then flows ascending, then the grid driver — so the
/// JSONL byte stream is identical at every shard width.
struct GridBuffers {
    sink: SinkHandle,
    cells: Vec<(String, Arc<Mutex<BufferSink>>)>,
    flows: Vec<(String, Arc<Mutex<BufferSink>>)>,
    grid: Arc<Mutex<BufferSink>>,
}

impl GridBuffers {
    fn drain(&self) {
        let mut sink = self.sink.lock().unwrap();
        for (src, buf) in &self.cells {
            buf.lock().unwrap().drain_into(src, &mut *sink);
        }
        for (src, buf) in &self.flows {
            buf.lock().unwrap().drain_into(src, &mut *sink);
        }
        self.grid.lock().unwrap().drain_into("grid", &mut *sink);
    }
}

/// Lockstep driver for telephony sessions moving across a hex grid of
/// cells: per-subframe mobility → radio map → A3/RLF decisions →
/// firmware-buffer migration → one PF allocation per cell. A pure
/// function of the master seed: interference uses the previous subframe's
/// published activity and every stochastic track is keyed by UE name, so
/// per-cell subframes are schedule-independent. With
/// [`MultiGridConfig::shards`] > 1 the per-cell work runs on a persistent
/// worker pool between epoch barriers; runs are byte-identical at every
/// shard width.
pub struct MultiGrid {
    cfg: MultiGridConfig,
    radio: RadioMap,
    /// Cell arena, indexed by cell id. Bundles are stepped in place: the
    /// serial phases reach in through `get_mut` (no locking), and during
    /// the parallel phase each worker locks exactly the cells it claims.
    /// The mutexes are never contended — the claim counter hands every
    /// index to one worker — they exist to prove that to the compiler.
    works: Vec<Mutex<CellWork>>,
    /// Home storage for sessions between epochs, indexed by flow.
    sessions: Vec<Option<Session>>,
    /// Home storage for delivery tallies between epochs, indexed by flow.
    tallies: Vec<FlowTally>,
    /// Home storage for load sources between epochs, indexed by load UE.
    loads: Vec<Option<LoadSource>>,
    flow_recorders: Vec<Recorder>,
    grid_recorder: Recorder,
    flow_ues: Vec<MobileUe>,
    load_ues: Vec<MobileUe>,
    /// Previous-subframe PRB utilization per cell (interference input).
    activity: Vec<f64>,
    /// This subframe's utilization, staged then swapped into `activity`.
    next_activity: Vec<f64>,
    now: SimTime,
    /// Trace staging (traced runs only).
    buffers: Option<GridBuffers>,
}

impl MultiGrid {
    /// Build the lattice, attach every flow and load UE at its starting
    /// position, and seed the per-cell background populations.
    pub fn new(cfg: MultiGridConfig) -> Self {
        MultiGrid::build(cfg, None)
    }

    /// Like [`MultiGrid::new`] with trace output: flow `k` records under
    /// `fg.{k:02}`, cell `c` under `cell.{c:02}`, and the driver itself
    /// (handover/RLF counts, mean activity) under `grid`.
    pub fn traced(cfg: MultiGridConfig, sink: SinkHandle) -> Self {
        MultiGrid::build(cfg, Some(sink))
    }

    fn build(cfg: MultiGridConfig, sink: Option<SinkHandle>) -> Self {
        assert!(!cfg.flows.is_empty(), "a MultiGrid needs at least one flow");
        let grid = HexGrid::new(cfg.rings, cfg.isd_m);
        let n_cells = grid.len();
        let mut radio = RadioMap::new(cfg.radio, grid);
        let mut buffers = sink.map(|sink| GridBuffers {
            sink,
            cells: Vec::with_capacity(n_cells),
            flows: Vec::with_capacity(cfg.flows.len()),
            grid: BufferSink::shared(),
        });

        let mut works = Vec::with_capacity(n_cells);
        for c in 0..n_cells {
            let cell_seed = SimRng::stream(cfg.seed, &format!("grid.cell.{c:02}")).next_u64();
            let mut cell = Cell::new(cfg.cell, cell_seed);
            if let Some(b) = &mut buffers {
                let src = format!("cell.{c:02}");
                let buf = BufferSink::shared();
                let handle: SinkHandle = buf.clone();
                let rec = Recorder::to_sink(handle, &src);
                cell.set_recorder(&rec);
                b.cells.push((src, buf));
            }
            cell.attach_background_population(cfg.static_bg_per_cell);
            works.push(CellWork {
                id: c,
                cell,
                owners: Vec::new(),
                flows: Vec::new(),
                loads: Vec::new(),
                rois: Vec::new(),
                activity: 0.0,
            });
        }
        let grid_recorder = match &buffers {
            Some(b) => {
                let handle: SinkHandle = b.grid.clone();
                Recorder::to_sink(handle, "grid")
            }
            None => Recorder::null(),
        };

        // Stagger indices: flows are spread evenly through the mobile
        // population (convoy position is a function of the index), loads
        // fill the remaining positions in order.
        let n_flows = cfg.flows.len();
        let total_mobiles = n_flows + cfg.load_ues;
        let flow_stagger: Vec<usize> = (0..n_flows).map(|k| k * total_mobiles / n_flows).collect();
        let mut load_stagger = Vec::with_capacity(cfg.load_ues);
        for idx in 0..total_mobiles {
            if !flow_stagger.contains(&idx) {
                load_stagger.push(idx);
            }
        }
        load_stagger.truncate(cfg.load_ues);

        let attach_mobile = |radio: &mut RadioMap,
                             works: &mut [CellWork],
                             name: &str,
                             stagger: usize,
                             owner: SlotOwner|
         -> MobileUe {
            let motion = GroundMotion::new(
                cfg.mobility,
                radio.grid(),
                cfg.speed_mps,
                cfg.seed,
                name,
                stagger,
                total_mobiles,
            );
            let (x, y) = motion.position();
            let serving = radio.grid().serving_cell(x, y);
            let w = &mut works[serving.0];
            let slot = w.cell.attach_foreground(name, cfg.channel);
            let track = radio.register_ue(cfg.seed, name);
            if slot.0 == w.owners.len() {
                w.owners.push(owner);
            } else {
                w.owners[slot.0] = owner;
            }
            MobileUe {
                motion,
                radio: track,
                a3: A3State::default(),
                serving,
                slot,
                outage_until: SimTime::ZERO,
                handovers: 0,
                rlfs: 0,
            }
        };

        let mut sessions = Vec::with_capacity(n_flows);
        let mut flow_recorders = Vec::with_capacity(n_flows);
        let mut flow_ues = Vec::with_capacity(n_flows);
        for (k, flow) in cfg.flows.iter().enumerate() {
            let label = format!("fg.{k:02}");
            let m = attach_mobile(&mut radio, &mut works, &label, flow_stagger[k], {
                SlotOwner::FlowUe(k)
            });
            let flow_seed = SimRng::stream(cfg.seed, &format!("grid.flow.{k}")).next_u64();
            let session_cfg = SessionConfig {
                scheme: flow.scheme,
                rate_control: flow.rate_control,
                user: flow.user,
                duration: cfg.duration,
                seed: flow_seed,
                network: NetworkKind::Cellular(poi360_lte::scenario::Scenario::baseline()),
                start_rate_bps: cfg.start_rate_bps,
                ..Default::default()
            };
            let recorder = match &mut buffers {
                Some(b) => {
                    let buf = BufferSink::shared();
                    let handle: SinkHandle = buf.clone();
                    b.flows.push((label.clone(), buf));
                    Recorder::to_sink(handle, &label)
                }
                None => Recorder::null(),
            };
            flow_recorders.push(recorder.clone());
            sessions.push(Some(Session::with_shared_cell_traced(session_cfg, m.slot, recorder)));
            flow_ues.push(m);
        }

        let mut load_ues = Vec::with_capacity(cfg.load_ues);
        let mut loads = Vec::with_capacity(cfg.load_ues);
        for (j, &stagger) in load_stagger.iter().enumerate() {
            let name = format!("ld.{j:03}");
            let m = attach_mobile(&mut radio, &mut works, &name, stagger, SlotOwner::LoadUe(j));
            load_ues.push(m);
            // Lighter profile than the in-cell background UEs: with
            // hundreds of mobiles sharing a handful of cells, commuter
            // phones mostly idle with bursts.
            let mut profile = SimRng::stream(cfg.seed, &format!("grid.load.{name}"));
            let traffic_cfg = BackgroundTrafficConfig {
                on_rate_bps: profile.uniform_range(0.1e6, 0.5e6),
                mean_on: SimDuration::from_secs_f64(profile.uniform_range(0.5, 2.0)),
                mean_off: SimDuration::from_secs_f64(profile.uniform_range(2.0, 8.0)),
                ..Default::default()
            };
            let traffic_seed = profile.next_u64();
            loads.push(Some(LoadSource {
                traffic: BackgroundTraffic::new(traffic_cfg, traffic_seed),
                carry_bytes: 0,
                next_seq: 0,
                delivered: 0,
            }));
        }

        let tallies = (0..n_flows).map(|_| FlowTally::default()).collect();
        MultiGrid {
            cfg,
            radio,
            works: works.into_iter().map(Mutex::new).collect(),
            sessions,
            tallies,
            loads,
            flow_recorders,
            grid_recorder,
            flow_ues,
            load_ues,
            activity: vec![0.0; n_cells],
            next_activity: vec![0.0; n_cells],
            now: SimTime::ZERO,
            buffers,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &MultiGridConfig {
        &self.cfg
    }

    /// Detach `m` from its serving cell, carry the firmware buffer to
    /// `target`, and re-attach. `rlf` selects the failure flavor: flush
    /// and re-establishment instead of head-restart and clean
    /// interruption. Serial-phase only: both arena entries must be home.
    fn migrate(
        cfg: &MultiGridConfig,
        works: &mut [Mutex<CellWork>],
        m: &mut MobileUe,
        target: CellId,
        rlf: bool,
        now: SimTime,
    ) -> u64 {
        let src = works[m.serving.0].get_mut().unwrap();
        let mut mu = src.cell.detach_foreground(m.slot);
        let owner = std::mem::replace(&mut src.owners[m.slot.0], SlotOwner::Vacant);
        let flushed = if rlf {
            m.rlfs += 1;
            mu.flush()
        } else {
            m.handovers += 1;
            // The RLC context dies with the source cell: a packet caught
            // mid-segmentation retransmits in full at the target.
            mu.restart_head();
            0
        };
        let tgt = works[target.0].get_mut().unwrap();
        let slot = tgt.cell.attach_migrated(mu, cfg.channel);
        if slot.0 == tgt.owners.len() {
            tgt.owners.push(owner);
        } else {
            tgt.owners[slot.0] = owner;
        }
        m.serving = target;
        m.slot = slot;
        m.outage_until = now + if rlf { cfg.a3.reestablish_time } else { cfg.a3.interruption };
        flushed
    }

    /// Phase 1 (serial): mobility, measurements, handover decisions,
    /// radio overrides. Flows first, then loads — a fixed order, and
    /// every UE only touches its own named streams.
    fn phase1(&mut self, now: SimTime) {
        let dt = poi360_sim::SUBFRAME;
        for k in 0..self.flow_ues.len() {
            let m = &mut self.flow_ues[k];
            let (x, y) = m.motion.step(dt);
            let obs = self.radio.observe(m.radio, dt, x, y, m.serving, &self.activity);
            let decision = m.a3.decide(
                &self.cfg.a3,
                now,
                obs.serving_rsrp_dbm,
                obs.sinr_db,
                obs.best_neighbor,
            );
            match decision {
                HoDecision::Stay => {}
                HoDecision::Handover(t) => {
                    MultiGrid::migrate(&self.cfg, &mut self.works, m, t, false, now);
                    self.sessions[k].as_mut().expect("session home").rehome_shared_cell(m.slot);
                    self.flow_recorders[k].event("ho.exec", now, t.0 as f64);
                    self.grid_recorder.count("grid.handover", now, 1);
                    self.tallies[k].ho_at.push(now);
                    self.tallies[k].pending_gap_from.get_or_insert(now);
                }
                HoDecision::Rlf(t) => {
                    let flushed = MultiGrid::migrate(&self.cfg, &mut self.works, m, t, true, now);
                    self.sessions[k].as_mut().expect("session home").rehome_shared_cell(m.slot);
                    self.flow_recorders[k].event("ho.rlf", now, flushed as f64);
                    self.grid_recorder.count("grid.rlf", now, 1);
                    self.tallies[k].ho_at.push(now);
                    self.tallies[k].pending_gap_from.get_or_insert(now);
                }
            }
            let forced = now < m.outage_until;
            let state = obs.channel_state(self.radio.config(), forced);
            let w = self.works[m.serving.0].get_mut().unwrap();
            w.cell.set_foreground_radio(m.slot, state);
            if now.as_millis().is_multiple_of(100) {
                self.flow_recorders[k].gauge("grid.serving_cell", now, m.serving.0 as f64);
            }
        }
        for j in 0..self.load_ues.len() {
            let m = &mut self.load_ues[j];
            let (x, y) = m.motion.step(dt);
            let obs = self.radio.observe(m.radio, dt, x, y, m.serving, &self.activity);
            let decision = m.a3.decide(
                &self.cfg.a3,
                now,
                obs.serving_rsrp_dbm,
                obs.sinr_db,
                obs.best_neighbor,
            );
            match decision {
                HoDecision::Stay => {}
                HoDecision::Handover(t) => {
                    MultiGrid::migrate(&self.cfg, &mut self.works, m, t, false, now);
                    self.grid_recorder.count("grid.handover", now, 1);
                }
                HoDecision::Rlf(t) => {
                    MultiGrid::migrate(&self.cfg, &mut self.works, m, t, true, now);
                    self.grid_recorder.count("grid.rlf", now, 1);
                }
            }
            let forced = now < m.outage_until;
            let state = obs.channel_state(self.radio.config(), forced);
            let w = self.works[m.serving.0].get_mut().unwrap();
            w.cell.set_foreground_radio(m.slot, state);
        }
    }

    /// Move every session and load source into its serving cell's arena
    /// bundle, in ascending flow / load order (which fixes the per-cell
    /// enqueue order independent of handover history).
    fn assemble(&mut self) {
        for (k, m) in self.flow_ues.iter().enumerate() {
            let w = self.works[m.serving.0].get_mut().unwrap();
            w.flows.push(FlowSlot {
                k,
                session: self.sessions[k].take().expect("session home"),
                tally: std::mem::take(&mut self.tallies[k]),
            });
        }
        for (j, m) in self.load_ues.iter().enumerate() {
            let w = self.works[m.serving.0].get_mut().unwrap();
            w.loads.push(LoadSlot {
                j,
                slot: m.slot,
                source: self.loads[j].take().expect("load home"),
            });
        }
    }

    /// Return sessions/loads to home storage and stage each cell's
    /// published activity.
    fn disassemble(&mut self) {
        for w in self.works.iter_mut() {
            let w = w.get_mut().unwrap();
            self.next_activity[w.id] = w.activity;
            for f in w.flows.drain(..) {
                self.sessions[f.k] = Some(f.session);
                self.tallies[f.k] = f.tally;
            }
            for l in w.loads.drain(..) {
                self.loads[l.j] = Some(l.source);
            }
        }
    }

    /// Epoch barrier: publish this subframe's activity as the next
    /// subframe's interference input, emit driver gauges, merge trace
    /// staging in canonical order, and advance time.
    fn barrier(&mut self, now: SimTime) {
        self.disassemble();
        std::mem::swap(&mut self.activity, &mut self.next_activity);
        if now.as_millis().is_multiple_of(100) {
            let mean = self.activity.iter().sum::<f64>() / self.activity.len() as f64;
            self.grid_recorder.gauge("grid.mean_activity", now, mean);
        }
        if let Some(buffers) = &self.buffers {
            buffers.drain();
        }
        self.now = now + poi360_sim::SUBFRAME;
    }

    /// Advance the whole grid by exactly one subframe, honoring
    /// [`MultiGridConfig::shards`]: the serial phases and the barrier run
    /// on the caller, and with `shards > 1` the per-cell work is claimed
    /// in place by threads from the process-wide persistent pool
    /// ([`poi360_sim::workers::global`]). The parallel phase moves no
    /// bundles and allocates nothing — workers race an atomic counter for
    /// cell indices and step each claimed bundle behind its own mutex.
    pub fn step(&mut self) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let now = self.now;
        self.phase1(now);
        self.assemble();
        let total_prbs = self.cfg.cell.total_prbs.max(1) as f64;
        let shards = self.cfg.shards.clamp(1, self.works.len().max(1));
        if shards <= 1 {
            for w in &mut self.works {
                w.get_mut().unwrap().run(now, total_prbs);
            }
        } else {
            let next = AtomicUsize::new(0);
            let works = &self.works;
            poi360_sim::workers::global().dispatch(shards, |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= works.len() {
                    break;
                }
                // Uncontended by construction: `i` was handed to exactly
                // one worker. Completion order is irrelevant — bundles
                // stay slotted by cell id.
                works[i].lock().unwrap().run(now, total_prbs);
            });
        }
        self.barrier(now);
    }

    /// Run to completion and assemble the report.
    pub fn run(mut self) -> MultiGridReport {
        let end = SimTime::ZERO + self.cfg.duration;
        while self.now < end {
            self.step();
        }

        // Per-flow stats. ROI-quality-across-handover windows come from
        // the recorder's PSNR gauge, which must be read *before*
        // `into_report` takes the channel.
        let mut flow_stats = Vec::with_capacity(self.sessions.len());
        for (k, m) in self.flow_ues.iter().enumerate() {
            let tally = &self.tallies[k];
            let fw = {
                let cell = &self.works[m.serving.0].get_mut().unwrap().cell;
                let fw = cell.firmware(m.slot);
                let dropped = cell.dropped(m.slot);
                self.sessions[k].as_mut().expect("session home").set_shared_dropped(dropped);
                (fw.total_enqueued(), fw.flushed(), fw.len() as u64)
            };
            let psnr = self.flow_recorders[k].gauge_series("video.roi_psnr_db");
            let window = SimDuration::from_secs(1);
            let (mut before_sum, mut before_n, mut after_sum, mut after_n) = (0.0, 0u64, 0.0, 0u64);
            for &at in &tally.ho_at {
                for (t, v) in psnr.iter() {
                    if t < at && at.saturating_since(t) <= window {
                        before_sum += v;
                        before_n += 1;
                    } else if t >= at && t.saturating_since(at) <= window {
                        after_sum += v;
                        after_n += 1;
                    }
                }
            }
            flow_stats.push(FlowGridStats {
                label: format!("fg.{k:02}"),
                handovers: m.handovers,
                rlfs: m.rlfs,
                enqueued: fw.0,
                delivered: tally.delivered,
                flushed: fw.1,
                queued_at_end: fw.2,
                seq_violations: tally.seq_violations,
                ho_at_ms: tally.ho_at.iter().map(|t| t.as_millis()).collect(),
                gap_ms: tally.gaps_ms.clone(),
                psnr_before_db: if before_n > 0 { before_sum / before_n as f64 } else { 0.0 },
                psnr_after_db: if after_n > 0 { after_sum / after_n as f64 } else { 0.0 },
            });
        }

        let mut load_conservation_violations = 0u64;
        let (mut load_handovers, mut load_rlfs) = (0u64, 0u64);
        for (j, m) in self.load_ues.iter().enumerate() {
            load_handovers += m.handovers;
            load_rlfs += m.rlfs;
            let cell = &self.works[m.serving.0].get_mut().unwrap().cell;
            let fw = cell.firmware(m.slot);
            let delivered = self.loads[j].as_ref().expect("load home").delivered;
            if fw.total_enqueued() != delivered + fw.flushed() + fw.len() as u64 {
                load_conservation_violations += 1;
            }
        }

        let n_cells = self.works.len() as f64;
        let mean_utilization = self
            .works
            .iter_mut()
            .map(|w| w.get_mut().unwrap().cell.mean_utilization())
            .sum::<f64>()
            / n_cells;
        let probe_drops = self.grid_recorder.out_of_order_drops()
            + self.flow_recorders.iter().map(Recorder::out_of_order_drops).sum::<u64>();
        if let Some(buffers) = &self.buffers {
            buffers.drain();
            buffers.sink.lock().unwrap().flush();
        }
        self.grid_recorder.flush();
        MultiGridReport {
            flows: self
                .sessions
                .into_iter()
                .map(|s| s.expect("session home").into_report())
                .collect(),
            flow_stats,
            cells: self.works.len(),
            load_ues: self.load_ues.len(),
            load_handovers,
            load_rlfs,
            load_conservation_violations,
            mean_utilization,
            probe_drops,
        }
    }
}

/// Wire size of one cross-traffic packet, bytes.
const LOAD_PACKET_BYTES: u64 = 1_200;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(flows: Vec<FlowSpec>, seed: u64) -> MultiCellConfig {
        MultiCellConfig {
            flows,
            duration: SimDuration::from_secs(8),
            background_ues: 4,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn cell_work_bundles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CellWork>();
    }

    #[test]
    fn two_flows_both_deliver() {
        let report = MultiCell::new(tiny(vec![FlowSpec::default(); 2], 42)).run();
        assert_eq!(report.flows.len(), 2);
        for flow in &report.flows {
            assert!(flow.frames_sent > 200, "sent {}", flow.frames_sent);
            let frac = flow.frames_delivered as f64 / flow.frames_sent as f64;
            assert!(frac > 0.7, "delivered fraction {frac}");
            assert!(!flow.fw_buffer.is_empty(), "shared-cell flows record diag");
        }
        assert!(report.mean_utilization > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = MultiCell::new(tiny(vec![FlowSpec::default(); 2], 7)).run();
        let b = MultiCell::new(tiny(vec![FlowSpec::default(); 2], 7)).run();
        let mut ja = String::new();
        let mut jb = String::new();
        a.write_json(&mut ja);
        b.write_json(&mut jb);
        assert_eq!(ja, jb);
    }

    #[test]
    fn traced_run_emits_per_flow_and_cell_probes() {
        let sink = poi360_sim::trace::RingSink::shared(200_000);
        let report = MultiCell::traced(tiny(vec![FlowSpec::default(); 2], 42), sink.clone()).run();
        assert_eq!(report.flows.len(), 2);
        let ring = sink.lock().unwrap();
        assert!(ring.count_of("cell.prb_grant") > 0, "scheduler grants traced");
        assert!(ring.count_of("video.frame_encoded") > 0, "flow probes traced");
        let srcs: std::collections::BTreeSet<_> =
            ring.records().map(|(src, _)| src.clone()).collect();
        assert!(srcs.contains("cell"), "srcs {srcs:?}");
        assert!(srcs.contains("fg.00") && srcs.contains("fg.01"), "srcs {srcs:?}");
    }

    #[test]
    fn tracing_does_not_perturb_the_run() {
        let a = MultiCell::new(tiny(vec![FlowSpec::default(); 2], 7)).run();
        let sink = poi360_sim::trace::RingSink::shared(200_000);
        let b = MultiCell::traced(tiny(vec![FlowSpec::default(); 2], 7), sink).run();
        let mut ja = String::new();
        let mut jb = String::new();
        a.write_json(&mut ja);
        b.write_json(&mut jb);
        assert_eq!(ja, jb);
    }

    #[test]
    fn symmetric_flows_are_fair() {
        let report = MultiCell::new(tiny(vec![FlowSpec::default(); 4], 9)).run();
        let jain = report.jain_throughput();
        assert!(jain > 0.9, "jain {jain}");
    }

    /// A compressed grid: short inter-site distance and fast UEs so the
    /// convoy crosses cell boundaries within a few simulated seconds.
    fn grid_tiny(flows: usize, seed: u64) -> MultiGridConfig {
        MultiGridConfig {
            flows: vec![FlowSpec::default(); flows],
            load_ues: 10,
            static_bg_per_cell: 2,
            isd_m: 160.0,
            speed_mps: 30.0,
            duration: SimDuration::from_secs(8),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn convoy_flows_hand_over_and_conserve() {
        let report = MultiGrid::new(grid_tiny(2, 11)).run();
        assert_eq!(report.cells, 7);
        assert_eq!(report.flow_stats.len(), 2);
        for fs in &report.flow_stats {
            assert!(
                fs.handovers + fs.rlfs >= 1,
                "{} crossed no boundary (ho {} rlf {})",
                fs.label,
                fs.handovers,
                fs.rlfs
            );
            assert!(
                fs.conserved(),
                "{}: enq {} != del {} + flushed {} + queued {}",
                fs.label,
                fs.enqueued,
                fs.delivered,
                fs.flushed,
                fs.queued_at_end
            );
            assert_eq!(fs.seq_violations, 0, "{} reordered/duplicated video", fs.label);
            assert!(fs.enqueued > 100, "{} barely sent ({})", fs.label, fs.enqueued);
        }
        assert_eq!(report.load_conservation_violations, 0);
        assert!(report.load_handovers >= 1, "no load UE ever handed over");
        for flow in &report.flows {
            assert!(flow.frames_sent > 100, "sent {}", flow.frames_sent);
        }
    }

    #[test]
    fn grid_runs_are_deterministic_and_seed_sensitive() {
        let a = MultiGrid::new(grid_tiny(2, 5)).run();
        let b = MultiGrid::new(grid_tiny(2, 5)).run();
        let c = MultiGrid::new(grid_tiny(2, 6)).run();
        let (mut ja, mut jb, mut jc) = (String::new(), String::new(), String::new());
        a.write_json(&mut ja);
        b.write_json(&mut jb);
        c.write_json(&mut jc);
        assert_eq!(ja, jb, "same seed must reproduce byte-identically");
        assert_ne!(ja, jc, "different seed must diverge");
    }

    #[test]
    fn sharded_grid_matches_serial_report() {
        let serial = MultiGrid::new(grid_tiny(2, 11)).run();
        let mut cfg = grid_tiny(2, 11);
        cfg.shards = 2;
        let sharded = MultiGrid::new(cfg).run();
        let (mut ja, mut jb) = (String::new(), String::new());
        serial.write_json(&mut ja);
        sharded.write_json(&mut jb);
        assert_eq!(ja, jb, "shard width must not change the report");
    }

    #[test]
    fn traced_grid_run_emits_handover_probes() {
        let sink = poi360_sim::trace::RingSink::shared(400_000);
        let report = MultiGrid::traced(grid_tiny(2, 11), sink.clone()).run();
        assert!(report.flow_stats.iter().any(|f| f.handovers + f.rlfs >= 1));
        let ring = sink.lock().unwrap();
        assert!(ring.count_of("ho.exec") + ring.count_of("ho.rlf") > 0, "handover events traced");
        assert!(ring.count_of("grid.serving_cell") > 0, "serving-cell gauge traced");
        assert!(ring.count_of("grid.mean_activity") > 0, "activity gauge traced");
        let srcs: std::collections::BTreeSet<_> =
            ring.records().map(|(src, _)| src.clone()).collect();
        assert!(srcs.contains("grid"), "srcs {srcs:?}");
        assert!(srcs.contains("cell.00"), "srcs {srcs:?}");
    }
}
