//! Lockstep driver for M telephony sessions sharing one eNodeB cell.
//!
//! The paper could only put *one* instrumented phone in a commercial
//! cell; everything else in the cell was uncontrolled. [`MultiCell`] is
//! the controlled version of that experiment: M foreground sessions (each
//! a full [`Session`] with its own encoder, rate control, and viewer) are
//! attached to a single [`Cell`] alongside a population of background
//! UEs, and the whole ensemble advances one 1 ms subframe at a time —
//! every session runs its sender/pacer phases, the cell runs one
//! proportional-fair allocation across all UEs, and every session then
//! absorbs its own slice of the grant. The entire run is a deterministic
//! function of one master seed.

use crate::config::{CompressionScheme, NetworkKind, RateControlKind, SessionConfig};
use crate::report::SessionReport;
use crate::session::Session;
use poi360_lte::cell::{Cell, CellConfig, UeId};
use poi360_lte::channel::ChannelConfig;
use poi360_lte::scenario::BackgroundLoad;
use poi360_net::packet::Packet;
use poi360_sim::fault::FaultPlan;
use poi360_sim::json::{JsonObject, ToJson};
use poi360_sim::rng::SimRng;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::trace::SinkHandle;
use poi360_sim::Recorder;
use poi360_viewport::motion::UserArchetype;
use std::cell::RefCell;
use std::rc::Rc;

/// One foreground session's knobs within a shared cell.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Spatial compression scheme.
    pub scheme: CompressionScheme,
    /// Rate control.
    pub rate_control: RateControlKind,
    /// Viewer behaviour.
    pub user: UserArchetype,
}

impl Default for FlowSpec {
    fn default() -> Self {
        FlowSpec {
            scheme: CompressionScheme::Poi360,
            rate_control: RateControlKind::Fbcc,
            user: UserArchetype::EventDriven,
        }
    }
}

impl FlowSpec {
    /// A POI360 flow with the given rate control.
    pub fn with_rate_control(rate_control: RateControlKind) -> Self {
        FlowSpec { rate_control, ..Default::default() }
    }
}

/// Configuration of a shared-cell run.
#[derive(Clone, Debug)]
pub struct MultiCellConfig {
    /// Cell-wide scheduler parameters.
    pub cell: CellConfig,
    /// Radio config applied to every foreground UE.
    pub channel: ChannelConfig,
    /// Background UE population size (emergent competing load).
    pub background_ues: usize,
    /// The foreground sessions.
    pub flows: Vec<FlowSpec>,
    /// Run length.
    pub duration: SimDuration,
    /// Master seed; the cell and every flow derive named streams from it.
    pub seed: u64,
    /// Initial encoding bitrate for every flow, bps.
    pub start_rate_bps: f64,
    /// Fault plan: access-level kinds are applied by the shared cell (to
    /// every foreground UE at once), path-level kinds by each session's
    /// pipes. Empty by default — a no-op.
    pub faults: FaultPlan,
}

impl Default for MultiCellConfig {
    fn default() -> Self {
        MultiCellConfig {
            cell: CellConfig::default(),
            channel: ChannelConfig::default(),
            background_ues: poi360_lte::cell::background_population_for(BackgroundLoad::Typical),
            flows: vec![FlowSpec::default(); 2],
            duration: SimDuration::from_secs(60),
            seed: 1,
            start_rate_bps: 1.0e6,
            faults: FaultPlan::new(),
        }
    }
}

/// Results of a shared-cell run.
#[derive(Clone, Debug)]
pub struct MultiCellReport {
    /// Per-flow session reports, in flow order.
    pub flows: Vec<SessionReport>,
    /// Mean fraction of cell PRBs granted per subframe over the run.
    pub mean_utilization: f64,
}

impl MultiCellReport {
    /// Jain's fairness index over the flows' mean throughputs.
    pub fn jain_throughput(&self) -> f64 {
        let rates: Vec<f64> = self.flows.iter().map(|f| f.mean_throughput_bps()).collect();
        poi360_metrics::fairness::jain_index(&rates)
    }
}

impl ToJson for MultiCellReport {
    fn write_json(&self, out: &mut String) {
        JsonObject::new()
            .field("mean_utilization", &self.mean_utilization)
            .field("jain_throughput", &self.jain_throughput())
            .field("flows", &self.flows)
            .write(out);
    }
}

/// The driver itself.
pub struct MultiCell {
    cfg: MultiCellConfig,
    cell: Rc<RefCell<Cell<Packet>>>,
    sessions: Vec<Session>,
    now: SimTime,
    /// Per-step ROI staging, reused across subframes.
    rois: Vec<poi360_video::roi::Roi>,
}

impl MultiCell {
    /// Build the cell, attach every flow and the background population.
    pub fn new(cfg: MultiCellConfig) -> Self {
        MultiCell::build(cfg, None)
    }

    /// Like [`MultiCell::new`], but every flow and the cell scheduler write
    /// trace records to `sink`. Flow `k` records under source `fg.{k:02}`
    /// (matching its UE label) and the scheduler under `cell`, so a single
    /// JSONL stream can be split back out per emitter.
    pub fn traced(cfg: MultiCellConfig, sink: SinkHandle) -> Self {
        MultiCell::build(cfg, Some(sink))
    }

    fn build(cfg: MultiCellConfig, sink: Option<SinkHandle>) -> Self {
        assert!(!cfg.flows.is_empty(), "a MultiCell needs at least one flow");
        let cell_seed = SimRng::stream(cfg.seed, "multicell.cell").next_u64();
        let cell = Rc::new(RefCell::new(Cell::new(cfg.cell, cell_seed)));
        if let Some(sink) = &sink {
            let rec = Recorder::to_sink(Rc::clone(sink), "cell");
            cell.borrow_mut().set_recorder(&rec);
        }
        if !cfg.faults.is_empty() {
            cell.borrow_mut().set_fault_plan(cfg.faults.clone());
        }
        let mut sessions = Vec::with_capacity(cfg.flows.len());
        for (k, flow) in cfg.flows.iter().enumerate() {
            let label = format!("fg.{k:02}");
            let ue = cell.borrow_mut().attach_foreground(&label, cfg.channel);
            debug_assert_eq!(ue, UeId(k));
            let flow_seed = SimRng::stream(cfg.seed, &format!("multicell.flow.{k}")).next_u64();
            let session_cfg = SessionConfig {
                scheme: flow.scheme,
                rate_control: flow.rate_control,
                user: flow.user,
                duration: cfg.duration,
                seed: flow_seed,
                network: NetworkKind::Cellular(poi360_lte::scenario::Scenario::baseline()),
                start_rate_bps: cfg.start_rate_bps,
                ..Default::default()
            };
            let recorder = match &sink {
                Some(sink) => Recorder::to_sink(Rc::clone(sink), &label),
                None => Recorder::null(),
            };
            let mut session =
                Session::with_shared_cell_traced(session_cfg, Rc::clone(&cell), ue, recorder);
            if !cfg.faults.is_empty() {
                // Only the path slice applies here; the cell owns the
                // access slice for all its UEs at once.
                session.set_fault_plan(&cfg.faults);
            }
            sessions.push(session);
        }
        cell.borrow_mut().attach_background_population(cfg.background_ues);
        MultiCell { cfg, cell, sessions, now: SimTime::ZERO, rois: Vec::new() }
    }

    /// Configuration in use.
    pub fn config(&self) -> &MultiCellConfig {
        &self.cfg
    }

    /// Advance every session and the cell by exactly one subframe.
    pub fn step(&mut self) {
        let now = self.now;
        self.rois.clear();
        for s in &mut self.sessions {
            let roi = s.multi_begin();
            self.rois.push(roi);
        }
        let mut out = self.cell.borrow_mut().subframe(now);
        for ((session, outcome), roi) in
            self.sessions.iter_mut().zip(out.per_ue.drain(..)).zip(self.rois.iter())
        {
            session.multi_complete(outcome, roi);
        }
        // The outcomes went to the sessions (which recycle their departed
        // vectors and diag reports themselves); hand the emptied shells
        // back to the cell.
        self.cell.borrow_mut().recycle(out);
        self.now += poi360_sim::SUBFRAME;
    }

    /// Run to completion and collect per-flow reports.
    pub fn run(mut self) -> MultiCellReport {
        let end = SimTime::ZERO + self.cfg.duration;
        while self.now < end {
            self.step();
        }
        let mean_utilization = self.cell.borrow().mean_utilization();
        MultiCellReport {
            flows: self.sessions.into_iter().map(Session::into_report).collect(),
            mean_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(flows: Vec<FlowSpec>, seed: u64) -> MultiCellConfig {
        MultiCellConfig {
            flows,
            duration: SimDuration::from_secs(8),
            background_ues: 4,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn two_flows_both_deliver() {
        let report = MultiCell::new(tiny(vec![FlowSpec::default(); 2], 42)).run();
        assert_eq!(report.flows.len(), 2);
        for flow in &report.flows {
            assert!(flow.frames_sent > 200, "sent {}", flow.frames_sent);
            let frac = flow.frames_delivered as f64 / flow.frames_sent as f64;
            assert!(frac > 0.7, "delivered fraction {frac}");
            assert!(!flow.fw_buffer.is_empty(), "shared-cell flows record diag");
        }
        assert!(report.mean_utilization > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = MultiCell::new(tiny(vec![FlowSpec::default(); 2], 7)).run();
        let b = MultiCell::new(tiny(vec![FlowSpec::default(); 2], 7)).run();
        let mut ja = String::new();
        let mut jb = String::new();
        a.write_json(&mut ja);
        b.write_json(&mut jb);
        assert_eq!(ja, jb);
    }

    #[test]
    fn traced_run_emits_per_flow_and_cell_probes() {
        let sink = poi360_sim::trace::RingSink::shared(200_000);
        let report = MultiCell::traced(tiny(vec![FlowSpec::default(); 2], 42), sink.clone()).run();
        assert_eq!(report.flows.len(), 2);
        let ring = sink.borrow();
        assert!(ring.count_of("cell.prb_grant") > 0, "scheduler grants traced");
        assert!(ring.count_of("video.frame_encoded") > 0, "flow probes traced");
        let srcs: std::collections::BTreeSet<_> =
            ring.records().map(|(src, _)| src.clone()).collect();
        assert!(srcs.contains("cell"), "srcs {srcs:?}");
        assert!(srcs.contains("fg.00") && srcs.contains("fg.01"), "srcs {srcs:?}");
    }

    #[test]
    fn tracing_does_not_perturb_the_run() {
        let a = MultiCell::new(tiny(vec![FlowSpec::default(); 2], 7)).run();
        let sink = poi360_sim::trace::RingSink::shared(200_000);
        let b = MultiCell::traced(tiny(vec![FlowSpec::default(); 2], 7), sink).run();
        let mut ja = String::new();
        let mut jb = String::new();
        a.write_json(&mut ja);
        b.write_json(&mut jb);
        assert_eq!(ja, jb);
    }

    #[test]
    fn symmetric_flows_are_fair() {
        let report = MultiCell::new(tiny(vec![FlowSpec::default(); 4], 9)).run();
        let jain = report.jain_throughput();
        assert!(jain > 0.9, "jain {jain}");
    }
}
