//! Rate-controller interface: plain GCC vs. FBCC-enhanced.
//!
//! The session drives a [`RateController`] with every network observable;
//! the controller answers two questions per frame: at what bitrate should
//! the encoder run (`R_v`), and how fast should the pacer drain (`R_rtp`).
//!
//! * [`GccRate`] — WebRTC's stock behaviour (the paper's baseline):
//!   `R_v = R_rtp = R_gcc`. It never looks at the diag reports, which is
//!   precisely why it underuses the PF uplink (paper Fig. 6).
//! * [`FbccRate`] — POI360: GCC still runs underneath (it handles
//!   congestion elsewhere, Eq. 6's second arm), but uplink congestion is
//!   detected locally from the firmware buffer and `R_rtp` is steered to
//!   the sweet spot.
//! * [`OccRate`] — PHY-assisted related work: the rate comes straight
//!   from a capacity estimate over the granted TBS stream (`core::occ`);
//!   GCC runs only for RTT bookkeeping on the RTCP path.

use crate::fbcc::{Fbcc, FbccConfig};
use crate::occ::{Occ, OccConfig};
use poi360_lte::diag::DiagReport;
use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::Recorder;
use poi360_transport::gcc::{GccSender, Remb};

/// The sender-side rate-control interface.
pub trait RateController: Send {
    /// Short name for reports ("GCC", "FBCC").
    fn name(&self) -> &'static str;

    /// Attach the session's probe recorder (default: ignore it).
    fn set_recorder(&mut self, _rec: &Recorder) {}

    /// Feed a diag batch (cellular sessions only).
    fn on_diag(&mut self, _report: &DiagReport, _now: SimTime) {}

    /// Feed a REMB message from the receiver.
    fn on_remb(&mut self, remb: Remb);

    /// Feed a receiver report (loss fraction) plus an RTT sample.
    fn on_receiver_report(&mut self, loss_fraction: f64, rtt_sample: SimDuration);

    /// Encoding bitrate `R_v` for the next frame.
    fn video_rate_bps(&self, now: SimTime) -> f64;

    /// Pacer drain rate `R_rtp`.
    fn rtp_rate_bps(&self, now: SimTime) -> f64;

    /// Smoothed RTT estimate.
    fn rtt(&self) -> SimDuration;

    /// Uplink congestion detections so far (0 for GCC).
    fn uplink_detections(&self) -> u64 {
        0
    }
}

/// WebRTC's stock rate control.
pub struct GccRate {
    gcc: GccSender,
}

impl GccRate {
    /// Create with a start rate.
    pub fn new(start_rate_bps: f64) -> Self {
        GccRate { gcc: GccSender::new(start_rate_bps) }
    }
}

impl RateController for GccRate {
    fn name(&self) -> &'static str {
        "GCC"
    }

    fn set_recorder(&mut self, rec: &Recorder) {
        self.gcc.set_recorder(rec);
    }

    fn on_remb(&mut self, remb: Remb) {
        self.gcc.on_remb(remb);
    }

    fn on_receiver_report(&mut self, loss_fraction: f64, rtt_sample: SimDuration) {
        self.gcc.on_receiver_report(loss_fraction, rtt_sample);
    }

    fn video_rate_bps(&self, _now: SimTime) -> f64 {
        self.gcc.target_rate_bps()
    }

    fn rtp_rate_bps(&self, now: SimTime) -> f64 {
        // Stock WebRTC ties the pacing rate to the video bitrate (the paper
        // calls this out as the source of uplink under-utilization), with
        // the pacer's 2.5× burst multiplier: each frame is pushed out
        // quickly and the modem then sits idle until the next one — which
        // is exactly how the firmware buffer ends up empty ~40 % of the
        // time in the paper's Fig. 6.
        2.5 * self.video_rate_bps(now)
    }

    fn rtt(&self) -> SimDuration {
        self.gcc.rtt()
    }
}

/// POI360's FBCC on top of the legacy GCC.
pub struct FbccRate {
    gcc: GccSender,
    fbcc: Fbcc,
}

impl FbccRate {
    /// Create with a start rate.
    pub fn new(start_rate_bps: f64, cfg: FbccConfig) -> Self {
        FbccRate { gcc: GccSender::new(start_rate_bps), fbcc: Fbcc::new(cfg) }
    }

    /// Access the FBCC engine (diagnostics).
    pub fn fbcc(&self) -> &Fbcc {
        &self.fbcc
    }
}

impl RateController for FbccRate {
    fn name(&self) -> &'static str {
        "FBCC"
    }

    fn set_recorder(&mut self, rec: &Recorder) {
        self.gcc.set_recorder(rec);
        self.fbcc.set_recorder(rec);
    }

    fn on_diag(&mut self, report: &DiagReport, now: SimTime) {
        self.fbcc.on_diag(report, self.gcc.rtt(), now);
    }

    fn on_remb(&mut self, remb: Remb) {
        self.gcc.on_remb(remb);
    }

    fn on_receiver_report(&mut self, loss_fraction: f64, rtt_sample: SimDuration) {
        self.gcc.on_receiver_report(loss_fraction, rtt_sample);
    }

    fn video_rate_bps(&self, now: SimTime) -> f64 {
        self.fbcc.video_rate_bps(now, self.gcc.target_rate_bps())
    }

    fn rtp_rate_bps(&self, now: SimTime) -> f64 {
        self.fbcc.rtp_rate_bps(now, self.gcc.target_rate_bps())
    }

    fn rtt(&self) -> SimDuration {
        self.gcc.rtt()
    }

    fn uplink_detections(&self) -> u64 {
        self.fbcc.detections()
    }
}

/// OCC-style PHY-assisted rate control (`core::occ`).
pub struct OccRate {
    gcc: GccSender,
    occ: Occ,
}

impl OccRate {
    /// Create with a start rate.
    pub fn new(start_rate_bps: f64, cfg: OccConfig) -> Self {
        OccRate { gcc: GccSender::new(start_rate_bps), occ: Occ::new(start_rate_bps, cfg) }
    }

    /// Access the OCC engine (diagnostics).
    pub fn occ(&self) -> &Occ {
        &self.occ
    }
}

impl RateController for OccRate {
    fn name(&self) -> &'static str {
        "OCC"
    }

    fn set_recorder(&mut self, rec: &Recorder) {
        // GCC keeps the RTCP/RTT plumbing but its target never reaches the
        // encoder, so only OCC's probes are worth recording.
        self.occ.set_recorder(rec);
    }

    fn on_diag(&mut self, report: &DiagReport, now: SimTime) {
        self.occ.on_diag(report, now);
    }

    fn on_remb(&mut self, remb: Remb) {
        self.gcc.on_remb(remb);
    }

    fn on_receiver_report(&mut self, loss_fraction: f64, rtt_sample: SimDuration) {
        self.gcc.on_receiver_report(loss_fraction, rtt_sample);
    }

    fn video_rate_bps(&self, _now: SimTime) -> f64 {
        self.occ.video_rate_bps()
    }

    fn rtp_rate_bps(&self, _now: SimTime) -> f64 {
        self.occ.rtp_rate_bps()
    }

    fn rtt(&self) -> SimDuration {
        self.gcc.rtt()
    }

    fn uplink_detections(&self) -> u64 {
        self.occ.detections()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poi360_lte::diag::DiagSample;

    fn report(start_ms: u64, buffers: &[u64], tbs: u32) -> DiagReport {
        DiagReport {
            delivered_at: SimTime::from_millis(start_ms + buffers.len() as u64),
            samples: buffers
                .iter()
                .enumerate()
                .map(|(k, &b)| DiagSample {
                    at: SimTime::from_millis(start_ms + k as u64),
                    buffer_bytes: b,
                    tbs_bits: tbs,
                })
                .collect(),
        }
    }

    #[test]
    fn gcc_ties_rtp_to_video() {
        let mut g = GccRate::new(2.0e6);
        g.on_receiver_report(0.0, SimDuration::from_millis(80));
        let now = SimTime::from_secs(1);
        // Stock WebRTC: pacing rate = 2.5 × the video bitrate, always.
        assert_eq!(g.rtp_rate_bps(now), 2.5 * g.video_rate_bps(now));
        assert_eq!(g.name(), "GCC");
        assert_eq!(g.uplink_detections(), 0);
    }

    #[test]
    fn gcc_ignores_diag() {
        let mut g = GccRate::new(2.0e6);
        let before = g.video_rate_bps(SimTime::ZERO);
        g.on_diag(&report(0, &[50_000; 40], 100), SimTime::from_millis(40));
        assert_eq!(g.video_rate_bps(SimTime::ZERO), before);
    }

    #[test]
    fn fbcc_pins_video_rate_on_uplink_congestion() {
        let mut f = FbccRate::new(8.0e6, FbccConfig::default());
        // Warm Γ.
        for epoch in 0..25u64 {
            f.on_diag(
                &report(epoch * 40, &[5_000; 40], 3_000),
                SimTime::from_millis(epoch * 40 + 40),
            );
        }
        // Ramp: congestion.
        let ramp: Vec<u64> = (0..40).map(|k| 6_000 + k * 1_200).collect();
        f.on_diag(&report(1_000, &ramp, 3_200), SimTime::from_millis(1_040));
        assert_eq!(f.uplink_detections(), 1);
        let v = f.video_rate_bps(SimTime::from_millis(1_050));
        assert!(v < 4.0e6, "video rate pinned to PHY: {v}");
        // RTP rate stays at or above the video rate.
        assert!(f.rtp_rate_bps(SimTime::from_millis(1_050)) >= v);
    }

    #[test]
    fn fbcc_decouples_rtp_from_video() {
        let mut f = FbccRate::new(1.0e6, FbccConfig::default());
        // Persistently empty buffer: Eq. 7 raises R_rtp above R_v.
        for epoch in 0..30u64 {
            f.on_diag(&report(epoch * 40, &[0; 40], 500), SimTime::from_millis(epoch * 40 + 40));
        }
        let now = SimTime::from_millis(1_250);
        assert!(
            f.rtp_rate_bps(now) > f.video_rate_bps(now),
            "rtp {} video {}",
            f.rtp_rate_bps(now),
            f.video_rate_bps(now)
        );
    }
}
