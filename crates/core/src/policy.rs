//! The spatial-compression policy interface.
//!
//! A policy decides, each frame, how encoding quality is distributed across
//! the panorama given the sender's (possibly stale) ROI knowledge. POI360's
//! adaptive scheme additionally consumes the client's ROI-mismatch-time
//! feedback; the baselines ignore it.

use poi360_sim::time::{SimDuration, SimTime};
use poi360_sim::Recorder;
use poi360_video::compression::CompressionMatrix;
use poi360_video::frame::TileGrid;
use poi360_video::roi::Roi;

/// A spatial compression policy.
pub trait CompressionPolicy: Send {
    /// Short name for reports ("POI360", "Conduit", "Pyramid").
    fn name(&self) -> &'static str;

    /// Attach the session's probe recorder (default: ignore it; baselines
    /// make no decisions worth tracing).
    fn set_recorder(&mut self, _rec: &Recorder) {}

    /// Build the compression matrix for the next frame, given the sender's
    /// current knowledge of the viewer ROI.
    fn matrix(&mut self, grid: &TileGrid, sender_roi: &Roi) -> CompressionMatrix;

    /// Receive the client's averaged ROI-mismatch-time feedback `M`
    /// (ignored by fixed-mode baselines).
    fn on_mismatch_feedback(&mut self, _now: SimTime, _m: SimDuration) {}

    /// Receive a raw ROI feedback sample (used by predictive policies to
    /// build a motion model; default no-op).
    fn on_roi_feedback(&mut self, _now: SimTime, _roi: &Roi) {}

    /// The mode index currently in use, 1-based, if the policy has discrete
    /// modes (diagnostics; POI360 reports `i_m ∈ 1..=8`).
    fn mode_index(&self) -> Option<usize> {
        None
    }
}
